/**
 * @file
 * Lock-cheap metrics registry shared by every Mercury daemon.
 *
 * Three instrument kinds cover the fleet's needs:
 *
 *  - Counter:   monotonic event count. inc() is one relaxed atomic
 *               fetch_add, cheap enough for the solver iteration loop
 *               (the release bench gates it below 50 ns).
 *  - Gauge:     last-written double (PD-controller output, backlog
 *               depth). set() is one relaxed atomic store.
 *  - Histogram: fixed-bucket latency distribution with p50/p99
 *               snapshots. observe() is a bucket scan plus two relaxed
 *               atomic updates; no allocation, no locks.
 *
 * A Registry names instruments and renders them three ways: a compact
 * one-line-per-metric summary (the MetricsSnapshot RPC / `fiddle
 * metrics`), Prometheus text exposition (--metrics-path file writer),
 * and a flat name/value vector (the shm telemetry metrics region).
 *
 * Components that already keep their own counters export them through
 * registered callbacks; CallbackGuard unregisters on destruction so a
 * short-lived component (tests create and destroy daemons freely)
 * never leaves a dangling closure behind in the process-global
 * registry.
 *
 * Registration and rendering take a mutex; the instrument fast paths
 * never do. Instrument pointers returned by the registry stay valid
 * for the registry's lifetime.
 */

#ifndef MERCURY_METRICS_METRICS_HH
#define MERCURY_METRICS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mercury {
namespace metrics {

/** Monotonic event counter. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-written double value. */
class Gauge
{
  public:
    void set(double value);

    /** Atomic add (CAS loop); for +=/-= style gauges. */
    void add(double delta);

    double value() const;

  private:
    std::atomic<uint64_t> bits_{0}; // bit pattern of a double
};

/** Fixed-bucket histogram with atomic bucket counts. */
class Histogram
{
  public:
    /** Cumulative view taken at one instant; quantiles interpolate
     *  linearly inside the owning bucket. */
    struct Snapshot
    {
        std::vector<double> bounds;   //!< inclusive upper bounds
        std::vector<uint64_t> counts; //!< bounds.size()+1 (overflow)
        uint64_t count = 0;
        double sum = 0.0;

        double mean() const;
        double quantile(double q) const;
        double p50() const { return quantile(0.50); }
        double p99() const { return quantile(0.99); }
    };

    /** @p bounds must be strictly increasing upper bounds; one
     *  overflow bucket is appended implicitly. */
    explicit Histogram(std::vector<double> bounds);

    void observe(double value);

    Snapshot snapshot() const;

    /** Log-spaced 1-2.5-5 seconds bounds from 1 us to 10 s; the
     *  default for every latency histogram in the fleet. */
    static std::vector<double> latencyBounds();

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<uint64_t>[]> counts_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sumBits_{0}; // double bit pattern, CAS-added
};

/** One flattened metric value (histograms expand to several). */
struct Sample
{
    std::string name;
    double value = 0.0;
};

/**
 * Named instrument registry. Lookup-or-create by name; re-requesting
 * an existing name with the same kind returns the same instrument,
 * with a different kind it panics (programmer error).
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** The process-wide default registry every daemon shares. */
    static Registry &global();

    Counter *counter(const std::string &name, const std::string &help = "");
    Gauge *gauge(const std::string &name, const std::string &help = "");
    Histogram *histogram(const std::string &name,
                         std::vector<double> bounds,
                         const std::string &help = "");

    /** Export an externally-maintained value (a component's own
     *  counter) as a gauge-like metric. Returns a token; the
     *  callback stays registered until removeCallback(name, token).
     *  Registering an existing callback name replaces it (new
     *  token wins). Prefer CallbackGuard over calling these
     *  directly. */
    uint64_t addCallback(const std::string &name, const std::string &help,
                         std::function<double()> fn);

    /** Remove a callback if @p token still owns the name. */
    void removeCallback(const std::string &name, uint64_t token);

    /** Compact text: one metric per line, sorted by name.
     *  Counters/gauges render "name value"; histograms render
     *  "name count=N mean=M p50=X p99=Y". */
    std::string renderSummary() const;

    /** Prometheus text exposition (TYPE comments, histogram
     *  _bucket/_sum/_count series). */
    std::string renderProm() const;

    /** Flat name/value samples, sorted by name; histograms expand to
     *  _count/_sum/_p50/_p99. The shm metrics region publishes
     *  these. */
    std::vector<Sample> samples() const;

    /** Current values for a fixed name list (NaN when a name is
     *  missing); lets the shm Writer freeze the name table at
     *  construction and refresh only values per publish. */
    std::vector<double> valuesFor(const std::vector<std::string> &names) const;

  private:
    enum class Kind { Counter, Gauge, Histogram, Callback };

    struct Instrument
    {
        Kind kind;
        std::string help;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::function<double()> callback;
        uint64_t token = 0;
    };

    Instrument *findOrCreate(const std::string &name, Kind kind,
                             const std::string &help);
    void appendSamples(const std::string &name, const Instrument &inst,
                       std::vector<Sample> *out) const;

    mutable std::mutex mutex_;
    std::map<std::string, Instrument> instruments_;
    uint64_t nextToken_ = 1;
};

/**
 * RAII bundle of callback registrations. Components register their
 * exported counters through one of these; destruction (or release())
 * removes every callback so the registry never calls into a dead
 * object.
 */
class CallbackGuard
{
  public:
    CallbackGuard() = default;
    CallbackGuard(const CallbackGuard &) = delete;
    CallbackGuard &operator=(const CallbackGuard &) = delete;
    ~CallbackGuard() { release(); }

    void add(Registry &registry, const std::string &name,
             const std::string &help, std::function<double()> fn);

    /** Unregister everything added so far. */
    void release();

  private:
    struct Entry
    {
        Registry *registry;
        std::string name;
        uint64_t token;
    };
    std::vector<Entry> entries_;
};

/**
 * Write renderProm() to @p path atomically (tmp file in the same
 * directory + rename). Returns false (with a warn) on I/O failure.
 */
bool writeTextFile(const Registry &registry, const std::string &path);

} // namespace metrics
} // namespace mercury

#endif // MERCURY_METRICS_METRICS_HH
