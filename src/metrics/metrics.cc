#include "metrics/metrics.hh"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace mercury {
namespace metrics {

// --------------------------------------------------------------------
// Gauge

void
Gauge::set(double value)
{
    bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
}

void
Gauge::add(double delta)
{
    uint64_t old = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        old, std::bit_cast<uint64_t>(std::bit_cast<double>(old) + delta),
        std::memory_order_relaxed, std::memory_order_relaxed)) {
    }
}

double
Gauge::value() const
{
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// --------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    if (bounds_.empty())
        MERCURY_PANIC("histogram needs at least one bucket bound");
    for (size_t i = 1; i < bounds_.size(); ++i) {
        if (!(bounds_[i] > bounds_[i - 1]))
            MERCURY_PANIC("histogram bounds must be strictly increasing");
    }
    counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
}

void
Histogram::observe(double value)
{
    // Branchless-ish linear scan: the bound vectors are small (~22
    // entries) and latency samples cluster in the low buckets, so a
    // scan beats binary search in practice and stays trivially
    // correct.
    size_t bucket = bounds_.size(); // overflow
    for (size_t i = 0; i < bounds_.size(); ++i) {
        if (value <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    uint64_t old = sumBits_.load(std::memory_order_relaxed);
    while (!sumBits_.compare_exchange_weak(
        old, std::bit_cast<uint64_t>(std::bit_cast<double>(old) + value),
        std::memory_order_relaxed, std::memory_order_relaxed)) {
    }
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot snap;
    snap.bounds = bounds_;
    snap.counts.resize(bounds_.size() + 1);
    for (size_t i = 0; i < snap.counts.size(); ++i)
        snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum =
        std::bit_cast<double>(sumBits_.load(std::memory_order_relaxed));
    return snap;
}

double
Histogram::Snapshot::mean() const
{
    return count ? sum / static_cast<double>(count) : 0.0;
}

double
Histogram::Snapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * static_cast<double>(count);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        uint64_t in_bucket = counts[i];
        if (in_bucket == 0)
            continue;
        if (static_cast<double>(cumulative + in_bucket) >= rank) {
            // Interpolate linearly inside this bucket.
            double lower = i == 0 ? 0.0 : bounds[i - 1];
            double upper = i < bounds.size()
                               ? bounds[i]
                               : bounds.back(); // overflow: clamp
            double into = rank - static_cast<double>(cumulative);
            double frac = into / static_cast<double>(in_bucket);
            return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
        }
        cumulative += in_bucket;
    }
    return bounds.back();
}

std::vector<double>
Histogram::latencyBounds()
{
    std::vector<double> bounds;
    for (double decade = 1e-6; decade < 20.0; decade *= 10.0) {
        bounds.push_back(decade);
        bounds.push_back(decade * 2.5);
        bounds.push_back(decade * 5.0);
    }
    // 1us .. 50s: plenty for every control-loop latency we track.
    return bounds;
}

// --------------------------------------------------------------------
// Registry

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Registry::Instrument *
Registry::findOrCreate(const std::string &name, Kind kind,
                       const std::string &help)
{
    auto [it, inserted] = instruments_.try_emplace(name);
    Instrument &inst = it->second;
    if (inserted) {
        inst.kind = kind;
        inst.help = help;
    } else if (inst.kind != kind) {
        MERCURY_PANIC("metric '", name,
                      "' re-registered with a different kind");
    }
    return &inst;
}

Counter *
Registry::counter(const std::string &name, const std::string &help)
{
    std::lock_guard<std::mutex> guard(mutex_);
    Instrument *inst = findOrCreate(name, Kind::Counter, help);
    if (!inst->counter)
        inst->counter = std::make_unique<Counter>();
    return inst->counter.get();
}

Gauge *
Registry::gauge(const std::string &name, const std::string &help)
{
    std::lock_guard<std::mutex> guard(mutex_);
    Instrument *inst = findOrCreate(name, Kind::Gauge, help);
    if (!inst->gauge)
        inst->gauge = std::make_unique<Gauge>();
    return inst->gauge.get();
}

Histogram *
Registry::histogram(const std::string &name, std::vector<double> bounds,
                    const std::string &help)
{
    std::lock_guard<std::mutex> guard(mutex_);
    Instrument *inst = findOrCreate(name, Kind::Histogram, help);
    if (!inst->histogram)
        inst->histogram = std::make_unique<Histogram>(std::move(bounds));
    return inst->histogram.get();
}

uint64_t
Registry::addCallback(const std::string &name, const std::string &help,
                      std::function<double()> fn)
{
    std::lock_guard<std::mutex> guard(mutex_);
    Instrument *inst = findOrCreate(name, Kind::Callback, help);
    inst->callback = std::move(fn);
    inst->token = nextToken_++;
    if (!inst->help.empty() && inst->help != help && !help.empty())
        inst->help = help;
    return inst->token;
}

void
Registry::removeCallback(const std::string &name, uint64_t token)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = instruments_.find(name);
    if (it == instruments_.end() || it->second.kind != Kind::Callback)
        return;
    // A later registration replaced us; the name is theirs now.
    if (it->second.token != token)
        return;
    instruments_.erase(it);
}

namespace {

std::string
formatValue(double value)
{
    // Counters and integral gauges render without an exponent.
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<int64_t>(value));
        return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

} // namespace

void
Registry::appendSamples(const std::string &name, const Instrument &inst,
                        std::vector<Sample> *out) const
{
    switch (inst.kind) {
      case Kind::Counter:
        out->push_back({name, static_cast<double>(inst.counter->value())});
        break;
      case Kind::Gauge:
        out->push_back({name, inst.gauge->value()});
        break;
      case Kind::Callback:
        out->push_back({name, inst.callback ? inst.callback() : 0.0});
        break;
      case Kind::Histogram: {
        auto snap = inst.histogram->snapshot();
        out->push_back({name + "_count", static_cast<double>(snap.count)});
        out->push_back({name + "_sum", snap.sum});
        out->push_back({name + "_p50", snap.p50()});
        out->push_back({name + "_p99", snap.p99()});
        break;
      }
    }
}

std::vector<Sample>
Registry::samples() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<Sample> out;
    out.reserve(instruments_.size());
    for (const auto &[name, inst] : instruments_)
        appendSamples(name, inst, &out);
    return out;
}

std::vector<double>
Registry::valuesFor(const std::vector<std::string> &names) const
{
    // Flatten once, then match; the name lists are small.
    std::vector<Sample> flat = samples();
    std::vector<double> out(names.size(),
                            std::numeric_limits<double>::quiet_NaN());
    for (size_t i = 0; i < names.size(); ++i) {
        for (const Sample &sample : flat) {
            if (sample.name == names[i]) {
                out[i] = sample.value;
                break;
            }
        }
    }
    return out;
}

std::string
Registry::renderSummary() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::ostringstream oss;
    for (const auto &[name, inst] : instruments_) {
        switch (inst.kind) {
          case Kind::Counter:
            oss << name << ' ' << inst.counter->value() << '\n';
            break;
          case Kind::Gauge:
            oss << name << ' ' << formatValue(inst.gauge->value()) << '\n';
            break;
          case Kind::Callback:
            oss << name << ' '
                << formatValue(inst.callback ? inst.callback() : 0.0)
                << '\n';
            break;
          case Kind::Histogram: {
            auto snap = inst.histogram->snapshot();
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "%s count=%llu mean=%.3g p50=%.3g p99=%.3g\n",
                          name.c_str(),
                          static_cast<unsigned long long>(snap.count),
                          snap.mean(), snap.p50(), snap.p99());
            oss << buf;
            break;
          }
        }
    }
    return oss.str();
}

std::string
Registry::renderProm() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::ostringstream oss;
    for (const auto &[name, inst] : instruments_) {
        if (!inst.help.empty())
            oss << "# HELP " << name << ' ' << inst.help << '\n';
        switch (inst.kind) {
          case Kind::Counter:
            oss << "# TYPE " << name << " counter\n";
            oss << name << ' ' << inst.counter->value() << '\n';
            break;
          case Kind::Gauge:
            oss << "# TYPE " << name << " gauge\n";
            oss << name << ' ' << formatValue(inst.gauge->value()) << '\n';
            break;
          case Kind::Callback:
            oss << "# TYPE " << name << " gauge\n";
            oss << name << ' '
                << formatValue(inst.callback ? inst.callback() : 0.0)
                << '\n';
            break;
          case Kind::Histogram: {
            auto snap = inst.histogram->snapshot();
            oss << "# TYPE " << name << " histogram\n";
            uint64_t cumulative = 0;
            for (size_t i = 0; i < snap.bounds.size(); ++i) {
                cumulative += snap.counts[i];
                oss << name << "_bucket{le=\""
                    << formatValue(snap.bounds[i]) << "\"} " << cumulative
                    << '\n';
            }
            cumulative += snap.counts.back();
            oss << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
            oss << name << "_sum " << formatValue(snap.sum) << '\n';
            oss << name << "_count " << snap.count << '\n';
            break;
          }
        }
    }
    return oss.str();
}

// --------------------------------------------------------------------
// CallbackGuard

void
CallbackGuard::add(Registry &registry, const std::string &name,
                   const std::string &help, std::function<double()> fn)
{
    uint64_t token = registry.addCallback(name, help, std::move(fn));
    entries_.push_back({&registry, name, token});
}

void
CallbackGuard::release()
{
    for (const Entry &entry : entries_)
        entry.registry->removeCallback(entry.name, entry.token);
    entries_.clear();
}

// --------------------------------------------------------------------
// Text file writer

bool
writeTextFile(const Registry &registry, const std::string &path)
{
    std::string text = registry.renderProm();
    std::string tmp = path + ".tmp";
    std::FILE *fp = std::fopen(tmp.c_str(), "w");
    if (!fp) {
        warn("metrics: cannot open ", tmp);
        return false;
    }
    bool ok = std::fwrite(text.data(), 1, text.size(), fp) == text.size();
    ok = std::fclose(fp) == 0 && ok;
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("metrics: cannot write ", path);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace metrics
} // namespace mercury
