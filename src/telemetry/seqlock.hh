/**
 * @file
 * The telemetry plane's seqlock: a single writer versions the payload
 * with an even/odd sequence word; readers retry when they raced a
 * publish. Both sides go through std::atomic_ref so the protocol is
 * race-free in the C++ memory model (and under TSan) even though the
 * word lives in a plain mmap'ed struct.
 *
 * Writer:  begin() -> odd; plain payload stores; end() -> even.
 * Reader:  s = begin(); payload loads; validate(s) -> accept/retry.
 *
 * The payload itself is read and written with relaxed atomic_ref
 * accesses (see loadPayload/storePayload): on every target we care
 * about these compile to plain 8-byte moves, and they keep torn or
 * racing accesses formally defined while the fences in begin/end/
 * validate order them against the sequence word.
 */

#ifndef MERCURY_TELEMETRY_SEQLOCK_HH
#define MERCURY_TELEMETRY_SEQLOCK_HH

#include <atomic>
#include <cstdint>

namespace mercury {
namespace telemetry {

/** Relaxed atomic load of one payload word (formally race-free). */
template <typename T>
inline T
loadPayload(const T &field)
{
    return std::atomic_ref<const T>(field).load(std::memory_order_relaxed);
}

/** Relaxed atomic store of one payload word. */
template <typename T>
inline void
storePayload(T &field, T value)
{
    std::atomic_ref<T>(field).store(value, std::memory_order_relaxed);
}

/** Writer side: mark the payload unstable. Returns the odd value.
 *  A sequence that is already odd (a segment still initializing, or a
 *  writer that died mid-publish and was replaced) stays odd, so the
 *  eventual end() publishes cleanly either way. */
inline uint64_t
seqlockWriteBegin(uint64_t &sequence)
{
    std::atomic_ref<uint64_t> seq(sequence);
    uint64_t odd = seq.load(std::memory_order_relaxed) | 1;
    seq.store(odd, std::memory_order_relaxed);
    // Payload stores must not be reordered before the odd store.
    std::atomic_thread_fence(std::memory_order_release);
    return odd;
}

/** Writer side: publish (sequence becomes even). */
inline void
seqlockWriteEnd(uint64_t &sequence, uint64_t odd)
{
    std::atomic_ref<uint64_t> seq(sequence);
    // Release: payload stores happen-before the even store.
    seq.store(odd + 1, std::memory_order_release);
}

/** Reader side: snapshot the sequence before touching the payload. */
inline uint64_t
seqlockReadBegin(const uint64_t &sequence)
{
    return std::atomic_ref<const uint64_t>(sequence).load(
        std::memory_order_acquire);
}

/**
 * Reader side: true when the payload read between begin and here was
 * consistent (no concurrent publish). An odd @p before can never
 * validate, so callers may read the payload unconditionally and only
 * check at the end.
 */
inline bool
seqlockReadValidate(const uint64_t &sequence, uint64_t before)
{
    // Payload loads must complete before the re-read of the sequence.
    std::atomic_thread_fence(std::memory_order_acquire);
    uint64_t after = std::atomic_ref<const uint64_t>(sequence).load(
        std::memory_order_relaxed);
    return before == after && (before & 1) == 0;
}

} // namespace telemetry
} // namespace mercury

#endif // MERCURY_TELEMETRY_SEQLOCK_HH
