#include "telemetry/reader.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>

#include "telemetry/seqlock.hh"

namespace mercury {
namespace telemetry {

namespace {

/** Throttle between reconnect attempts while the segment is down. */
constexpr uint64_t kReconnectNanos = 200'000'000ULL; // 200 ms

/** A publish is a few microseconds; a handful of retries is plenty. */
constexpr int kMaxSeqlockRetries = 16;

std::function<uint64_t()> testClock; // tests only; see header

std::string
fixedToString(const char (&field)[kNameWidth])
{
    size_t len = 0;
    while (len < kNameWidth && field[len] != '\0')
        ++len;
    return std::string(field, len);
}

} // namespace

void
Reader::setClockForTest(std::function<uint64_t()> clock)
{
    testClock = std::move(clock);
}

uint64_t
Reader::nowNanos() const
{
    return testClock ? testClock() : monotonicNanos();
}

Reader::Reader(std::string shm_name)
    : name_(normalizeShmName(shm_name))
{
}

Reader::~Reader()
{
    std::lock_guard<std::mutex> guard(mutex_);
    unmapLocked();
}

void
Reader::unmapLocked()
{
    if (base_)
        ::munmap(base_, mappedBytes_);
    base_ = nullptr;
    mappedBytes_ = 0;
    header_ = nullptr;
    temperatures_ = nullptr;
    utilizations_ = nullptr;
    metricValues_ = nullptr;
    metricNames_.clear();
    slotIndex_.clear();
    machineSet_.clear();
    aliasMap_.clear();
}

bool
Reader::usableLocked()
{
    if (!header_)
        return false;
    // The writer stomps the magic while re-initializing in place and
    // changes the layout hash when its topology differs; either sign
    // means cached slot indices cannot be trusted.
    uint32_t magic = std::atomic_ref<const uint32_t>(header_->magic)
                         .load(std::memory_order_acquire);
    if (magic != kShmMagic)
        return false;
    if (loadPayload(header_->layoutHash) != layoutHash_)
        return false;
    uint64_t heartbeat =
        std::atomic_ref<const uint64_t>(header_->heartbeatNanos)
            .load(std::memory_order_acquire);
    uint64_t now = nowNanos();
    if (heartbeat > now)
        return true; // clock skew between writer/reader startup
    if (now - heartbeat > staleThresholdNanos_) {
        ++stats_.staleFalls;
        return false;
    }
    return true;
}

bool
Reader::ensureUsableLocked()
{
    if (usableLocked())
        return true;
    // The segment is missing, replaced or stale. A fresh shm_open can
    // rescue us (writer restarted under the same name), but only try
    // every kReconnectNanos so a dead segment stays cheap.
    uint64_t now = nowNanos();
    if (lastConnectAttemptNanos_ != 0 &&
        now - lastConnectAttemptNanos_ < kReconnectNanos)
        return false;
    lastConnectAttemptNanos_ = now;
    tryConnectLocked();
    return usableLocked();
}

void
Reader::tryConnectLocked()
{
    ++stats_.reconnects;
    bool had_mapping = header_ != nullptr;
    uint64_t previous_hash = layoutHash_;

    int fd = ::shm_open(name_.c_str(), O_RDONLY, 0);
    if (fd < 0) {
        unmapLocked();
        return;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        static_cast<size_t>(st.st_size) < sizeof(Header)) {
        ::close(fd);
        unmapLocked();
        return;
    }
    size_t size = static_cast<size_t>(st.st_size);
    void *base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
        unmapLocked();
        return;
    }

    const auto *header = reinterpret_cast<const Header *>(base);
    uint32_t magic = std::atomic_ref<const uint32_t>(header->magic)
                         .load(std::memory_order_acquire);
    Layout layout{header->slotCount, header->aliasCount,
                  header->metricCount};
    if (magic != kShmMagic || header->version != kShmVersion ||
        layout.totalBytes() > size) {
        ::munmap(base, size);
        unmapLocked();
        return;
    }

    unmapLocked();
    base_ = base;
    mappedBytes_ = size;
    header_ = header;
    layout_ = layout;
    layoutHash_ = header->layoutHash;
    const auto *bytes = static_cast<const uint8_t *>(base_);
    temperatures_ = reinterpret_cast<const double *>(
        bytes + layout_.temperaturesOffset());
    utilizations_ = reinterpret_cast<const double *>(
        bytes + layout_.utilizationsOffset());
    metricValues_ = reinterpret_cast<const double *>(
        bytes + layout_.metricValuesOffset());
    const auto *metric_table = reinterpret_cast<const MetricName *>(
        bytes + layout_.metricNamesOffset());
    metricNames_.reserve(layout_.metricCount);
    for (uint32_t i = 0; i < layout_.metricCount; ++i) {
        size_t len = 0;
        while (len < kMetricNameWidth &&
               metric_table[i].name[len] != '\0')
            ++len;
        metricNames_.emplace_back(metric_table[i].name, len);
    }

    uint64_t period_threshold = static_cast<uint64_t>(
        kStalePeriods * static_cast<double>(header->periodNanos));
    uint64_t floor_threshold =
        static_cast<uint64_t>(kStaleFloorSeconds * 1e9);
    staleThresholdNanos_ = std::max(period_threshold, floor_threshold);

    const auto *slots = reinterpret_cast<const SlotKey *>(
        bytes + layout_.slotsOffset());
    slotIndex_.reserve(layout_.slotCount);
    for (uint32_t i = 0; i < layout_.slotCount; ++i) {
        machineSet_.insert(fixedToString(slots[i].machine));
        std::string key = fixedToString(slots[i].machine) + "\n" +
                          fixedToString(slots[i].node);
        slotIndex_.emplace(std::move(key), i);
    }
    const auto *aliases = reinterpret_cast<const AliasEntry *>(
        bytes + layout_.aliasOffset());
    for (uint32_t i = 0; i < layout_.aliasCount; ++i) {
        aliasMap_.emplace(fixedToString(aliases[i].alias),
                          fixedToString(aliases[i].node));
    }
    // Slot indices are a pure function of the directory, so a remap
    // onto an identical layout (e.g. reconnecting after a stale spell)
    // keeps cached Slot handles valid; only a genuinely different
    // table invalidates them.
    if (!had_mapping || previous_hash != layoutHash_)
        ++generation_;
}

std::optional<Reader::Slot>
Reader::resolve(const std::string &machine, const std::string &component)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (!ensureUsableLocked())
        return std::nullopt;
    auto it = slotIndex_.find(machine + "\n" + component);
    if (it == slotIndex_.end()) {
        auto alias = aliasMap_.find(component);
        if (alias == aliasMap_.end())
            return std::nullopt;
        it = slotIndex_.find(machine + "\n" + alias->second);
        if (it == slotIndex_.end())
            return std::nullopt;
    }
    return Slot{it->second, generation_};
}

Reader::Resolution
Reader::resolveDetailed(const std::string &machine,
                        const std::string &component)
{
    std::lock_guard<std::mutex> guard(mutex_);
    Resolution result;
    if (!ensureUsableLocked())
        return result; // Unavailable
    if (machineSet_.find(machine) == machineSet_.end()) {
        result.status = ResolveStatus::UnknownMachine;
        return result;
    }
    auto it = slotIndex_.find(machine + "\n" + component);
    if (it == slotIndex_.end()) {
        auto alias = aliasMap_.find(component);
        if (alias != aliasMap_.end())
            it = slotIndex_.find(machine + "\n" + alias->second);
        if (it == slotIndex_.end()) {
            result.status = ResolveStatus::UnknownComponent;
            return result;
        }
    }
    result.status = ResolveStatus::Ok;
    result.slot = Slot{it->second, generation_};
    return result;
}

std::optional<Reader::Sample>
Reader::readLocked(const Slot &slot)
{
    ++stats_.reads;
    if (!ensureUsableLocked())
        return std::nullopt;
    if (slot.generation != generation_ || slot.index >= layout_.slotCount)
        return std::nullopt;

    for (int attempt = 0; attempt < kMaxSeqlockRetries; ++attempt) {
        uint64_t before = seqlockReadBegin(header_->sequence);
        Sample sample;
        sample.temperature = loadPayload(temperatures_[slot.index]);
        sample.utilization = loadPayload(utilizations_[slot.index]);
        sample.iteration = loadPayload(header_->iteration);
        sample.emulatedSeconds = loadPayload(header_->emulatedSeconds);
        if (seqlockReadValidate(header_->sequence, before)) {
            ++stats_.hits;
            return sample;
        }
        ++stats_.seqlockRetries;
    }
    return std::nullopt;
}

std::optional<Reader::Sample>
Reader::read(const Slot &slot)
{
    std::lock_guard<std::mutex> guard(mutex_);
    return readLocked(slot);
}

std::optional<Reader::Sample>
Reader::read(const std::string &machine, const std::string &component)
{
    auto slot = resolve(machine, component);
    if (!slot)
        return std::nullopt;
    return read(*slot);
}

bool
Reader::usable()
{
    std::lock_guard<std::mutex> guard(mutex_);
    return ensureUsableLocked();
}

std::vector<std::pair<std::string, double>>
Reader::readMetrics()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (!ensureUsableLocked() || layout_.metricCount == 0)
        return {};
    std::vector<double> values(layout_.metricCount);
    for (int attempt = 0; attempt < kMaxSeqlockRetries; ++attempt) {
        uint64_t before = seqlockReadBegin(header_->sequence);
        for (uint32_t i = 0; i < layout_.metricCount; ++i)
            values[i] = loadPayload(metricValues_[i]);
        if (!seqlockReadValidate(header_->sequence, before)) {
            ++stats_.seqlockRetries;
            continue;
        }
        std::vector<std::pair<std::string, double>> out;
        out.reserve(layout_.metricCount);
        for (uint32_t i = 0; i < layout_.metricCount; ++i)
            out.emplace_back(metricNames_[i], values[i]);
        return out;
    }
    return {};
}

uint64_t
Reader::generation()
{
    std::lock_guard<std::mutex> guard(mutex_);
    return generation_;
}

Reader::Stats
Reader::stats()
{
    std::lock_guard<std::mutex> guard(mutex_);
    return stats_;
}

} // namespace telemetry
} // namespace mercury
