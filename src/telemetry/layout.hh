/**
 * @file
 * On-disk (well, in-shared-memory) layout of the Mercury telemetry
 * plane: one seqlock-versioned snapshot table that the solver's writer
 * republishes after every iteration and that any number of reader
 * processes map read-only.
 *
 * The segment is a single fixed-size region:
 *
 *   Header                          (seqlock, heartbeat, counts)
 *   SlotKey[slotCount]              (machine + node name directory)
 *   AliasEntry[aliasCount]          (component alias -> node name)
 *   double temperatures[slotCount]  (payload, seqlock-protected)
 *   double utilizations[slotCount]  (payload, seqlock-protected)
 *   MetricName[metricCount]         (metric name directory)
 *   double metricValues[metricCount] (payload, seqlock-protected)
 *
 * The metrics region mirrors the daemon's registry (flattened
 * name/value samples, frozen name set at segment creation) so local
 * health monitors read iteration rate and loss counters with two
 * loads instead of an RPC.
 *
 * The directory and alias table are written once at creation and never
 * change; `layoutHash` fingerprints them (plus the counts) so a reader
 * that cached slot indices can detect a writer restart with a
 * different topology in one load. Only the payload (plus the
 * iteration counter and emulated clock in the header) changes per
 * publish, under the seqlock.
 *
 * Staleness: the writer refreshes `heartbeatNanos` (CLOCK_MONOTONIC)
 * on every publish. A reader treats the segment as dead when the
 * heartbeat is older than kStalePeriods iteration periods (with a
 * small floor so sub-millisecond periods do not flap); dead segments
 * make readers fall back to the UDP transport.
 */

#ifndef MERCURY_TELEMETRY_LAYOUT_HH
#define MERCURY_TELEMETRY_LAYOUT_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace mercury {
namespace telemetry {

/** Segment magic ('M''T''L''1'). */
inline constexpr uint32_t kShmMagic = 0x314c544dU;

/** Layout version; bump on any incompatible change to this file.
 *  v2: appended the metrics region (MetricName table + values). */
inline constexpr uint32_t kShmVersion = 2;

/** Fixed name width, matching the 128-byte wire protocol's fields. */
inline constexpr size_t kNameWidth = 32;

/** Metric names are longer than wire names (histogram expansions like
 *  "..._seconds_count"); they get their own width. */
inline constexpr size_t kMetricNameWidth = 48;

/** Cap on published metrics; keeps segments bounded if a registry
 *  grows without limit. */
inline constexpr size_t kMaxShmMetrics = 256;

/** Heartbeats older than this many iteration periods are stale. */
inline constexpr double kStalePeriods = 4.0;

/** Floor on the staleness threshold [s] (tiny periods do not flap). */
inline constexpr double kStaleFloorSeconds = 0.05;

/** One directory entry: which machine/node a payload slot belongs to. */
struct SlotKey
{
    char machine[kNameWidth];
    char node[kNameWidth];
};

/** One alias-table entry (e.g. "disk" -> "disk_platters"). */
struct AliasEntry
{
    char alias[kNameWidth];
    char node[kNameWidth];
};

/** One metric-directory entry (flattened registry sample name). */
struct MetricName
{
    char name[kMetricNameWidth];
};

/**
 * Segment header. All multi-byte fields are written by one machine and
 * read on the same machine (shared memory never crosses hosts), so no
 * endianness conversion is needed.
 */
struct Header
{
    uint32_t magic = 0;
    uint32_t version = 0;
    uint64_t layoutHash = 0;   //!< FNV-1a over counts + directory + aliases
    uint32_t slotCount = 0;
    uint32_t aliasCount = 0;
    uint32_t machineCount = 0;

    /** Incremented every time a writer (re)creates this segment; folded
     *  into layoutHash so readers that survived a writer crash cannot
     *  keep serving pre-crash snapshots through cached slot handles —
     *  their stored hash mismatches, forcing a reconnect and a handle
     *  generation bump. */
    uint32_t bootGeneration = 0;
    uint64_t periodNanos = 0;  //!< iteration period (staleness unit)

    /** Seqlock word: odd while the writer is mid-publish. Accessed via
     *  std::atomic_ref. */
    uint64_t sequence = 0;

    /** CLOCK_MONOTONIC nanos of the last publish (atomic, outside the
     *  seqlock so liveness is checkable without retrying). */
    uint64_t heartbeatNanos = 0;

    /** @name Seqlock-protected scalar payload */
    /// @{
    uint64_t iteration = 0;
    double emulatedSeconds = 0.0;
    /// @}

    /** Entries in the metric name/value region (v2+); occupies half
     *  of the v1 header's trailing reserved word, so sizeof(Header)
     *  is unchanged. */
    uint32_t metricCount = 0;
    uint32_t reserved1 = 0;
};

static_assert(sizeof(Header) % alignof(double) == 0,
              "payload arrays must stay 8-byte aligned");
static_assert(sizeof(SlotKey) % alignof(double) == 0 &&
                  sizeof(AliasEntry) % alignof(double) == 0 &&
                  sizeof(MetricName) % alignof(double) == 0,
              "directory entries must preserve payload alignment");

/** Byte offsets of each region for given table sizes. */
struct Layout
{
    uint32_t slotCount = 0;
    uint32_t aliasCount = 0;
    uint32_t metricCount = 0;

    size_t slotsOffset() const { return sizeof(Header); }

    size_t
    aliasOffset() const
    {
        return slotsOffset() + sizeof(SlotKey) * slotCount;
    }

    size_t
    temperaturesOffset() const
    {
        return aliasOffset() + sizeof(AliasEntry) * aliasCount;
    }

    size_t
    utilizationsOffset() const
    {
        return temperaturesOffset() + sizeof(double) * slotCount;
    }

    size_t
    metricNamesOffset() const
    {
        return utilizationsOffset() + sizeof(double) * slotCount;
    }

    size_t
    metricValuesOffset() const
    {
        return metricNamesOffset() + sizeof(MetricName) * metricCount;
    }

    size_t
    totalBytes() const
    {
        return metricValuesOffset() + sizeof(double) * metricCount;
    }
};

/**
 * FNV-1a over the directory and alias tables (and the counts), the
 * fingerprint a reader compares before trusting cached slot indices.
 */
uint64_t layoutHash(const SlotKey *slots, uint32_t slot_count,
                    const AliasEntry *aliases, uint32_t alias_count);

/**
 * POSIX shm object names must be "/name" (one leading slash, no
 * others); prepend the slash when the caller left it off.
 */
std::string normalizeShmName(const std::string &name);

/** The default segment name for a solver daemon on @p port. */
std::string defaultShmName(uint16_t port);

/** CLOCK_MONOTONIC in nanoseconds (the heartbeat clock). */
uint64_t monotonicNanos();

} // namespace telemetry
} // namespace mercury

#endif // MERCURY_TELEMETRY_LAYOUT_HH
