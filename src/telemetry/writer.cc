#include "telemetry/writer.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "core/solver.hh"
#include "metrics/metrics.hh"
#include "telemetry/seqlock.hh"
#include "util/logging.hh"

namespace mercury {
namespace telemetry {

namespace {

void
copyName(char (&field)[kNameWidth], const std::string &value)
{
    std::memset(field, 0, kNameWidth);
    std::memcpy(field, value.data(), value.size());
}

} // namespace

Writer::Writer(std::string shm_name, core::Solver &solver,
               double period_seconds, const metrics::Registry *metrics)
    : name_(normalizeShmName(shm_name)), solver_(solver),
      metrics_(metrics)
{
    // Freeze the metric name table from the registry's current
    // contents; instruments must be registered before the writer is
    // built (the daemon does).
    if (metrics_) {
        for (const metrics::Sample &sample : metrics_->samples()) {
            if (sample.name.size() >= kMetricNameWidth) {
                warn("telemetry: metric name '", sample.name,
                     "' too long for the snapshot table; skipping");
                continue;
            }
            if (metricNames_.size() >= kMaxShmMetrics) {
                warn("telemetry: metric table full (", kMaxShmMetrics,
                     "); further metrics stay RPC-only");
                break;
            }
            metricIndex_.emplace(
                sample.name, static_cast<uint32_t>(metricNames_.size()));
            metricNames_.push_back(sample.name);
        }
    }

    // Build the directory. Names that do not fit the fixed-width wire
    // fields are skipped (those components stay reachable over UDP).
    std::vector<SlotKey> slots;
    std::vector<AliasEntry> aliases;
    uint32_t machine_count = 0;
    for (const std::string &machine_name : solver.machineNames()) {
        if (machine_name.size() >= kNameWidth) {
            warn("telemetry: machine name '", machine_name,
                 "' too long for the snapshot table; skipping");
            continue;
        }
        ++machine_count;
        const core::ThermalGraph &graph = solver.machine(machine_name);
        uint32_t first_slot = static_cast<uint32_t>(slots.size());
        for (core::NodeId id = 0; id < graph.nodeCount(); ++id) {
            const std::string &node_name = graph.nodeName(id);
            if (node_name.size() >= kNameWidth)
                continue;
            SlotKey key;
            copyName(key.machine, machine_name);
            copyName(key.node, node_name);
            slots.push_back(key);
            sources_.push_back({&graph, static_cast<uint32_t>(id)});
        }
        Group group;
        group.graph = &graph;
        group.firstSlot = first_slot;
        group.count = static_cast<uint32_t>(slots.size()) - first_slot;
        groups_.push_back(group);
    }
    for (const auto &[alias, node_name] : solver.aliases()) {
        if (alias.size() >= kNameWidth || node_name.size() >= kNameWidth)
            continue;
        AliasEntry entry;
        copyName(entry.alias, alias);
        copyName(entry.node, node_name);
        aliases.push_back(entry);
    }

    layout_.slotCount = static_cast<uint32_t>(slots.size());
    layout_.aliasCount = static_cast<uint32_t>(aliases.size());
    layout_.metricCount = static_cast<uint32_t>(metricNames_.size());
    size_t total = layout_.totalBytes();

    int fd = ::shm_open(name_.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd < 0) {
        warn("telemetry: shm_open('", name_, "') failed: ",
             std::strerror(errno), "; telemetry plane disabled");
        return;
    }
    if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
        warn("telemetry: ftruncate('", name_, "', ", total,
             ") failed: ", std::strerror(errno),
             "; telemetry plane disabled");
        ::close(fd);
        ::shm_unlink(name_.c_str());
        return;
    }
    void *base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                        MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
        warn("telemetry: mmap('", name_, "') failed: ",
             std::strerror(errno), "; telemetry plane disabled");
        ::shm_unlink(name_.c_str());
        return;
    }

    base_ = base;
    mappedBytes_ = total;
    auto *bytes = static_cast<uint8_t *>(base_);
    header_ = reinterpret_cast<Header *>(bytes);
    auto *slot_table =
        reinterpret_cast<SlotKey *>(bytes + layout_.slotsOffset());
    auto *alias_table =
        reinterpret_cast<AliasEntry *>(bytes + layout_.aliasOffset());
    temperatures_ =
        reinterpret_cast<double *>(bytes + layout_.temperaturesOffset());
    utilizations_ =
        reinterpret_cast<double *>(bytes + layout_.utilizationsOffset());
    auto *metric_table =
        reinterpret_cast<MetricName *>(bytes + layout_.metricNamesOffset());
    metricValues_ =
        reinterpret_cast<double *>(bytes + layout_.metricValuesOffset());

    // A kill -9 leaves the previous segment behind and shm_open above
    // reuses it, so the old header is still here: read its boot
    // counter before stomping anything. Garbage (non-Mercury segment)
    // only costs us a meaningless starting count.
    bootGeneration_ = header_->bootGeneration + 1;

    // A previous segment generation may still be mapped by readers:
    // stomp the magic and hold the seqlock odd while rebuilding, so no
    // reader trusts a half-initialized table.
    std::atomic_ref<uint64_t>(header_->sequence)
        .store(1, std::memory_order_relaxed);
    std::atomic_ref<uint32_t>(header_->magic)
        .store(0, std::memory_order_release);

    if (!slots.empty())
        std::memcpy(slot_table, slots.data(),
                    sizeof(SlotKey) * slots.size());
    if (!aliases.empty())
        std::memcpy(alias_table, aliases.data(),
                    sizeof(AliasEntry) * aliases.size());
    // Mix the boot generation into the published hash: an identical
    // topology after a crash-restart still reads as "different table",
    // invalidating every pre-crash cached slot handle.
    header_->layoutHash = layoutHash(slot_table, layout_.slotCount,
                                     alias_table, layout_.aliasCount) ^
                          (static_cast<uint64_t>(bootGeneration_) *
                           0x9e3779b97f4a7c15ull);
    header_->slotCount = layout_.slotCount;
    header_->aliasCount = layout_.aliasCount;
    header_->machineCount = machine_count;
    header_->bootGeneration = bootGeneration_;
    header_->metricCount = layout_.metricCount;
    header_->reserved1 = 0;
    for (size_t i = 0; i < metricNames_.size(); ++i) {
        std::memset(metric_table[i].name, 0, kMetricNameWidth);
        std::memcpy(metric_table[i].name, metricNames_[i].data(),
                    metricNames_[i].size());
    }
    double period = period_seconds > 0.0 ? period_seconds : 1.0;
    header_->periodNanos = static_cast<uint64_t>(period * 1e9);
    header_->version = kShmVersion;

    publish(); // first snapshot; leaves the seqlock even

    std::atomic_ref<uint32_t>(header_->magic)
        .store(kShmMagic, std::memory_order_release);
}

Writer::~Writer()
{
    if (hookInstalled_)
        solver_.setIterationHook(nullptr);
    if (base_) {
        // Readers may stay mapped to this (about-to-be-unlinked)
        // segment; killing the magic makes them fall back to UDP on
        // their next read instead of waiting out the staleness window.
        std::atomic_ref<uint32_t>(header_->magic)
            .store(0, std::memory_order_release);
        ::shm_unlink(name_.c_str());
        unmap();
    }
}

void
Writer::unmap()
{
    ::munmap(base_, mappedBytes_);
    base_ = nullptr;
    header_ = nullptr;
    temperatures_ = nullptr;
    utilizations_ = nullptr;
    metricValues_ = nullptr;
}

void
Writer::publish()
{
    if (!header_)
        return;
    std::lock_guard<std::mutex> guard(publishMutex_);
    uint64_t odd = seqlockWriteBegin(header_->sequence);
    storePayload(header_->iteration, solver_.iterations());
    storePayload(header_->emulatedSeconds, solver_.emulatedSeconds());
    // Per-machine change detection: a machine whose stateVersion is
    // unchanged since the last publish (frozen by the quiescence
    // engine, or simply untouched between publishes) already has its
    // exact values in the segment — skip its slot range. Readers see
    // no difference: the payload is identical either way.
    for (Group &group : groups_) {
        uint64_t stamp = group.graph->stateVersion();
        if (group.primed && stamp == group.lastStamp)
            continue;
        for (uint32_t k = 0; k < group.count; ++k) {
            size_t i = group.firstSlot + k;
            const Source &source = sources_[i];
            storePayload(temperatures_[i],
                         source.graph->temperature(source.node));
            storePayload(utilizations_[i],
                         source.graph->utilization(source.node));
        }
        group.lastStamp = stamp;
        group.primed = true;
    }
    // Refresh the metrics region: flatten the registry once and place
    // each known name's value by the index frozen at construction.
    // (Names registered after construction are simply absent here.)
    if (metrics_ && layout_.metricCount > 0) {
        for (const metrics::Sample &sample : metrics_->samples()) {
            auto it = metricIndex_.find(sample.name);
            if (it != metricIndex_.end())
                storePayload(metricValues_[it->second], sample.value);
        }
    }
    seqlockWriteEnd(header_->sequence, odd);
    std::atomic_ref<uint64_t>(header_->heartbeatNanos)
        .store(monotonicNanos(), std::memory_order_release);
}

void
Writer::refreshHeartbeat()
{
    if (!header_)
        return;
    std::atomic_ref<uint64_t>(header_->heartbeatNanos)
        .store(monotonicNanos(), std::memory_order_release);
}

void
Writer::installHook()
{
    if (!valid() || hookInstalled_)
        return;
    solver_.setIterationHook([this] { publish(); });
    hookInstalled_ = true;
}

} // namespace telemetry
} // namespace mercury
