#include "telemetry/layout.hh"

#include <time.h>

namespace mercury {
namespace telemetry {

namespace {

inline void
hashBytes(uint64_t &hash, const void *data, size_t length)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < length; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL; // FNV-1a prime
    }
}

} // namespace

uint64_t
layoutHash(const SlotKey *slots, uint32_t slot_count,
           const AliasEntry *aliases, uint32_t alias_count)
{
    uint64_t hash = 0xcbf29ce484222325ULL; // FNV-1a offset basis
    hashBytes(hash, &slot_count, sizeof(slot_count));
    hashBytes(hash, &alias_count, sizeof(alias_count));
    hashBytes(hash, slots, sizeof(SlotKey) * slot_count);
    hashBytes(hash, aliases, sizeof(AliasEntry) * alias_count);
    return hash;
}

std::string
normalizeShmName(const std::string &name)
{
    if (!name.empty() && name[0] == '/')
        return name;
    return "/" + name;
}

std::string
defaultShmName(uint16_t port)
{
    return "/mercury." + std::to_string(port);
}

uint64_t
monotonicNanos()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<uint64_t>(ts.tv_nsec);
}

} // namespace telemetry
} // namespace mercury
