/**
 * @file
 * Telemetry reader: maps a writer's shared-memory snapshot segment
 * read-only and answers sensor reads with a pair of seqlock-protected
 * loads — no sockets, no syscalls on the hot path beyond one
 * clock_gettime for the staleness check.
 *
 * The reader is deliberately paranoid, because its whole job is to be
 * a *silent* fast path under the UDP transport:
 *
 *  - a missing segment, a magic/version/layout mismatch, a torn read
 *    that never settles, or a heartbeat older than the staleness
 *    threshold all surface as nullopt, and the caller falls back to
 *    the network;
 *  - every failed read cheaply re-checks whether the segment has come
 *    back (reconnect attempts are throttled so a dead segment costs a
 *    couple of loads, not a shm_open storm);
 *  - slot handles carry the mapping generation, so indices cached by
 *    the sensor library are invalidated automatically when a restarted
 *    writer publishes a different topology.
 */

#ifndef MERCURY_TELEMETRY_READER_HH
#define MERCURY_TELEMETRY_READER_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "telemetry/layout.hh"

namespace mercury {
namespace telemetry {

/**
 * Read-only view of one telemetry segment.
 *
 * All public methods are thread-safe (an internal mutex serializes
 * them); cross-process consistency against the writer is the
 * seqlock's job.
 */
class Reader
{
  public:
    /** One consistent snapshot of a slot. */
    struct Sample
    {
        double temperature = 0.0;
        double utilization = 0.0;
        uint64_t iteration = 0;
        double emulatedSeconds = 0.0;
    };

    /** Resolved slot handle; valid while the mapping generation holds. */
    struct Slot
    {
        uint32_t index = 0;
        uint64_t generation = 0;
    };

    /** Observable reader health (tests and path logging). */
    struct Stats
    {
        uint64_t reads = 0;          //!< read() calls
        uint64_t hits = 0;           //!< consistent samples returned
        uint64_t seqlockRetries = 0; //!< raced publishes
        uint64_t staleFalls = 0;     //!< reads refused on old heartbeat
        uint64_t reconnects = 0;     //!< (re)connection attempts
    };

    /** Does not connect eagerly; the first use does. */
    explicit Reader(std::string shm_name);
    ~Reader();

    Reader(const Reader &) = delete;
    Reader &operator=(const Reader &) = delete;

    const std::string &name() const { return name_; }

    /**
     * Resolve machine.component to a slot, through the segment's alias
     * table. nullopt when the segment is unusable or has no such slot.
     */
    std::optional<Slot> resolve(const std::string &machine,
                                const std::string &component);

    /** Why a resolveDetailed() call produced no slot. */
    enum class ResolveStatus : uint8_t {
        Ok = 0,
        Unavailable = 1,      //!< no usable segment right now
        UnknownMachine = 2,   //!< machine not in the directory
        UnknownComponent = 3, //!< machine known, component/alias not
    };

    /** resolve() plus the reason on failure. */
    struct Resolution
    {
        ResolveStatus status = ResolveStatus::Unavailable;
        Slot slot;
    };

    /**
     * Like resolve(), but distinguishes "no segment" from "segment up,
     * no such machine/component" — the sharded request plane answers
     * sensor RPCs from the snapshot and must return the same
     * UnknownMachine/UnknownComponent statuses the solver would.
     */
    Resolution resolveDetailed(const std::string &machine,
                               const std::string &component);

    /** Read one slot; nullopt on any fast-path miss (see file docs). */
    std::optional<Sample> read(const Slot &slot);

    /** resolve + read in one call (convenience, uncached). */
    std::optional<Sample> read(const std::string &machine,
                               const std::string &component);

    /** True when a mapping exists and looks alive right now. */
    bool usable();

    /**
     * One consistent snapshot of the segment's metrics region
     * (name/value pairs, segment order). Empty when the segment is
     * unusable, carries no metrics, or the seqlock never settled.
     */
    std::vector<std::pair<std::string, double>> readMetrics();

    /** Bumps every time a (re)connect builds a new slot index. */
    uint64_t generation();

    Stats stats();

    /**
     * Test hook: replace the staleness clock (nanoseconds, monotonic).
     * Pass nullptr to restore the real clock. Not thread-safe against
     * in-flight reads; set it while readers are quiescent.
     */
    static void setClockForTest(std::function<uint64_t()> clock);

  private:
    uint64_t nowNanos() const;
    bool usableLocked();
    bool ensureUsableLocked();
    void tryConnectLocked();
    void unmapLocked();
    std::optional<Sample> readLocked(const Slot &slot);

    std::string name_;

    std::mutex mutex_;
    void *base_ = nullptr;
    size_t mappedBytes_ = 0;
    const Header *header_ = nullptr;
    const double *temperatures_ = nullptr;
    const double *utilizations_ = nullptr;
    const double *metricValues_ = nullptr;

    /** Metric name directory, copied out at connect time. */
    std::vector<std::string> metricNames_;
    Layout layout_;
    uint64_t layoutHash_ = 0;
    uint64_t staleThresholdNanos_ = 0;
    uint64_t generation_ = 0;
    uint64_t lastConnectAttemptNanos_ = 0;

    /** machine '\n' node -> slot index, rebuilt per generation. */
    std::unordered_map<std::string, uint32_t> slotIndex_;

    /** Machines present in the directory (resolveDetailed statuses). */
    std::unordered_set<std::string> machineSet_;

    /** alias -> node name, from the segment's alias table. */
    std::unordered_map<std::string, std::string> aliasMap_;

    Stats stats_;
};

} // namespace telemetry
} // namespace mercury

#endif // MERCURY_TELEMETRY_READER_HH
