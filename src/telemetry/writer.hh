/**
 * @file
 * Telemetry writer: owns the shared-memory snapshot segment for one
 * Solver and republishes the whole table (iteration counter, emulated
 * clock, every node temperature, every node utilization) under the
 * seqlock. publish() is a few linear array scans — cheap enough to run
 * after every solver iteration.
 *
 * The writer is the segment's owner: it creates (or truncates) the
 * object at construction and unlinks it at destruction. The directory
 * is fixed at construction from the solver's machines/nodes/aliases;
 * grow the topology first, then build the writer.
 */

#ifndef MERCURY_TELEMETRY_WRITER_HH
#define MERCURY_TELEMETRY_WRITER_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/layout.hh"

namespace mercury {

namespace core {
class Solver;
class ThermalGraph;
} // namespace core

namespace metrics {
class Registry;
} // namespace metrics

namespace telemetry {

/**
 * Publishes solver snapshots into a POSIX shared-memory segment.
 */
class Writer
{
  public:
    /**
     * Create (or replace) the segment @p shm_name and fill its
     * directory from @p solver. @p period_seconds is the expected
     * publish cadence, stored so readers can judge staleness; values
     * <= 0 fall back to 1 s.
     *
     * Construction never throws on shm failure: a writer that could
     * not create its segment is inert (valid() == false, publish() is
     * a no-op) so emulation continues without the fast path.
     *
     * @p metrics (borrowed, may be null) fills the segment's metrics
     * region: the flattened sample names present at construction form
     * the fixed name table, and every publish refreshes their values
     * under the seqlock. Instruments registered later are not
     * published (the name table is immutable, like the directory).
     */
    Writer(std::string shm_name, core::Solver &solver,
           double period_seconds,
           const metrics::Registry *metrics = nullptr);

    /** Unmaps and unlinks the segment (readers fall back to UDP). */
    ~Writer();

    Writer(const Writer &) = delete;
    Writer &operator=(const Writer &) = delete;

    bool valid() const { return header_ != nullptr; }
    const std::string &name() const { return name_; }
    uint32_t slotCount() const { return layout_.slotCount; }
    uint32_t metricCount() const { return layout_.metricCount; }

    /** This segment incarnation's boot counter (1 on a fresh object,
     *  previous + 1 when the name survived a crashed writer). */
    uint32_t bootGeneration() const { return bootGeneration_; }

    /**
     * Snapshot the solver into the segment and refresh the heartbeat.
     * Thread-safe (an internal mutex serializes concurrent publishers,
     * e.g. a daemon heartbeat racing an external stepping thread).
     */
    void publish();

    /**
     * Refresh the heartbeat without touching the payload. For serve
     * loops that want to signal "writer alive" while another thread
     * owns the solver (publish() would read solver state unlocked).
     */
    void refreshHeartbeat();

    /**
     * Install a Solver iteration hook that calls publish() after
     * every iterate(). The hook is removed by the destructor.
     */
    void installHook();

  private:
    void unmap();

    std::string name_;
    core::Solver &solver_;

    /** Resolved payload source for one slot. */
    struct Source
    {
        const core::ThermalGraph *graph;
        uint32_t node;
    };
    std::vector<Source> sources_;

    /**
     * One machine's contiguous slot range plus the graph stateVersion
     * last copied out. When a frozen (or otherwise untouched) machine
     * republishes, its version is unchanged and publish() skips the
     * per-node recopy — the segment already holds those values.
     */
    struct Group
    {
        const core::ThermalGraph *graph;
        uint32_t firstSlot;
        uint32_t count;
        uint64_t lastStamp = 0;
        bool primed = false;
    };
    std::vector<Group> groups_;

    Layout layout_;
    void *base_ = nullptr;
    size_t mappedBytes_ = 0;
    Header *header_ = nullptr;
    double *temperatures_ = nullptr;
    double *utilizations_ = nullptr;
    double *metricValues_ = nullptr;

    /** Registry mirrored into the metrics region (may be null). */
    const metrics::Registry *metrics_ = nullptr;

    /** Fixed name table and name -> region index, frozen at
     *  construction. */
    std::vector<std::string> metricNames_;
    std::unordered_map<std::string, uint32_t> metricIndex_;

    std::mutex publishMutex_;
    bool hookInstalled_ = false;
    uint32_t bootGeneration_ = 0;
};

} // namespace telemetry
} // namespace mercury

#endif // MERCURY_TELEMETRY_WRITER_HH
