#include "cfd/cfd2d.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/logging.hh"
#include "util/units.hh"

namespace mercury {
namespace cfd {

namespace {

/** Thermal conductivity of air [W/(m K)]. */
constexpr double kAirConductivity = 0.0262;

} // namespace

CfdCase
serverCase(double cpu_power, double disk_power, double ps_power)
{
    CfdCase geometry;
    geometry.width = 0.40;
    geometry.height = 0.15;
    geometry.depth = 0.15;
    geometry.cell = 0.005;
    geometry.inletTemperature = 21.6;
    geometry.inletVelocity = 0.5;

    // Disk near the inlet, upper band; power supply near the inlet,
    // lower band; CPU (with heat sink -> higher effective
    // conductivity) mid-case, downstream, in the middle channel
    // between the two so its air is mostly fresh inlet flow.
    geometry.blocks.push_back(
        {"disk", 0.06, 0.095, 0.14, 0.140, disk_power, 20.0});
    geometry.blocks.push_back(
        {"ps", 0.05, 0.012, 0.15, 0.062, ps_power, 15.0});
    geometry.blocks.push_back(
        {"cpu", 0.22, 0.063, 0.26, 0.093, cpu_power, 40.0});
    return geometry;
}

CfdSolver::CfdSolver(CfdCase geometry)
    : case_(std::move(geometry))
{
    if (case_.cell <= 0.0 || case_.width <= 0.0 || case_.height <= 0.0)
        MERCURY_PANIC("CfdSolver: bad geometry");
    nx_ = static_cast<int>(std::lround(case_.width / case_.cell));
    ny_ = static_cast<int>(std::lround(case_.height / case_.cell));
    if (nx_ < 4 || ny_ < 4)
        MERCURY_PANIC("CfdSolver: grid too coarse");
    discretize();
}

void
CfdSolver::discretize()
{
    const double dx = case_.cell;
    blockId_.assign(static_cast<size_t>(nx_ * ny_), -1);
    temp_.assign(static_cast<size_t>(nx_ * ny_), case_.inletTemperature);

    for (size_t b = 0; b < case_.blocks.size(); ++b) {
        const Block &block = case_.blocks[b];
        for (int j = 0; j < ny_; ++j) {
            for (int i = 0; i < nx_; ++i) {
                double xc = (i + 0.5) * dx;
                double yc = (j + 0.5) * dx;
                if (xc >= block.x0 && xc <= block.x1 && yc >= block.y0 &&
                    yc <= block.y1) {
                    if (blockId_[index(i, j)] != -1)
                        MERCURY_PANIC("CfdSolver: blocks overlap at cell ",
                                      i, ",", j);
                    blockId_[index(i, j)] = static_cast<int>(b);
                }
            }
        }
    }

    // Streamfunction psi on the (nx_+1) x (ny_+1) grid corners. On a
    // vertical grid line, psi rises by an equal share of the total
    // flux across every *open* cell edge (open = air on both adjacent
    // columns) and stays flat across blocked ones: u = dpsi/dy,
    // v = -dpsi/dx, which conserves mass identically and keeps solid
    // cells velocity-free.
    const double total_flux = case_.inletVelocity * case_.height; // m^2/s
    std::vector<double> psi(static_cast<size_t>((nx_ + 1) * (ny_ + 1)),
                            0.0);
    auto psi_at = [&](int i, int j) -> double & {
        return psi[static_cast<size_t>(j * (nx_ + 1) + i)];
    };
    auto edge_open = [&](int line, int j) {
        // The vertical edge on grid line `line` beside row j is open
        // when the cells on both sides are air (boundary lines use the
        // single adjacent column).
        bool left_air = line == 0 || blockIdAt(line - 1, j) == -1;
        bool right_air = line == nx_ || blockIdAt(line, j) == -1;
        return left_air && right_air;
    };
    for (int line = 0; line <= nx_; ++line) {
        int open = 0;
        for (int j = 0; j < ny_; ++j) {
            if (edge_open(line, j))
                ++open;
        }
        if (open == 0)
            MERCURY_PANIC("CfdSolver: a column is fully blocked");
        double share = total_flux / static_cast<double>(open);
        psi_at(line, 0) = 0.0;
        for (int j = 0; j < ny_; ++j) {
            psi_at(line, j + 1) =
                psi_at(line, j) + (edge_open(line, j) ? share : 0.0);
        }
    }

    // Face velocities from the streamfunction.
    uFace_.assign(static_cast<size_t>((nx_ + 1) * ny_), 0.0);
    vFace_.assign(static_cast<size_t>(nx_ * (ny_ + 1)), 0.0);
    for (int line = 0; line <= nx_; ++line) {
        for (int j = 0; j < ny_; ++j) {
            uFace_[static_cast<size_t>(j * (nx_ + 1) + line)] =
                (psi_at(line, j + 1) - psi_at(line, j)) / dx;
        }
    }
    for (int i = 0; i < nx_; ++i) {
        for (int j = 0; j <= ny_; ++j) {
            vFace_[static_cast<size_t>(j * nx_ + i)] =
                -(psi_at(i + 1, j) - psi_at(i, j)) / dx;
        }
    }
}

SolveStats
CfdSolver::solve(int max_iterations, double tolerance)
{
    const double dx = case_.cell;
    const double rho_c = units::kAirDensity * units::kAirSpecificHeat;
    // Plain Gauss-Seidel: the upwind advection matrix is only weakly
    // diagonally dominant and non-symmetric, so over-relaxation can
    // diverge. Sweeping along the flow direction converges quickly.
    const double omega = 1.0;

    auto conductivity = [&](int i, int j) {
        int id = blockIdAt(i, j);
        return id < 0 ? kAirConductivity : case_.blocks[id].conductivity;
    };
    auto harmonic = [](double a, double b) {
        return 2.0 * a * b / (a + b);
    };
    auto u_at = [&](int line, int j) {
        return uFace_[static_cast<size_t>(j * (nx_ + 1) + line)];
    };
    auto v_at = [&](int i, int j) {
        return vFace_[static_cast<size_t>(j * nx_ + i)];
    };

    // Per-cell volumetric source, expressed per unit depth [W/m].
    std::vector<double> source(static_cast<size_t>(nx_ * ny_), 0.0);
    std::vector<int> block_cells(case_.blocks.size(), 0);
    for (int j = 0; j < ny_; ++j) {
        for (int i = 0; i < nx_; ++i) {
            int id = blockIdAt(i, j);
            if (id >= 0)
                ++block_cells[id];
        }
    }
    for (int j = 0; j < ny_; ++j) {
        for (int i = 0; i < nx_; ++i) {
            int id = blockIdAt(i, j);
            if (id >= 0) {
                source[index(i, j)] =
                    case_.blocks[id].power / case_.depth /
                    static_cast<double>(block_cells[id]);
            }
        }
    }

    SolveStats stats;
    for (int iteration = 0; iteration < max_iterations; ++iteration) {
        double worst = 0.0;
        for (int i = 0; i < nx_; ++i) { // sweep along the flow
            for (int j = 0; j < ny_; ++j) {
                // Standard upwind finite volumes. Writing F_out for a
                // face's *outward* advective flux, the neighbour
                // coefficient is D + max(-F_out, 0) (heat arriving
                // with T_nb) and a_P collects D + max(F_out, 0) (heat
                // leaving with T_P). Face velocities u/v are positive
                // east/north, so F_out = -F on the west/south faces
                // and +F on the east/north faces.
                double kP = conductivity(i, j);
                double a_p = 0.0;
                double rhs = source[index(i, j)];

                // West face (u positive = inflow into P).
                double Fw = rho_c * u_at(i, j) * dx;
                if (i > 0) {
                    double D = harmonic(kP, conductivity(i - 1, j));
                    double a_nb = D + std::max(Fw, 0.0);
                    a_p += D + std::max(-Fw, 0.0);
                    rhs += a_nb * temp_[index(i - 1, j)];
                } else {
                    // Inlet: Dirichlet at T_in across a half cell.
                    double a_nb = 2.0 * kP + std::max(Fw, 0.0);
                    a_p += 2.0 * kP + std::max(-Fw, 0.0);
                    rhs += a_nb * case_.inletTemperature;
                }

                // East face (u positive = outflow from P).
                double Fe = rho_c * u_at(i + 1, j) * dx;
                if (i < nx_ - 1) {
                    double D = harmonic(kP, conductivity(i + 1, j));
                    double a_nb = D + std::max(-Fe, 0.0);
                    a_p += D + std::max(Fe, 0.0);
                    rhs += a_nb * temp_[index(i + 1, j)];
                } else {
                    // Outflow boundary: advection leaves with T_P.
                    a_p += std::max(Fe, 0.0);
                }

                // South face (v positive = inflow into P).
                double Fs = rho_c * v_at(i, j) * dx;
                if (j > 0) {
                    double D = harmonic(kP, conductivity(i, j - 1));
                    double a_nb = D + std::max(Fs, 0.0);
                    a_p += D + std::max(-Fs, 0.0);
                    rhs += a_nb * temp_[index(i, j - 1)];
                }

                // North face (v positive = outflow from P).
                double Fn = rho_c * v_at(i, j + 1) * dx;
                if (j < ny_ - 1) {
                    double D = harmonic(kP, conductivity(i, j + 1));
                    double a_nb = D + std::max(-Fn, 0.0);
                    a_p += D + std::max(Fn, 0.0);
                    rhs += a_nb * temp_[index(i, j + 1)];
                }

                if (a_p <= 0.0)
                    MERCURY_PANIC("CfdSolver: singular cell ", i, ",", j);
                double updated = rhs / a_p;
                double &cell = temp_[index(i, j)];
                double next = cell + omega * (updated - cell);
                worst = std::max(worst, std::abs(next - cell));
                cell = next;
            }
        }
        stats.iterations = iteration + 1;
        stats.residual = worst;
        if (worst < tolerance) {
            stats.converged = true;
            break;
        }
    }
    solved_ = true;
    return stats;
}

double
CfdSolver::temperature(int i, int j) const
{
    return temp_[index(i, j)];
}

bool
CfdSolver::isSolid(int i, int j) const
{
    return blockIdAt(i, j) >= 0;
}

const Block &
CfdSolver::findBlock(const std::string &name) const
{
    for (const Block &block : case_.blocks) {
        if (block.name == name)
            return block;
    }
    MERCURY_PANIC("CfdSolver: unknown block '", name, "'");
}

double
CfdSolver::blockMeanTemperature(const std::string &name) const
{
    const Block &block = findBlock(name);
    int id = static_cast<int>(&block - case_.blocks.data());
    double sum = 0.0;
    int count = 0;
    for (int j = 0; j < ny_; ++j) {
        for (int i = 0; i < nx_; ++i) {
            if (blockIdAt(i, j) == id) {
                sum += temp_[index(i, j)];
                ++count;
            }
        }
    }
    return count ? sum / count : case_.inletTemperature;
}

double
CfdSolver::blockMaxTemperature(const std::string &name) const
{
    const Block &block = findBlock(name);
    int id = static_cast<int>(&block - case_.blocks.data());
    double worst = case_.inletTemperature;
    for (int j = 0; j < ny_; ++j) {
        for (int i = 0; i < nx_; ++i) {
            if (blockIdAt(i, j) == id)
                worst = std::max(worst, temp_[index(i, j)]);
        }
    }
    return worst;
}

double
CfdSolver::airTemperatureNear(const std::string &name) const
{
    const Block &block = findBlock(name);
    int id = static_cast<int>(&block - case_.blocks.data());
    double sum = 0.0;
    int count = 0;
    auto visit = [&](int i, int j) {
        if (i < 0 || i >= nx_ || j < 0 || j >= ny_)
            return;
        if (blockIdAt(i, j) == -1) {
            sum += temp_[index(i, j)];
            ++count;
        }
    };
    for (int j = 0; j < ny_; ++j) {
        for (int i = 0; i < nx_; ++i) {
            if (blockIdAt(i, j) != id)
                continue;
            visit(i - 1, j);
            visit(i + 1, j);
            visit(i, j - 1);
            visit(i, j + 1);
        }
    }
    return count ? sum / count : case_.inletTemperature;
}

double
CfdSolver::effectiveK(const std::string &name) const
{
    const Block &block = findBlock(name);
    double delta =
        blockMeanTemperature(name) - airTemperatureNear(name);
    if (delta <= 1e-9)
        return 0.0;
    return block.power / delta;
}

double
CfdSolver::heatCarryingFraction(const std::string &name) const
{
    const Block &block = findBlock(name);
    double rise = airTemperatureNear(name) - case_.inletTemperature;
    if (rise <= 1e-9)
        return 1.0;
    double fraction = block.power /
                      (massFlow() * units::kAirSpecificHeat * rise);
    return std::clamp(fraction, 0.01, 1.0);
}

double
CfdSolver::outletMeanTemperature() const
{
    // Flux-weighted mean across the east boundary.
    double flux_sum = 0.0;
    double weighted = 0.0;
    for (int j = 0; j < ny_; ++j) {
        double u = uFace_[static_cast<size_t>(j * (nx_ + 1) + nx_)];
        if (u <= 0.0)
            continue;
        flux_sum += u;
        weighted += u * temp_[index(nx_ - 1, j)];
    }
    return flux_sum > 0.0 ? weighted / flux_sum : case_.inletTemperature;
}

double
CfdSolver::massFlow() const
{
    return units::kAirDensity * case_.inletVelocity * case_.height *
           case_.depth;
}

void
CfdSolver::writeFieldCsv(std::ostream &out) const
{
    out << "x_m,y_m,temperature_C,solid\n";
    char buf[96];
    for (int j = 0; j < ny_; ++j) {
        for (int i = 0; i < nx_; ++i) {
            std::snprintf(buf, sizeof(buf), "%.4f,%.4f,%.4f,%d\n",
                          (i + 0.5) * case_.cell, (j + 0.5) * case_.cell,
                          temp_[index(i, j)], isSolid(i, j) ? 1 : 0);
            out << buf;
        }
    }
}

} // namespace cfd
} // namespace mercury
