/**
 * @file
 * The commercial-CFD substitute for Section 3.2's validation.
 *
 * The paper models "a 2D description of a server case, with a CPU, a
 * disk, and a power supply" in Fluent, lets Fluent compute the
 * heat-transfer properties of the material-to-air boundaries, feeds
 * those constants into Mercury, and compares steady-state temperatures
 * for 14 fixed power combinations.
 *
 * This module provides the same capability from scratch: a 2-D
 * finite-volume steady solver for advection-diffusion of heat,
 *
 *     div(k grad T) - rho c u . grad T + q = 0,
 *
 * on a uniform grid over a server-case cross-section containing solid
 * blocks with volumetric heat sources. The air velocity field is
 * derived from a streamfunction that distributes the inlet flux across
 * the open cells of every column, which is mass-conserving by
 * construction; advection is first-order upwind; the linear system is
 * solved by SOR sweeps ordered along the flow.
 */

#ifndef MERCURY_CFD_CFD2D_HH
#define MERCURY_CFD_CFD2D_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace mercury {
namespace cfd {

/** A rectangular solid block with a uniform volumetric heat source. */
struct Block
{
    std::string name;
    double x0 = 0.0, y0 = 0.0; //!< lower-left corner [m]
    double x1 = 0.0, y1 = 0.0; //!< upper-right corner [m]
    double power = 0.0;        //!< total dissipation [W]
    double conductivity = 15.0; //!< effective solid conductivity [W/mK]
};

/** Geometry and boundary conditions of one case. */
struct CfdCase
{
    double width = 0.40;  //!< x extent [m] (flow direction)
    double height = 0.15; //!< y extent [m]
    double depth = 0.15;  //!< assumed case depth [m] for W -> W/m
    double cell = 0.005;  //!< grid spacing [m]
    double inletTemperature = 21.6; //!< degC at the left boundary
    double inletVelocity = 0.5;     //!< uniform inlet speed [m/s]
    std::vector<Block> blocks;
};

/**
 * The 2-D server case of Section 3.2: disk near the inlet top, power
 * supply near the inlet bottom, CPU mid-case downstream.
 */
CfdCase serverCase(double cpu_power, double disk_power, double ps_power);

/** Convergence report. */
struct SolveStats
{
    int iterations = 0;
    double residual = 0.0; //!< max |dT| of the final sweep [degC]
    bool converged = false;
};

/**
 * Steady-state solver over one CfdCase.
 */
class CfdSolver
{
  public:
    explicit CfdSolver(CfdCase geometry);

    /** Run SOR sweeps until the update drops below @p tolerance. */
    SolveStats solve(int max_iterations = 40000, double tolerance = 1e-6);

    /** @name Field access */
    /// @{
    int nx() const { return nx_; }
    int ny() const { return ny_; }
    double temperature(int i, int j) const;
    bool isSolid(int i, int j) const;
    /// @}

    /** @name Block summaries (inputs to Mercury calibration) */
    /// @{
    double blockMeanTemperature(const std::string &name) const;
    double blockMaxTemperature(const std::string &name) const;

    /** Mean temperature of the air cells adjacent to the block. */
    double airTemperatureNear(const std::string &name) const;

    /**
     * Effective boundary heat-transfer constant [W/K]:
     * power / (T_block_mean - T_adjacent_air). This is what the paper
     * "entered as input" into Mercury.
     */
    double effectiveK(const std::string &name) const;

    /**
     * Fraction of the inlet mass flow that carries the block's heat:
     * power / (mdot_total c (T_near - T_inlet)), clamped to (0, 1].
     * Used to label Mercury's air-flow edges for the 2-D case.
     */
    double heatCarryingFraction(const std::string &name) const;
    /// @}

    /** Flux-weighted outlet air temperature [degC]. */
    double outletMeanTemperature() const;

    /** Total inlet mass flow per the 2-D assumptions [kg/s]. */
    double massFlow() const;

    /**
     * Dump the temperature field as CSV (x_m, y_m, temperature_C,
     * solid) for external plotting of the Section 3.2 case.
     */
    void writeFieldCsv(std::ostream &out) const;

  private:
    int index(int i, int j) const { return j * nx_ + i; }
    int blockIdAt(int i, int j) const { return blockId_[index(i, j)]; }
    const Block &findBlock(const std::string &name) const;

    /** Build blockId_, velocities and coefficients. */
    void discretize();

    CfdCase case_;
    int nx_ = 0;
    int ny_ = 0;
    std::vector<int> blockId_;  //!< -1 = air, else index into blocks
    std::vector<double> temp_;  //!< cell temperatures
    std::vector<double> uFace_; //!< x velocity at west face of cell
    std::vector<double> vFace_; //!< y velocity at south face of cell
    bool solved_ = false;
};

} // namespace cfd
} // namespace mercury

#endif // MERCURY_CFD_CFD2D_HH
