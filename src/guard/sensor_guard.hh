/**
 * @file
 * SensorGuard: the sensor trust layer.
 *
 * Mercury and Freon act on whatever the sensor plane reports — a
 * stuck-at, spiking, drifting, or silent sensor can wedge a machine at
 * low capacity or let it sail past the emergency threshold. This
 * subsystem puts a trust boundary between raw readings and every
 * consumer:
 *
 *  - each incoming sample is *classified* against range limits, a
 *    rate-of-change bound, stuck-at detection (windowed spread while
 *    the model says the value should be moving), and a cross-check
 *    against a model-predicted value (Reitz et al.'s model-based
 *    sensor validation);
 *  - a per-stream health state machine (HEALTHY -> SUSPECT ->
 *    QUARANTINED -> RECOVERING) turns isolated anomalies into a
 *    debounced trust verdict with configurable hysteresis;
 *  - implausible or missing samples are *substituted* — hold the last
 *    good value with decay toward the model estimate, or use the model
 *    estimate outright — and every consumer sees both the substituted
 *    value and its trust tag.
 *
 * The model prediction is learned online per stream: when the caller
 * supplies a reference driver (the component utilization for a
 * temperature stream), the guard fits value = alpha + beta * driver
 * with exponential forgetting on trusted samples only; without a
 * driver it falls back to an exponentially-weighted moving average.
 * Stuck-at detection only fires when the *prediction* moved while the
 * reading did not, so a genuinely steady sensor is never quarantined.
 *
 * Thread contract: filter(), report(), and the accessors must be
 * externally serialized (in every deployment the caller is the solver
 * or DES thread; `fiddle guard` queries are queued onto that thread).
 * The exported metrics callbacks read plain counters that are only
 * written by that same thread.
 */

#ifndef MERCURY_GUARD_SENSOR_GUARD_HH
#define MERCURY_GUARD_SENSOR_GUARD_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "metrics/metrics.hh"

namespace mercury {
namespace guard {

/** Per-stream trust verdict. */
enum class HealthState : uint8_t {
    Healthy,     //!< samples pass; raw values flow through
    Suspect,     //!< recent anomalies; substituting, not yet condemned
    Quarantined, //!< stream condemned; consumers get substitutes only
    Recovering,  //!< raw looks sane again; probation before trust
};

/** Why the last sample was (or was not) accepted. */
enum class Classification : uint8_t {
    Ok,              //!< plausible reading
    OutOfRange,      //!< outside [minValue, maxValue]
    RateSpike,       //!< moved faster than maxRatePerSecond
    StuckAt,         //!< frozen while the model moved
    ModelDivergence, //!< too far from the model prediction
    Dropout,         //!< no reading arrived at all
};

const char *healthStateName(HealthState state);
const char *classificationName(Classification c);

/** How a quarantined stream's value is synthesized. */
enum class SubstitutionPolicy : uint8_t {
    /** Hold the last trusted value, decaying toward the model estimate
     *  with time constant holdDecaySeconds. */
    HoldLastDecay,
    /** Use the model estimate directly. */
    ModelEstimate,
};

/** All guard tunables (one profile per guard instance). */
struct GuardConfig
{
    /** @name Classification thresholds */
    /// @{
    double minValue = -20.0;  //!< plausible floor (degC profile)
    double maxValue = 150.0;  //!< plausible ceiling
    double maxRatePerSecond = 2.0; //!< |dv/dt| bound; <= 0 disables
    /** Model cross-check: |raw - predicted| beyond this is an anomaly
     *  (<= 0 disables). Only enforced once the stream's model has seen
     *  modelWarmupSamples trusted samples. */
    double modelToleranceValue = 10.0;
    int modelWarmupSamples = 5;
    /** Stuck-at: over the last stuckWindow samples the raw spread is
     *  <= stuckEpsilon while the predicted spread is >=
     *  stuckDriverDelta. */
    int stuckWindow = 5;
    double stuckEpsilon = 1e-6;
    double stuckDriverDelta = 0.5;
    /// @}

    /** @name State-machine hysteresis */
    /// @{
    /** Anomalies while Suspect before the stream is condemned (the
     *  first anomaly makes it Suspect; this many total condemn it). */
    int quarantineAnomalies = 3;
    /** Consecutive Ok samples that clear a Suspect back to Healthy. */
    int suspectClearSamples = 5;
    /** Minimum time served in Quarantined before probation starts. */
    double quarantineMinSeconds = 120.0;
    /** Consecutive sane raw samples (after the minimum) that move a
     *  Quarantined stream to Recovering. */
    int recoveryProbationSamples = 3;
    /** Consecutive sane raw samples in Recovering before trust is
     *  restored. */
    int recoveryCleanSamples = 3;
    /// @}

    /** @name Substitution */
    /// @{
    SubstitutionPolicy substitution = SubstitutionPolicy::HoldLastDecay;
    /** HoldLastDecay time constant toward the model estimate [s]. */
    double holdDecaySeconds = 300.0;
    /// @}

    /** @name Online model */
    /// @{
    /** Forgetting factor per trusted sample for the alpha/beta fit and
     *  the EWMA fallback (closer to 1 = longer memory). */
    double modelForgetting = 0.98;
    /// @}

    /** A permissive profile for utilization streams in [0, 1]. */
    static GuardConfig utilizationProfile();
};

/** What the guard hands back for one sample. */
struct TrustedSample
{
    /** The value consumers should act on (raw or substituted). */
    double value = 0.0;
    /** True only when the stream is Healthy and this sample passed. */
    bool trusted = false;
    /** True when `value` is synthesized rather than the raw reading. */
    bool substituted = false;
    /** False only on a dropout with no history to substitute from. */
    bool hasValue = false;
    HealthState state = HealthState::Healthy;
    Classification reason = Classification::Ok;
};

/**
 * The trust layer itself: a keyed collection of per-stream validators.
 */
class SensorGuard
{
  public:
    explicit SensorGuard(GuardConfig config = {},
                         std::string metricsPrefix = "guard");

    /**
     * Validate one sample of @p stream taken at @p now.
     *
     * @param raw the reading; nullopt = dropout
     * @param driver optional exogenous model input (e.g. utilization
     *        for a temperature stream); enables the linear fit and
     *        stuck-at detection
     * @param predicted optional external model prediction; overrides
     *        the internal estimate when present
     */
    TrustedSample filter(const std::string &stream, double now,
                         std::optional<double> raw,
                         std::optional<double> driver = std::nullopt,
                         std::optional<double> predicted = std::nullopt);

    const GuardConfig &config() const { return config_; }

    /** @name Introspection (fiddle guard, tests) */
    /// @{
    /** Health of one stream; Healthy for streams never seen. */
    HealthState state(const std::string &stream) const;

    /** Last classification of one stream. */
    Classification lastReason(const std::string &stream) const;

    /** Seconds the stream has spent in its current state (relative to
     *  the newest timestamp the guard has seen). */
    double timeInState(const std::string &stream) const;

    /** Time a stream first entered Quarantined; negative if never. */
    double quarantinedAt(const std::string &stream) const;

    /** One line per stream: state, reason, substitution, ages. */
    std::string report() const;

    /** Compact one-line fleet summary. */
    std::string summaryLine() const;

    /** Per-stream snapshot for results/tests. */
    struct StreamStatus
    {
        std::string stream;
        HealthState state = HealthState::Healthy;
        Classification lastReason = Classification::Ok;
        double timeInState = 0.0;
        double quarantinedAt = -1.0;
        uint64_t anomalies = 0;
        uint64_t substitutions = 0;
        double lastValue = 0.0;
    };
    std::vector<StreamStatus> streamStatuses() const;

    uint64_t samplesTotal() const { return samples_; }
    uint64_t anomaliesTotal() const { return anomalies_; }
    uint64_t substitutionsTotal() const { return substitutions_; }
    uint64_t quarantinesTotal() const { return quarantines_; }
    uint64_t recoveriesTotal() const { return recoveries_; }
    size_t streamCount() const { return streams_.size(); }
    size_t quarantinedCount() const;
    /// @}

  private:
    struct Stream
    {
        HealthState state = HealthState::Healthy;
        Classification lastReason = Classification::Ok;
        double stateSince = 0.0;
        double quarantinedAt = -1.0;

        bool haveLast = false;
        double lastRaw = 0.0;
        double lastRawTime = 0.0;
        double lastGood = 0.0;     //!< last trusted value
        double lastGoodTime = 0.0;
        double lastEffective = 0.0; //!< last value handed out
        bool haveEffective = false;

        /** Rolling raw/predicted windows for stuck-at detection. */
        std::deque<double> rawWindow;
        std::deque<double> predWindow;

        /** Online model: value ~ alpha + beta * driver (recursive
         *  least squares with forgetting), or EWMA without a driver. */
        int modelSamples = 0;
        double meanV = 0.0, meanD = 0.0, covVD = 0.0, varD = 0.0;
        double ewma = 0.0;

        int anomalyStreak = 0; //!< anomalies in the current episode
        int cleanStreak = 0;   //!< consecutive Ok classifications

        uint64_t anomalies = 0;
        uint64_t substitutions = 0;
    };

    /** Internal model estimate; nullopt before warm-up. */
    std::optional<double> predict(const Stream &s,
                                  std::optional<double> driver) const;

    /** Fold a trusted sample into the stream's model. */
    void learn(Stream &s, double value, std::optional<double> driver);

    Classification classify(const Stream &s, double now, double raw,
                            std::optional<double> predicted) const;

    void enterState(Stream &s, HealthState next, double now);

    /** Substituted value per the configured policy. */
    double substitute(const Stream &s, double now,
                      std::optional<double> predicted) const;

    GuardConfig config_;
    std::map<std::string, Stream> streams_;
    double lastNow_ = 0.0;

    uint64_t samples_ = 0;
    uint64_t anomalies_ = 0;
    uint64_t substitutions_ = 0;
    uint64_t quarantines_ = 0;
    uint64_t recoveries_ = 0;
    uint64_t dropouts_ = 0;

    metrics::CallbackGuard metricsGuard_;
};

} // namespace guard
} // namespace mercury

#endif // MERCURY_GUARD_SENSOR_GUARD_HH
