#include "guard/sensor_guard.hh"

#include <algorithm>
#include <cmath>

#include "util/strings.hh"

namespace mercury {
namespace guard {

const char *
healthStateName(HealthState state)
{
    switch (state) {
      case HealthState::Healthy: return "HEALTHY";
      case HealthState::Suspect: return "SUSPECT";
      case HealthState::Quarantined: return "QUARANTINED";
      case HealthState::Recovering: return "RECOVERING";
    }
    return "?";
}

const char *
classificationName(Classification c)
{
    switch (c) {
      case Classification::Ok: return "ok";
      case Classification::OutOfRange: return "out-of-range";
      case Classification::RateSpike: return "rate-spike";
      case Classification::StuckAt: return "stuck-at";
      case Classification::ModelDivergence: return "model-divergence";
      case Classification::Dropout: return "dropout";
    }
    return "?";
}

GuardConfig
GuardConfig::utilizationProfile()
{
    GuardConfig config;
    config.minValue = 0.0;
    config.maxValue = 1.0;
    config.maxRatePerSecond = 0.0;   // utilization may step freely
    config.modelToleranceValue = 0.0; // no physical model for load
    config.stuckDriverDelta = 0.05;
    config.stuckEpsilon = 1e-9;
    return config;
}

SensorGuard::SensorGuard(GuardConfig config, std::string metricsPrefix)
    : config_(config)
{
    metrics::Registry &registry = metrics::Registry::global();
    const std::string &p = metricsPrefix;
    metricsGuard_.add(registry, p + "_samples_total",
                      "sensor samples classified by the guard",
                      [this] { return double(samples_); });
    metricsGuard_.add(registry, p + "_anomalies_total",
                      "samples classified as implausible",
                      [this] { return double(anomalies_); });
    metricsGuard_.add(registry, p + "_dropouts_total",
                      "samples that never arrived",
                      [this] { return double(dropouts_); });
    metricsGuard_.add(registry, p + "_substitutions_total",
                      "samples replaced by hold-last/model estimates",
                      [this] { return double(substitutions_); });
    metricsGuard_.add(registry, p + "_quarantines_total",
                      "stream transitions into QUARANTINED",
                      [this] { return double(quarantines_); });
    metricsGuard_.add(registry, p + "_recoveries_total",
                      "streams whose trust was restored",
                      [this] { return double(recoveries_); });
    metricsGuard_.add(registry, p + "_streams",
                      "sensor streams tracked by the guard",
                      [this] { return double(streams_.size()); });
    metricsGuard_.add(registry, p + "_streams_quarantined",
                      "streams currently QUARANTINED",
                      [this] { return double(quarantinedCount()); });
}

std::optional<double>
SensorGuard::predict(const Stream &s, std::optional<double> driver) const
{
    if (s.modelSamples == 0)
        return std::nullopt;
    if (driver && s.varD > 1e-4) {
        // Regress on the driver only once it has genuinely moved: a
        // near-constant driver carries no signal, and dividing by its
        // vanishing variance amplifies numerical noise into absurd
        // slopes (a 600 C "prediction" from an idle machine). The
        // plausibility clamp bounds the extrapolation even then.
        double beta = s.covVD / s.varD;
        return std::clamp(s.meanV + beta * (*driver - s.meanD),
                          config_.minValue, config_.maxValue);
    }
    return s.ewma;
}

void
SensorGuard::learn(Stream &s, double value, std::optional<double> driver)
{
    double a = 1.0 - config_.modelForgetting;
    if (s.modelSamples == 0) {
        s.meanV = value;
        s.ewma = value;
        s.meanD = driver.value_or(0.0);
        s.covVD = 0.0;
        s.varD = 0.0;
    } else {
        double dv = value - s.meanV;
        s.meanV += a * dv;
        s.ewma += a * (value - s.ewma);
        if (driver) {
            double dd = *driver - s.meanD;
            s.meanD += a * dd;
            s.covVD = (1.0 - a) * (s.covVD + a * dv * dd);
            s.varD = (1.0 - a) * (s.varD + a * dd * dd);
        }
    }
    ++s.modelSamples;
}

Classification
SensorGuard::classify(const Stream &s, double now, double raw,
                      std::optional<double> predicted) const
{
    if (raw < config_.minValue || raw > config_.maxValue)
        return Classification::OutOfRange;
    if (config_.maxRatePerSecond > 0.0 && s.haveLast) {
        double dt = std::max(now - s.lastRawTime, 1e-9);
        if (std::abs(raw - s.lastRaw) / dt > config_.maxRatePerSecond)
            return Classification::RateSpike;
    }
    // Stuck-at: the reading froze while the model expected movement.
    if (config_.stuckWindow > 1 &&
        s.rawWindow.size() >= size_t(config_.stuckWindow) &&
        s.predWindow.size() >= size_t(config_.stuckWindow)) {
        auto spread = [](const std::deque<double> &w) {
            auto [lo, hi] = std::minmax_element(w.begin(), w.end());
            return *hi - *lo;
        };
        double raw_spread =
            std::max(spread(s.rawWindow), std::abs(raw - s.rawWindow.back()));
        if (raw_spread <= config_.stuckEpsilon &&
            spread(s.predWindow) >= config_.stuckDriverDelta) {
            return Classification::StuckAt;
        }
    }
    if (config_.modelToleranceValue > 0.0 && predicted &&
        s.modelSamples >= config_.modelWarmupSamples &&
        std::abs(raw - *predicted) > config_.modelToleranceValue) {
        return Classification::ModelDivergence;
    }
    return Classification::Ok;
}

void
SensorGuard::enterState(Stream &s, HealthState next, double now)
{
    if (s.state == next)
        return;
    s.state = next;
    s.stateSince = now;
    s.anomalyStreak = 0;
    s.cleanStreak = 0;
    if (next == HealthState::Quarantined) {
        ++quarantines_;
        if (s.quarantinedAt < 0.0)
            s.quarantinedAt = now;
    }
    if (next == HealthState::Healthy && s.quarantinedAt >= 0.0)
        ++recoveries_;
}

double
SensorGuard::substitute(const Stream &s, double now,
                        std::optional<double> predicted) const
{
    if (config_.substitution == SubstitutionPolicy::ModelEstimate &&
        predicted) {
        return *predicted;
    }
    if (!s.haveEffective && predicted)
        return *predicted;
    double held = s.haveEffective ? s.lastGood : 0.0;
    if (predicted && config_.holdDecaySeconds > 0.0) {
        // Hold-last with decay: relax toward the model estimate so a
        // long quarantine does not pin a stale reading forever.
        double age = std::max(now - s.lastGoodTime, 0.0);
        double w = std::exp(-age / config_.holdDecaySeconds);
        return *predicted + (held - *predicted) * w;
    }
    return held;
}

TrustedSample
SensorGuard::filter(const std::string &stream, double now,
                    std::optional<double> raw,
                    std::optional<double> driver,
                    std::optional<double> predicted)
{
    ++samples_;
    lastNow_ = std::max(lastNow_, now);
    Stream &s = streams_[stream];
    if (!predicted)
        predicted = predict(s, driver);

    Classification c = raw ? classify(s, now, *raw, predicted)
                           : Classification::Dropout;
    bool anomaly = c != Classification::Ok;
    s.lastReason = c;
    if (!raw)
        ++dropouts_;
    if (anomaly) {
        ++anomalies_;
        ++s.anomalies;
    }

    // Window upkeep (raw samples only; substituted values would make
    // the stream look alive).
    if (raw) {
        s.rawWindow.push_back(*raw);
        if (predicted)
            s.predWindow.push_back(*predicted);
        while (s.rawWindow.size() > size_t(std::max(config_.stuckWindow, 1)))
            s.rawWindow.pop_front();
        while (s.predWindow.size() >
               size_t(std::max(config_.stuckWindow, 1)))
            s.predWindow.pop_front();
        s.haveLast = true;
        s.lastRaw = *raw;
        s.lastRawTime = now;
    }

    // --- State machine. ---
    switch (s.state) {
      case HealthState::Healthy:
        if (anomaly) {
            enterState(s, HealthState::Suspect, now);
            s.anomalyStreak = 1;
        }
        break;
      case HealthState::Suspect:
        if (anomaly) {
            if (++s.anomalyStreak >= config_.quarantineAnomalies)
                enterState(s, HealthState::Quarantined, now);
            s.cleanStreak = 0;
        } else if (++s.cleanStreak >= config_.suspectClearSamples) {
            enterState(s, HealthState::Healthy, now);
        }
        break;
      case HealthState::Quarantined:
        if (!anomaly &&
            now - s.stateSince >= config_.quarantineMinSeconds) {
            if (++s.cleanStreak >= config_.recoveryProbationSamples)
                enterState(s, HealthState::Recovering, now);
        } else if (anomaly) {
            s.cleanStreak = 0;
        }
        break;
      case HealthState::Recovering:
        if (anomaly) {
            enterState(s, HealthState::Quarantined, now);
        } else if (++s.cleanStreak >= config_.recoveryCleanSamples) {
            enterState(s, HealthState::Healthy, now);
        }
        break;
    }

    // --- Verdict and value. ---
    TrustedSample out;
    out.state = s.state;
    out.reason = c;
    bool pass_raw = raw && !anomaly &&
                    (s.state == HealthState::Healthy ||
                     s.state == HealthState::Suspect ||
                     s.state == HealthState::Recovering);
    if (pass_raw) {
        out.value = *raw;
        out.hasValue = true;
        out.trusted = s.state == HealthState::Healthy;
        learn(s, *raw, driver);
        s.lastGood = *raw;
        s.lastGoodTime = now;
        s.haveEffective = true;
        s.lastEffective = *raw;
    } else {
        // Implausible or missing: substitute per policy.
        if (s.haveEffective || predicted ||
            (raw && c == Classification::OutOfRange)) {
            double value;
            if (!s.haveEffective && !predicted) {
                value = std::clamp(*raw, config_.minValue,
                                   config_.maxValue);
            } else {
                value = substitute(s, now, predicted);
            }
            out.value = value;
            out.hasValue = true;
            out.substituted = true;
            ++substitutions_;
            ++s.substitutions;
            s.lastEffective = value;
        }
    }
    return out;
}

HealthState
SensorGuard::state(const std::string &stream) const
{
    auto it = streams_.find(stream);
    return it == streams_.end() ? HealthState::Healthy : it->second.state;
}

Classification
SensorGuard::lastReason(const std::string &stream) const
{
    auto it = streams_.find(stream);
    return it == streams_.end() ? Classification::Ok
                                : it->second.lastReason;
}

double
SensorGuard::timeInState(const std::string &stream) const
{
    auto it = streams_.find(stream);
    if (it == streams_.end())
        return 0.0;
    return std::max(lastNow_ - it->second.stateSince, 0.0);
}

double
SensorGuard::quarantinedAt(const std::string &stream) const
{
    auto it = streams_.find(stream);
    return it == streams_.end() ? -1.0 : it->second.quarantinedAt;
}

size_t
SensorGuard::quarantinedCount() const
{
    size_t n = 0;
    for (const auto &[name, s] : streams_) {
        if (s.state == HealthState::Quarantined)
            ++n;
    }
    return n;
}

std::vector<SensorGuard::StreamStatus>
SensorGuard::streamStatuses() const
{
    std::vector<StreamStatus> out;
    out.reserve(streams_.size());
    for (const auto &[name, s] : streams_) {
        StreamStatus status;
        status.stream = name;
        status.state = s.state;
        status.lastReason = s.lastReason;
        status.timeInState = std::max(lastNow_ - s.stateSince, 0.0);
        status.quarantinedAt = s.quarantinedAt;
        status.anomalies = s.anomalies;
        status.substitutions = s.substitutions;
        status.lastValue = s.lastEffective;
        out.push_back(status);
    }
    return out;
}

std::string
SensorGuard::summaryLine() const
{
    size_t healthy = 0, suspect = 0, quarantined = 0, recovering = 0;
    for (const auto &[name, s] : streams_) {
        switch (s.state) {
          case HealthState::Healthy: ++healthy; break;
          case HealthState::Suspect: ++suspect; break;
          case HealthState::Quarantined: ++quarantined; break;
          case HealthState::Recovering: ++recovering; break;
        }
    }
    return format("guard streams=%zu healthy=%zu suspect=%zu quar=%zu "
                  "rec=%zu anom=%llu subst=%llu",
                  streams_.size(), healthy, suspect, quarantined,
                  recovering,
                  static_cast<unsigned long long>(anomalies_),
                  static_cast<unsigned long long>(substitutions_));
}

std::string
SensorGuard::report() const
{
    std::string text = summaryLine() + "\n";
    const char *policy =
        config_.substitution == SubstitutionPolicy::HoldLastDecay
            ? "hold-decay"
            : "model";
    for (const auto &[name, s] : streams_) {
        text += format(
            "%s state=%s reason=%s sub=%s t_in_state=%.0fs last=%.2f "
            "anom=%llu subst=%llu\n",
            name.c_str(), healthStateName(s.state),
            classificationName(s.lastReason), policy,
            std::max(lastNow_ - s.stateSince, 0.0), s.lastEffective,
            static_cast<unsigned long long>(s.anomalies),
            static_cast<unsigned long long>(s.substitutions));
    }
    return text;
}

} // namespace guard
} // namespace mercury
