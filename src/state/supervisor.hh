/**
 * @file
 * Restart policy for supervised daemons: exponential backoff,
 * crash-loop detection, and iteration-progress stall detection.
 *
 * These classes are pure decision logic over caller-supplied clocks —
 * no fork/exec, no sockets — so the policy is unit-testable in
 * microseconds. apps/mercury_supervisord.cc owns the process plumbing
 * (spawn solverd, waitpid, probe `fiddle stats` for the iteration
 * counter) and consults these for *when* to restart and when to give
 * up.
 */

#ifndef MERCURY_STATE_SUPERVISOR_HH
#define MERCURY_STATE_SUPERVISOR_HH

#include <cstdint>
#include <deque>

#include "metrics/metrics.hh"

namespace mercury {
namespace state {

/** Knobs for RestartTracker (seconds are caller-clock seconds). */
struct SupervisorPolicy
{
    double initialBackoffSeconds = 0.5; //!< delay before first restart
    double maxBackoffSeconds = 30.0;    //!< backoff ceiling
    double backoffMultiplier = 2.0;     //!< growth per consecutive crash
    /** A child that survived this long is considered healthy: the next
     *  crash starts the backoff ladder from the bottom again. */
    double healthyUptimeSeconds = 30.0;
    /** Give up (crash loop) after this many crashes inside the
     *  window — a corrupt config restarts forever otherwise. */
    int crashLoopThreshold = 5;
    double crashLoopWindowSeconds = 60.0;
};

/**
 * Exponential-backoff restart ladder with crash-loop cutoff.
 */
class RestartTracker
{
  public:
    explicit RestartTracker(SupervisorPolicy policy) : policy_(policy) {}

    /**
     * Record a child exit at @p now_seconds after @p uptime_seconds of
     * life; returns the delay to wait before restarting.
     */
    double onExit(double now_seconds, double uptime_seconds);

    /** True once the crash-loop threshold is hit inside the window. */
    bool crashLooping(double now_seconds) const;

    /** Exits recorded so far. */
    uint64_t restarts() const { return restarts_; }

    /** The delay the next onExit() would return (observability). */
    double currentBackoffSeconds() const { return backoff_; }

    /** Optional metrics counter bumped on every recorded exit
     *  (borrowed; pass nullptr to detach). */
    void setRestartCounter(metrics::Counter *counter)
    {
        restartCounter_ = counter;
    }

  private:
    SupervisorPolicy policy_;
    double backoff_ = 0.0; //!< 0 until the first exit
    uint64_t restarts_ = 0;
    std::deque<double> recentExits_; //!< timestamps inside the window
    metrics::Counter *restartCounter_ = nullptr;
};

/**
 * Liveness from forward progress: a daemon that answers probes but
 * whose iteration counter stops advancing is stuck (deadlocked solver,
 * wedged clock) and needs a restart just like a dead one.
 */
class StallDetector
{
  public:
    /** @param stall_seconds no-progress time that counts as stuck. */
    explicit StallDetector(double stall_seconds)
        : stallSeconds_(stall_seconds)
    {
    }

    /** Feed one successful probe: the observed iteration counter. */
    void noteProgress(uint64_t iteration, double now_seconds);

    /** Forget history (call after a restart). */
    void reset();

    /** True when the counter has not advanced for stall_seconds. */
    bool stalled(double now_seconds) const;

    double stallSeconds() const { return stallSeconds_; }

  private:
    double stallSeconds_;
    bool seen_ = false;
    uint64_t lastIteration_ = 0;
    double lastAdvanceSeconds_ = 0.0;
};

} // namespace state
} // namespace mercury

#endif // MERCURY_STATE_SUPERVISOR_HH
