#include "state/checkpoint.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "core/solver.hh"
#include "util/logging.hh"

namespace mercury {
namespace state {

namespace {

/** Hard ceilings a well-formed file can never exceed; anything above
 *  is garbage regardless of what the CRC says. */
constexpr uint64_t kMaxMachines = 1u << 20;
constexpr uint64_t kMaxNodes = 1u << 22;
constexpr uint64_t kMaxEdges = 1u << 22;
constexpr uint64_t kMaxSenders = 1u << 20;
constexpr uint64_t kMaxStringBytes = 4096;
constexpr size_t kMaxFileBytes = 256u << 20; // 256 MiB

constexpr size_t kHeaderBytes = 24;

uint64_t
nowNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

int g_saveFaultStage = 0;

/** Little-endian append-only serializer. */
class ByteWriter
{
  public:
    void u8(uint8_t v) { out_.push_back(v); }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        out_.insert(out_.end(), s.begin(), s.end());
    }

    std::vector<uint8_t> take() { return std::move(out_); }
    size_t size() const { return out_.size(); }

  private:
    std::vector<uint8_t> out_;
};

/**
 * Bounds-checked little-endian parser. Every accessor returns false
 * once the buffer is exhausted or a value fails validation; the first
 * failure latches with a diagnostic.
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }
    size_t remaining() const { return size_ - pos_; }

    bool
    fail(const std::string &message)
    {
        if (ok_) {
            ok_ = false;
            error_ = message + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    bool
    u8(uint8_t *out)
    {
        if (!need(1))
            return false;
        *out = data_[pos_++];
        return true;
    }

    bool
    u32(uint32_t *out)
    {
        if (!need(4))
            return false;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        *out = v;
        return true;
    }

    bool
    u64(uint64_t *out)
    {
        if (!need(8))
            return false;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        *out = v;
        return true;
    }

    /** A double that must be finite (no NaN/Inf sneaks past the CRC). */
    bool
    f64(double *out)
    {
        uint64_t bits;
        if (!u64(&bits))
            return false;
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        if (!std::isfinite(v))
            return fail("non-finite double");
        *out = v;
        return true;
    }

    bool
    str(std::string *out)
    {
        uint32_t length;
        if (!u32(&length))
            return false;
        if (length > kMaxStringBytes)
            return fail("string length " + std::to_string(length));
        if (!need(length))
            return false;
        out->assign(reinterpret_cast<const char *>(data_ + pos_), length);
        pos_ += length;
        return true;
    }

    /** A u32 element count with a sanity ceiling. */
    bool
    count(uint32_t *out, uint64_t ceiling, const char *what)
    {
        if (!u32(out))
            return false;
        if (*out > ceiling)
            return fail(std::string("absurd ") + what + " count " +
                        std::to_string(*out));
        return true;
    }

  private:
    bool
    need(size_t bytes)
    {
        if (size_ - pos_ < bytes)
            return fail("truncated (need " + std::to_string(bytes) +
                        " bytes, have " + std::to_string(size_ - pos_) +
                        ")");
        return true;
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

/** FNV-1a accumulator for the topology hash. */
struct Fnv
{
    uint64_t hash = 1469598103934665603ull;

    void
    bytes(const void *data, size_t size)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < size; ++i) {
            hash ^= p[i];
            hash *= 1099511628211ull;
        }
    }

    void
    str(const std::string &s)
    {
        uint64_t length = s.size();
        bytes(&length, sizeof(length));
        bytes(s.data(), s.size());
    }

    void u64(uint64_t v) { bytes(&v, sizeof(v)); }
};

void
setError(std::string *error, std::string message)
{
    if (error)
        *error = std::move(message);
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t size)
{
    // Reflected CRC-32 (IEEE 802.3), nibble-at-a-time: small table,
    // no init-order concerns.
    static const uint32_t kTable[16] = {
        0x00000000, 0x1db71064, 0x3b6e20c8, 0x26d930ac,
        0x76dc4190, 0x6b6b51f4, 0x4db26158, 0x5005713c,
        0xedb88320, 0xf00f9344, 0xd6d6a3e8, 0xcb61b38c,
        0x9b64c2b0, 0x86d3d2d4, 0xa00ae278, 0xbdbdf21c,
    };
    uint32_t crc = 0xffffffff;
    for (size_t i = 0; i < size; ++i) {
        crc ^= data[i];
        crc = kTable[crc & 0x0f] ^ (crc >> 4);
        crc = kTable[crc & 0x0f] ^ (crc >> 4);
    }
    return crc ^ 0xffffffff;
}

uint64_t
topologyHash(const core::Solver &solver)
{
    Fnv fnv;
    fnv.str("mercury-topology-v1");
    std::vector<std::string> names = solver.machineNames();
    fnv.u64(names.size());
    for (const std::string &name : names) {
        const core::ThermalGraph &machine = solver.machine(name);
        fnv.str(name);
        fnv.u64(machine.nodeCount());
        for (size_t id = 0; id < machine.nodeCount(); ++id)
            fnv.str(machine.nodeName(id));
        fnv.u64(machine.heatEdgeCount());
        for (size_t i = 0; i < machine.heatEdgeCount(); ++i) {
            core::ThermalGraph::HeatEdgeView edge = machine.heatEdge(i);
            fnv.str(edge.a);
            fnv.str(edge.b);
        }
        fnv.u64(machine.airEdgeCount());
        for (size_t i = 0; i < machine.airEdgeCount(); ++i) {
            core::ThermalGraph::AirEdgeView edge = machine.airEdge(i);
            fnv.str(edge.from);
            fnv.str(edge.to);
        }
        fnv.u64(machine.poweredNodeIds().size());
        for (core::NodeId id : machine.poweredNodeIds())
            fnv.u64(id);
    }
    fnv.u64(solver.hasRoom() ? 1 : 0);
    if (solver.hasRoom()) {
        const core::RoomModel &room = solver.room();
        for (const std::string &name : room.nodeNames())
            fnv.str(name);
        fnv.u64(room.edgeCount());
        for (size_t i = 0; i < room.edgeCount(); ++i) {
            core::RoomModel::EdgeView edge = room.edge(i);
            fnv.str(edge.from);
            fnv.str(edge.to);
        }
    }
    return fnv.hash;
}

Checkpoint
captureSolver(const core::Solver &solver)
{
    Checkpoint checkpoint;
    checkpoint.iterations = solver.iterations();
    checkpoint.iterationSeconds = solver.iterationSeconds();
    checkpoint.topologyHash = topologyHash(solver);

    for (const std::string &name : solver.machineNames()) {
        const core::ThermalGraph &machine = solver.machine(name);
        MachineState ms;
        ms.name = name;
        ms.temperatures = machine.temperatures();
        ms.pinned.reserve(machine.nodeCount());
        ms.pinValues.reserve(machine.nodeCount());
        for (size_t id = 0; id < machine.nodeCount(); ++id) {
            bool pinned = machine.isPinned(id);
            ms.pinned.push_back(pinned ? 1 : 0);
            ms.pinValues.push_back(pinned ? machine.pinnedTemperature(id)
                                          : 0.0);
        }
        for (core::NodeId id : machine.poweredNodeIds()) {
            MachineState::PoweredState ps;
            ps.id = id;
            ps.utilization = machine.utilization(id);
            ps.basePower = machine.basePower(id);
            ps.maxPower = machine.maxPower(id);
            ms.powered.push_back(ps);
        }
        for (size_t i = 0; i < machine.heatEdgeCount(); ++i)
            ms.heatKs.push_back(machine.heatEdge(i).k);
        for (size_t i = 0; i < machine.airEdgeCount(); ++i)
            ms.airFractions.push_back(machine.airEdge(i).fraction);
        ms.fanCfm = machine.fanCfm();
        ms.energyConsumed = machine.energyConsumed();
        checkpoint.machines.push_back(std::move(ms));
    }

    if (solver.hasRoom()) {
        const core::RoomModel &room = solver.room();
        RoomState rs;
        for (const std::string &name : room.nodeNames()) {
            if (room.isSource(name))
                rs.sources.emplace_back(name, room.temperature(name));
        }
        for (size_t i = 0; i < room.edgeCount(); ++i)
            rs.edgeFractions.push_back(room.edge(i).fraction);
        for (const std::string &name : solver.machineNames()) {
            if (!room.hasNode(name))
                continue;
            std::optional<double> override = room.inletOverride(name);
            if (override)
                rs.inletOverrides.emplace_back(name, *override);
        }
        checkpoint.room = std::move(rs);
    }
    return checkpoint;
}

bool
restoreSolver(core::Solver &solver, const Checkpoint &checkpoint,
              std::string *error)
{
    // Phase 1: verify every shape against the live solver before
    // touching anything, so a refused restore leaves it pristine.
    uint64_t live_hash = topologyHash(solver);
    if (checkpoint.topologyHash != live_hash) {
        setError(error, "topology hash mismatch (checkpoint " +
                            std::to_string(checkpoint.topologyHash) +
                            ", config " + std::to_string(live_hash) + ")");
        return false;
    }
    if (checkpoint.iterationSeconds != solver.iterationSeconds()) {
        setError(error,
                 "iteration period mismatch (checkpoint " +
                     std::to_string(checkpoint.iterationSeconds) +
                     " s, config " +
                     std::to_string(solver.iterationSeconds()) + " s)");
        return false;
    }
    std::vector<std::string> names = solver.machineNames();
    if (checkpoint.machines.size() != names.size()) {
        setError(error, "machine count mismatch");
        return false;
    }
    for (size_t m = 0; m < names.size(); ++m) {
        const MachineState &ms = checkpoint.machines[m];
        if (ms.name != names[m]) {
            setError(error, "machine name mismatch: " + ms.name);
            return false;
        }
        const core::ThermalGraph &machine = solver.machine(names[m]);
        if (ms.temperatures.size() != machine.nodeCount() ||
            ms.pinned.size() != machine.nodeCount() ||
            ms.pinValues.size() != machine.nodeCount() ||
            ms.heatKs.size() != machine.heatEdgeCount() ||
            ms.airFractions.size() != machine.airEdgeCount() ||
            ms.powered.size() != machine.poweredNodeIds().size()) {
            setError(error, "shape mismatch for machine " + ms.name);
            return false;
        }
        for (size_t i = 0; i < ms.powered.size(); ++i) {
            if (ms.powered[i].id != machine.poweredNodeIds()[i]) {
                setError(error,
                         "powered-node mismatch for machine " + ms.name);
                return false;
            }
        }
    }
    if (checkpoint.room.has_value() != solver.hasRoom()) {
        setError(error, "room presence mismatch");
        return false;
    }
    if (checkpoint.room) {
        const core::RoomModel &room = solver.room();
        if (checkpoint.room->edgeFractions.size() != room.edgeCount()) {
            setError(error, "room edge count mismatch");
            return false;
        }
        for (const auto &[name, temp] : checkpoint.room->sources) {
            (void)temp;
            if (!room.isSource(name)) {
                setError(error, "unknown room source " + name);
                return false;
            }
        }
        for (const auto &[name, temp] : checkpoint.room->inletOverrides) {
            (void)temp;
            if (!solver.hasMachine(name) || !room.hasNode(name)) {
                setError(error, "unknown override machine " + name);
                return false;
            }
        }
    }

    // Phase 2: apply. Constants first (they rebuild the flow/substep
    // caches), pins next, temperatures last so the snapshot values win.
    for (size_t m = 0; m < names.size(); ++m) {
        const MachineState &ms = checkpoint.machines[m];
        core::ThermalGraph &machine = solver.machine(names[m]);
        for (size_t i = 0; i < ms.heatKs.size(); ++i)
            machine.setHeatK(i, ms.heatKs[i]);
        for (size_t i = 0; i < ms.airFractions.size(); ++i)
            machine.setAirFraction(i, ms.airFractions[i]);
        machine.setFanCfm(ms.fanCfm);
        for (const MachineState::PoweredState &ps : ms.powered) {
            core::NodeId id = static_cast<core::NodeId>(ps.id);
            // Only re-apply a power range that fiddle actually changed:
            // setPowerRange replaces table/counter models with a linear
            // one, which must not happen on a byte-identical round trip.
            if (machine.basePower(id) != ps.basePower ||
                machine.maxPower(id) != ps.maxPower) {
                machine.setPowerRange(machine.nodeName(id), ps.basePower,
                                      ps.maxPower);
            }
            machine.setUtilization(id, ps.utilization);
        }
        for (size_t id = 0; id < machine.nodeCount(); ++id) {
            if (ms.pinned[id])
                machine.pinTemperature(id, ms.pinValues[id]);
            else
                machine.unpinTemperature(id);
        }
        machine.setTemperatures(ms.temperatures);
        machine.restoreEnergyConsumed(ms.energyConsumed);
    }
    if (checkpoint.room) {
        core::RoomModel &room = solver.room();
        for (const auto &[name, temp] : checkpoint.room->sources)
            room.setSourceTemperature(name, temp);
        for (size_t i = 0; i < checkpoint.room->edgeFractions.size(); ++i)
            room.setEdgeFraction(i, checkpoint.room->edgeFractions[i]);
        for (const std::string &name : names) {
            if (room.hasNode(name))
                room.setInletOverride(name, std::nullopt);
        }
        for (const auto &[name, temp] : checkpoint.room->inletOverrides)
            room.setInletOverride(name, temp);
    }
    solver.restoreIterationCount(checkpoint.iterations);
    // Restored temperatures have no relation to any pre-restore freeze
    // decisions: wake the whole fleet and let quiescence re-converge.
    solver.wakeAllMachines();
    return true;
}

std::vector<uint8_t>
encodeCheckpoint(const Checkpoint &checkpoint)
{
    ByteWriter payload;
    payload.u64(checkpoint.iterations);
    payload.f64(checkpoint.iterationSeconds);
    payload.u64(checkpoint.topologyHash);
    payload.u64(checkpoint.saveCount);

    payload.u32(static_cast<uint32_t>(checkpoint.machines.size()));
    for (const MachineState &ms : checkpoint.machines) {
        payload.str(ms.name);
        payload.u32(static_cast<uint32_t>(ms.temperatures.size()));
        for (double t : ms.temperatures)
            payload.f64(t);
        for (uint8_t p : ms.pinned)
            payload.u8(p);
        for (double v : ms.pinValues)
            payload.f64(v);
        payload.u32(static_cast<uint32_t>(ms.powered.size()));
        for (const MachineState::PoweredState &ps : ms.powered) {
            payload.u64(ps.id);
            payload.f64(ps.utilization);
            payload.f64(ps.basePower);
            payload.f64(ps.maxPower);
        }
        payload.u32(static_cast<uint32_t>(ms.heatKs.size()));
        for (double k : ms.heatKs)
            payload.f64(k);
        payload.u32(static_cast<uint32_t>(ms.airFractions.size()));
        for (double f : ms.airFractions)
            payload.f64(f);
        payload.f64(ms.fanCfm);
        payload.f64(ms.energyConsumed);
    }

    payload.u8(checkpoint.room ? 1 : 0);
    if (checkpoint.room) {
        const RoomState &rs = *checkpoint.room;
        payload.u32(static_cast<uint32_t>(rs.sources.size()));
        for (const auto &[name, temp] : rs.sources) {
            payload.str(name);
            payload.f64(temp);
        }
        payload.u32(static_cast<uint32_t>(rs.edgeFractions.size()));
        for (double f : rs.edgeFractions)
            payload.f64(f);
        payload.u32(static_cast<uint32_t>(rs.inletOverrides.size()));
        for (const auto &[name, temp] : rs.inletOverrides) {
            payload.str(name);
            payload.f64(temp);
        }
    }

    payload.u32(static_cast<uint32_t>(checkpoint.senders.size()));
    for (const SenderRecord &sender : checkpoint.senders) {
        payload.str(sender.machine);
        payload.u8(sender.started ? 1 : 0);
        payload.u64(sender.head);
        payload.u64(sender.window);
        payload.u64(sender.received);
        payload.u64(sender.lost);
        payload.u64(sender.duplicates);
        payload.u64(sender.reordered);
        payload.u32(sender.lastBacklog);
    }

    std::vector<uint8_t> body = payload.take();
    ByteWriter file;
    file.u32(kCheckpointMagic);
    file.u32(kCheckpointVersion);
    file.u64(body.size());
    file.u32(crc32(body.data(), body.size()));
    file.u32(0); // reserved
    std::vector<uint8_t> out = file.take();
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

bool
decodeCheckpoint(const uint8_t *data, size_t size, Checkpoint *out,
                 std::string *error)
{
    ByteReader header(data, size);
    uint32_t magic = 0, version = 0, crc = 0, reserved = 0;
    uint64_t payload_length = 0;
    if (!header.u32(&magic) || !header.u32(&version) ||
        !header.u64(&payload_length) || !header.u32(&crc) ||
        !header.u32(&reserved)) {
        setError(error, "truncated header (" + std::to_string(size) +
                            " bytes)");
        return false;
    }
    if (magic != kCheckpointMagic) {
        setError(error, "bad magic");
        return false;
    }
    if (version != kCheckpointVersion) {
        setError(error, "unsupported version " + std::to_string(version));
        return false;
    }
    if (payload_length != size - kHeaderBytes) {
        setError(error,
                 "length mismatch (header says " +
                     std::to_string(payload_length) + ", file carries " +
                     std::to_string(size - kHeaderBytes) + ")");
        return false;
    }
    const uint8_t *body = data + kHeaderBytes;
    if (crc32(body, payload_length) != crc) {
        setError(error, "CRC mismatch");
        return false;
    }

    ByteReader in(body, payload_length);
    Checkpoint cp;
    in.u64(&cp.iterations);
    in.f64(&cp.iterationSeconds);
    in.u64(&cp.topologyHash);
    in.u64(&cp.saveCount);
    if (in.ok() && cp.iterationSeconds <= 0.0)
        in.fail("non-positive iteration period");

    uint32_t machine_count = 0;
    in.count(&machine_count, kMaxMachines, "machine");
    for (uint32_t m = 0; in.ok() && m < machine_count; ++m) {
        MachineState ms;
        in.str(&ms.name);
        uint32_t nodes = 0;
        in.count(&nodes, kMaxNodes, "node");
        ms.temperatures.resize(in.ok() ? nodes : 0);
        for (uint32_t i = 0; in.ok() && i < nodes; ++i)
            in.f64(&ms.temperatures[i]);
        ms.pinned.resize(in.ok() ? nodes : 0);
        for (uint32_t i = 0; in.ok() && i < nodes; ++i) {
            in.u8(&ms.pinned[i]);
            if (in.ok() && ms.pinned[i] > 1)
                in.fail("pinned flag not 0/1");
        }
        ms.pinValues.resize(in.ok() ? nodes : 0);
        for (uint32_t i = 0; in.ok() && i < nodes; ++i)
            in.f64(&ms.pinValues[i]);
        uint32_t powered = 0;
        in.count(&powered, kMaxNodes, "powered-node");
        for (uint32_t i = 0; in.ok() && i < powered; ++i) {
            MachineState::PoweredState ps;
            in.u64(&ps.id);
            in.f64(&ps.utilization);
            in.f64(&ps.basePower);
            in.f64(&ps.maxPower);
            if (in.ok() &&
                (ps.utilization < 0.0 || ps.utilization > 1.0))
                in.fail("utilization outside [0, 1]");
            if (in.ok() && ps.id >= nodes)
                in.fail("powered id out of range");
            ms.powered.push_back(ps);
        }
        uint32_t heat_edges = 0;
        in.count(&heat_edges, kMaxEdges, "heat-edge");
        for (uint32_t i = 0; in.ok() && i < heat_edges; ++i) {
            double k = 0.0;
            in.f64(&k);
            if (in.ok() && k <= 0.0)
                in.fail("non-positive heat k");
            ms.heatKs.push_back(k);
        }
        uint32_t air_edges = 0;
        in.count(&air_edges, kMaxEdges, "air-edge");
        for (uint32_t i = 0; in.ok() && i < air_edges; ++i) {
            double f = 0.0;
            in.f64(&f);
            if (in.ok() && (f < 0.0 || f > 1.0))
                in.fail("air fraction outside [0, 1]");
            ms.airFractions.push_back(f);
        }
        in.f64(&ms.fanCfm);
        if (in.ok() && ms.fanCfm < 0.0)
            in.fail("negative fan flow");
        in.f64(&ms.energyConsumed);
        cp.machines.push_back(std::move(ms));
    }

    uint8_t has_room = 0;
    in.u8(&has_room);
    if (in.ok() && has_room > 1)
        in.fail("room flag not 0/1");
    if (in.ok() && has_room) {
        RoomState rs;
        uint32_t sources = 0;
        in.count(&sources, kMaxNodes, "room-source");
        for (uint32_t i = 0; in.ok() && i < sources; ++i) {
            std::string name;
            double temp = 0.0;
            in.str(&name);
            in.f64(&temp);
            rs.sources.emplace_back(std::move(name), temp);
        }
        uint32_t edges = 0;
        in.count(&edges, kMaxEdges, "room-edge");
        for (uint32_t i = 0; in.ok() && i < edges; ++i) {
            double f = 0.0;
            in.f64(&f);
            if (in.ok() && (f < 0.0 || f > 1.0))
                in.fail("room fraction outside [0, 1]");
            rs.edgeFractions.push_back(f);
        }
        uint32_t overrides = 0;
        in.count(&overrides, kMaxNodes, "inlet-override");
        for (uint32_t i = 0; in.ok() && i < overrides; ++i) {
            std::string name;
            double temp = 0.0;
            in.str(&name);
            in.f64(&temp);
            rs.inletOverrides.emplace_back(std::move(name), temp);
        }
        cp.room = std::move(rs);
    }

    uint32_t sender_count = 0;
    in.count(&sender_count, kMaxSenders, "sender");
    for (uint32_t i = 0; in.ok() && i < sender_count; ++i) {
        SenderRecord sender;
        uint8_t started = 0;
        in.str(&sender.machine);
        in.u8(&started);
        if (in.ok() && started > 1)
            in.fail("sender started flag not 0/1");
        sender.started = started != 0;
        in.u64(&sender.head);
        in.u64(&sender.window);
        in.u64(&sender.received);
        in.u64(&sender.lost);
        in.u64(&sender.duplicates);
        in.u64(&sender.reordered);
        in.u32(&sender.lastBacklog);
        cp.senders.push_back(std::move(sender));
    }

    if (!in.ok()) {
        setError(error, in.error());
        return false;
    }
    if (in.remaining() != 0) {
        setError(error, std::to_string(in.remaining()) +
                            " trailing payload bytes");
        return false;
    }
    *out = std::move(cp);
    return true;
}

void
setSaveFaultStageForTest(int stage)
{
    g_saveFaultStage = stage;
}

bool
saveCheckpointFile(const std::string &path, const Checkpoint &checkpoint,
                   std::string *error)
{
    std::vector<uint8_t> bytes = encodeCheckpoint(checkpoint);
    std::string tmp = path + ".tmp";

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setError(error, "open " + tmp + ": " + std::strerror(errno));
        return false;
    }
    if (g_saveFaultStage == 1) {
        ::close(fd);
        setError(error, "fault injected: crash after create");
        return false;
    }
    size_t to_write =
        g_saveFaultStage == 2 ? bytes.size() / 2 : bytes.size();
    size_t written = 0;
    while (written < to_write) {
        ssize_t n =
            ::write(fd, bytes.data() + written, to_write - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "write " + tmp + ": " + std::strerror(errno));
            ::close(fd);
            return false;
        }
        written += static_cast<size_t>(n);
    }
    if (g_saveFaultStage == 2) {
        ::close(fd);
        setError(error, "fault injected: crash mid-write");
        return false;
    }
    if (::fsync(fd) != 0) {
        setError(error, "fsync " + tmp + ": " + std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (::close(fd) != 0) {
        setError(error, "close " + tmp + ": " + std::strerror(errno));
        return false;
    }
    if (g_saveFaultStage == 3) {
        setError(error, "fault injected: crash before rename");
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "rename " + tmp + ": " + std::strerror(errno));
        return false;
    }
    // Persist the rename itself: fsync the containing directory.
    size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : path.substr(0, slash + 1);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

bool
loadCheckpointFile(const std::string &path, Checkpoint *out,
                   std::string *error)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setError(error, "open " + path + ": " + std::strerror(errno));
        return false;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        setError(error, "stat " + path + ": " + std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (st.st_size < 0 ||
        static_cast<size_t>(st.st_size) > kMaxFileBytes) {
        setError(error, "implausible file size " +
                            std::to_string(st.st_size));
        ::close(fd);
        return false;
    }
    std::vector<uint8_t> bytes(static_cast<size_t>(st.st_size));
    size_t got = 0;
    while (got < bytes.size()) {
        ssize_t n = ::read(fd, bytes.data() + got, bytes.size() - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "read " + path + ": " + std::strerror(errno));
            ::close(fd);
            return false;
        }
        if (n == 0)
            break; // shrank underneath us; decode will reject
        got += static_cast<size_t>(n);
    }
    ::close(fd);
    return decodeCheckpoint(bytes.data(), got, out, error);
}

CheckpointManager::CheckpointManager(core::Solver &solver, Config config)
    : solver_(solver), config_(std::move(config))
{
}

bool
CheckpointManager::restoreAtBoot()
{
    if (config_.path.empty())
        return false;
    Checkpoint checkpoint;
    std::string why;
    if (!loadCheckpointFile(config_.path, &checkpoint, &why)) {
        struct stat st;
        if (::stat(config_.path.c_str(), &st) == 0)
            warn("checkpoint ", config_.path, " rejected (", why,
                 "); cold start");
        else
            inform("no checkpoint at ", config_.path, "; cold start");
        return false;
    }
    if (!restoreSolver(solver_, checkpoint, &why)) {
        warn("checkpoint ", config_.path, " does not match this config (",
             why, "); cold start");
        return false;
    }
    if (senderImporter_)
        senderImporter_(checkpoint.senders);
    restored_ = true;
    lastRestoreIteration_ = checkpoint.iterations;
    saveCount_ = checkpoint.saveCount;
    inform("restored checkpoint ", config_.path, " at iteration ",
           checkpoint.iterations, " (save #", checkpoint.saveCount, ")");
    return true;
}

bool
CheckpointManager::saveNow(std::string *error)
{
    if (config_.path.empty()) {
        setError(error, "no checkpoint path configured");
        return false;
    }
    Checkpoint checkpoint = captureSolver(solver_);
    checkpoint.saveCount = saveCount_ + 1;
    if (senderExporter_)
        checkpoint.senders = senderExporter_();
    std::string why;
    if (!saveCheckpointFile(config_.path, checkpoint, &why)) {
        ++failedSaves_;
        warn("checkpoint save to ", config_.path, " failed: ", why);
        setError(error, why);
        return false;
    }
    saveCount_ = checkpoint.saveCount;
    everSaved_ = true;
    lastSaveNanos_ = nowNanos();
    return true;
}

void
CheckpointManager::maybeSave()
{
    if (config_.path.empty() || config_.periodSeconds <= 0.0)
        return;
    uint64_t now = nowNanos();
    if (nextSaveNanos_ == 0) {
        nextSaveNanos_ = now + static_cast<uint64_t>(
                                   config_.periodSeconds * 1e9);
        return;
    }
    if (now < nextSaveNanos_)
        return;
    saveNow();
    nextSaveNanos_ =
        now + static_cast<uint64_t>(config_.periodSeconds * 1e9);
}

double
CheckpointManager::lastSaveAgeSeconds() const
{
    if (!everSaved_)
        return -1.0;
    return static_cast<double>(nowNanos() - lastSaveNanos_) / 1e9;
}

} // namespace state
} // namespace mercury
