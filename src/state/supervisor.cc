#include "state/supervisor.hh"

#include <algorithm>

namespace mercury {
namespace state {

double
RestartTracker::onExit(double now_seconds, double uptime_seconds)
{
    ++restarts_;
    if (restartCounter_)
        restartCounter_->inc();
    recentExits_.push_back(now_seconds);
    while (!recentExits_.empty() &&
           now_seconds - recentExits_.front() >
               policy_.crashLoopWindowSeconds) {
        recentExits_.pop_front();
    }
    if (backoff_ == 0.0 ||
        uptime_seconds >= policy_.healthyUptimeSeconds) {
        backoff_ = policy_.initialBackoffSeconds;
    } else {
        backoff_ = std::min(backoff_ * policy_.backoffMultiplier,
                            policy_.maxBackoffSeconds);
    }
    return backoff_;
}

bool
RestartTracker::crashLooping(double now_seconds) const
{
    int inside = 0;
    for (double t : recentExits_) {
        if (now_seconds - t <= policy_.crashLoopWindowSeconds)
            ++inside;
    }
    return inside >= policy_.crashLoopThreshold;
}

void
StallDetector::noteProgress(uint64_t iteration, double now_seconds)
{
    if (!seen_ || iteration != lastIteration_) {
        seen_ = true;
        lastIteration_ = iteration;
        lastAdvanceSeconds_ = now_seconds;
    }
}

void
StallDetector::reset()
{
    seen_ = false;
    lastIteration_ = 0;
    lastAdvanceSeconds_ = 0.0;
}

bool
StallDetector::stalled(double now_seconds) const
{
    if (!seen_)
        return false;
    return now_seconds - lastAdvanceSeconds_ > stallSeconds_;
}

} // namespace state
} // namespace mercury
