/**
 * @file
 * Crash-consistent checkpointing of full solver state.
 *
 * A long Mercury run is hours of wall-clock integration plus every
 * constant `fiddle` has injected; losing the process must not lose the
 * trajectory. A Checkpoint captures everything mutable about a Solver
 * — node temperatures, utilizations, pins, heat/air-edge constants,
 * fan flow, power ranges, room sources/fractions/overrides, energy and
 * iteration counters — plus the per-sender sequence accounting of the
 * protocol layer, and serializes it to a versioned, CRC-guarded binary
 * file written atomically (temp file + fsync + rename + directory
 * fsync). Loading is paranoid: a corrupt, truncated or
 * version-mismatched file is rejected with a diagnostic, never a
 * crash, so the daemon can always fall back to a cold start.
 *
 * This library sits below src/proto on purpose: the protocol layer
 * links against it (the daemon drives a CheckpointManager; the service
 * exports its sender table as SenderRecords), never the reverse.
 */

#ifndef MERCURY_STATE_CHECKPOINT_HH
#define MERCURY_STATE_CHECKPOINT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mercury {

namespace core {
class Solver;
} // namespace core

namespace state {

/** Checkpoint file magic ("MCK1", little-endian on disk). */
constexpr uint32_t kCheckpointMagic = 0x314b434d;

/** Bump when the payload layout changes incompatibly. */
constexpr uint32_t kCheckpointVersion = 1;

/**
 * One sender's sequence-accounting snapshot, mirrored from the
 * protocol layer's per-machine tracker so loss statistics survive a
 * solver restart instead of resetting to zero (and so a resumed daemon
 * does not misread the monitord's next sequence as a 10k-packet gap).
 */
struct SenderRecord
{
    std::string machine;
    bool started = false;
    uint64_t head = 0;
    uint64_t window = 0;
    uint64_t received = 0;
    uint64_t lost = 0;
    uint64_t duplicates = 0;
    uint64_t reordered = 0;
    uint32_t lastBacklog = 0; //!< monitord backlog depth last reported
};

/** Mutable state of one machine, in stable (id/index) order. */
struct MachineState
{
    std::string name;
    std::vector<double> temperatures; //!< node-id order, all nodes
    std::vector<uint8_t> pinned;      //!< node-id order (0/1)
    std::vector<double> pinValues;    //!< node-id order
    /** Powered nodes: (node id, utilization, base W, max W). */
    struct PoweredState
    {
        uint64_t id = 0;
        double utilization = 0.0;
        double basePower = 0.0;
        double maxPower = 0.0;
    };
    std::vector<PoweredState> powered;
    std::vector<double> heatKs;       //!< heat-edge index order
    std::vector<double> airFractions; //!< air-edge index order
    double fanCfm = 0.0;
    double energyConsumed = 0.0;
};

/** Mutable state of the room model. */
struct RoomState
{
    /** (source vertex name, supply temperature). */
    std::vector<std::pair<std::string, double>> sources;
    std::vector<double> edgeFractions; //!< room-edge index order
    /** Machines whose inlet is overridden, with the forced value. */
    std::vector<std::pair<std::string, double>> inletOverrides;
};

/** Full solver + protocol state at one instant. */
struct Checkpoint
{
    uint64_t iterations = 0;
    double iterationSeconds = 1.0;
    uint64_t topologyHash = 0; //!< guards against config mismatch
    uint64_t saveCount = 0;    //!< monotonic across restarts
    std::vector<MachineState> machines;
    std::optional<RoomState> room;
    std::vector<SenderRecord> senders;
};

/**
 * FNV-1a hash of the solver's structure (machine/node/edge names and
 * counts, room graph). Restoring a checkpoint against a solver with a
 * different hash is refused: the dense id-order vectors would land on
 * the wrong nodes.
 */
uint64_t topologyHash(const core::Solver &solver);

/** Snapshot everything mutable about @p solver. */
Checkpoint captureSolver(const core::Solver &solver);

/**
 * Write @p checkpoint back into @p solver. Verifies the topology hash
 * and every per-machine shape first; on mismatch returns false with a
 * diagnostic in @p error and leaves the solver untouched. Power ranges
 * are only re-applied when they differ from the live model, so a
 * non-linear (table/counter) model that fiddle never replaced is
 * preserved.
 */
bool restoreSolver(core::Solver &solver, const Checkpoint &checkpoint,
                   std::string *error);

/** @name Binary codec */
/// @{

/** CRC-32 (IEEE 802.3, reflected) of @p size bytes. */
uint32_t crc32(const uint8_t *data, size_t size);

/** Serialize to the versioned on-disk payload (header included). */
std::vector<uint8_t> encodeCheckpoint(const Checkpoint &checkpoint);

/**
 * Parse an encoded checkpoint. Every read is bounds-checked and every
 * count/float sanity-checked; any violation (short buffer, bad magic,
 * future version, CRC mismatch, non-finite doubles, absurd counts)
 * returns false with a diagnostic — never throws, never reads out of
 * bounds.
 */
bool decodeCheckpoint(const uint8_t *data, size_t size, Checkpoint *out,
                      std::string *error);

/// @}
/** @name Atomic file I/O */
/// @{

/**
 * Durably replace @p path with @p checkpoint: write <path>.tmp, fsync
 * it, rename over @p path, fsync the directory. A crash at any point
 * leaves either the previous complete file or a stray .tmp — never a
 * torn checkpoint under the real name.
 */
bool saveCheckpointFile(const std::string &path,
                        const Checkpoint &checkpoint, std::string *error);

/** Load and fully validate @p path. */
bool loadCheckpointFile(const std::string &path, Checkpoint *out,
                        std::string *error);

/**
 * Crash the write path at a chosen stage (tests only): the save
 * returns early as if the process died there, leaving the filesystem
 * in the corresponding intermediate state. 0 disables.
 *   1 = after creating an empty .tmp
 *   2 = after writing half the .tmp bytes
 *   3 = after the full .tmp, before the rename
 */
void setSaveFaultStageForTest(int stage);

/// @}

/**
 * Policy around one checkpoint file: periodic saves, boot-time
 * restore, and the observability counters `fiddle stats` reports.
 * Single-threaded by design — the solver daemon interleaves packets
 * and timers on one thread, and the trace runner is synchronous.
 */
class CheckpointManager
{
  public:
    struct Config
    {
        std::string path;            //!< checkpoint file
        double periodSeconds = 30.0; //!< timer period; <= 0 disables
    };

    CheckpointManager(core::Solver &solver, Config config);

    /** Protocol-layer glue: how to snapshot / reinstall senders. */
    void setSenderExporter(std::function<std::vector<SenderRecord>()> fn)
    {
        senderExporter_ = std::move(fn);
    }
    void setSenderImporter(
        std::function<void(const std::vector<SenderRecord> &)> fn)
    {
        senderImporter_ = std::move(fn);
    }

    /**
     * Try to restore the file into the solver. Any failure (missing,
     * corrupt, topology mismatch) logs the reason and returns false —
     * the caller proceeds with a cold start. On success the sender
     * importer runs and lastRestoreIteration() reports the resumed
     * iteration count.
     */
    bool restoreAtBoot();

    /** Capture + write immediately (fiddle checkpoint, shutdown). */
    bool saveNow(std::string *error = nullptr);

    /** Save when the configured period has elapsed since the last. */
    void maybeSave();

    /** @name Observability (fiddle stats) */
    /// @{
    bool restored() const { return restored_; }
    uint64_t lastRestoreIteration() const { return lastRestoreIteration_; }
    /** Seconds since the last successful save; negative = never. */
    double lastSaveAgeSeconds() const;
    uint64_t saveCount() const { return saveCount_; }
    uint64_t failedSaves() const { return failedSaves_; }
    const std::string &path() const { return config_.path; }
    /// @}

  private:
    core::Solver &solver_;
    Config config_;
    std::function<std::vector<SenderRecord>()> senderExporter_;
    std::function<void(const std::vector<SenderRecord> &)> senderImporter_;
    bool restored_ = false;
    uint64_t lastRestoreIteration_ = 0;

    /** Save bookkeeping is written by the solver/checkpoint thread but
     *  read by the request plane's serve workers (`fiddle stats`
     *  reports checkpoint age), so the read-side fields are relaxed
     *  atomics. */
    std::atomic<uint64_t> saveCount_{0}; //!< carried over from a restore
    uint64_t failedSaves_ = 0;
    std::atomic<bool> everSaved_{false};
    std::atomic<uint64_t> lastSaveNanos_{0}; //!< monotonic
    uint64_t nextSaveNanos_ = 0; //!< monotonic deadline for maybeSave
};

} // namespace state
} // namespace mercury

#endif // MERCURY_STATE_CHECKPOINT_HH
