/**
 * @file
 * The fiddle command language (Section 2.3's thermal-emergency tool).
 *
 * "Fiddle can force the solver to change any constant or temperature
 * on-line" — e.g. `fiddle machine1 temperature inlet 30` raises a
 * machine's inlet air to 30 degC, emulating an air-conditioner failure.
 *
 * Supported commands (a leading literal `fiddle` token is accepted and
 * ignored so the paper's script lines work verbatim):
 *
 *   <machine> temperature <node> <value>     set a temperature; for the
 *                                            inlet this is a persistent
 *                                            boundary override
 *   <machine> temperature inlet auto         return the inlet to room
 *                                            (or default) control
 *   <machine> pin <node> <value>             hold a node's temperature
 *   <machine> unpin <node>                   release a pin
 *   <machine> utilization <component> <u>    force a utilization
 *   <machine> fan <cfm>                      change the fan flow
 *   <machine> k <a>:<b> <value>              change a heat constant
 *   <machine> fraction <from>:<to> <value>   change an air fraction
 *   <machine> power <component> <min> <max>  change a power range
 *   room ac <source> <value>                 change an AC supply temp
 *   room fraction <from>:<to> <value>        change a room air fraction
 */

#ifndef MERCURY_FIDDLE_COMMAND_HH
#define MERCURY_FIDDLE_COMMAND_HH

#include <optional>
#include <string>
#include <vector>

namespace mercury {

namespace core {
class Solver;
} // namespace core

namespace fiddle {

/** A parsed fiddle command. */
struct FiddleCommand
{
    std::string machine;  //!< machine name, or "room"
    std::string property; //!< temperature, pin, fan, k, fraction, ...
    std::string target;   //!< node / component / "a:b" edge, may be empty
    std::vector<double> values;
    bool autoValue = false; //!< `auto` given instead of a number
    std::string line;       //!< original text, for diagnostics
};

/**
 * Parse one command line. On failure returns nullopt and, when
 * @p error is non-null, stores a human-readable description.
 */
std::optional<FiddleCommand> parseCommand(const std::string &line,
                                          std::string *error = nullptr);

/** Outcome of applying a command. */
struct FiddleResult
{
    bool ok = false;
    std::string message;
};

/**
 * Apply a command to a live solver. All failure modes (unknown
 * machine, node, edge, malformed ranges) are reported in the result —
 * this function never panics on bad user input, since it sits behind
 * the network daemon.
 */
FiddleResult apply(core::Solver &solver, const FiddleCommand &command);

/** Convenience: parse then apply. */
FiddleResult applyLine(core::Solver &solver, const std::string &line);

} // namespace fiddle
} // namespace mercury

#endif // MERCURY_FIDDLE_COMMAND_HH
