#include "fiddle/script.hh"

#include <fstream>
#include <sstream>

#include "core/solver.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace mercury {
namespace fiddle {

FiddleScript
FiddleScript::parse(const std::string &text, std::vector<std::string> *errors)
{
    FiddleScript script;
    double clock = 0.0;
    int line_no = 0;
    std::istringstream in(text);
    std::string raw;
    auto report = [&](const std::string &message) {
        if (errors)
            errors->push_back(format("line %d: ", line_no) + message);
    };

    while (std::getline(in, raw)) {
        ++line_no;
        std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue; // comments and the shebang
        std::vector<std::string> tokens = splitWhitespace(line);
        if (tokens[0] == "sleep") {
            if (tokens.size() != 2) {
                report("usage: sleep <seconds>");
                continue;
            }
            auto secs = parseDouble(tokens[1]);
            if (!secs || *secs < 0.0) {
                report("bad sleep duration '" + tokens[1] + "'");
                continue;
            }
            clock += *secs;
        } else if (tokens[0] == "fiddle") {
            std::string error;
            auto command = parseCommand(line, &error);
            if (!command) {
                report(error);
                continue;
            }
            script.commands_.push_back({clock, std::move(*command)});
        } else {
            report("unrecognized statement '" + tokens[0] + "'");
        }
    }
    return script;
}

FiddleScript
FiddleScript::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open fiddle script '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<std::string> errors;
    FiddleScript script = parse(buffer.str(), &errors);
    if (!errors.empty()) {
        std::string joined;
        for (const std::string &err : errors)
            joined += "\n  " + err;
        fatal("errors in fiddle script '", path, "':", joined);
    }
    return script;
}

double
FiddleScript::duration() const
{
    return commands_.empty() ? 0.0 : commands_.back().time;
}

void
FiddleScript::scheduleOn(sim::Simulator &simulator,
                         core::Solver &solver) const
{
    for (const TimedCommand &timed : commands_) {
        FiddleCommand command = timed.command;
        simulator.after(sim::seconds(timed.time),
                        [&solver, command = std::move(command)] {
                            FiddleResult result = apply(solver, command);
                            if (!result.ok) {
                                warn("fiddle: '", command.line,
                                     "' failed: ", result.message);
                            }
                        });
    }
}

} // namespace fiddle
} // namespace mercury
