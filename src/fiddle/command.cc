#include "fiddle/command.hh"

#include "core/solver.hh"
#include "util/strings.hh"

namespace mercury {
namespace fiddle {

namespace {

/** Set @p error when non-null. */
void
setError(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
}

FiddleResult
fail(const std::string &message)
{
    return {false, message};
}

FiddleResult
success(const std::string &message = "ok")
{
    return {true, message};
}

/** Split an "a:b" edge target. */
std::optional<std::pair<std::string, std::string>>
splitEdgeTarget(const std::string &target)
{
    size_t colon = target.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= target.size()) {
        return std::nullopt;
    }
    return std::make_pair(target.substr(0, colon), target.substr(colon + 1));
}

} // namespace

std::optional<FiddleCommand>
parseCommand(const std::string &line, std::string *error)
{
    std::vector<std::string> tokens = splitWhitespace(line);
    if (!tokens.empty() && tokens[0] == "fiddle")
        tokens.erase(tokens.begin());
    if (tokens.size() < 2) {
        setError(error, "usage: [fiddle] <machine> <property> ...");
        return std::nullopt;
    }

    FiddleCommand cmd;
    cmd.line = trim(line);
    cmd.machine = tokens[0];
    cmd.property = tokens[1];

    auto parse_values = [&](size_t first, size_t expected,
                            bool allow_auto) -> bool {
        if (allow_auto && tokens.size() == first + 1 &&
            tokens[first] == "auto") {
            cmd.autoValue = true;
            return true;
        }
        if (tokens.size() != first + expected) {
            setError(error, "command '" + cmd.property + "' expects " +
                                format("%zu", expected) + " value(s)");
            return false;
        }
        for (size_t i = first; i < tokens.size(); ++i) {
            auto value = parseDouble(tokens[i]);
            if (!value) {
                setError(error, "malformed number '" + tokens[i] + "'");
                return false;
            }
            cmd.values.push_back(*value);
        }
        return true;
    };

    const std::string &prop = cmd.property;
    if (prop == "temperature" || prop == "pin" || prop == "utilization") {
        if (tokens.size() < 3) {
            setError(error, "command '" + prop + "' needs a target");
            return std::nullopt;
        }
        cmd.target = tokens[2];
        if (!parse_values(3, 1, prop == "temperature"))
            return std::nullopt;
    } else if (prop == "unpin") {
        if (tokens.size() != 3) {
            setError(error, "usage: <machine> unpin <node>");
            return std::nullopt;
        }
        cmd.target = tokens[2];
    } else if (prop == "fan") {
        if (!parse_values(2, 1, false))
            return std::nullopt;
    } else if (prop == "k" || prop == "fraction") {
        if (tokens.size() < 3) {
            setError(error, "command '" + prop + "' needs an edge target");
            return std::nullopt;
        }
        cmd.target = tokens[2];
        if (!splitEdgeTarget(cmd.target)) {
            setError(error,
                     "edge target must look like 'a:b', got '" +
                         cmd.target + "'");
            return std::nullopt;
        }
        if (!parse_values(3, 1, false))
            return std::nullopt;
    } else if (prop == "power") {
        if (tokens.size() < 3) {
            setError(error, "usage: <machine> power <component> <min> "
                            "<max>");
            return std::nullopt;
        }
        cmd.target = tokens[2];
        if (!parse_values(3, 2, false))
            return std::nullopt;
    } else if (prop == "ac") {
        if (cmd.machine != "room") {
            setError(error, "'ac' commands must address 'room'");
            return std::nullopt;
        }
        if (tokens.size() < 3) {
            setError(error, "usage: room ac <source> <value>");
            return std::nullopt;
        }
        cmd.target = tokens[2];
        if (!parse_values(3, 1, false))
            return std::nullopt;
    } else {
        setError(error, "unknown property '" + prop + "'");
        return std::nullopt;
    }
    return cmd;
}

FiddleResult
apply(core::Solver &solver, const FiddleCommand &cmd)
{
    // Room-scoped commands.
    if (cmd.machine == "room") {
        if (!solver.hasRoom())
            return fail("no room model installed");
        core::RoomModel &room = solver.room();
        if (cmd.property == "ac") {
            if (!room.isSource(cmd.target))
                return fail("no air source '" + cmd.target + "'");
            room.setSourceTemperature(cmd.target, cmd.values[0]);
            return success();
        }
        if (cmd.property == "fraction") {
            auto edge = splitEdgeTarget(cmd.target);
            if (!room.hasEdge(edge->first, edge->second))
                return fail("no room edge " + cmd.target);
            if (cmd.values[0] < 0.0 || cmd.values[0] > 1.0)
                return fail("fraction must be in [0, 1]");
            room.setEdgeFraction(edge->first, edge->second, cmd.values[0]);
            return success();
        }
        return fail("property '" + cmd.property +
                    "' is not valid for 'room'");
    }

    if (!solver.hasMachine(cmd.machine))
        return fail("unknown machine '" + cmd.machine + "'");
    core::ThermalGraph &graph = solver.machine(cmd.machine);

    if (cmd.property == "temperature") {
        if (cmd.target == "inlet") {
            if (cmd.autoValue) {
                solver.clearInletOverride(cmd.machine);
                return success("inlet returned to ambient control");
            }
            solver.setInletTemperature(cmd.machine, cmd.values[0]);
            return success();
        }
        auto node = solver.tryResolveNode(cmd.machine, cmd.target);
        if (!node)
            return fail("unknown node '" + cmd.target + "'");
        if (cmd.autoValue)
            return fail("'auto' is only valid for the inlet");
        graph.setTemperature(*node, cmd.values[0]);
        return success();
    }
    if (cmd.property == "pin") {
        auto node = solver.tryResolveNode(cmd.machine, cmd.target);
        if (!node)
            return fail("unknown node '" + cmd.target + "'");
        graph.pinTemperature(*node, cmd.values[0]);
        return success();
    }
    if (cmd.property == "unpin") {
        auto node = solver.tryResolveNode(cmd.machine, cmd.target);
        if (!node)
            return fail("unknown node '" + cmd.target + "'");
        graph.unpinTemperature(*node);
        return success();
    }
    if (cmd.property == "utilization") {
        auto node = solver.tryResolveNode(cmd.machine, cmd.target);
        if (!node || !graph.isPowered(*node))
            return fail("no powered component '" + cmd.target + "'");
        graph.setUtilization(*node, cmd.values[0]);
        return success();
    }
    if (cmd.property == "fan") {
        if (cmd.values[0] < 0.0)
            return fail("fan flow must be non-negative");
        graph.setFanCfm(cmd.values[0]);
        return success();
    }
    if (cmd.property == "k") {
        auto edge = splitEdgeTarget(cmd.target);
        if (!graph.hasHeatEdge(edge->first, edge->second))
            return fail("no heat edge " + cmd.target);
        if (cmd.values[0] <= 0.0)
            return fail("k must be positive");
        graph.setHeatK(edge->first, edge->second, cmd.values[0]);
        return success();
    }
    if (cmd.property == "fraction") {
        auto edge = splitEdgeTarget(cmd.target);
        if (!graph.hasAirEdge(edge->first, edge->second))
            return fail("no air edge " + cmd.target);
        if (cmd.values[0] < 0.0 || cmd.values[0] > 1.0)
            return fail("fraction must be in [0, 1]");
        graph.setAirFraction(edge->first, edge->second, cmd.values[0]);
        return success();
    }
    if (cmd.property == "power") {
        auto node = solver.tryResolveNode(cmd.machine, cmd.target);
        if (!node || !graph.isPowered(*node))
            return fail("no powered component '" + cmd.target + "'");
        if (cmd.values[0] < 0.0 || cmd.values[1] < cmd.values[0])
            return fail("power range must satisfy 0 <= min <= max");
        graph.setPowerRange(*node, cmd.values[0], cmd.values[1]);
        return success();
    }
    return fail("unknown property '" + cmd.property + "'");
}

FiddleResult
applyLine(core::Solver &solver, const std::string &line)
{
    std::string error;
    auto cmd = parseCommand(line, &error);
    if (!cmd)
        return fail(error);
    return apply(solver, *cmd);
}

} // namespace fiddle
} // namespace mercury
