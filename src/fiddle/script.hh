/**
 * @file
 * Fiddle scripts (the paper's Figure 4): shell-style files whose only
 * significant lines are `sleep <seconds>` and `fiddle <command...>`.
 * A script is parsed into (time, command) pairs and can be scheduled
 * onto the discrete-event simulator, so an emergency scenario is both
 * human-readable and exactly repeatable.
 *
 *   #!/bin/bash
 *   sleep 100
 *   fiddle machine1 temperature inlet 30
 *   sleep 200
 *   fiddle machine1 temperature inlet 21.6
 */

#ifndef MERCURY_FIDDLE_SCRIPT_HH
#define MERCURY_FIDDLE_SCRIPT_HH

#include <string>
#include <vector>

#include "fiddle/command.hh"
#include "sim/simulator.hh"

namespace mercury {

namespace core {
class Solver;
} // namespace core

namespace fiddle {

/** One command with its firing time (seconds from script start). */
struct TimedCommand
{
    double time = 0.0;
    FiddleCommand command;
};

/**
 * A parsed fiddle script.
 */
class FiddleScript
{
  public:
    /**
     * Parse script text. Shebang lines, blank lines and `#` comments
     * are ignored. Problems are appended to @p errors (when non-null);
     * well-formed lines are kept even when other lines are broken.
     */
    static FiddleScript parse(const std::string &text,
                              std::vector<std::string> *errors = nullptr);

    /** Load and parse from a file; fatal on I/O or parse errors. */
    static FiddleScript loadFile(const std::string &path);

    const std::vector<TimedCommand> &commands() const { return commands_; }
    bool empty() const { return commands_.empty(); }

    /** Total scripted duration (time of the last command). */
    double duration() const;

    /**
     * Schedule every command on @p simulator (relative to its current
     * time) against @p solver. Failures are logged as warnings at fire
     * time; they do not stop the run.
     */
    void scheduleOn(sim::Simulator &simulator, core::Solver &solver) const;

  private:
    std::vector<TimedCommand> commands_;
};

} // namespace fiddle
} // namespace mercury

#endif // MERCURY_FIDDLE_SCRIPT_HH
