/**
 * @file
 * CPU-local thermal management by voltage/frequency scaling — the
 * hardware technique Section 4.3 contrasts with Freon's "remote
 * throttling". The governor watches its own CPU temperature and steps
 * through a discrete frequency ladder: scaling down cuts the CPU's
 * power draw (~f^3 with voltage tracking frequency) but inflates the
 * service time of every request, which is precisely the throughput
 * hazard the paper attributes to local scaling.
 *
 * Section 7 notes such behaviours "can be incorporated either
 * internally or externally (via fiddle)"; this governor is the
 * internal form and the ablation bench compares it against Freon.
 */

#ifndef MERCURY_CLUSTER_DVFS_HH
#define MERCURY_CLUSTER_DVFS_HH

#include <functional>
#include <vector>

#include "cluster/server_machine.hh"
#include "sim/simulator.hh"

namespace mercury {
namespace cluster {

/** Governor tuning. */
struct DvfsConfig
{
    /** Frequency ladder, relative to nominal, ascending. */
    std::vector<double> frequencies{0.6, 0.75, 0.9, 1.0};

    /** Step one level down when the CPU exceeds this [degC]. */
    double triggerTemperature = 74.0;

    /** Step one level up when the CPU drops below this [degC]. */
    double releaseTemperature = 70.0;

    /** Evaluation period [s]; hardware reacts much faster than
     *  Freon's one-minute loop. */
    double periodSeconds = 5.0;
};

/**
 * Per-machine DVFS governor.
 */
class DvfsGovernor
{
  public:
    /** Reads this machine's CPU temperature [degC]. */
    using ReadTemperatureFn = std::function<double()>;

    /** Applies a new relative frequency to the thermal model (e.g.
     *  rescales the Mercury CPU power range). */
    using ApplyFrequencyFn = std::function<void(double)>;

    DvfsGovernor(sim::Simulator &simulator, ServerMachine &machine,
                 ReadTemperatureFn read, ApplyFrequencyFn apply,
                 DvfsConfig config = {});

    /** Begin periodic evaluation. */
    void start();

    /** One evaluation (exposed for tests). */
    void evaluate();

    /** Current relative frequency. */
    double frequency() const;

    /** Ladder index (0 = slowest). */
    int level() const { return level_; }

    /** Number of downward transitions taken. */
    uint64_t throttleEvents() const { return throttleEvents_; }

  private:
    void applyLevel();

    sim::Simulator &simulator_;
    ServerMachine &machine_;
    ReadTemperatureFn read_;
    ApplyFrequencyFn applyFn_;
    DvfsConfig config_;
    int level_ = 0;
    uint64_t throttleEvents_ = 0;
    bool started_ = false;
};

} // namespace cluster
} // namespace mercury

#endif // MERCURY_CLUSTER_DVFS_HH
