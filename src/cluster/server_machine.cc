#include "cluster/server_machine.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mercury {
namespace cluster {

ServerMachine::ServerMachine(sim::Simulator &simulator, std::string name,
                             ServerConfig config)
    : simulator_(simulator), name_(std::move(name)), config_(config)
{
    if (config_.maxConnections <= 0)
        MERCURY_PANIC("ServerMachine: non-positive connection limit");
    lastSampleTime_ = simulator_.nowSeconds();
}

void
ServerMachine::enterState(PowerState next)
{
    if (state_ == next)
        return;
    state_ = next;
    if (stateFn_)
        stateFn_(*this, next);
}

bool
ServerMachine::offer(const Request &request)
{
    double now = simulator_.nowSeconds();
    if (state_ != PowerState::On) {
        ++dropped_;
        if (completion_)
            completion_(*this, request, RequestOutcome::DroppedNoServer);
        return false;
    }
    if (active_ >= config_.maxConnections) {
        ++dropped_;
        if (completion_)
            completion_(*this, request, RequestOutcome::DroppedOverload);
        return false;
    }

    // CPU and disk are modelled as parallel unit-rate FIFO queues; the
    // request completes when the slower one finishes its share.
    double cpu_start = std::max(now, cpuFreeAt_);
    double disk_start = std::max(now, diskFreeAt_);
    double queueing = std::max(cpu_start - now, disk_start - now);
    if (queueing > config_.maxQueueSeconds) {
        ++dropped_;
        if (completion_)
            completion_(*this, request, RequestOutcome::DroppedOverload);
        return false;
    }

    double cpu_demand = request.cpuSeconds / cpuSpeed_;
    double cpu_end = cpu_start + cpu_demand;
    double disk_end = disk_start + request.diskSeconds;
    cpuFreeAt_ = cpu_end;
    diskFreeAt_ = disk_end;
    cpuBusyBefore_ += cpu_demand; // total scheduled busy time
    diskBusyBefore_ += request.diskSeconds;

    ++active_;
    double completion_time = std::max(cpu_end, disk_end);
    Request copy = request;
    simulator_.at(sim::seconds(completion_time),
                  [this, copy] { finishRequest(copy); });
    return true;
}

void
ServerMachine::finishRequest(const Request &request)
{
    --active_;
    ++served_;
    double latency = simulator_.nowSeconds() - request.arrivalTime;
    if (latency >= 0.0) {
        latencyStats_.add(latency);
        latencyHistogram_.add(latency);
    }
    if (completion_)
        completion_(*this, request, RequestOutcome::Completed);
    if (state_ == PowerState::Draining && active_ == 0)
        enterState(PowerState::Off);
}

void
ServerMachine::setCpuSpeed(double relative)
{
    if (relative <= 0.0 || relative > 1.0)
        MERCURY_PANIC("ServerMachine: cpu speed ", relative,
                      " outside (0, 1]");
    cpuSpeed_ = relative;
}

void
ServerMachine::beginShutdown()
{
    if (state_ != PowerState::On)
        return;
    if (active_ == 0) {
        enterState(PowerState::Off);
    } else {
        enterState(PowerState::Draining);
    }
}

void
ServerMachine::powerOn()
{
    if (state_ != PowerState::Off)
        return;
    enterState(PowerState::Booting);
    bootEvent_ = simulator_.after(
        sim::seconds(config_.bootSeconds), [this] {
            if (state_ == PowerState::Booting)
                enterState(PowerState::On);
        });
}

double
ServerMachine::busyUpTo(double free_at, double busy_accum) const
{
    // All work was scheduled in the past, and pending intervals form a
    // contiguous chain ending at free_at, so the not-yet-elapsed part
    // of the scheduled busy time is exactly max(0, free_at - now).
    double now = simulator_.nowSeconds();
    return busy_accum - std::max(0.0, free_at - now);
}

ServerMachine::UtilizationSample
ServerMachine::sampleUtilization()
{
    double now = simulator_.nowSeconds();
    double window = now - lastSampleTime_;
    UtilizationSample sample;
    double cpu_busy_now = busyUpTo(cpuFreeAt_, cpuBusyBefore_);
    double disk_busy_now = busyUpTo(diskFreeAt_, diskBusyBefore_);
    if (window > 1e-12) {
        sample.cpu = std::clamp((cpu_busy_now - lastCpuBusy_) / window,
                                0.0, 1.0);
        sample.disk = std::clamp((disk_busy_now - lastDiskBusy_) / window,
                                 0.0, 1.0);
    }
    lastCpuBusy_ = cpu_busy_now;
    lastDiskBusy_ = disk_busy_now;
    lastSampleTime_ = now;
    return sample;
}

} // namespace cluster
} // namespace mercury
