/**
 * @file
 * Request-level model of one Apache server machine.
 *
 * The CPU and the disk are each a FIFO queue served at unit rate (the
 * paper's servers are single-CPU Pentium IIIs with one SCSI disk): a
 * request occupies the CPU for its cpuSeconds, then the disk for its
 * diskSeconds. Utilizations reported to monitord are exact busy-time
 * fractions over the sampling interval — precisely what /proc would
 * have shown. Requests whose projected queueing delay exceeds the
 * configured patience are dropped (this is how the "traditional"
 * policy's 14% loss materialises when servers are powered off).
 *
 * Machines also have a power state machine (On/Booting/Draining/Off)
 * with a realistic boot delay, used by Freon-EC and the traditional
 * red-line policy.
 */

#ifndef MERCURY_CLUSTER_SERVER_MACHINE_HH
#define MERCURY_CLUSTER_SERVER_MACHINE_HH

#include <functional>
#include <string>

#include "cluster/request.hh"
#include "sim/simulator.hh"
#include "util/stats.hh"

namespace mercury {
namespace cluster {

/** Server tuning knobs. */
struct ServerConfig
{
    /** Hard cap on concurrent requests (Apache MaxClients-like). */
    int maxConnections = 512;

    /** Drop a request whose queueing delay would exceed this [s]. */
    double maxQueueSeconds = 8.0;

    /** Boot latency: power-on to accepting connections [s]. Turning
     *  on a server "takes quite some time" (Section 4.2). */
    double bootSeconds = 90.0;
};

/** Power states. */
enum class PowerState {
    On,
    Booting,
    Draining, //!< refusing new work, finishing current connections
    Off
};

/**
 * One server machine.
 */
class ServerMachine
{
  public:
    /** Called when a request reaches a terminal state. */
    using CompletionFn =
        std::function<void(const ServerMachine &, const Request &,
                           RequestOutcome)>;

    ServerMachine(sim::Simulator &simulator, std::string name,
                  ServerConfig config = {});

    const std::string &name() const { return name_; }

    /** Install the completion callback (the load balancer's). */
    void setCompletionFn(CompletionFn fn) { completion_ = std::move(fn); }

    /** @name Request path */
    /// @{

    /**
     * Accept a request. Returns false (and reports the outcome via the
     * callback) when the machine is not On, its connection limit is
     * reached, or its queues are hopelessly long.
     */
    bool offer(const Request &request);

    /** Requests currently inside the server (queued or in service). */
    int activeConnections() const { return active_; }

    /// @}
    /** @name Power management */
    /// @{

    PowerState powerState() const { return state_; }
    bool isOn() const { return state_ == PowerState::On; }
    bool isOff() const { return state_ == PowerState::Off; }

    /**
     * Begin shutdown: stop accepting, let current connections finish,
     * then power off (LVS quiescence, Section 4.2). Immediate when
     * idle. No-op unless On.
     */
    void beginShutdown();

    /** Power on; ready after bootSeconds. No-op unless Off. */
    void powerOn();

    /** Called on power-state transitions (Freon-EC bookkeeping). */
    using StateFn = std::function<void(const ServerMachine &, PowerState)>;
    void setStateFn(StateFn fn) { stateFn_ = std::move(fn); }

    /// @}
    /** @name CPU speed (DVFS) */
    /// @{

    /**
     * Relative CPU speed in (0, 1]; incoming requests' CPU demand is
     * inflated by 1/speed (already-queued work is unaffected, like a
     * frequency change that applies from the next dispatch).
     */
    void setCpuSpeed(double relative);
    double cpuSpeed() const { return cpuSpeed_; }

    /// @}
    /** @name Utilization accounting (monitord's view) */
    /// @{

    /**
     * CPU and disk utilization since the previous call (busy-time
     * fraction in [0, 1]). First call covers time from construction.
     */
    struct UtilizationSample
    {
        double cpu = 0.0;
        double disk = 0.0;
    };
    UtilizationSample sampleUtilization();

    /// @}
    /** @name Statistics */
    /// @{
    uint64_t served() const { return served_; }
    uint64_t dropped() const { return dropped_; }

    /** Completion latency (completion - arrival) summary [s]. */
    const RunningStats &latencyStats() const { return latencyStats_; }

    /** Latency distribution [s], 10 ms bins up to 20 s. */
    const Histogram &latencyHistogram() const { return latencyHistogram_; }
    /// @}

  private:
    void finishRequest(const Request &request);
    void enterState(PowerState next);

    /** Busy seconds accumulated up to `now` for one resource. */
    double busyUpTo(double free_at, double busy_accum) const;

    sim::Simulator &simulator_;
    std::string name_;
    ServerConfig config_;
    CompletionFn completion_;
    StateFn stateFn_;

    PowerState state_ = PowerState::On;
    double cpuSpeed_ = 1.0;
    int active_ = 0;
    uint64_t served_ = 0;
    uint64_t dropped_ = 0;
    RunningStats latencyStats_;
    Histogram latencyHistogram_{0.0, 20.0, 2000};

    // Single-server FIFO queues: the next instant each resource frees.
    double cpuFreeAt_ = 0.0;
    double diskFreeAt_ = 0.0;

    // Busy-time integration for utilization sampling. Busy seconds
    // are accounted when work is *scheduled* (the interval is known
    // then); busyUpTo() subtracts the not-yet-elapsed tail.
    double cpuBusyBefore_ = 0.0;  // total scheduled CPU busy seconds
    double diskBusyBefore_ = 0.0; // total scheduled disk busy seconds
    double lastCpuBusy_ = 0.0;    // busyUpTo at the previous sample
    double lastDiskBusy_ = 0.0;
    double lastSampleTime_ = 0.0;

    sim::EventId bootEvent_ = 0;
};

} // namespace cluster
} // namespace mercury

#endif // MERCURY_CLUSTER_SERVER_MACHINE_HH
