#include "cluster/thermal_bridge.hh"

#include <cmath>

#include "util/logging.hh"

namespace mercury {
namespace cluster {

namespace {

/** Samples a simulated ServerMachine for monitord. */
class ServerSource : public monitor::UtilizationSource
{
  public:
    explicit ServerSource(ServerMachine &server) : server_(server) {}

    std::vector<monitor::Reading>
    sample(double) override
    {
        ServerMachine::UtilizationSample sample =
            server_.sampleUtilization();
        return {{"cpu", sample.cpu}, {"disk", sample.disk}};
    }

  private:
    ServerMachine &server_;
};

} // namespace

ThermalBridge::ThermalBridge(sim::Simulator &simulator, core::Solver &solver)
    : simulator_(simulator), solver_(solver), service_(solver)
{
}

void
ThermalBridge::attach(ServerMachine &server, const core::MachineSpec &spec)
{
    if (started_)
        MERCURY_PANIC("ThermalBridge: attach() after start()");
    if (server.name() != spec.name)
        MERCURY_PANIC("ThermalBridge: server '", server.name(),
                      "' vs spec '", spec.name, "'");
    if (!solver_.hasMachine(spec.name))
        MERCURY_PANIC("ThermalBridge: solver has no machine '", spec.name,
                      "'");

    auto attachment = std::make_unique<Attachment>();
    attachment->server = &server;
    attachment->spec = spec;
    attachment->monitord = std::make_unique<monitor::Monitord>(
        spec.name, std::make_unique<ServerSource>(server),
        monitor::Monitord::serviceSink(service_));

    Attachment *raw = attachment.get();
    server.setStateFn([this, raw](const ServerMachine &,
                                  PowerState state) {
        applyPowerState(*raw, state);
    });

    attachments_.push_back(std::move(attachment));
}

void
ThermalBridge::applyPowerState(const Attachment &attachment,
                               PowerState state)
{
    core::ThermalGraph &graph = solver_.machine(attachment.spec.name);
    bool powered = state != PowerState::Off;
    for (const core::NodeSpec &node : attachment.spec.nodes) {
        if (!node.hasPower)
            continue;
        if (powered) {
            graph.setPowerRange(node.name, node.minPower, node.maxPower);
        } else {
            // Split the standby trickle across the PSU only; every
            // other component is fully dark.
            bool is_psu = node.name == "ps";
            double standby = is_psu ? kStandbyPower : 0.0;
            graph.setPowerRange(node.name, standby, standby);
            graph.setUtilization(node.name, 0.0);
        }
    }
}

void
ThermalBridge::start(double period_seconds)
{
    if (started_)
        MERCURY_PANIC("ThermalBridge: start() called twice");
    if (std::abs(period_seconds - solver_.iterationSeconds()) > 1e-9) {
        MERCURY_PANIC("ThermalBridge: period ", period_seconds,
                      " does not match solver iteration ",
                      solver_.iterationSeconds());
    }
    started_ = true;
    simulator_.every(sim::seconds(period_seconds), [this] {
        double now = simulator_.nowSeconds();
        for (auto &attachment : attachments_)
            attachment->monitord->tick(now);
        solver_.iterate();
        return true;
    });
}

} // namespace cluster
} // namespace mercury
