#include "cluster/dvfs.hh"

#include "util/logging.hh"

namespace mercury {
namespace cluster {

DvfsGovernor::DvfsGovernor(sim::Simulator &simulator, ServerMachine &machine,
                           ReadTemperatureFn read, ApplyFrequencyFn apply,
                           DvfsConfig config)
    : simulator_(simulator), machine_(machine), read_(std::move(read)),
      applyFn_(std::move(apply)), config_(std::move(config))
{
    if (!read_)
        MERCURY_PANIC("DvfsGovernor: temperature reader required");
    if (config_.frequencies.empty())
        MERCURY_PANIC("DvfsGovernor: empty frequency ladder");
    for (size_t i = 1; i < config_.frequencies.size(); ++i) {
        if (config_.frequencies[i] <= config_.frequencies[i - 1])
            MERCURY_PANIC("DvfsGovernor: ladder must ascend");
    }
    if (config_.releaseTemperature >= config_.triggerTemperature)
        MERCURY_PANIC("DvfsGovernor: release must sit below trigger");
    level_ = static_cast<int>(config_.frequencies.size()) - 1;
    applyLevel();
}

double
DvfsGovernor::frequency() const
{
    return config_.frequencies[static_cast<size_t>(level_)];
}

void
DvfsGovernor::applyLevel()
{
    machine_.setCpuSpeed(frequency());
    if (applyFn_)
        applyFn_(frequency());
}

void
DvfsGovernor::evaluate()
{
    double temperature = read_();
    int top = static_cast<int>(config_.frequencies.size()) - 1;
    if (temperature > config_.triggerTemperature && level_ > 0) {
        --level_;
        ++throttleEvents_;
        applyLevel();
    } else if (temperature < config_.releaseTemperature && level_ < top) {
        ++level_;
        applyLevel();
    }
}

void
DvfsGovernor::start()
{
    if (started_)
        MERCURY_PANIC("DvfsGovernor: start() called twice");
    started_ = true;
    simulator_.every(sim::seconds(config_.periodSeconds), [this] {
        evaluate();
        return true;
    });
}

} // namespace cluster
} // namespace mercury
