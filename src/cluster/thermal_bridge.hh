/**
 * @file
 * Glue between the discrete-event cluster and the Mercury solver.
 *
 * In the paper's testbed each server runs monitord, which ships
 * utilization updates to the solver once per second. Here the same
 * monitord code runs against a source that samples the simulated
 * ServerMachine, delivering the same 128-byte packets to the same
 * SolverService — only the clock is simulated.
 *
 * The bridge also models the thermal effect of power cycling: a
 * machine that Freon-EC powers off stops dissipating (its Mercury
 * power ranges drop to standby levels), which is what lets the paper's
 * Figure 12 machines cool by ~10 degC while off.
 */

#ifndef MERCURY_CLUSTER_THERMAL_BRIDGE_HH
#define MERCURY_CLUSTER_THERMAL_BRIDGE_HH

#include <memory>
#include <string>
#include <vector>

#include "cluster/server_machine.hh"
#include "core/solver.hh"
#include "core/spec.hh"
#include "monitor/monitord.hh"
#include "proto/solver_service.hh"
#include "sim/simulator.hh"

namespace mercury {
namespace cluster {

/**
 * Couples ServerMachines to a Solver inside one simulation.
 */
class ThermalBridge
{
  public:
    /** Standby power once a machine is off [W] (PSU trickle). */
    static constexpr double kStandbyPower = 2.0;

    ThermalBridge(sim::Simulator &simulator, core::Solver &solver);

    /**
     * Couple one server to its Mercury machine model. @p spec must be
     * the spec the machine was added to the solver with (it supplies
     * the powered nodes' nominal ranges for restore-on-boot).
     */
    void attach(ServerMachine &server, const core::MachineSpec &spec);

    /**
     * Start the once-per-period sampling/iteration loop. The period
     * must match the solver's iteration period.
     */
    void start(double period_seconds = 1.0);

    /** The message-level service (for sensor clients / tempd). */
    proto::SolverService &service() { return service_; }

    core::Solver &solver() { return solver_; }

  private:
    struct Attachment
    {
        ServerMachine *server = nullptr;
        core::MachineSpec spec;
        std::unique_ptr<monitor::Monitord> monitord;
    };

    void applyPowerState(const Attachment &attachment, PowerState state);

    sim::Simulator &simulator_;
    core::Solver &solver_;
    proto::SolverService service_;
    std::vector<std::unique_ptr<Attachment>> attachments_;
    bool started_ = false;
};

} // namespace cluster
} // namespace mercury

#endif // MERCURY_CLUSTER_THERMAL_BRIDGE_HH
