/**
 * @file
 * Web requests as the cluster simulation sees them. The paper's
 * workload mixes 70% static content with 30% dynamic CGI requests
 * that compute for 25 ms and produce a small reply (Section 5).
 */

#ifndef MERCURY_CLUSTER_REQUEST_HH
#define MERCURY_CLUSTER_REQUEST_HH

#include <cstdint>

namespace mercury {
namespace cluster {

/** One HTTP request. */
struct Request
{
    uint64_t id = 0;

    /** Arrival time at the load balancer [s since experiment start]. */
    double arrivalTime = 0.0;

    /** CPU demand [s] (the paper's CGI script computes for 25 ms). */
    double cpuSeconds = 0.0;

    /** Disk demand [s]; zero for cached static files. */
    double diskSeconds = 0.0;

    /** True for dynamic-content (CGI) requests. */
    bool dynamic = false;
};

/** Terminal states a request can reach. */
enum class RequestOutcome {
    Completed,     //!< served successfully
    DroppedNoServer,   //!< no enabled server could accept it
    DroppedOverload,   //!< server queue exceeded its limit
};

} // namespace cluster
} // namespace mercury

#endif // MERCURY_CLUSTER_REQUEST_HH
