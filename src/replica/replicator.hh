/**
 * @file
 * Primary-side replication: streams WAL records to hot standbys.
 *
 * Lives entirely on the solver thread (like the WAL itself): the
 * daemon offers each record as it appends it and calls poll() once per
 * loop pass, which drains the replication socket without blocking,
 * answers standby hellos, ships new records, go-back-N retransmits
 * past the cumulative ack on a short timer, and heartbeats the lease.
 * The sliding-window scheme is the monitord sender window inverted:
 * the primary keeps a bounded in-memory ring of recent records, and a
 * standby that falls further behind than the ring must re-seed from a
 * checkpoint (HelloStatus::HistoryUnavailable, see docs/operations.md).
 *
 * A standby constructs its Replicator inactive so the listener is
 * already bound (clients learn one address) but answers NotPrimary
 * until promotion flips it active.
 */

#ifndef MERCURY_REPLICA_REPLICATOR_HH
#define MERCURY_REPLICA_REPLICATOR_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/udp.hh"
#include "replica/wire.hh"

namespace mercury {
namespace replica {

class Replicator
{
  public:
    struct Config
    {
        /** Replication listener port; 0 picks an ephemeral port. */
        uint16_t port = 0;

        /** Heartbeat period toward each standby. Keep well under the
         *  lease (the lease tolerates several lost heartbeats). */
        double heartbeatSeconds = 0.5;

        /** Lease the standbys promote on; advertised in every
         *  HelloAck and heartbeat so both sides agree. */
        double leaseSeconds = 3.0;

        /** State hash cadence advertised to standbys (the daemon
         *  hashes at iteration multiples of this). */
        uint32_t hashIterations = 32;

        /** Records retained for retransmission. A standby further
         *  behind than this must re-seed from a checkpoint. */
        size_t retainRecords = 8192;

        /** Go-back-N retransmit timer: resend past the cumulative ack
         *  when no ack progress for this long. */
        double retransmitSeconds = 0.25;
    };

    Replicator(Config config, uint64_t topology_hash,
               uint64_t base_iteration, uint64_t base_sequence);

    uint16_t port() const { return socket_.localPort(); }

    /** Inactive replicators answer NotPrimary (standby role). */
    void setActive(bool active) { active_ = active; }
    bool active() const { return active_; }

    /** @name Solver-thread API */
    /// @{

    /** Offer one just-appended record (sequences must be contiguous). */
    void offer(const WalRecord &record);

    /** Record the daemon's state hash at @p iteration (kept in a small
     *  ring to verify standby ack echoes against). */
    void noteHash(uint64_t iteration, uint64_t hash);

    /** The WAL rotated: a fresh generation starts here. New fresh
     *  standbys must seed from the checkpoint at @p start_iteration. */
    void noteRotation(uint64_t start_iteration, uint64_t start_sequence);

    /** Promotion path: adopt the stream position inherited from the
     *  dead primary before going active. */
    void setStreamState(uint64_t next_seq, uint64_t base_iteration,
                        uint64_t base_sequence);

    /** Drain the socket, answer hellos/acks, ship + retransmit
     *  records, heartbeat the lease. Never blocks. */
    void poll(uint64_t primary_iteration);

    /// @}

    /** @name Observability (solver thread) */
    /// @{
    uint64_t appendedSeq() const { return nextSeq_ - 1; }
    uint64_t ackedSeq() const; //!< min over live standbys; 0 when none
    size_t standbyCount() const { return sessions_.size(); }
    uint64_t recordsSent() const { return recordsSent_; }
    uint64_t retransmits() const { return retransmits_; }
    int lastHashVerdict() const { return lastHashVerdict_; }
    uint64_t hashChecks() const { return hashChecks_; }
    uint64_t hashMismatches() const { return hashMismatches_; }
    uint64_t standbyIteration() const; //!< min over live standbys
    /// @}

  private:
    using Clock = std::chrono::steady_clock;

    struct Session
    {
        net::Endpoint peer;
        uint64_t ackedSeq = 0;
        uint64_t sentSeq = 0;
        uint64_t standbyIteration = 0;
        Clock::time_point lastAckTime;
        Clock::time_point lastSendTime;
        Clock::time_point lastHeartbeatTime;
        Clock::time_point lastRetransmitTime;
    };

    /** The record with sequence @p seq, or null once it left the
     *  ring. */
    const WalRecord *recordAt(uint64_t seq) const;

    void handleHello(const ReplicaHello &msg, const net::Endpoint &from);
    void handleAck(const ReplicaAck &msg, const net::Endpoint &from);
    void pumpSession(Session &session, uint64_t primary_iteration);
    void sendRecords(Session &session, uint64_t primary_iteration);

    Config config_;
    uint64_t topologyHash_;
    bool active_ = true;

    net::UdpSocket socket_;

    /** Retransmit ring: records [ringStartSeq_, nextSeq_). */
    std::deque<WalRecord> ring_;
    uint64_t ringStartSeq_ = 1;
    uint64_t nextSeq_ = 1;

    /** Current WAL generation (fresh standbys seed here). */
    uint64_t baseIteration_ = 0;
    uint64_t baseSequence_ = 1;

    /** Live sessions keyed by standby endpoint. */
    std::map<std::pair<uint32_t, uint16_t>, Session> sessions_;

    /** Recent state hashes by iteration, for verifying ack echoes. */
    std::vector<std::pair<uint64_t, uint64_t>> hashRing_;

    uint64_t recordsSent_ = 0;
    uint64_t retransmits_ = 0;
    uint64_t hashChecks_ = 0;
    uint64_t hashMismatches_ = 0;
    int lastHashVerdict_ = 0; //!< 1 ok, 0 unknown, -1 mismatch
};

} // namespace replica
} // namespace mercury

#endif // MERCURY_REPLICA_REPLICATOR_HH
