#include "replica/standby.hh"

#include "util/logging.hh"

namespace mercury {
namespace replica {

namespace {

/** Out-of-order buffer ceiling; far above the primary's retransmit
 *  ring, so only a hostile peer ever hits it. */
constexpr size_t kMaxPending = 65536;

const char *
helloStatusName(HelloStatus status)
{
    switch (status) {
    case HelloStatus::Ok:
        return "ok";
    case HelloStatus::NotPrimary:
        return "not-primary";
    case HelloStatus::TopologyMismatch:
        return "topology-mismatch";
    case HelloStatus::HistoryUnavailable:
        return "history-unavailable";
    }
    return "unknown";
}

} // namespace

StandbyClient::StandbyClient(Config config)
    : config_(std::move(config))
{
    auto address = net::resolveHost(config_.host);
    if (!address)
        fatal("standby: cannot resolve primary host '", config_.host,
              "'");
    primary_.address = *address;
    primary_.port = config_.port;
    socket_.bind(0);
    boot_ = Clock::now();
    leaseSeconds_ = config_.leaseSeconds;
    localHashes_.reserve(16);
}

void
StandbyClient::sendHello()
{
    ReplicaHello hello;
    hello.topologyHash = config_.topologyHash;
    hello.lastAppliedSeq = seeded_ ? nextApplySeq_ - 1 : 0;
    hello.standbyIteration =
        config_.localIteration ? config_.localIteration() : 0;
    std::vector<uint8_t> bytes = encodeReplica(hello);
    socket_.sendTo(primary_, bytes.data(), bytes.size());
    lastHelloSent_ = Clock::now();
}

void
StandbyClient::notePrimaryHash(uint64_t iteration, uint64_t hash,
                               uint8_t valid)
{
    if (!valid)
        return;
    primaryHashIteration_ = iteration;
    primaryHash_ = hash;
    primaryHashPending_ = true;
    checkPrimaryHash();
}

void
StandbyClient::checkPrimaryHash()
{
    if (!primaryHashPending_)
        return;
    for (const auto &[iteration, hash] : localHashes_) {
        if (iteration != primaryHashIteration_)
            continue;
        ++hashChecks_;
        if (hash == primaryHash_) {
            lastHashVerdict_ = 1;
        } else {
            lastHashVerdict_ = -1;
            ++hashMismatches_;
            warn("standby: state hash diverged from the primary at "
                 "iteration ", iteration,
                 " — this shadow is not bitwise-identical");
        }
        primaryHashPending_ = false;
        return;
    }
}

void
StandbyClient::handleMessage(const ReplicaMessage &message)
{
    everContacted_ = true;
    lastContact_ = Clock::now();

    if (const auto *ack = std::get_if<ReplicaHelloAck>(&message)) {
        if (ack->status != HelloStatus::Ok) {
            std::string refusal = helloStatusName(ack->status);
            if (refusal != lastRefusal_) {
                warn("standby: primary refused replication: ", refusal);
                lastRefusal_ = refusal;
            }
            return;
        }
        if (ack->leaseSeconds > 0.0)
            leaseSeconds_ = ack->leaseSeconds;
        primaryIteration_ = ack->primaryIteration;
        primaryNextSeq_ = ack->nextSeq;
        if (attached_)
            return; // duplicate ack for a retried hello
        if (!seeded_) {
            uint64_t local = config_.localIteration
                                 ? config_.localIteration()
                                 : 0;
            if (local != ack->baseIteration) {
                std::string refusal =
                    "seed-mismatch (local iteration " +
                    std::to_string(local) + ", primary generation base " +
                    std::to_string(ack->baseIteration) + ")";
                if (refusal != lastRefusal_) {
                    warn("standby: cannot attach: ", refusal,
                         "; re-seed from the primary's latest "
                         "checkpoint");
                    lastRefusal_ = refusal;
                }
                return;
            }
            nextApplySeq_ = ack->baseSequence;
            seeded_ = true;
        }
        attached_ = true;
        lastRefusal_.clear();
        inform("standby: attached to ", primary_.toString(),
               " at seq ", nextApplySeq_, ", primary iteration ",
               ack->primaryIteration, ", lease ", leaseSeconds_, " s");
        return;
    }
    if (const auto *records = std::get_if<ReplicaRecords>(&message)) {
        if (!attached_)
            return; // stream from a session we have not accepted yet
        primaryIteration_ = records->primaryIteration;
        primaryNextSeq_ = records->nextSeq;
        for (const WalRecord &record : records->records) {
            ++recordsReceived_;
            if (record.sequence < nextApplySeq_)
                continue; // retransmit overlap
            if (pending_.size() >= kMaxPending)
                break;
            pending_.emplace(record.sequence, record);
        }
        // A gap at the head means a lost datagram: ack immediately so
        // the primary's go-back-N timer has fresh evidence.
        if (!pending_.empty() &&
            pending_.begin()->first != nextApplySeq_)
            ackSoon_ = true;
        return;
    }
    if (const auto *beat = std::get_if<ReplicaHeartbeat>(&message)) {
        if (!attached_)
            return;
        primaryIteration_ = beat->primaryIteration;
        primaryNextSeq_ = beat->nextSeq;
        if (beat->leaseSeconds > 0.0)
            leaseSeconds_ = beat->leaseSeconds;
        notePrimaryHash(beat->hashIteration, beat->stateHash,
                        beat->hashValid);
        return;
    }
    // Hello/Ack arriving at a standby are peer bugs; drop.
}

void
StandbyClient::pump(double max_wait_seconds)
{
    if (!attached_) {
        auto now = Clock::now();
        if (lastHelloSent_ == Clock::time_point{} ||
            std::chrono::duration<double>(now - lastHelloSent_).count() >
                config_.helloSeconds)
            sendHello();
    }

    uint8_t buffers[net::UdpSocket::kMaxBatch][kReplicaDatagramMax];
    net::UdpSocket::RecvDatagram metas[net::UdpSocket::kMaxBatch];
    double wait = max_wait_seconds;
    for (int rounds = 0; rounds < 8; ++rounds) {
        size_t got = socket_.recvMany(buffers, kReplicaDatagramMax, metas,
                                      net::UdpSocket::kMaxBatch, wait);
        if (got == 0)
            break;
        wait = 0.0; // drain without blocking once traffic arrived
        for (size_t i = 0; i < got; ++i) {
            if (metas[i].from.address != primary_.address)
                continue; // replication speaks to one primary only
            auto message = decodeReplica(buffers[i], metas[i].length);
            if (message)
                handleMessage(*message);
        }
    }
}

const WalRecord *
StandbyClient::nextApplicable() const
{
    if (pending_.empty() || pending_.begin()->first != nextApplySeq_)
        return nullptr;
    return &pending_.begin()->second;
}

void
StandbyClient::markApplied()
{
    pending_.erase(pending_.begin());
    ++nextApplySeq_;
}

uint64_t
StandbyClient::safeStepIteration() const
{
    if (!attached_ || !pending_.empty() ||
        nextApplySeq_ != primaryNextSeq_)
        return 0;
    return primaryIteration_;
}

void
StandbyClient::noteLocalHash(uint64_t iteration, uint64_t hash)
{
    if (localHashes_.size() >= 16)
        localHashes_.erase(localHashes_.begin());
    localHashes_.emplace_back(iteration, hash);
    checkPrimaryHash();
}

uint64_t
StandbyClient::contiguousSeq() const
{
    uint64_t seq = nextApplySeq_ - 1;
    for (const auto &[pending_seq, record] : pending_) {
        (void)record;
        if (pending_seq != seq + 1)
            break;
        seq = pending_seq;
    }
    return seq;
}

void
StandbyClient::sendAck()
{
    ReplicaAck ack;
    ack.contiguousSeq = contiguousSeq();
    ack.appliedSeq = nextApplySeq_ - 1;
    ack.standbyIteration =
        config_.localIteration ? config_.localIteration() : 0;
    if (!localHashes_.empty() &&
        localHashes_.back().first != echoedHashIteration_) {
        ack.hashIteration = localHashes_.back().first;
        ack.stateHash = localHashes_.back().second;
        ack.hashValid = 1;
        echoedHashIteration_ = localHashes_.back().first;
    }
    std::vector<uint8_t> bytes = encodeReplica(ack);
    socket_.sendTo(primary_, bytes.data(), bytes.size());
    lastAckSent_ = Clock::now();
    ackSoon_ = false;
}

void
StandbyClient::maybeAck()
{
    if (!attached_)
        return;
    auto now = Clock::now();
    bool due =
        lastAckSent_ == Clock::time_point{} ||
        std::chrono::duration<double>(now - lastAckSent_).count() >
            config_.ackSeconds;
    if (ackSoon_ || due)
        sendAck();
}

bool
StandbyClient::leaseExpired() const
{
    auto now = Clock::now();
    if (everContacted_) {
        return std::chrono::duration<double>(now - lastContact_)
                   .count() > leaseSeconds_;
    }
    if (config_.graceSeconds <= 0.0)
        return false;
    return std::chrono::duration<double>(now - boot_).count() >
           config_.graceSeconds;
}

uint64_t
StandbyClient::lagRecords() const
{
    if (primaryNextSeq_ <= nextApplySeq_)
        return 0;
    return primaryNextSeq_ - nextApplySeq_;
}

double
StandbyClient::secondsSinceContact() const
{
    if (!everContacted_)
        return -1.0;
    return std::chrono::duration<double>(Clock::now() - lastContact_)
        .count();
}

std::string
StandbyClient::status() const
{
    if (attached_)
        return "attached";
    if (!lastRefusal_.empty())
        return lastRefusal_;
    return everContacted_ ? "detached" : "connecting";
}

} // namespace replica
} // namespace mercury
