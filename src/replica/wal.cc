#include "replica/wal.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/solver.hh"
#include "core/thermal_graph.hh"
#include "state/checkpoint.hh"
#include "util/logging.hh"

namespace mercury {
namespace replica {

namespace {

constexpr size_t kMaxWalFileBytes = 1u << 30; // 1 GiB

void
setError(std::string *error, std::string message)
{
    if (error)
        *error = std::move(message);
}

void
putU16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t
getU16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0]) |
           static_cast<uint16_t>(p[1]) << 8;
}

uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Software CRC-32C, byte-at-a-time over a lazily built table. Only
 *  runs on CPUs without SSE4.2. */
uint32_t
crc32cSoft(const uint8_t *data, size_t size)
{
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t crc = i;
            for (int b = 0; b < 8; ++b)
                crc = (crc >> 1) ^ (0x82f63b78u & (0u - (crc & 1)));
            t[i] = crc;
        }
        return t;
    }();
    uint32_t crc = 0xffffffffu;
    for (size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

__attribute__((target("sse4.2"))) uint32_t
crc32cHw(const uint8_t *data, size_t size)
{
    uint64_t crc = 0xffffffffu;
    while (size >= 8) {
        crc = __builtin_ia32_crc32di(crc, getU64(data));
        data += 8;
        size -= 8;
    }
    uint32_t crc32 = static_cast<uint32_t>(crc);
    while (size > 0) {
        crc32 = __builtin_ia32_crc32qi(crc32, *data);
        ++data;
        --size;
    }
    return crc32 ^ 0xffffffffu;
}

bool
haveSse42()
{
    static const bool have = __builtin_cpu_supports("sse4.2");
    return have;
}

#endif

} // namespace

uint32_t
crc32c(const uint8_t *data, size_t size)
{
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    if (haveSse42())
        return crc32cHw(data, size);
#endif
    return crc32cSoft(data, size);
}

void
appendRecordBytes(std::vector<uint8_t> &out, const WalRecord &record)
{
    size_t crc_at = out.size();
    putU32(out, 0); // CRC patched below
    size_t body_at = out.size();
    out.push_back(static_cast<uint8_t>(record.kind));
    out.push_back(0); // reserved
    putU16(out, static_cast<uint16_t>(record.payload.size()));
    putU64(out, record.sequence);
    putU64(out, record.iteration);
    out.insert(out.end(), record.payload.begin(), record.payload.end());
    uint32_t crc = crc32c(out.data() + body_at, out.size() - body_at);
    out[crc_at + 0] = static_cast<uint8_t>(crc);
    out[crc_at + 1] = static_cast<uint8_t>(crc >> 8);
    out[crc_at + 2] = static_cast<uint8_t>(crc >> 16);
    out[crc_at + 3] = static_cast<uint8_t>(crc >> 24);
}

size_t
parseRecord(const uint8_t *data, size_t size, WalRecord *out,
            std::string *error)
{
    if (size < kWalRecordOverhead) {
        setError(error, "truncated record header");
        return 0;
    }
    uint32_t crc = getU32(data);
    uint8_t kind = data[4];
    uint16_t payload_length = getU16(data + 6);
    if (payload_length > kWalMaxPayload) {
        setError(error, "absurd payload length " +
                            std::to_string(payload_length));
        return 0;
    }
    size_t total = kWalRecordOverhead + payload_length;
    if (size < total) {
        setError(error, "truncated record payload");
        return 0;
    }
    if (crc32c(data + 4, total - 4) != crc) {
        setError(error, "record CRC mismatch");
        return 0;
    }
    if (kind < 1 || kind > 3) {
        setError(error, "unknown record kind " + std::to_string(kind));
        return 0;
    }
    out->kind = static_cast<WalRecordKind>(kind);
    out->sequence = getU64(data + 8);
    out->iteration = getU64(data + 16);
    out->payload.assign(data + kWalRecordOverhead, data + total);
    return total;
}

std::vector<uint8_t>
encodeWalHeader(const WalHeader &header)
{
    std::vector<uint8_t> out;
    out.reserve(kWalHeaderBytes);
    putU32(out, kWalMagic);
    putU32(out, kWalVersion);
    putU64(out, header.topologyHash);
    putU64(out, header.startIteration);
    putU64(out, header.startSequence);
    return out;
}

bool
decodeWalHeader(const uint8_t *data, size_t size, WalHeader *out,
                std::string *error)
{
    if (size < kWalHeaderBytes) {
        setError(error, "truncated header (" + std::to_string(size) +
                            " bytes)");
        return false;
    }
    if (getU32(data) != kWalMagic) {
        setError(error, "bad magic");
        return false;
    }
    uint32_t version = getU32(data + 4);
    if (version != kWalVersion) {
        setError(error, "unsupported version " + std::to_string(version));
        return false;
    }
    out->topologyHash = getU64(data + 8);
    out->startIteration = getU64(data + 16);
    out->startSequence = getU64(data + 24);
    return true;
}

bool
readWalFile(const std::string &path, WalReadResult *out,
            std::string *error)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setError(error, "open " + path + ": " + std::strerror(errno));
        return false;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        setError(error, "stat " + path + ": " + std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (st.st_size < 0 ||
        static_cast<size_t>(st.st_size) > kMaxWalFileBytes) {
        setError(error,
                 "implausible file size " + std::to_string(st.st_size));
        ::close(fd);
        return false;
    }
    std::vector<uint8_t> bytes(static_cast<size_t>(st.st_size));
    size_t got = 0;
    while (got < bytes.size()) {
        ssize_t n = ::read(fd, bytes.data() + got, bytes.size() - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "read " + path + ": " + std::strerror(errno));
            ::close(fd);
            return false;
        }
        if (n == 0)
            break; // shrank underneath us; the tail scan copes
        got += static_cast<size_t>(n);
    }
    ::close(fd);

    WalReadResult result;
    if (!decodeWalHeader(bytes.data(), got, &result.header, error))
        return false;

    size_t offset = kWalHeaderBytes;
    uint64_t expect = result.header.startSequence;
    uint64_t last_iteration = result.header.startIteration;
    while (offset < got) {
        WalRecord record;
        std::string why;
        size_t consumed =
            parseRecord(bytes.data() + offset, got - offset, &record, &why);
        if (consumed == 0) {
            result.tailOk = false;
            result.tailError =
                why + " at offset " + std::to_string(offset);
            break;
        }
        // A sequence or iteration break after a clean CRC means the
        // tail of a previous generation leaked past a torn rotation;
        // stop at the break like any other tear.
        if (record.sequence != expect) {
            result.tailOk = false;
            result.tailError =
                "sequence break (want " + std::to_string(expect) +
                ", record carries " + std::to_string(record.sequence) +
                ") at offset " + std::to_string(offset);
            break;
        }
        if (record.iteration < last_iteration) {
            result.tailOk = false;
            result.tailError = "iteration went backwards at offset " +
                               std::to_string(offset);
            break;
        }
        last_iteration = record.iteration;
        ++expect;
        offset += consumed;
        result.records.push_back(std::move(record));
    }
    *out = std::move(result);
    return true;
}

WalWriter::WalWriter(int fd, std::string path)
    : fd_(fd), path_(std::move(path))
{
    buffer_.reserve(64 * 1024);
}

WalWriter::~WalWriter()
{
    if (fd_ >= 0) {
        sync();
        ::close(fd_);
    }
}

std::unique_ptr<WalWriter>
WalWriter::create(const std::string &path, const WalHeader &header,
                  std::string *error)
{
    // Keep a crashed predecessor's log around for post-mortems.
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) {
        std::string old = path + ".old";
        if (::rename(path.c_str(), old.c_str()) != 0) {
            setError(error, "rename " + path + " -> " + old + ": " +
                                std::strerror(errno));
            return nullptr;
        }
    }
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setError(error, "open " + path + ": " + std::strerror(errno));
        return nullptr;
    }
    std::unique_ptr<WalWriter> writer(new WalWriter(fd, path));
    std::vector<uint8_t> bytes = encodeWalHeader(header);
    writer->buffer_.insert(writer->buffer_.end(), bytes.begin(),
                           bytes.end());
    if (!writer->flush()) {
        setError(error, "write " + path + ": " + std::strerror(errno));
        return nullptr;
    }
    return writer;
}

void
WalWriter::append(const WalRecord &record)
{
    if (failed_)
        return;
    size_t before = buffer_.size();
    appendRecordBytes(buffer_, record);
    ++recordsAppended_;
    bytesAppended_ += buffer_.size() - before;
}

bool
WalWriter::flush()
{
    if (failed_)
        return false;
    size_t written = 0;
    while (written < buffer_.size()) {
        ssize_t n = ::write(fd_, buffer_.data() + written,
                            buffer_.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            failed_ = true;
            return false;
        }
        written += static_cast<size_t>(n);
    }
    buffer_.clear();
    return true;
}

bool
WalWriter::sync()
{
    if (!flush())
        return false;
    if (::fsync(fd_) != 0) {
        failed_ = true;
        return false;
    }
    return true;
}

bool
WalWriter::rotate(const WalHeader &header, std::string *error)
{
    if (!sync()) {
        setError(error, "sync " + path_ + ": " + std::strerror(errno));
        return false;
    }
    ::close(fd_);
    fd_ = -1;
    std::string old = path_ + ".old";
    if (::rename(path_.c_str(), old.c_str()) != 0) {
        setError(error, "rename " + path_ + " -> " + old + ": " +
                            std::strerror(errno));
        failed_ = true;
        return false;
    }
    int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setError(error, "open " + path_ + ": " + std::strerror(errno));
        failed_ = true;
        return false;
    }
    fd_ = fd;
    std::vector<uint8_t> bytes = encodeWalHeader(header);
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
    if (!flush()) {
        setError(error, "write " + path_ + ": " + std::strerror(errno));
        return false;
    }
    return true;
}

bool
replayWal(core::Solver &solver, const WalReadResult &wal,
          const std::function<void(const WalRecord &)> &apply,
          uint64_t replay_to_iteration, ReplayStats *stats,
          std::string *error)
{
    if (wal.header.topologyHash != state::topologyHash(solver)) {
        setError(error, "WAL topology hash does not match this solver");
        return false;
    }
    ReplayStats local;
    for (const WalRecord &record : wal.records) {
        // Records from before the restored checkpoint are already
        // folded into it; mutations are absolute sets, so records at
        // exactly the checkpoint's iteration re-apply harmlessly.
        if (record.iteration < solver.iterations()) {
            if (record.kind == WalRecordKind::Mutation)
                ++local.skipped;
            else
                ++local.markers;
            continue;
        }
        // Every record kind steps the solver: a marker (checkpoint or
        // promotion) pins the iteration the daemon had reached, and the
        // next generation's WAL starts exactly there.
        while (solver.iterations() < record.iteration)
            solver.iterate();
        if (record.kind != WalRecordKind::Mutation) {
            ++local.markers;
            continue;
        }
        apply(record);
        ++local.applied;
    }
    while (solver.iterations() < replay_to_iteration)
        solver.iterate();
    local.finalIteration = solver.iterations();
    if (stats)
        *stats = local;
    return true;
}

uint64_t
stateHash(const core::Solver &solver)
{
    // FNV-1a over the raw bit patterns: this certifies bitwise
    // identity between primary and standby, so no tolerance anywhere.
    uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            hash ^= static_cast<uint8_t>(v >> (8 * i));
            hash *= 1099511628211ull;
        }
    };
    mix(solver.iterations());
    for (const std::string &name : solver.machineNames()) {
        const core::ThermalGraph &machine = solver.machine(name);
        for (double t : machine.temperatures()) {
            uint64_t bits;
            std::memcpy(&bits, &t, sizeof(bits));
            mix(bits);
        }
        uint64_t energy_bits;
        double energy = machine.energyConsumed();
        std::memcpy(&energy_bits, &energy, sizeof(energy_bits));
        mix(energy_bits);
    }
    return hash;
}

} // namespace replica
} // namespace mercury
