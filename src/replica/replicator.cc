#include "replica/replicator.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mercury {
namespace replica {

namespace {

/** Cap on records shipped to one standby per poll() pass, so a
 *  rejoining standby cannot monopolize an iteration boundary. */
constexpr size_t kMaxRecordsPerPoll = 512;

/** Sessions silent this many leases are dead standbys; forget them.
 *  Generous on purpose: dropping a live session stops heartbeats and
 *  would push the standby into a split-brain promotion. */
constexpr double kSessionExpiryLeases = 10.0;

std::pair<uint32_t, uint16_t>
keyOf(const net::Endpoint &peer)
{
    return {peer.address, peer.port};
}

} // namespace

Replicator::Replicator(Config config, uint64_t topology_hash,
                       uint64_t base_iteration, uint64_t base_sequence)
    : config_(config), topologyHash_(topology_hash),
      baseIteration_(base_iteration), baseSequence_(base_sequence)
{
    ringStartSeq_ = base_sequence;
    nextSeq_ = base_sequence;
    hashRing_.reserve(16);
    socket_.bind(config_.port);
}

void
Replicator::offer(const WalRecord &record)
{
    ring_.push_back(record);
    nextSeq_ = record.sequence + 1;
    while (ring_.size() > config_.retainRecords) {
        ring_.pop_front();
        ++ringStartSeq_;
    }
}

void
Replicator::noteHash(uint64_t iteration, uint64_t hash)
{
    if (hashRing_.size() >= 16)
        hashRing_.erase(hashRing_.begin());
    hashRing_.emplace_back(iteration, hash);
}

void
Replicator::noteRotation(uint64_t start_iteration, uint64_t start_sequence)
{
    baseIteration_ = start_iteration;
    baseSequence_ = start_sequence;
}

void
Replicator::setStreamState(uint64_t next_seq, uint64_t base_iteration,
                           uint64_t base_sequence)
{
    ring_.clear();
    ringStartSeq_ = next_seq;
    nextSeq_ = next_seq;
    baseIteration_ = base_iteration;
    baseSequence_ = base_sequence;
}

const WalRecord *
Replicator::recordAt(uint64_t seq) const
{
    if (seq < ringStartSeq_ || seq >= nextSeq_)
        return nullptr;
    return &ring_[seq - ringStartSeq_];
}

uint64_t
Replicator::ackedSeq() const
{
    uint64_t acked = 0;
    bool first = true;
    for (const auto &[key, session] : sessions_) {
        (void)key;
        acked = first ? session.ackedSeq
                      : std::min(acked, session.ackedSeq);
        first = false;
    }
    return acked;
}

uint64_t
Replicator::standbyIteration() const
{
    uint64_t iteration = 0;
    bool first = true;
    for (const auto &[key, session] : sessions_) {
        (void)key;
        iteration = first ? session.standbyIteration
                          : std::min(iteration, session.standbyIteration);
        first = false;
    }
    return iteration;
}

void
Replicator::handleHello(const ReplicaHello &msg, const net::Endpoint &from)
{
    ReplicaHelloAck ack;
    ack.baseIteration = baseIteration_;
    ack.baseSequence = baseSequence_;
    ack.nextSeq = nextSeq_;
    ack.leaseSeconds = config_.leaseSeconds;
    ack.hashIterations = config_.hashIterations;

    if (!active_) {
        ack.status = HelloStatus::NotPrimary;
    } else if (msg.topologyHash != topologyHash_) {
        ack.status = HelloStatus::TopologyMismatch;
        warn("replicator: standby ", from.toString(),
             " runs a different configuration; refusing to stream");
    } else {
        // A fresh standby (lastAppliedSeq 0) starts at the current
        // generation's base; a reconnecting one resumes past what it
        // holds. Either way the suffix must still be in the ring.
        uint64_t resume_seq = msg.lastAppliedSeq == 0
                                  ? baseSequence_
                                  : msg.lastAppliedSeq + 1;
        if (resume_seq < ringStartSeq_ && resume_seq < nextSeq_) {
            ack.status = HelloStatus::HistoryUnavailable;
            warn("replicator: standby ", from.toString(), " wants seq ",
                 resume_seq, " but the ring starts at ", ringStartSeq_,
                 "; it must re-seed from a fresh checkpoint");
        } else {
            ack.status = HelloStatus::Ok;
            Session &session = sessions_[keyOf(from)];
            session.peer = from;
            session.ackedSeq = resume_seq - 1;
            session.sentSeq = resume_seq - 1;
            session.lastAckTime = Clock::now();
            session.lastSendTime = {};
            session.lastHeartbeatTime = {};
            session.lastRetransmitTime = {};
            inform("replicator: standby ", from.toString(),
                   " attached at seq ", resume_seq);
        }
    }
    std::vector<uint8_t> bytes = encodeReplica(ack);
    socket_.sendTo(from, bytes.data(), bytes.size());
}

void
Replicator::handleAck(const ReplicaAck &msg, const net::Endpoint &from)
{
    auto it = sessions_.find(keyOf(from));
    if (it == sessions_.end())
        return; // stale ack from a forgotten session
    Session &session = it->second;
    session.lastAckTime = Clock::now();
    session.ackedSeq = std::max(session.ackedSeq, msg.contiguousSeq);
    session.standbyIteration = msg.standbyIteration;
    if (msg.hashValid) {
        for (const auto &[iteration, hash] : hashRing_) {
            if (iteration != msg.hashIteration)
                continue;
            ++hashChecks_;
            if (hash == msg.stateHash) {
                lastHashVerdict_ = 1;
            } else {
                lastHashVerdict_ = -1;
                ++hashMismatches_;
                warn("replicator: standby ", from.toString(),
                     " diverged at iteration ", iteration,
                     " (state hash mismatch) — its shadow is not "
                     "bitwise-identical");
            }
            break;
        }
    }
}

void
Replicator::sendRecords(Session &session, uint64_t primary_iteration)
{
    size_t budget = kMaxRecordsPerPoll;
    while (session.sentSeq + 1 < nextSeq_ && budget > 0) {
        ReplicaRecords batch;
        batch.primaryIteration = primary_iteration;
        batch.nextSeq = nextSeq_;
        size_t bytes = kReplicaWireHeaderBytes + 8 + 8 + 2;
        uint64_t seq = session.sentSeq + 1;
        while (seq < nextSeq_ && budget > 0) {
            const WalRecord *record = recordAt(seq);
            if (!record) {
                // Fell off the ring mid-stream (should not happen to a
                // live session); drop it and let the standby re-hello.
                warn("replicator: standby ", session.peer.toString(),
                     " fell behind the retransmit ring; dropping the "
                     "session");
                sessions_.erase(keyOf(session.peer));
                return;
            }
            size_t wire = recordWireBytes(*record);
            if (bytes + wire > kReplicaDatagramMax &&
                !batch.records.empty())
                break;
            batch.records.push_back(*record);
            bytes += wire;
            ++seq;
            --budget;
        }
        if (batch.records.empty())
            return;
        std::vector<uint8_t> datagram = encodeReplica(batch);
        socket_.sendTo(session.peer, datagram.data(), datagram.size());
        session.sentSeq = seq - 1;
        session.lastSendTime = Clock::now();
        recordsSent_ += batch.records.size();
    }
}

void
Replicator::pumpSession(Session &session, uint64_t primary_iteration)
{
    auto now = Clock::now();
    auto since = [now](Clock::time_point t) {
        return std::chrono::duration<double>(now - t).count();
    };

    // Go-back-N: no ack progress past what we sent for a retransmit
    // period — rewind to the cumulative ack and resend.
    if (session.ackedSeq < session.sentSeq &&
        since(session.lastAckTime) > config_.retransmitSeconds &&
        since(session.lastRetransmitTime) > config_.retransmitSeconds) {
        session.sentSeq = session.ackedSeq;
        session.lastRetransmitTime = now;
        ++retransmits_;
    }

    sendRecords(session, primary_iteration);

    // The heartbeat runs on its own timer, not the record-send one: it
    // is the only carrier of the primary's state hash to the standby,
    // so a busy stream must not starve it (and it refreshes the lease
    // independent of mutation traffic).
    if (session.lastHeartbeatTime == Clock::time_point{} ||
        since(session.lastHeartbeatTime) > config_.heartbeatSeconds) {
        ReplicaHeartbeat beat;
        beat.primaryIteration = primary_iteration;
        beat.nextSeq = nextSeq_;
        beat.leaseSeconds = config_.leaseSeconds;
        if (!hashRing_.empty()) {
            beat.hashIteration = hashRing_.back().first;
            beat.stateHash = hashRing_.back().second;
            beat.hashValid = 1;
        }
        std::vector<uint8_t> bytes = encodeReplica(beat);
        socket_.sendTo(session.peer, bytes.data(), bytes.size());
        session.lastHeartbeatTime = now;
    }
}

void
Replicator::poll(uint64_t primary_iteration)
{
    uint8_t buffers[net::UdpSocket::kMaxBatch][kReplicaDatagramMax];
    net::UdpSocket::RecvDatagram metas[net::UdpSocket::kMaxBatch];
    for (int rounds = 0; rounds < 4; ++rounds) {
        size_t got = socket_.recvMany(buffers, kReplicaDatagramMax, metas,
                                      net::UdpSocket::kMaxBatch, 0.0);
        if (got == 0)
            break;
        for (size_t i = 0; i < got; ++i) {
            auto message = decodeReplica(buffers[i], metas[i].length);
            if (!message)
                continue;
            if (const auto *hello = std::get_if<ReplicaHello>(&*message))
                handleHello(*hello, metas[i].from);
            else if (const auto *ack = std::get_if<ReplicaAck>(&*message))
                handleAck(*ack, metas[i].from);
            // Records/Heartbeat arriving here are peer bugs; drop.
        }
    }

    if (!active_)
        return;

    auto now = Clock::now();
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        double silent =
            std::chrono::duration<double>(now - it->second.lastAckTime)
                .count();
        if (silent > kSessionExpiryLeases * config_.leaseSeconds) {
            inform("replicator: standby ", it->second.peer.toString(),
                   " silent for ", silent, " s; forgetting the session");
            it = sessions_.erase(it);
        } else {
            ++it;
        }
    }
    // pumpSession can erase the session it is given (ring underrun);
    // walk a snapshot of keys so iteration stays valid.
    std::vector<std::pair<uint32_t, uint16_t>> keys;
    keys.reserve(sessions_.size());
    for (const auto &[key, session] : sessions_) {
        (void)session;
        keys.push_back(key);
    }
    for (const auto &key : keys) {
        auto it = sessions_.find(key);
        if (it != sessions_.end())
            pumpSession(it->second, primary_iteration);
    }
}

} // namespace replica
} // namespace mercury
