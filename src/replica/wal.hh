/**
 * @file
 * Deterministic mutation write-ahead log.
 *
 * PRs 1/5/7 made the solver bitwise-deterministic: given the same
 * configuration and the same mutations applied at the same iteration
 * boundaries, two solvers produce identical temperature trajectories.
 * That turns replication and post-mortem reproduction into an *input*
 * problem — record every externally sourced mutation at the single
 * serialization point (the solver thread draining the request plane's
 * MPSC queue) and any run can be replayed bitwise.
 *
 * A WAL file is a 32-byte header followed by CRC-guarded records:
 *
 *   header:  u32 magic "MWL1" | u32 version | u64 topologyHash
 *            | u64 startIteration | u64 startSequence
 *   record:  u32 crc32c(kind..payload) | u8 kind | u8 reserved
 *            | u16 payloadLength | u64 sequence | u64 iteration
 *            | payload bytes
 *
 * Everything is little-endian, mirroring the checkpoint codec.
 * Records carry opaque payloads — the proto layer owns the compact
 * mutation encoding (proto/wal_codec) so this library stays free of a
 * proto dependency and the replication wire format can ship records
 * verbatim.
 *
 * sequence numbers are contiguous from the header's startSequence; a
 * reader treats the first CRC failure, truncation, or sequence break
 * as the end of the valid prefix (tailOk=false) rather than an error —
 * a torn tail after a crash is expected, and the caller degrades to
 * the records before the tear (or the latest checkpoint).
 *
 * The WAL rotates at checkpoint saves taken at the loop top: the fresh
 * file's startIteration/startSequence then name exactly the suffix a
 * restored checkpoint needs. Saves triggered mid-drain by `fiddle
 * checkpoint` do not rotate; replay instead skips records older than
 * the checkpoint and relies on mutations being absolute sets, so
 * re-applying the same-iteration records it cannot order against the
 * mid-drain save is idempotent.
 */

#ifndef MERCURY_REPLICA_WAL_HH
#define MERCURY_REPLICA_WAL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mercury {

namespace core {
class Solver;
} // namespace core

namespace replica {

constexpr uint32_t kWalMagic = 0x314c574d; // "MWL1" little-endian
constexpr uint32_t kWalVersion = 1;
constexpr size_t kWalHeaderBytes = 32;

/** crc + kind + reserved + length + sequence + iteration. */
constexpr size_t kWalRecordOverhead = 24;

/** Hard ceiling on one record's payload; anything above is garbage
 *  regardless of what the CRC says. */
constexpr size_t kWalMaxPayload = 4096;

enum class WalRecordKind : uint8_t {
    /** One queued mutation (compact proto encoding, see
     *  proto/wal_codec). */
    Mutation = 1,
    /** A checkpoint save completed; payload = u64 saveCount. Replay
     *  uses it for diagnostics, standbys for nothing — it exists so a
     *  WAL is self-describing about where durable state landed. */
    CheckpointMarker = 2,
    /** A standby promoted itself at this iteration. Marks the lineage
     *  handover in the standby's own WAL. */
    Promotion = 3,
};

struct WalRecord
{
    uint64_t sequence = 0;
    uint64_t iteration = 0; //!< solver iteration the record was drained at
    WalRecordKind kind = WalRecordKind::Mutation;
    std::vector<uint8_t> payload;
};

struct WalHeader
{
    uint64_t topologyHash = 0;
    uint64_t startIteration = 0; //!< solver iteration at file creation
    uint64_t startSequence = 1;  //!< sequence of the first record
};

/**
 * CRC-32C (Castagnoli). Hardware SSE4.2 path when the CPU has it —
 * the WAL append sits inside the solver's iteration budget, so the
 * checksum must be cycles, not a table walk per byte.
 */
uint32_t crc32c(const uint8_t *data, size_t size);

/** Serialize one record (including its CRC) onto @p out. */
void appendRecordBytes(std::vector<uint8_t> &out, const WalRecord &record);

/**
 * Parse one record at @p data. Returns the bytes consumed, or 0 when
 * the prefix is not a whole valid record (truncated, oversized, CRC
 * mismatch); @p error then says why.
 */
size_t parseRecord(const uint8_t *data, size_t size, WalRecord *out,
                   std::string *error);

/** Serialize / parse the 32-byte file header. */
std::vector<uint8_t> encodeWalHeader(const WalHeader &header);
bool decodeWalHeader(const uint8_t *data, size_t size, WalHeader *out,
                     std::string *error);

struct WalReadResult
{
    WalHeader header;
    std::vector<WalRecord> records; //!< the valid contiguous prefix
    bool tailOk = true;             //!< false: tear detected after the prefix
    std::string tailError;          //!< why the tail was rejected
};

/**
 * Read a WAL file. Returns false only for header-level failures (no
 * file, bad magic/version); a damaged tail returns true with
 * tailOk=false and the records before the damage.
 */
bool readWalFile(const std::string &path, WalReadResult *out,
                 std::string *error);

/**
 * Append-only WAL writer. Single-threaded (the solver thread owns it).
 * Appends buffer in memory; flush() hands the batch to the kernel once
 * per queue drain; fsync happens only at rotation and close — the
 * durability window is one checkpoint interval by design, because the
 * standby (not the disk) is the low-latency copy.
 */
class WalWriter
{
  public:
    /**
     * Create/truncate @p path with @p header. An existing file is
     * first renamed to path + ".old" so a crashed predecessor's log
     * survives for post-mortems. Null on failure (with @p error).
     */
    static std::unique_ptr<WalWriter>
    create(const std::string &path, const WalHeader &header,
           std::string *error);

    ~WalWriter();

    WalWriter(const WalWriter &) = delete;
    WalWriter &operator=(const WalWriter &) = delete;

    /** Buffer one record. */
    void append(const WalRecord &record);

    /** Write buffered records to the kernel; returns false on I/O
     *  failure (logged once by the caller; the WAL is then dead). */
    bool flush();

    /** flush() + fsync. */
    bool sync();

    /**
     * Begin a fresh log generation: sync and close the current file,
     * rename it to path + ".old", and start a new file under the same
     * path with @p header. Call only when no unflushed appends
     * straddle the boundary (the daemon rotates at the loop top,
     * immediately after the checkpoint save the header describes).
     */
    bool rotate(const WalHeader &header, std::string *error);

    const std::string &path() const { return path_; }
    uint64_t recordsAppended() const { return recordsAppended_; }
    uint64_t bytesAppended() const { return bytesAppended_; }
    bool failed() const { return failed_; }

  private:
    WalWriter(int fd, std::string path);

    int fd_ = -1;
    std::string path_;
    std::vector<uint8_t> buffer_;
    uint64_t recordsAppended_ = 0;
    uint64_t bytesAppended_ = 0;
    bool failed_ = false;
};

struct ReplayStats
{
    uint64_t applied = 0;  //!< mutation records handed to the applier
    uint64_t skipped = 0;  //!< records older than the starting iteration
    uint64_t markers = 0;  //!< checkpoint/promotion markers seen
    uint64_t finalIteration = 0;
};

/**
 * Replay @p wal into @p solver: step the solver (through iterate(), so
 * telemetry hooks fire like they did live) up to each record's
 * iteration and hand Mutation records to @p apply in sequence order.
 * Records at iterations the solver has already passed (a checkpoint
 * newer than the WAL start) are skipped — mutations are absolute sets,
 * so the checkpoint already carries their effect. After the last
 * record the solver is stepped to @p replay_to_iteration when that is
 * further. Returns false with @p error when the WAL's topology hash
 * does not match the solver or the solver is already past a mutation's
 * iteration mid-file (ordering violation).
 */
bool replayWal(core::Solver &solver, const WalReadResult &wal,
               const std::function<void(const WalRecord &)> &apply,
               uint64_t replay_to_iteration, ReplayStats *stats,
               std::string *error);

/**
 * Order-sensitive hash of the solver's replicated state: iteration
 * count, every machine's temperature vector (raw bit patterns — this
 * is a bitwise identity check, not an approximate one) and accrued
 * energy. Primary and standby exchange it periodically to verify the
 * shadow really is the same state machine.
 */
uint64_t stateHash(const core::Solver &solver);

} // namespace replica
} // namespace mercury

#endif // MERCURY_REPLICA_WAL_HH
