#include "replica/wire.hh"

#include <cstring>

namespace mercury {
namespace replica {

namespace {

/** Ceiling on records per datagram; real packing stops at
 *  kReplicaDatagramMax long before this. */
constexpr uint16_t kMaxRecordsPerDatagram = 256;

void
putU16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putF64(std::vector<uint8_t> &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

/** Bounds-checked little-endian cursor. */
struct Cursor
{
    const uint8_t *data;
    size_t size;
    size_t pos = 0;
    bool ok = true;

    bool
    need(size_t bytes)
    {
        if (!ok || size - pos < bytes)
            ok = false;
        return ok;
    }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data[pos++];
    }

    uint16_t
    u16()
    {
        if (!need(2))
            return 0;
        uint16_t v = static_cast<uint16_t>(data[pos]) |
                     static_cast<uint16_t>(data[pos + 1]) << 8;
        pos += 2;
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
};

std::vector<uint8_t>
header(ReplicaMsgType type)
{
    std::vector<uint8_t> out;
    out.reserve(kReplicaDatagramMax);
    putU32(out, kReplicaMagic);
    out.push_back(kReplicaVersion);
    out.push_back(static_cast<uint8_t>(type));
    putU16(out, 0); // reserved
    return out;
}

} // namespace

size_t
recordWireBytes(const WalRecord &record)
{
    return kWalRecordOverhead + record.payload.size();
}

std::vector<uint8_t>
encodeReplica(const ReplicaHello &msg)
{
    std::vector<uint8_t> out = header(ReplicaMsgType::Hello);
    putU64(out, msg.topologyHash);
    putU64(out, msg.lastAppliedSeq);
    putU64(out, msg.standbyIteration);
    return out;
}

std::vector<uint8_t>
encodeReplica(const ReplicaHelloAck &msg)
{
    std::vector<uint8_t> out = header(ReplicaMsgType::HelloAck);
    out.push_back(static_cast<uint8_t>(msg.status));
    putU64(out, msg.primaryIteration);
    putU64(out, msg.baseIteration);
    putU64(out, msg.baseSequence);
    putU64(out, msg.nextSeq);
    putF64(out, msg.leaseSeconds);
    putU32(out, msg.hashIterations);
    return out;
}

std::vector<uint8_t>
encodeReplica(const ReplicaRecords &msg)
{
    std::vector<uint8_t> out = header(ReplicaMsgType::Records);
    putU64(out, msg.primaryIteration);
    putU64(out, msg.nextSeq);
    putU16(out, static_cast<uint16_t>(msg.records.size()));
    for (const WalRecord &record : msg.records)
        appendRecordBytes(out, record);
    return out;
}

std::vector<uint8_t>
encodeReplica(const ReplicaAck &msg)
{
    std::vector<uint8_t> out = header(ReplicaMsgType::Ack);
    putU64(out, msg.contiguousSeq);
    putU64(out, msg.appliedSeq);
    putU64(out, msg.standbyIteration);
    putU64(out, msg.hashIteration);
    putU64(out, msg.stateHash);
    out.push_back(msg.hashValid);
    return out;
}

std::vector<uint8_t>
encodeReplica(const ReplicaHeartbeat &msg)
{
    std::vector<uint8_t> out = header(ReplicaMsgType::Heartbeat);
    putU64(out, msg.primaryIteration);
    putU64(out, msg.nextSeq);
    putF64(out, msg.leaseSeconds);
    putU64(out, msg.hashIteration);
    putU64(out, msg.stateHash);
    out.push_back(msg.hashValid);
    return out;
}

std::optional<ReplicaMessage>
decodeReplica(const uint8_t *data, size_t size)
{
    Cursor in{data, size};
    uint32_t magic = 0;
    if (in.need(4)) {
        for (int i = 0; i < 4; ++i)
            magic |= static_cast<uint32_t>(data[i]) << (8 * i);
        in.pos = 4;
    }
    uint8_t version = in.u8();
    uint8_t type = in.u8();
    in.u16(); // reserved
    if (!in.ok || magic != kReplicaMagic || version != kReplicaVersion)
        return std::nullopt;

    switch (static_cast<ReplicaMsgType>(type)) {
    case ReplicaMsgType::Hello: {
        ReplicaHello msg;
        msg.topologyHash = in.u64();
        msg.lastAppliedSeq = in.u64();
        msg.standbyIteration = in.u64();
        if (!in.ok || in.pos != size)
            return std::nullopt;
        return msg;
    }
    case ReplicaMsgType::HelloAck: {
        ReplicaHelloAck msg;
        uint8_t status = in.u8();
        if (status > static_cast<uint8_t>(HelloStatus::HistoryUnavailable))
            return std::nullopt;
        msg.status = static_cast<HelloStatus>(status);
        msg.primaryIteration = in.u64();
        msg.baseIteration = in.u64();
        msg.baseSequence = in.u64();
        msg.nextSeq = in.u64();
        msg.leaseSeconds = in.f64();
        if (in.need(4)) {
            uint32_t v = 0;
            for (int i = 0; i < 4; ++i)
                v |= static_cast<uint32_t>(data[in.pos + i]) << (8 * i);
            in.pos += 4;
            msg.hashIterations = v;
        }
        if (!in.ok || in.pos != size)
            return std::nullopt;
        return msg;
    }
    case ReplicaMsgType::Records: {
        ReplicaRecords msg;
        msg.primaryIteration = in.u64();
        msg.nextSeq = in.u64();
        uint16_t count = in.u16();
        if (!in.ok || count > kMaxRecordsPerDatagram)
            return std::nullopt;
        msg.records.reserve(count);
        for (uint16_t i = 0; i < count; ++i) {
            WalRecord record;
            size_t consumed = parseRecord(data + in.pos, size - in.pos,
                                          &record, nullptr);
            if (consumed == 0)
                return std::nullopt;
            in.pos += consumed;
            msg.records.push_back(std::move(record));
        }
        if (in.pos != size)
            return std::nullopt;
        return msg;
    }
    case ReplicaMsgType::Ack: {
        ReplicaAck msg;
        msg.contiguousSeq = in.u64();
        msg.appliedSeq = in.u64();
        msg.standbyIteration = in.u64();
        msg.hashIteration = in.u64();
        msg.stateHash = in.u64();
        msg.hashValid = in.u8();
        if (!in.ok || in.pos != size || msg.hashValid > 1)
            return std::nullopt;
        return msg;
    }
    case ReplicaMsgType::Heartbeat: {
        ReplicaHeartbeat msg;
        msg.primaryIteration = in.u64();
        msg.nextSeq = in.u64();
        msg.leaseSeconds = in.f64();
        msg.hashIteration = in.u64();
        msg.stateHash = in.u64();
        msg.hashValid = in.u8();
        if (!in.ok || in.pos != size || msg.hashValid > 1)
            return std::nullopt;
        return msg;
    }
    default:
        return std::nullopt;
    }
}

} // namespace replica
} // namespace mercury
