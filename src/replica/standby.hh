/**
 * @file
 * Standby-side replication: receives the primary's WAL stream,
 * buffers out-of-order records, exposes the contiguous prefix for the
 * daemon to apply at iteration boundaries, acks cumulatively, and
 * tracks the promotion lease.
 *
 * Solver-thread only, like the Replicator. The daemon's standby loop
 * pumps the socket (the pump doubles as the loop's sleep), applies
 * whatever became contiguous, steps the solver to the primary's
 * iteration only when no gaps remain (the safe-step rule — stepping
 * past a missing mutation would fork the shadow), and promotes when
 * the lease runs dry.
 */

#ifndef MERCURY_REPLICA_STANDBY_HH
#define MERCURY_REPLICA_STANDBY_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/udp.hh"
#include "replica/wire.hh"

namespace mercury {
namespace replica {

class StandbyClient
{
  public:
    struct Config
    {
        std::string host;   //!< primary's replication address
        uint16_t port = 0;  //!< primary's replication port
        uint64_t topologyHash = 0;

        /** Hello retry period while unattached. */
        double helloSeconds = 0.5;

        /** Minimum gap between cumulative acks (a detected gap acks
         *  immediately regardless, to trigger retransmission). */
        double ackSeconds = 0.05;

        /** Fallback lease until the primary advertises one. */
        double leaseSeconds = 3.0;

        /** Promote this long after boot when the primary was NEVER
         *  reached (<= 0: wait forever). Kept well above the lease so
         *  a slow-starting primary wins the race. */
        double graceSeconds = 0.0;

        /** The local solver's iteration count. A fresh attach is
         *  refused locally unless it equals the primary's generation
         *  base — streaming from mismatched seed state would fork the
         *  shadow silently. */
        std::function<uint64_t()> localIteration;
    };

    explicit StandbyClient(Config config);

    /** @name Solver-thread API */
    /// @{

    /**
     * Wait up to @p max_wait_seconds for replication traffic and
     * process everything that arrived (hellos are retried from here
     * while unattached). This is the standby loop's sleep.
     */
    void pump(double max_wait_seconds);

    /** Next record to apply, when the head of the stream is here. */
    const WalRecord *nextApplicable() const;

    /** The daemon applied (and logged) nextApplicable(). */
    void markApplied();

    /**
     * The iteration the solver may safely step to: the primary's
     * announced iteration when every announced record is here and
     * applied, 0 while gaps remain (stepping would fork the shadow).
     */
    uint64_t safeStepIteration() const;

    /** Record the local state hash at @p iteration: echoed to the
     *  primary in acks, and checked against the primary's heartbeat
     *  hash when iterations line up. */
    void noteLocalHash(uint64_t iteration, uint64_t hash);

    /** Send a cumulative ack if one is due. */
    void maybeAck();

    /** Lease verdict: true once the primary has been silent past the
     *  lease (or, never having answered, past the boot grace). */
    bool leaseExpired() const;

    /// @}

    /** @name Observability */
    /// @{
    bool attached() const { return attached_; }
    bool everContacted() const { return everContacted_; }
    uint64_t lastAppliedSeq() const { return nextApplySeq_ - 1; }
    uint64_t contiguousSeq() const;
    uint64_t primaryIteration() const { return primaryIteration_; }
    uint64_t primaryNextSeq() const { return primaryNextSeq_; }

    /** Records the primary has assigned that we have not applied. */
    uint64_t lagRecords() const;

    double leaseSeconds() const { return leaseSeconds_; }
    double secondsSinceContact() const;
    int lastHashVerdict() const { return lastHashVerdict_; }
    uint64_t hashChecks() const { return hashChecks_; }
    uint64_t hashMismatches() const { return hashMismatches_; }
    uint64_t recordsReceived() const { return recordsReceived_; }

    /** One-word session state for `fiddle replica` and logs. */
    std::string status() const;
    /// @}

  private:
    using Clock = std::chrono::steady_clock;

    void handleMessage(const ReplicaMessage &message);
    void notePrimaryHash(uint64_t iteration, uint64_t hash,
                         uint8_t valid);
    void checkPrimaryHash();
    void sendHello();
    void sendAck();

    Config config_;
    net::Endpoint primary_;
    net::UdpSocket socket_;

    bool attached_ = false;
    bool everContacted_ = false;
    bool seeded_ = false; //!< first attach done; hellos resume, not restart
    std::string lastRefusal_; //!< last non-Ok hello verdict, for logs

    /** Next sequence to hand the daemon; everything below is applied. */
    uint64_t nextApplySeq_ = 1;
    /** Out-of-order buffer keyed by sequence. */
    std::map<uint64_t, WalRecord> pending_;

    uint64_t primaryIteration_ = 0;
    uint64_t primaryNextSeq_ = 0;
    double leaseSeconds_ = 0.0;

    Clock::time_point boot_;
    Clock::time_point lastContact_;
    Clock::time_point lastHelloSent_;
    Clock::time_point lastAckSent_;
    bool ackSoon_ = false; //!< gap seen: ack now, don't wait the timer

    /** Local hashes by iteration (echoed + checked). */
    std::vector<std::pair<uint64_t, uint64_t>> localHashes_;
    uint64_t echoedHashIteration_ = 0;

    /** Primary's latest advertised hash, awaiting a local match. */
    uint64_t primaryHashIteration_ = 0;
    uint64_t primaryHash_ = 0;
    bool primaryHashPending_ = false;

    int lastHashVerdict_ = 0;
    uint64_t hashChecks_ = 0;
    uint64_t hashMismatches_ = 0;
    uint64_t recordsReceived_ = 0;
};

} // namespace replica
} // namespace mercury

#endif // MERCURY_REPLICA_STANDBY_HH
