/**
 * @file
 * Replication wire format: the datagrams a primary solverd and its
 * hot standby exchange on the dedicated replication socket.
 *
 * WAL records do not fit the request plane's fixed 128-byte framing,
 * so replication runs its own variable-size datagrams (<= 1400 bytes,
 * under any sane MTU) with its own magic:
 *
 *   u32 magic "MRP1" | u8 version | u8 type | u16 reserved | body
 *
 * The session mirrors the monitord->solverd sender-window machinery,
 * inverted: the primary streams sequence-numbered records, the standby
 * acks the highest contiguous sequence it holds, and the primary
 * go-back-N retransmits past the ack on a short timer. Acks and
 * heartbeats piggyback a periodic state hash so both sides verify the
 * standby really is a bitwise shadow (docs/protocol.md).
 */

#ifndef MERCURY_REPLICA_WIRE_HH
#define MERCURY_REPLICA_WIRE_HH

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "replica/wal.hh"

namespace mercury {
namespace replica {

constexpr uint32_t kReplicaMagic = 0x3150524d; // "MRP1" little-endian
constexpr uint8_t kReplicaVersion = 1;
constexpr size_t kReplicaWireHeaderBytes = 8;
constexpr size_t kReplicaDatagramMax = 1400;

enum class ReplicaMsgType : uint8_t {
    Hello = 1,
    HelloAck = 2,
    Records = 3,
    Ack = 4,
    Heartbeat = 5,
};

/** Standby -> primary: open (or re-open) a replication session. */
struct ReplicaHello
{
    uint64_t topologyHash = 0;
    uint64_t lastAppliedSeq = 0; //!< 0 = fresh standby, start of stream
    uint64_t standbyIteration = 0;
};

enum class HelloStatus : uint8_t {
    Ok = 0,
    NotPrimary = 1,          //!< target is itself a standby
    TopologyMismatch = 2,    //!< different config; refuse to stream
    HistoryUnavailable = 3,  //!< asked-for suffix left the retain ring
};

/** Primary -> standby: session verdict + stream position. */
struct ReplicaHelloAck
{
    HelloStatus status = HelloStatus::Ok;
    uint64_t primaryIteration = 0;
    /** Iteration the primary's current WAL generation starts at. A
     *  fresh standby must have seeded itself from a checkpoint at
     *  exactly this iteration (0 = primary booted cold). */
    uint64_t baseIteration = 0;
    /** First sequence of that generation: where a fresh standby's
     *  stream starts. */
    uint64_t baseSequence = 0;
    uint64_t nextSeq = 0; //!< next sequence the primary will assign
    double leaseSeconds = 0.0;
    uint32_t hashIterations = 0;
};

/** Primary -> standby: a run of consecutive WAL records. */
struct ReplicaRecords
{
    uint64_t primaryIteration = 0;
    uint64_t nextSeq = 0; //!< so the standby can tell "caught up"
    std::vector<WalRecord> records;
};

/** Standby -> primary: cumulative ack + optional state-hash echo. */
struct ReplicaAck
{
    uint64_t contiguousSeq = 0; //!< highest gap-free sequence received
    uint64_t appliedSeq = 0;
    uint64_t standbyIteration = 0;
    uint64_t hashIteration = 0;
    uint64_t stateHash = 0;
    uint8_t hashValid = 0;
};

/** Primary -> standby: lease keep-alive when no records flow. */
struct ReplicaHeartbeat
{
    uint64_t primaryIteration = 0;
    uint64_t nextSeq = 0;
    double leaseSeconds = 0.0;
    uint64_t hashIteration = 0;
    uint64_t stateHash = 0;
    uint8_t hashValid = 0;
};

using ReplicaMessage =
    std::variant<ReplicaHello, ReplicaHelloAck, ReplicaRecords,
                 ReplicaAck, ReplicaHeartbeat>;

std::vector<uint8_t> encodeReplica(const ReplicaHello &msg);
std::vector<uint8_t> encodeReplica(const ReplicaHelloAck &msg);
std::vector<uint8_t> encodeReplica(const ReplicaRecords &msg);
std::vector<uint8_t> encodeReplica(const ReplicaAck &msg);
std::vector<uint8_t> encodeReplica(const ReplicaHeartbeat &msg);

/** Bounds- and CRC-checked decode; nullopt for anything malformed. */
std::optional<ReplicaMessage> decodeReplica(const uint8_t *data,
                                            size_t size);

/** Bytes @p record adds to a Records datagram (record framing reuses
 *  the on-disk layout, CRC included). */
size_t recordWireBytes(const WalRecord &record);

} // namespace replica
} // namespace mercury

#endif // MERCURY_REPLICA_WIRE_HH
