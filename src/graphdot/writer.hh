/**
 * @file
 * Serializers: emit a ConfigSpec back to the modified-dot language
 * (round-trippable through the parser) and export plain Graphviz dot
 * for visualization — the paper points out that keeping the language
 * dot-like "enables freely available programs to draw the graphs".
 */

#ifndef MERCURY_GRAPHDOT_WRITER_HH
#define MERCURY_GRAPHDOT_WRITER_HH

#include <iosfwd>
#include <string>

#include "core/spec.hh"

namespace mercury {
namespace graphdot {

/** Emit a machine in the modified-dot syntax. */
void writeMachine(std::ostream &out, const core::MachineSpec &spec);

/** Emit a room in the modified-dot syntax. */
void writeRoom(std::ostream &out, const core::RoomSpec &room);

/** Emit a whole config (machines then room). */
void writeConfig(std::ostream &out, const core::ConfigSpec &config);

/** Render a whole config to a string. */
std::string toText(const core::ConfigSpec &config);

/**
 * Export one machine as standard Graphviz dot: heat edges become
 * undirected-styled edges labelled with k, air edges become directed
 * edges labelled with their fraction.
 */
void writeGraphviz(std::ostream &out, const core::MachineSpec &spec);

} // namespace graphdot
} // namespace mercury

#endif // MERCURY_GRAPHDOT_WRITER_HH
