#include "graphdot/writer.hh"

#include <cctype>
#include <ostream>
#include <sstream>

#include "util/strings.hh"

namespace mercury {
namespace graphdot {

namespace {

/** Quote a name when it is not a bare identifier. */
std::string
quoteName(const std::string &name)
{
    bool bare = !name.empty();
    for (char ch : name) {
        if (!(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
              ch == '.')) {
            bare = false;
            break;
        }
    }
    if (bare && !std::isdigit(static_cast<unsigned char>(name[0])))
        return name;
    std::string out = "\"";
    for (char ch : name) {
        if (ch == '"' || ch == '\\')
            out += '\\';
        out += ch;
    }
    out += '"';
    return out;
}

const char *
kindName(core::NodeKind kind)
{
    switch (kind) {
      case core::NodeKind::Component: return "component";
      case core::NodeKind::Air:       return "air";
      case core::NodeKind::Inlet:     return "inlet";
      case core::NodeKind::Exhaust:   return "exhaust";
    }
    return "?";
}

} // namespace

void
writeMachine(std::ostream &out, const core::MachineSpec &spec)
{
    out << "machine " << quoteName(spec.name) << " {\n";
    out << format("    inlet_temperature = %g;\n", spec.inletTemperature);
    out << format("    fan_cfm = %g;\n", spec.fanCfm);
    out << format("    initial_temperature = %g;\n",
                  spec.initialTemperature);
    out << '\n';
    for (const core::NodeSpec &node : spec.nodes) {
        out << "    node " << quoteName(node.name) << " [kind="
            << kindName(node.kind);
        if (node.kind == core::NodeKind::Component) {
            out << format(", mass=%g, c=%g", node.mass, node.specificHeat);
        }
        if (node.hasPower)
            out << format(", pmin=%g, pmax=%g", node.minPower,
                          node.maxPower);
        if (node.initialTemperature)
            out << format(", temperature=%g", *node.initialTemperature);
        out << "];\n";
    }
    out << '\n';
    for (const core::HeatEdgeSpec &edge : spec.heatEdges) {
        out << "    " << quoteName(edge.a) << " -- " << quoteName(edge.b)
            << format(" [k=%g];\n", edge.k);
    }
    out << '\n';
    for (const core::AirEdgeSpec &edge : spec.airEdges) {
        out << "    " << quoteName(edge.from) << " -> " << quoteName(edge.to)
            << format(" [fraction=%g];\n", edge.fraction);
    }
    out << "}\n";
}

void
writeRoom(std::ostream &out, const core::RoomSpec &room)
{
    out << "room " << quoteName(room.name) << " {\n";
    for (const core::RoomNodeSpec &node : room.nodes) {
        switch (node.kind) {
          case core::RoomNodeKind::Source:
            out << "    source " << quoteName(node.name)
                << format(" [temperature=%g];\n", node.temperature);
            break;
          case core::RoomNodeKind::Sink:
            out << "    sink " << quoteName(node.name) << ";\n";
            break;
          case core::RoomNodeKind::Mix:
            out << "    mix " << quoteName(node.name) << ";\n";
            break;
          case core::RoomNodeKind::Machine:
            out << "    machine " << quoteName(node.name) << " uses "
                << quoteName(node.machine) << ";\n";
            break;
        }
    }
    out << '\n';
    for (const core::AirEdgeSpec &edge : room.edges) {
        out << "    " << quoteName(edge.from) << " -> " << quoteName(edge.to)
            << format(" [fraction=%g];\n", edge.fraction);
    }
    out << "}\n";
}

void
writeConfig(std::ostream &out, const core::ConfigSpec &config)
{
    for (const core::MachineSpec &machine : config.machines) {
        writeMachine(out, machine);
        out << '\n';
    }
    if (config.room)
        writeRoom(out, *config.room);
}

std::string
toText(const core::ConfigSpec &config)
{
    std::ostringstream out;
    writeConfig(out, config);
    return out.str();
}

void
writeGraphviz(std::ostream &out, const core::MachineSpec &spec)
{
    out << "digraph " << quoteName(spec.name) << " {\n";
    out << "    rankdir=LR;\n";
    for (const core::NodeSpec &node : spec.nodes) {
        const char *shape = "ellipse";
        if (node.kind == core::NodeKind::Component)
            shape = "box";
        else if (node.kind == core::NodeKind::Inlet ||
                 node.kind == core::NodeKind::Exhaust)
            shape = "diamond";
        out << "    " << quoteName(node.name) << " [shape=" << shape
            << "];\n";
    }
    for (const core::HeatEdgeSpec &edge : spec.heatEdges) {
        out << "    " << quoteName(edge.a) << " -> " << quoteName(edge.b)
            << format(" [dir=none, style=dashed, label=\"k=%g\"];\n",
                      edge.k);
    }
    for (const core::AirEdgeSpec &edge : spec.airEdges) {
        out << "    " << quoteName(edge.from) << " -> " << quoteName(edge.to)
            << format(" [label=\"%g\"];\n", edge.fraction);
    }
    out << "}\n";
}

} // namespace graphdot
} // namespace mercury
