/**
 * @file
 * Token definitions for the modified-dot configuration language
 * (Section 2.3: "the user can specify the input graphs to the solver
 * using our modified version of the language dot ... changing its
 * syntax to allow the specification of air fractions, component
 * masses, etc.").
 */

#ifndef MERCURY_GRAPHDOT_TOKEN_HH
#define MERCURY_GRAPHDOT_TOKEN_HH

#include <string>

namespace mercury {
namespace graphdot {

/** Lexical token kinds. */
enum class TokenKind {
    Identifier, //!< bare word: machine, node, cpu_air, ...
    Number,     //!< numeric literal (double syntax)
    String,     //!< double-quoted string
    LBrace,     //!< {
    RBrace,     //!< }
    LBracket,   //!< [
    RBracket,   //!< ]
    Semicolon,  //!< ;
    Comma,      //!< ,
    Equals,     //!< =
    HeatEdge,   //!< -- (undirected heat-flow edge)
    AirEdge,    //!< -> (directed air-flow edge)
    EndOfFile
};

/** One lexical token with source position for diagnostics. */
struct Token
{
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;   //!< identifier/string contents, number spelling
    double number = 0;  //!< value when kind == Number
    int line = 0;       //!< 1-based source line
    int column = 0;     //!< 1-based source column
};

/** Human-readable token kind name for error messages. */
const char *tokenKindName(TokenKind kind);

} // namespace graphdot
} // namespace mercury

#endif // MERCURY_GRAPHDOT_TOKEN_HH
