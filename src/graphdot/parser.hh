/**
 * @file
 * Parser for the modified-dot configuration language, producing the
 * core::ConfigSpec consumed by the solver.
 *
 * Grammar sketch:
 *
 *   config      := (machineDecl | roomDecl)*
 *   machineDecl := 'machine' name '{' machineItem* '}'
 *   machineItem := ident '=' value ';'                  // settings
 *                | 'node' name attrs? ';'
 *                | name '--' name attrs? ';'            // heat edge
 *                | name '->' name attrs? ';'            // air edge
 *   roomDecl    := ('room' | 'cluster') name '{' roomItem* '}'
 *   roomItem    := 'source' name attrs? ';'
 *                | 'sink' name ';'
 *                | 'mix' name ';'
 *                | 'machine' name 'uses' name ';'
 *                | name '->' name attrs? ';'
 *   attrs       := '[' ident '=' value (',' ident '=' value)* ']'
 *   name        := identifier | string
 *
 * Machine settings: inlet_temperature, fan_cfm, initial_temperature.
 * Node attributes: kind (component|air|inlet|exhaust), mass, c (alias
 * specific_heat), pmin, pmax, temperature. Heat-edge attribute: k.
 * Air-edge attribute: fraction.
 */

#ifndef MERCURY_GRAPHDOT_PARSER_HH
#define MERCURY_GRAPHDOT_PARSER_HH

#include <string>
#include <vector>

#include "core/spec.hh"
#include "graphdot/token.hh"

namespace mercury {
namespace graphdot {

/** Result of parsing: the config plus all accumulated diagnostics. */
struct ParseResult
{
    core::ConfigSpec config;
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
};

/** Parse configuration text. Never throws; errors are collected. */
ParseResult parseConfig(const std::string &source);

/**
 * Parse a configuration file; fatal (user error) on I/O problems,
 * syntax errors or semantic validation failures.
 */
core::ConfigSpec loadConfigFile(const std::string &path);

} // namespace graphdot
} // namespace mercury

#endif // MERCURY_GRAPHDOT_PARSER_HH
