#include "graphdot/lexer.hh"

#include <cctype>
#include <cstdlib>

#include "util/strings.hh"

namespace mercury {
namespace graphdot {

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::Identifier: return "identifier";
      case TokenKind::Number:     return "number";
      case TokenKind::String:     return "string";
      case TokenKind::LBrace:     return "'{'";
      case TokenKind::RBrace:     return "'}'";
      case TokenKind::LBracket:   return "'['";
      case TokenKind::RBracket:   return "']'";
      case TokenKind::Semicolon:  return "';'";
      case TokenKind::Comma:      return "','";
      case TokenKind::Equals:     return "'='";
      case TokenKind::HeatEdge:   return "'--'";
      case TokenKind::AirEdge:    return "'->'";
      case TokenKind::EndOfFile:  return "end of file";
    }
    return "?";
}

Lexer::Lexer(std::string source)
    : source_(std::move(source))
{
}

char
Lexer::peek(size_t ahead) const
{
    size_t at = pos_ + ahead;
    return at < source_.size() ? source_[at] : '\0';
}

char
Lexer::advance()
{
    char ch = source_[pos_++];
    if (ch == '\n') {
        ++line_;
        column_ = 1;
    } else {
        ++column_;
    }
    return ch;
}

void
Lexer::error(const std::string &message)
{
    errors_.push_back(format("line %d:%d: ", tokenLine_, tokenColumn_) +
                      message);
}

void
Lexer::skipWhitespaceAndComments()
{
    while (!atEnd()) {
        char ch = peek();
        if (std::isspace(static_cast<unsigned char>(ch))) {
            advance();
        } else if (ch == '#' || (ch == '/' && peek(1) == '/')) {
            while (!atEnd() && peek() != '\n')
                advance();
        } else if (ch == '/' && peek(1) == '*') {
            advance();
            advance();
            while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
                advance();
            if (atEnd()) {
                tokenLine_ = line_;
                tokenColumn_ = column_;
                error("unterminated block comment");
            } else {
                advance();
                advance();
            }
        } else {
            break;
        }
    }
}

Token
Lexer::make(TokenKind kind, std::string text)
{
    Token token;
    token.kind = kind;
    token.text = std::move(text);
    token.line = tokenLine_;
    token.column = tokenColumn_;
    return token;
}

Token
Lexer::lexNumber()
{
    std::string spelling;
    if (peek() == '-' || peek() == '+')
        spelling += advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
        spelling += advance();
    if (peek() == '.') {
        spelling += advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
            spelling += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
        spelling += advance();
        if (peek() == '-' || peek() == '+')
            spelling += advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
            spelling += advance();
    }
    Token token = make(TokenKind::Number, spelling);
    auto value = parseDouble(spelling);
    if (!value) {
        error("malformed number '" + spelling + "'");
        token.number = 0.0;
    } else {
        token.number = *value;
    }
    return token;
}

Token
Lexer::lexIdentifier()
{
    std::string spelling;
    while (std::isalnum(static_cast<unsigned char>(peek())) ||
           peek() == '_' || peek() == '.') {
        spelling += advance();
    }
    return make(TokenKind::Identifier, spelling);
}

Token
Lexer::lexString()
{
    advance(); // opening quote
    std::string contents;
    while (!atEnd() && peek() != '"') {
        char ch = advance();
        if (ch == '\\' && !atEnd()) {
            char esc = advance();
            switch (esc) {
              case 'n': contents += '\n'; break;
              case 't': contents += '\t'; break;
              case '"': contents += '"'; break;
              case '\\': contents += '\\'; break;
              default:
                error(std::string("unknown escape '\\") + esc + "'");
                contents += esc;
            }
        } else {
            contents += ch;
        }
    }
    if (atEnd()) {
        error("unterminated string literal");
    } else {
        advance(); // closing quote
    }
    return make(TokenKind::String, contents);
}

std::vector<Token>
Lexer::tokenize()
{
    std::vector<Token> tokens;
    while (true) {
        skipWhitespaceAndComments();
        tokenLine_ = line_;
        tokenColumn_ = column_;
        if (atEnd()) {
            tokens.push_back(make(TokenKind::EndOfFile));
            break;
        }
        char ch = peek();
        if (std::isdigit(static_cast<unsigned char>(ch)) ||
            ((ch == '-' || ch == '+') &&
             std::isdigit(static_cast<unsigned char>(peek(1))))) {
            if (ch == '-' && peek(1) == '-') {
                // fallthrough to '--' handling below
            } else if (ch == '-' && peek(1) == '>') {
                // fallthrough to '->' handling below
            } else {
                tokens.push_back(lexNumber());
                continue;
            }
        }
        if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
            tokens.push_back(lexIdentifier());
            continue;
        }
        switch (ch) {
          case '"':
            tokens.push_back(lexString());
            continue;
          case '{':
            advance();
            tokens.push_back(make(TokenKind::LBrace, "{"));
            continue;
          case '}':
            advance();
            tokens.push_back(make(TokenKind::RBrace, "}"));
            continue;
          case '[':
            advance();
            tokens.push_back(make(TokenKind::LBracket, "["));
            continue;
          case ']':
            advance();
            tokens.push_back(make(TokenKind::RBracket, "]"));
            continue;
          case ';':
            advance();
            tokens.push_back(make(TokenKind::Semicolon, ";"));
            continue;
          case ',':
            advance();
            tokens.push_back(make(TokenKind::Comma, ","));
            continue;
          case '=':
            advance();
            tokens.push_back(make(TokenKind::Equals, "="));
            continue;
          case '-':
            if (peek(1) == '-') {
                advance();
                advance();
                tokens.push_back(make(TokenKind::HeatEdge, "--"));
                continue;
            }
            if (peek(1) == '>') {
                advance();
                advance();
                tokens.push_back(make(TokenKind::AirEdge, "->"));
                continue;
            }
            [[fallthrough]];
          default:
            error(std::string("unexpected character '") + ch + "'");
            advance();
        }
    }
    return tokens;
}

} // namespace graphdot
} // namespace mercury
