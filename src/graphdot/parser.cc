#include "graphdot/parser.hh"

#include <fstream>
#include <map>
#include <sstream>

#include "graphdot/lexer.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace mercury {
namespace graphdot {

namespace {

/** One parsed `ident = value` attribute. */
struct Attribute
{
    std::string name;
    Token value;
};

/**
 * Recursive-descent parser over the token stream.
 */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : tokens_(std::move(tokens))
    {
    }

    ParseResult
    run()
    {
        while (!at(TokenKind::EndOfFile)) {
            if (atKeyword("machine")) {
                parseMachine();
            } else if (atKeyword("room") || atKeyword("cluster")) {
                parseRoom();
            } else {
                error("expected 'machine', 'room' or 'cluster'");
                synchronizeToTopLevel();
            }
        }
        return std::move(result_);
    }

  private:
    const Token &peek(size_t ahead = 0) const
    {
        size_t at = std::min(pos_ + ahead, tokens_.size() - 1);
        return tokens_[at];
    }

    const Token &advance()
    {
        const Token &token = tokens_[pos_];
        if (pos_ + 1 < tokens_.size())
            ++pos_;
        return token;
    }

    bool at(TokenKind kind) const { return peek().kind == kind; }

    bool
    atKeyword(const std::string &word) const
    {
        return at(TokenKind::Identifier) && peek().text == word;
    }

    bool
    accept(TokenKind kind)
    {
        if (!at(kind))
            return false;
        advance();
        return true;
    }

    void
    expect(TokenKind kind, const char *context)
    {
        if (at(kind)) {
            advance();
            return;
        }
        error(std::string("expected ") + tokenKindName(kind) + " " +
              context + ", found " + tokenKindName(peek().kind));
    }

    void
    error(const std::string &message)
    {
        const Token &token = peek();
        result_.errors.push_back(
            format("line %d:%d: ", token.line, token.column) + message);
    }

    /** Skip to the next plausible top-level declaration. */
    void
    synchronizeToTopLevel()
    {
        while (!at(TokenKind::EndOfFile) && !atKeyword("machine") &&
               !atKeyword("room") && !atKeyword("cluster")) {
            advance();
        }
    }

    /** Skip to just past the next semicolon (or closing brace). */
    void
    synchronizeToStatement()
    {
        while (!at(TokenKind::EndOfFile) && !at(TokenKind::RBrace)) {
            if (accept(TokenKind::Semicolon))
                return;
            advance();
        }
    }

    /** name := identifier | string */
    std::string
    parseName(const char *context)
    {
        if (at(TokenKind::Identifier) || at(TokenKind::String))
            return advance().text;
        error(std::string("expected a name ") + context + ", found " +
              tokenKindName(peek().kind));
        return "";
    }

    /** attrs := '[' ident '=' value (',' ident '=' value)* ']' */
    std::vector<Attribute>
    parseAttributes()
    {
        std::vector<Attribute> attrs;
        if (!accept(TokenKind::LBracket))
            return attrs;
        while (!at(TokenKind::RBracket) && !at(TokenKind::EndOfFile)) {
            Attribute attr;
            attr.name = parseName("for an attribute");
            expect(TokenKind::Equals, "after attribute name");
            if (at(TokenKind::Number) || at(TokenKind::String) ||
                at(TokenKind::Identifier)) {
                attr.value = advance();
            } else {
                error("expected attribute value, found " +
                      std::string(tokenKindName(peek().kind)));
            }
            attrs.push_back(std::move(attr));
            if (!accept(TokenKind::Comma))
                break;
        }
        expect(TokenKind::RBracket, "to close attribute list");
        return attrs;
    }

    double
    numericAttr(const Attribute &attr)
    {
        if (attr.value.kind != TokenKind::Number) {
            error("attribute '" + attr.name + "' needs a numeric value");
            return 0.0;
        }
        return attr.value.number;
    }

    void
    parseMachine()
    {
        advance(); // 'machine'
        core::MachineSpec spec;
        spec.name = parseName("for the machine");
        expect(TokenKind::LBrace, "to open the machine body");
        while (!at(TokenKind::RBrace) && !at(TokenKind::EndOfFile)) {
            if (atKeyword("node")) {
                parseNode(spec);
            } else if (at(TokenKind::Identifier) || at(TokenKind::String)) {
                // Either a setting (`ident = value ;`) or an edge.
                if (peek(1).kind == TokenKind::Equals) {
                    parseSetting(spec);
                } else {
                    parseEdge(spec);
                }
            } else {
                error("unexpected " +
                      std::string(tokenKindName(peek().kind)) +
                      " in machine body");
                synchronizeToStatement();
            }
        }
        expect(TokenKind::RBrace, "to close the machine body");
        result_.config.machines.push_back(std::move(spec));
    }

    void
    parseSetting(core::MachineSpec &spec)
    {
        std::string name = advance().text;
        expect(TokenKind::Equals, "in setting");
        if (!at(TokenKind::Number)) {
            error("setting '" + name + "' needs a numeric value");
            synchronizeToStatement();
            return;
        }
        double value = advance().number;
        expect(TokenKind::Semicolon, "after setting");
        if (name == "inlet_temperature") {
            spec.inletTemperature = value;
        } else if (name == "fan_cfm") {
            spec.fanCfm = value;
        } else if (name == "initial_temperature") {
            spec.initialTemperature = value;
        } else {
            error("unknown machine setting '" + name + "'");
        }
    }

    void
    parseNode(core::MachineSpec &spec)
    {
        advance(); // 'node'
        core::NodeSpec node;
        node.name = parseName("for the node");
        node.kind = core::NodeKind::Component;
        for (const Attribute &attr : parseAttributes()) {
            if (attr.name == "kind") {
                std::string kind = toLower(attr.value.text);
                if (kind == "component") {
                    node.kind = core::NodeKind::Component;
                } else if (kind == "air") {
                    node.kind = core::NodeKind::Air;
                } else if (kind == "inlet") {
                    node.kind = core::NodeKind::Inlet;
                } else if (kind == "exhaust") {
                    node.kind = core::NodeKind::Exhaust;
                } else {
                    error("unknown node kind '" + attr.value.text + "'");
                }
            } else if (attr.name == "mass") {
                node.mass = numericAttr(attr);
            } else if (attr.name == "c" || attr.name == "specific_heat") {
                node.specificHeat = numericAttr(attr);
            } else if (attr.name == "pmin") {
                node.minPower = numericAttr(attr);
                node.hasPower = true;
            } else if (attr.name == "pmax") {
                node.maxPower = numericAttr(attr);
                node.hasPower = true;
            } else if (attr.name == "temperature") {
                node.initialTemperature = numericAttr(attr);
            } else {
                error("unknown node attribute '" + attr.name + "'");
            }
        }
        expect(TokenKind::Semicolon, "after node declaration");
        spec.nodes.push_back(std::move(node));
    }

    void
    parseEdge(core::MachineSpec &spec)
    {
        std::string from = parseName("for the edge source");
        bool heat = false;
        if (accept(TokenKind::HeatEdge)) {
            heat = true;
        } else if (accept(TokenKind::AirEdge)) {
            heat = false;
        } else {
            error("expected '--' or '->' after '" + from + "'");
            synchronizeToStatement();
            return;
        }
        std::string to = parseName("for the edge target");
        std::vector<Attribute> attrs = parseAttributes();
        expect(TokenKind::Semicolon, "after edge");
        if (heat) {
            core::HeatEdgeSpec edge{from, to, 0.0};
            for (const Attribute &attr : attrs) {
                if (attr.name == "k") {
                    edge.k = numericAttr(attr);
                } else {
                    error("unknown heat-edge attribute '" + attr.name +
                          "'");
                }
            }
            if (edge.k <= 0.0)
                error("heat edge " + from + " -- " + to + " needs k > 0");
            spec.heatEdges.push_back(std::move(edge));
        } else {
            core::AirEdgeSpec edge{from, to, 0.0};
            for (const Attribute &attr : attrs) {
                if (attr.name == "fraction") {
                    edge.fraction = numericAttr(attr);
                } else {
                    error("unknown air-edge attribute '" + attr.name + "'");
                }
            }
            if (edge.fraction <= 0.0) {
                error("air edge " + from + " -> " + to +
                      " needs fraction > 0");
            }
            spec.airEdges.push_back(std::move(edge));
        }
    }

    void
    parseRoom()
    {
        advance(); // 'room' | 'cluster'
        core::RoomSpec room;
        room.name = parseName("for the room");
        expect(TokenKind::LBrace, "to open the room body");
        while (!at(TokenKind::RBrace) && !at(TokenKind::EndOfFile)) {
            if (atKeyword("source")) {
                advance();
                core::RoomNodeSpec node;
                node.kind = core::RoomNodeKind::Source;
                node.name = parseName("for the source");
                for (const Attribute &attr : parseAttributes()) {
                    if (attr.name == "temperature") {
                        node.temperature = numericAttr(attr);
                    } else {
                        error("unknown source attribute '" + attr.name +
                              "'");
                    }
                }
                expect(TokenKind::Semicolon, "after source");
                room.nodes.push_back(std::move(node));
            } else if (atKeyword("sink") || atKeyword("mix")) {
                bool sink = peek().text == "sink";
                advance();
                core::RoomNodeSpec node;
                node.kind = sink ? core::RoomNodeKind::Sink
                                 : core::RoomNodeKind::Mix;
                node.name = parseName(sink ? "for the sink" : "for the mix");
                expect(TokenKind::Semicolon, "after room node");
                room.nodes.push_back(std::move(node));
            } else if (atKeyword("machine")) {
                advance();
                core::RoomNodeSpec node;
                node.kind = core::RoomNodeKind::Machine;
                node.name = parseName("for the machine node");
                if (atKeyword("uses")) {
                    advance();
                    node.machine = parseName("for the machine template");
                } else {
                    // `machine m1;` means the node name is the template.
                    node.machine = node.name;
                }
                expect(TokenKind::Semicolon, "after machine node");
                room.nodes.push_back(std::move(node));
            } else if (at(TokenKind::Identifier) || at(TokenKind::String)) {
                std::string from = parseName("for the edge source");
                expect(TokenKind::AirEdge, "in room edge");
                std::string to = parseName("for the edge target");
                core::AirEdgeSpec edge{from, to, 0.0};
                for (const Attribute &attr : parseAttributes()) {
                    if (attr.name == "fraction") {
                        edge.fraction = numericAttr(attr);
                    } else {
                        error("unknown room-edge attribute '" + attr.name +
                              "'");
                    }
                }
                expect(TokenKind::Semicolon, "after room edge");
                room.edges.push_back(std::move(edge));
            } else {
                error("unexpected " +
                      std::string(tokenKindName(peek().kind)) +
                      " in room body");
                synchronizeToStatement();
            }
        }
        expect(TokenKind::RBrace, "to close the room body");
        if (result_.config.room) {
            error("multiple room declarations (only one is supported)");
        } else {
            result_.config.room = std::move(room);
        }
    }

    std::vector<Token> tokens_;
    size_t pos_ = 0;
    ParseResult result_;
};

} // namespace

ParseResult
parseConfig(const std::string &source)
{
    Lexer lexer(source);
    std::vector<Token> tokens = lexer.tokenize();
    Parser parser(std::move(tokens));
    ParseResult result = parser.run();
    // Lexer errors come first.
    result.errors.insert(result.errors.begin(), lexer.errors().begin(),
                         lexer.errors().end());
    // Semantic validation of everything that parsed. Runs even after
    // syntax errors so the user sees all problems in one pass.
    for (const core::MachineSpec &machine : result.config.machines) {
        for (const std::string &problem : validate(machine))
            result.errors.push_back(problem);
    }
    if (result.config.room) {
        for (const std::string &problem :
             validate(*result.config.room, result.config)) {
            result.errors.push_back(problem);
        }
    }
    return result;
}

core::ConfigSpec
loadConfigFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ParseResult result = parseConfig(buffer.str());
    if (!result.ok()) {
        std::string joined;
        for (const std::string &err : result.errors)
            joined += "\n  " + err;
        fatal("errors in config '", path, "':", joined);
    }
    return std::move(result.config);
}

} // namespace graphdot
} // namespace mercury
