/**
 * @file
 * Lexer for the modified-dot configuration language. Supports `#` and
 * `//` line comments and C-style block comments.
 */

#ifndef MERCURY_GRAPHDOT_LEXER_HH
#define MERCURY_GRAPHDOT_LEXER_HH

#include <string>
#include <vector>

#include "graphdot/token.hh"

namespace mercury {
namespace graphdot {

/**
 * Turns source text into a token stream. Lexing errors are recorded
 * (with positions) rather than thrown so the caller can report all
 * problems at once.
 */
class Lexer
{
  public:
    explicit Lexer(std::string source);

    /** Tokenize the whole input; the last token is EndOfFile. */
    std::vector<Token> tokenize();

    const std::vector<std::string> &errors() const { return errors_; }

  private:
    char peek(size_t ahead = 0) const;
    char advance();
    bool atEnd() const { return pos_ >= source_.size(); }
    void skipWhitespaceAndComments();
    Token lexNumber();
    Token lexIdentifier();
    Token lexString();
    Token make(TokenKind kind, std::string text = "");
    void error(const std::string &message);

    std::string source_;
    size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
    int tokenLine_ = 1;
    int tokenColumn_ = 1;
    std::vector<std::string> errors_;
};

} // namespace graphdot
} // namespace mercury

#endif // MERCURY_GRAPHDOT_LEXER_HH
