#include "calib/validation.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mercury {
namespace calib {

namespace {

/** Square wave through the given levels, @p segment seconds each. */
Waveform
stepWaveform(std::vector<double> levels, double segment)
{
    return [levels = std::move(levels), segment](double t) {
        size_t index = static_cast<size_t>(t / segment);
        if (index >= levels.size())
            index = levels.size() - 1;
        return levels[index];
    };
}

} // namespace

Waveform
cpuCalibrationWaveform()
{
    // 14 segments x 1000 s = 14 000 s: "various levels of utilization
    // interspersed with idle periods" (Figure 5's staircase).
    return stepWaveform({0.0, 0.25, 0.0, 0.5, 0.0, 0.75, 0.0, 1.0, 0.0,
                         0.6, 0.0, 0.9, 0.0, 0.3},
                        1000.0);
}

Waveform
diskCalibrationWaveform()
{
    return stepWaveform({0.0, 0.3, 0.0, 0.6, 0.0, 1.0, 0.0, 0.8, 0.0,
                         0.45, 0.0, 0.9, 0.0, 0.2},
                        1000.0);
}

Waveform
validationCpuWaveform()
{
    // Deterministic but "widely different utilizations over time ...
    // change constantly and quickly": incommensurate sinusoids plus a
    // fast square component.
    return [](double t) {
        double value = 0.5 + 0.30 * std::sin(t / 97.0) +
                       0.25 * std::sin(t / 31.0 + 1.7) +
                       (std::fmod(t, 440.0) < 220.0 ? 0.15 : -0.15);
        return std::clamp(value, 0.0, 1.0);
    };
}

Waveform
validationDiskWaveform()
{
    return [](double t) {
        double value = 0.45 + 0.35 * std::sin(t / 53.0 + 0.4) +
                       0.25 * std::sin(t / 17.0 + 2.9) +
                       (std::fmod(t, 610.0) < 305.0 ? -0.12 : 0.12);
        return std::clamp(value, 0.0, 1.0);
    };
}

ReferenceRun
runReference(const refmodel::ReferenceConfig &config, double duration,
             const std::vector<std::pair<std::string, Waveform>> &loads,
             const std::vector<std::string> &probes, bool use_sensors)
{
    refmodel::ReferenceServer server(config);
    ReferenceRun run;
    for (const auto &[component, waveform] : loads)
        run.loads.emplace(component, TimeSeries(component));
    for (const std::string &probe : probes)
        run.temperatures.emplace(probe, TimeSeries(probe));

    for (double t = 1.0; t <= duration + 1e-9; t += 1.0) {
        for (const auto &[component, waveform] : loads) {
            double u = waveform(t - 1.0);
            server.setUtilization(component, u);
            run.loads.at(component).add(t, u);
        }
        server.step(1.0);
        for (const std::string &probe : probes) {
            double value = use_sensors ? server.readSensor(probe)
                                       : server.trueTemperature(probe);
            run.temperatures.at(probe).add(t, value);
        }
    }
    return run;
}

CalibrationResult
calibrateTable1AgainstReference(const refmodel::ReferenceConfig &config,
                                bool use_sensors, double duration)
{
    // 1. Run the two microbenchmarks on the "real machine".
    ReferenceRun cpu_run = runReference(
        config, duration, {{"cpu", cpuCalibrationWaveform()}},
        {"cpu_air", "disk_platters"}, use_sensors);
    ReferenceRun disk_run = runReference(
        config, duration, {{"disk", diskCalibrationWaveform()}},
        {"cpu_air", "disk_platters"}, use_sensors);

    // 2. Tune the Table 1 constants to reproduce them. The probes map
    // 1:1 onto Mercury nodes: the paper's external sensor sits in the
    // CPU air stream, the in-disk sensor next to the platters.
    Calibrator calibrator(core::table1Server());

    Experiment cpu_experiment;
    cpu_experiment.duration = duration;
    cpu_experiment.loads.emplace_back("cpu", cpuCalibrationWaveform());
    cpu_experiment.references.emplace_back(
        "cpu_air", &cpu_run.temperatures.at("cpu_air"));
    calibrator.addExperiment(std::move(cpu_experiment));

    Experiment disk_experiment;
    disk_experiment.duration = duration;
    disk_experiment.loads.emplace_back("disk_platters",
                                       diskCalibrationWaveform());
    disk_experiment.references.emplace_back(
        "disk_platters", &disk_run.temperatures.at("disk_platters"));
    calibrator.addExperiment(std::move(disk_experiment));

    calibrator.tuneHeatEdge("cpu", "cpu_air");
    calibrator.tuneHeatEdge("disk_platters", "disk_shell");
    calibrator.tuneHeatEdge("disk_shell", "disk_air");
    calibrator.tuneHeatEdge("motherboard", "void_air");

    return calibrator.run(2);
}

} // namespace calib
} // namespace mercury
