/**
 * @file
 * Input calibration (Section 3.1 of the paper).
 *
 * "It is often useful to have a calibration phase, where a single,
 * isolated machine is tested as fully as possible, and then the heat-
 * and air-flow constants are tuned until the emulated readings match
 * the calibration experiment."
 *
 * The Calibrator runs Mercury's machine model through the same
 * utilization schedule as a reference run (real measurements in the
 * paper; our high-fidelity refmodel here), and tunes selected
 * heat-flow constants k (and optionally the fan flow) by coordinate
 * descent with golden-section line searches in log-space, minimising
 * the mean absolute temperature error across all reference probes.
 */

#ifndef MERCURY_CALIB_CALIBRATOR_HH
#define MERCURY_CALIB_CALIBRATOR_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/spec.hh"
#include "util/stats.hh"

namespace mercury {
namespace calib {

/** One calibration experiment: a load schedule plus reference series. */
struct Experiment
{
    /** Total emulated duration [s]. */
    double duration = 0.0;

    /** Solver iteration / comparison interval [s]. */
    double sampleInterval = 1.0;

    /** Component utilization waveforms (component name -> u(t)). */
    std::vector<std::pair<std::string, std::function<double(double)>>> loads;

    /** Inlet boundary override for this experiment [degC]. */
    std::optional<double> inletTemperature;

    /**
     * Reference temperature series keyed by the Mercury node that
     * should reproduce them (series are borrowed, not owned).
     */
    std::vector<std::pair<std::string, const TimeSeries *>> references;
};

/** Outcome of a calibration run. */
struct CalibrationResult
{
    core::MachineSpec spec;    //!< tuned machine
    double initialError = 0.0; //!< mean |dT| before tuning [degC]
    double finalError = 0.0;   //!< mean |dT| after tuning [degC]
    int evaluations = 0;       //!< objective evaluations performed
};

/**
 * Coordinate-descent calibrator for one machine spec.
 */
class Calibrator
{
  public:
    explicit Calibrator(core::MachineSpec base);

    /** Add a calibration experiment (at least one is required). */
    void addExperiment(Experiment experiment);

    /** Tune the k of this heat edge (must exist in the spec). */
    void tuneHeatEdge(const std::string &a, const std::string &b);

    /** Also tune the fan's volumetric flow. */
    void tuneFanCfm();

    /**
     * Run the optimisation.
     * @param passes coordinate-descent sweeps over all parameters
     * @param span multiplicative search range per parameter
     */
    CalibrationResult run(int passes = 3, double span = 6.0);

    /** Mean absolute error of a candidate spec over all experiments. */
    double objective(const core::MachineSpec &candidate) const;

  private:
    struct Parameter
    {
        bool isFan = false;
        std::string a;
        std::string b;
    };

    double getParameter(const core::MachineSpec &spec,
                        const Parameter &param) const;
    void setParameter(core::MachineSpec &spec, const Parameter &param,
                      double value) const;

    core::MachineSpec base_;
    std::vector<Experiment> experiments_;
    std::vector<Parameter> parameters_;
    mutable int evaluations_ = 0;
};

/**
 * Run one machine spec through an experiment and return the simulated
 * series for the requested nodes (used by the figure benches to plot
 * emulated-vs-real curves).
 */
std::vector<TimeSeries>
simulateExperiment(const core::MachineSpec &spec,
                   const Experiment &experiment,
                   const std::vector<std::string> &record_nodes);

} // namespace calib
} // namespace mercury

#endif // MERCURY_CALIB_CALIBRATOR_HH
