#include "calib/calibrator.hh"

#include <algorithm>
#include <cmath>

#include "core/thermal_graph.hh"
#include "util/logging.hh"

namespace mercury {
namespace calib {

namespace {

/**
 * Golden-section minimisation of @p fn over [lo, hi].
 * @return the best x found after @p iterations shrink steps.
 */
double
goldenSection(const std::function<double(double)> &fn, double lo, double hi,
              int iterations)
{
    constexpr double kInvPhi = 0.6180339887498949;
    double a = lo;
    double b = hi;
    double x1 = b - kInvPhi * (b - a);
    double x2 = a + kInvPhi * (b - a);
    double f1 = fn(x1);
    double f2 = fn(x2);
    for (int i = 0; i < iterations; ++i) {
        if (f1 < f2) {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - kInvPhi * (b - a);
            f1 = fn(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + kInvPhi * (b - a);
            f2 = fn(x2);
        }
    }
    return f1 < f2 ? x1 : x2;
}

} // namespace

std::vector<TimeSeries>
simulateExperiment(const core::MachineSpec &spec,
                   const Experiment &experiment,
                   const std::vector<std::string> &record_nodes)
{
    core::ThermalGraph graph(spec);
    if (experiment.inletTemperature)
        graph.setInletTemperature(*experiment.inletTemperature);

    std::vector<TimeSeries> out;
    out.reserve(record_nodes.size());
    for (const std::string &node : record_nodes)
        out.emplace_back(node);

    double dt = experiment.sampleInterval;
    for (double t = dt; t <= experiment.duration + 1e-9; t += dt) {
        // Loads take effect at the start of the interval.
        for (const auto &[component, waveform] : experiment.loads)
            graph.setUtilization(component, waveform(t - dt));
        graph.step(dt);
        for (size_t i = 0; i < record_nodes.size(); ++i)
            out[i].add(t, graph.temperature(record_nodes[i]));
    }
    return out;
}

Calibrator::Calibrator(core::MachineSpec base)
    : base_(std::move(base))
{
    std::vector<std::string> problems = validate(base_);
    if (!problems.empty())
        MERCURY_PANIC("Calibrator: invalid base spec: ", problems.front());
}

void
Calibrator::addExperiment(Experiment experiment)
{
    if (experiment.duration <= 0.0 || experiment.sampleInterval <= 0.0)
        MERCURY_PANIC("Calibrator: experiment needs duration/interval > 0");
    if (experiment.references.empty())
        MERCURY_PANIC("Calibrator: experiment has no reference series");
    experiments_.push_back(std::move(experiment));
}

void
Calibrator::tuneHeatEdge(const std::string &a, const std::string &b)
{
    for (const core::HeatEdgeSpec &edge : base_.heatEdges) {
        if ((edge.a == a && edge.b == b) || (edge.a == b && edge.b == a)) {
            parameters_.push_back({false, a, b});
            return;
        }
    }
    MERCURY_PANIC("Calibrator: no heat edge ", a, " -- ", b);
}

void
Calibrator::tuneFanCfm()
{
    parameters_.push_back({true, "", ""});
}

double
Calibrator::getParameter(const core::MachineSpec &spec,
                         const Parameter &param) const
{
    if (param.isFan)
        return spec.fanCfm;
    for (const core::HeatEdgeSpec &edge : spec.heatEdges) {
        if ((edge.a == param.a && edge.b == param.b) ||
            (edge.a == param.b && edge.b == param.a)) {
            return edge.k;
        }
    }
    MERCURY_PANIC("Calibrator: lost heat edge ", param.a, " -- ", param.b);
}

void
Calibrator::setParameter(core::MachineSpec &spec, const Parameter &param,
                         double value) const
{
    if (param.isFan) {
        spec.fanCfm = value;
        return;
    }
    for (core::HeatEdgeSpec &edge : spec.heatEdges) {
        if ((edge.a == param.a && edge.b == param.b) ||
            (edge.a == param.b && edge.b == param.a)) {
            edge.k = value;
            return;
        }
    }
    MERCURY_PANIC("Calibrator: lost heat edge ", param.a, " -- ", param.b);
}

double
Calibrator::objective(const core::MachineSpec &candidate) const
{
    ++evaluations_;
    double total_error = 0.0;
    size_t total_samples = 0;
    for (const Experiment &experiment : experiments_) {
        std::vector<std::string> nodes;
        nodes.reserve(experiment.references.size());
        for (const auto &[node, series] : experiment.references)
            nodes.push_back(node);
        std::vector<TimeSeries> simulated =
            simulateExperiment(candidate, experiment, nodes);
        for (size_t i = 0; i < simulated.size(); ++i) {
            const TimeSeries *reference = experiment.references[i].second;
            for (size_t s = 0; s < simulated[i].size(); ++s) {
                total_error += std::abs(
                    simulated[i].valueAt(s) -
                    reference->sampleAt(simulated[i].timeAt(s)));
                ++total_samples;
            }
        }
    }
    return total_samples ? total_error / total_samples : 0.0;
}

CalibrationResult
Calibrator::run(int passes, double span)
{
    if (experiments_.empty())
        MERCURY_PANIC("Calibrator: no experiments");
    if (parameters_.empty())
        MERCURY_PANIC("Calibrator: no parameters to tune");
    if (span <= 1.0)
        MERCURY_PANIC("Calibrator: span must exceed 1");

    evaluations_ = 0;
    CalibrationResult result;
    result.spec = base_;
    result.initialError = objective(result.spec);

    for (int pass = 0; pass < passes; ++pass) {
        for (const Parameter &param : parameters_) {
            double current = getParameter(result.spec, param);
            double lo = std::log(current / span);
            double hi = std::log(current * span);
            double best_log = goldenSection(
                [&](double log_value) {
                    core::MachineSpec candidate = result.spec;
                    setParameter(candidate, param, std::exp(log_value));
                    return objective(candidate);
                },
                lo, hi, 12);
            setParameter(result.spec, param, std::exp(best_log));
        }
        // Successive passes search a narrower neighbourhood.
        span = std::max(1.5, std::sqrt(span));
    }

    result.finalError = objective(result.spec);
    // Never return something worse than the starting point.
    if (result.finalError > result.initialError) {
        result.spec = base_;
        result.finalError = result.initialError;
    }
    result.evaluations = evaluations_;
    return result;
}

} // namespace calib
} // namespace mercury
