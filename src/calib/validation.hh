/**
 * @file
 * The Section 3.1 validation methodology, packaged for reuse by the
 * tests and the figure benches:
 *
 *  - the CPU and disk calibration microbenchmarks (Figures 5 and 6):
 *    square waves through several utilization levels interspersed
 *    with idle periods, 14 000 s long;
 *  - the "more challenging benchmark" of Figures 7 and 8: CPU and
 *    disk exercised simultaneously with widely and quickly varying
 *    utilizations, 5 000 s long;
 *  - reference runs: drive the high-fidelity ReferenceServer through a
 *    load schedule and record its (optionally noisy) sensors;
 *  - the end-to-end calibration recipe: tune the Table 1 machine's
 *    heat constants against the two microbenchmark reference runs.
 */

#ifndef MERCURY_CALIB_VALIDATION_HH
#define MERCURY_CALIB_VALIDATION_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "calib/calibrator.hh"
#include "refmodel/reference_server.hh"
#include "util/stats.hh"

namespace mercury {
namespace calib {

/** Utilization as a function of time [s]. */
using Waveform = std::function<double(double)>;

/** Figure 5's CPU microbenchmark: utilization steps with idle gaps. */
Waveform cpuCalibrationWaveform();

/** Figure 6's disk microbenchmark. */
Waveform diskCalibrationWaveform();

/** Figures 7-8: rapidly varying CPU load (deterministic). */
Waveform validationCpuWaveform();

/** Figures 7-8: rapidly varying disk load, uncorrelated with the CPU. */
Waveform validationDiskWaveform();

/** Duration of the calibration microbenchmarks [s] (paper: 14 000). */
inline constexpr double kCalibrationDuration = 14000.0;

/** Duration of the validation benchmark [s] (paper: 5 000). */
inline constexpr double kValidationDuration = 5000.0;

/** A recorded reference run. */
struct ReferenceRun
{
    /** Utilization series per component. */
    std::map<std::string, TimeSeries> loads;

    /** Temperature series per probe. */
    std::map<std::string, TimeSeries> temperatures;
};

/**
 * Drive a ReferenceServer through @p loads for @p duration seconds
 * (1 Hz sampling) and record @p probes.
 *
 * @param use_sensors read through the noisy/quantized/lagged sensors
 * (what a real experimenter gets) instead of the exact state.
 */
ReferenceRun
runReference(const refmodel::ReferenceConfig &config, double duration,
             const std::vector<std::pair<std::string, Waveform>> &loads,
             const std::vector<std::string> &probes, bool use_sensors);

/**
 * The full Section 3.1 calibration: run the CPU and disk
 * microbenchmarks on the reference machine, then tune the Table 1
 * spec's four main heat constants (cpu--cpu_air, disk_platters--
 * disk_shell, disk_shell--disk_air, motherboard--void_air) to match
 * the cpu_air and disk_platters reference probes.
 */
CalibrationResult
calibrateTable1AgainstReference(const refmodel::ReferenceConfig &config,
                                bool use_sensors = true,
                                double duration = kCalibrationDuration);

} // namespace calib
} // namespace mercury

#endif // MERCURY_CALIB_VALIDATION_HH
