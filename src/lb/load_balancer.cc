#include "lb/load_balancer.hh"

#include "util/logging.hh"

namespace mercury {
namespace lb {

void
LoadBalancer::addServer(cluster::ServerMachine *server, int weight)
{
    if (!server)
        MERCURY_PANIC("LoadBalancer: null server");
    if (byName_.count(server->name()))
        MERCURY_PANIC("LoadBalancer: duplicate server '", server->name(),
                      "'");
    if (weight < 0)
        MERCURY_PANIC("LoadBalancer: negative weight");

    Entry entry;
    entry.machine = server;
    entry.weight = weight;
    byName_[server->name()] = servers_.size();
    servers_.push_back(entry);

    server->setCompletionFn([this](const cluster::ServerMachine &machine,
                                   const cluster::Request &request,
                                   cluster::RequestOutcome outcome) {
        if (outcome == cluster::RequestOutcome::Completed) {
            ++completed_;
        } else {
            ++dropped_;
        }
        if (observer_)
            observer_(machine, request, outcome);
    });
}

LoadBalancer::Entry &
LoadBalancer::find(const std::string &name)
{
    auto it = byName_.find(name);
    if (it == byName_.end())
        MERCURY_PANIC("LoadBalancer: unknown server '", name, "'");
    return servers_[it->second];
}

const LoadBalancer::Entry &
LoadBalancer::find(const std::string &name) const
{
    auto it = byName_.find(name);
    if (it == byName_.end())
        MERCURY_PANIC("LoadBalancer: unknown server '", name, "'");
    return servers_[it->second];
}

void
LoadBalancer::setWeight(const std::string &name, int weight)
{
    if (weight < 0)
        MERCURY_PANIC("LoadBalancer: negative weight for ", name);
    find(name).weight = weight;
}

int
LoadBalancer::weight(const std::string &name) const
{
    return find(name).weight;
}

void
LoadBalancer::setConnectionCap(const std::string &name, int cap)
{
    if (cap < 0)
        MERCURY_PANIC("LoadBalancer: negative connection cap for ", name);
    find(name).connectionCap = cap;
}

int
LoadBalancer::connectionCap(const std::string &name) const
{
    return find(name).connectionCap;
}

void
LoadBalancer::setEnabled(const std::string &name, bool enabled)
{
    find(name).enabled = enabled;
}

bool
LoadBalancer::enabled(const std::string &name) const
{
    return find(name).enabled;
}

void
LoadBalancer::setDynamicContentAllowed(const std::string &name,
                                       bool allowed)
{
    find(name).dynamicAllowed = allowed;
}

bool
LoadBalancer::dynamicContentAllowed(const std::string &name) const
{
    return find(name).dynamicAllowed;
}

void
LoadBalancer::submit(const cluster::Request &request)
{
    ++submitted_;

    // Weighted least connections: minimise conns/weight, compared via
    // cross-multiplication exactly like LVS's WLC scheduler. The
    // content-aware pass first tries only servers accepting dynamic
    // requests; if none qualifies, the restriction is waived rather
    // than dropping the request.
    auto pick = [&](bool respect_content) -> Entry * {
        Entry *best = nullptr;
        for (Entry &entry : servers_) {
            if (!entry.enabled || entry.weight <= 0 ||
                !entry.machine->isOn()) {
                continue;
            }
            if (respect_content && request.dynamic &&
                !entry.dynamicAllowed) {
                continue;
            }
            int conns = entry.machine->activeConnections();
            if (entry.connectionCap > 0 && conns >= entry.connectionCap)
                continue;
            if (!best) {
                best = &entry;
                continue;
            }
            long long lhs = static_cast<long long>(conns) * best->weight;
            long long rhs =
                static_cast<long long>(
                    best->machine->activeConnections()) *
                entry.weight;
            if (lhs < rhs)
                best = &entry;
        }
        return best;
    };

    Entry *best = pick(true);
    if (!best)
        best = pick(false);
    if (!best) {
        // No eligible server at all (every server disabled, weight 0,
        // powered off, or at its connection cap). Counted separately
        // from server-side drops so operators can tell admission
        // starvation from overload.
        ++dropped_;
        ++droppedNoEligible_;
        return;
    }
    ++best->dispatched;
    best->machine->offer(request); // drops are counted via the hook
}

int
LoadBalancer::activeConnections(const std::string &name) const
{
    return find(name).machine->activeConnections();
}

std::vector<std::string>
LoadBalancer::serverNames() const
{
    std::vector<std::string> out;
    out.reserve(servers_.size());
    for (const Entry &entry : servers_)
        out.push_back(entry.machine->name());
    return out;
}

cluster::ServerMachine &
LoadBalancer::server(const std::string &name)
{
    return *find(name).machine;
}

const cluster::ServerMachine &
LoadBalancer::server(const std::string &name) const
{
    return *find(name).machine;
}

double
LoadBalancer::dropRate() const
{
    if (submitted_ == 0)
        return 0.0;
    return static_cast<double>(dropped_) /
           static_cast<double>(submitted_);
}

uint64_t
LoadBalancer::dispatchedTo(const std::string &name) const
{
    return find(name).dispatched;
}

void
LoadBalancer::setCompletionObserver(Observer observer)
{
    observer_ = std::move(observer);
}

void
LoadBalancer::registerMetrics(metrics::Registry &registry)
{
    submittedGuard_.add(
        registry, "lb_submitted_total", "requests offered to the LB",
        [this] { return static_cast<double>(submitted_); });
    completedGuard_.add(
        registry, "lb_completed_total", "requests completed by servers",
        [this] { return static_cast<double>(completed_); });
    droppedGuard_.add(
        registry, "lb_dropped_total",
        "requests dropped (admission + server side)",
        [this] { return static_cast<double>(dropped_); });
    noEligibleGuard_.add(
        registry, "lb_dropped_no_eligible_total",
        "requests dropped because no server was eligible",
        [this] { return static_cast<double>(droppedNoEligible_); });
}

RunningStats
LoadBalancer::latencyStats() const
{
    RunningStats out;
    for (const Entry &entry : servers_)
        out.merge(entry.machine->latencyStats());
    return out;
}

Histogram
LoadBalancer::latencyHistogram() const
{
    Histogram out(0.0, 20.0, 2000);
    for (const Entry &entry : servers_)
        out.merge(entry.machine->latencyHistogram());
    return out;
}

} // namespace lb
} // namespace mercury
