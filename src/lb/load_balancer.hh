/**
 * @file
 * The LVS substitute: a layer-4 load balancer with *weighted
 * least-connections* request distribution (Section 4.1; Zhang's Linux
 * Virtual Server). Freon manipulates exactly the knobs LVS exposes:
 * per-server weights, per-server concurrent-connection caps, and
 * administrative removal/addition of servers; admd also queries the
 * active-connection statistics.
 */

#ifndef MERCURY_LB_LOAD_BALANCER_HH
#define MERCURY_LB_LOAD_BALANCER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/request.hh"
#include "cluster/server_machine.hh"
#include "metrics/metrics.hh"

namespace mercury {
namespace lb {

/**
 * Weighted least-connections dispatcher over ServerMachines.
 */
class LoadBalancer
{
  public:
    /** Default weight given to newly added servers (LVS uses integer
     *  weights; a large base keeps Freon's rescaling precise). */
    static constexpr int kDefaultWeight = 1000;

    LoadBalancer() = default;

    /** Register a server (borrowed). Installs the completion hook. */
    void addServer(cluster::ServerMachine *server,
                   int weight = kDefaultWeight);

    /** @name LVS control interface (used by Freon's admd) */
    /// @{

    /** Set a server's weight; 0 stops new connections to it. */
    void setWeight(const std::string &name, int weight);
    int weight(const std::string &name) const;

    /** Cap concurrent connections; 0 removes the cap. */
    void setConnectionCap(const std::string &name, int cap);
    int connectionCap(const std::string &name) const;

    /** Administratively include/exclude a server (power cycling). */
    void setEnabled(const std::string &name, bool enabled);
    bool enabled(const std::string &name) const;

    /**
     * Content-aware dispatch (the extension Section 4.3 proposes):
     * when disallowed, CPU-heavy dynamic requests avoid this server as
     * long as at least one other eligible server accepts them; static
     * requests still flow normally.
     */
    void setDynamicContentAllowed(const std::string &name, bool allowed);
    bool dynamicContentAllowed(const std::string &name) const;

    /// @}
    /** @name Dispatch */
    /// @{

    /**
     * Route one request with weighted least-connections: among
     * enabled, powered-on, positively weighted servers below their
     * caps, pick the one minimising activeConnections / weight.
     * Requests with no eligible server are dropped.
     */
    void submit(const cluster::Request &request);

    /// @}
    /** @name Statistics */
    /// @{

    int activeConnections(const std::string &name) const;
    std::vector<std::string> serverNames() const;
    cluster::ServerMachine &server(const std::string &name);
    const cluster::ServerMachine &server(const std::string &name) const;

    uint64_t submitted() const { return submitted_; }
    uint64_t completed() const { return completed_; }
    uint64_t dropped() const { return dropped_; }

    /** Drops because no server was eligible at submit time (all
     *  disabled, weight 0, off, or at their caps) — distinct from
     *  server-side drops, which a server reports after admission. */
    uint64_t droppedNoEligible() const { return droppedNoEligible_; }

    /** Fraction of submitted requests dropped so far. */
    double dropRate() const;

    /** Aggregate completion-latency summary across all servers [s]. */
    RunningStats latencyStats() const;

    /** Aggregate latency distribution across all servers [s]. */
    Histogram latencyHistogram() const;

    /** Requests dispatched to one server since start. */
    uint64_t dispatchedTo(const std::string &name) const;

    /// @}

    /**
     * Observe every terminal request outcome (after the balancer's own
     * accounting). Multi-tier setups use this to launch the next
     * tier's sub-request when a front-tier request completes.
     */
    using Observer = std::function<void(const cluster::ServerMachine &,
                                        const cluster::Request &,
                                        cluster::RequestOutcome)>;
    void setCompletionObserver(Observer observer);

    /**
     * Export the dispatch counters into @p registry (lb_submitted_total
     * and friends). Guarded: destroying this balancer unregisters them,
     * and a newer balancer registering the same names wins.
     */
    void registerMetrics(metrics::Registry &registry);

  private:
    struct Entry
    {
        cluster::ServerMachine *machine = nullptr;
        int weight = kDefaultWeight;
        int connectionCap = 0; // 0 = uncapped
        bool enabled = true;
        bool dynamicAllowed = true;
        uint64_t dispatched = 0;
    };

    Entry &find(const std::string &name);
    const Entry &find(const std::string &name) const;

    std::vector<Entry> servers_;
    std::map<std::string, size_t> byName_;
    Observer observer_;
    uint64_t submitted_ = 0;
    uint64_t completed_ = 0;
    uint64_t dropped_ = 0;
    uint64_t droppedNoEligible_ = 0;

    metrics::CallbackGuard submittedGuard_;
    metrics::CallbackGuard completedGuard_;
    metrics::CallbackGuard droppedGuard_;
    metrics::CallbackGuard noEligibleGuard_;
};

} // namespace lb
} // namespace mercury

#endif // MERCURY_LB_LOAD_BALANCER_HH
