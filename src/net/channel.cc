#include "net/channel.hh"

#include <chrono>

namespace mercury {
namespace net {

UdpClientChannel::UdpClientChannel(Endpoint server)
    : server_(server)
{
    socket_.bind(0);
}

bool
UdpClientChannel::send(const void *data, size_t length)
{
    return socket_.sendTo(server_, data, length);
}

std::optional<size_t>
UdpClientChannel::recv(void *buffer, size_t capacity,
                       double timeout_seconds)
{
    return socket_.recvFrom(buffer, capacity, nullptr, timeout_seconds);
}

double
UdpClientChannel::now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace net
} // namespace mercury
