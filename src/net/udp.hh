/**
 * @file
 * Thin RAII wrapper around POSIX UDP sockets. Mercury's daemons speak
 * fixed-size datagrams (proto/messages.hh); this wrapper adds bounded
 * waits, address resolution and syscall batching (recvMany/sendMany
 * over recvmmsg/sendmmsg where the platform has them) and nothing
 * else.
 */

#ifndef MERCURY_NET_UDP_HH
#define MERCURY_NET_UDP_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace mercury {
namespace net {

/** A resolved IPv4 endpoint. */
struct Endpoint
{
    uint32_t address = 0; //!< network byte order
    uint16_t port = 0;    //!< host byte order

    std::string toString() const;
};

/** Resolve a host name or dotted quad; nullopt on failure. */
std::optional<uint32_t> resolveHost(const std::string &host);

/**
 * Process-wide switch between the multi-message syscalls
 * (recvmmsg/sendmmsg) and the portable one-datagram-per-syscall
 * fallback inside recvMany/sendMany. The semantics are identical
 * either way; the switch exists so the RPC bench can price the
 * batching and so the tests exercise the fallback on any platform.
 * Non-Linux builds always use the fallback.
 */
void setBatchSyscallsEnabled(bool enabled);
bool batchSyscallsEnabled();

/**
 * Move-only UDP socket.
 */
class UdpSocket
{
  public:
    /** Creates the socket; fatal when the OS refuses. */
    UdpSocket();
    ~UdpSocket();

    UdpSocket(UdpSocket &&other) noexcept;
    UdpSocket &operator=(UdpSocket &&other) noexcept;
    UdpSocket(const UdpSocket &) = delete;
    UdpSocket &operator=(const UdpSocket &) = delete;

    /**
     * Bind to a local port (0 = ephemeral); fatal on failure. With
     * @p reuse_port, SO_REUSEPORT is set before binding so several
     * sockets (one per serve worker) can share one port and let the
     * kernel spray inbound datagrams across them.
     */
    void bind(uint16_t port, bool reuse_port = false);

    /** Local port after bind (or after the first send). */
    uint16_t localPort() const;

    /** Send one datagram to an endpoint. Returns false on error. */
    bool sendTo(const Endpoint &to, const void *data, size_t length);

    /** @name Syscall-batched I/O
     * One recvMany/sendMany call moves up to kMaxBatch datagrams per
     * syscall (recvmmsg/sendmmsg on Linux; a drain loop of
     * non-blocking single-datagram syscalls elsewhere). The serve
     * workers and monitord's update batcher live on these.
     */
    /// @{

    /** Most datagrams one batched call will touch. */
    static constexpr size_t kMaxBatch = 32;

    /** One received datagram's metadata (payload lands in the caller's
     *  buffer array). */
    struct RecvDatagram
    {
        size_t length = 0;
        Endpoint from;
    };

    /** One datagram to send. */
    struct SendDatagram
    {
        Endpoint to;
        const void *data = nullptr;
        size_t length = 0;
    };

    /**
     * Wait up to @p timeout_seconds (< 0 = forever) for traffic, then
     * drain up to @p count datagrams (capped at kMaxBatch) without
     * blocking again. Datagram i lands at @p buffers + i * @p capacity
     * (truncated to @p capacity bytes) with its size and sender in
     * @p out[i]. Returns the number received: 0 on timeout, and never
     * blocks once the first datagram has been read. EINTR is retried
     * with the remaining budget, like recvFrom.
     */
    size_t recvMany(void *buffers, size_t capacity, RecvDatagram *out,
                    size_t count, double timeout_seconds);

    /**
     * Send @p count datagrams (no cap — the implementation loops in
     * kMaxBatch slices). Returns how many were fully sent; with
     * @p first_error non-null, the index of the first failed datagram
     * lands there (count when all went out). Unlike sendTo, per-
     * datagram failures are NOT logged here — callers own the
     * once-per-peer policy (see the serve workers).
     */
    size_t sendMany(const SendDatagram *items, size_t count,
                    size_t *first_error = nullptr);

    /// @}

    /**
     * Wait up to @p timeout_seconds for a datagram. Returns the byte
     * count, or nullopt on timeout/error. @p from (optional) receives
     * the sender's endpoint. Signal interruptions (EINTR) are retried
     * with the remaining timeout — a signal never looks like loss.
     */
    std::optional<size_t> recvFrom(void *buffer, size_t capacity,
                                   Endpoint *from, double timeout_seconds);

    /** Raw descriptor (for poll integration in the daemons). */
    int fd() const { return fd_; }

  private:
    int fd_ = -1;
};

} // namespace net
} // namespace mercury

#endif // MERCURY_NET_UDP_HH
