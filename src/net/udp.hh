/**
 * @file
 * Thin RAII wrapper around POSIX UDP sockets. Mercury's daemons speak
 * fixed-size datagrams (proto/messages.hh); this wrapper adds bounded
 * waits and address resolution and nothing else.
 */

#ifndef MERCURY_NET_UDP_HH
#define MERCURY_NET_UDP_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace mercury {
namespace net {

/** A resolved IPv4 endpoint. */
struct Endpoint
{
    uint32_t address = 0; //!< network byte order
    uint16_t port = 0;    //!< host byte order

    std::string toString() const;
};

/** Resolve a host name or dotted quad; nullopt on failure. */
std::optional<uint32_t> resolveHost(const std::string &host);

/**
 * Move-only UDP socket.
 */
class UdpSocket
{
  public:
    /** Creates the socket; fatal when the OS refuses. */
    UdpSocket();
    ~UdpSocket();

    UdpSocket(UdpSocket &&other) noexcept;
    UdpSocket &operator=(UdpSocket &&other) noexcept;
    UdpSocket(const UdpSocket &) = delete;
    UdpSocket &operator=(const UdpSocket &) = delete;

    /** Bind to a local port (0 = ephemeral); fatal on failure. */
    void bind(uint16_t port);

    /** Local port after bind (or after the first send). */
    uint16_t localPort() const;

    /** Send one datagram to an endpoint. Returns false on error. */
    bool sendTo(const Endpoint &to, const void *data, size_t length);

    /**
     * Wait up to @p timeout_seconds for a datagram. Returns the byte
     * count, or nullopt on timeout/error. @p from (optional) receives
     * the sender's endpoint. Signal interruptions (EINTR) are retried
     * with the remaining timeout — a signal never looks like loss.
     */
    std::optional<size_t> recvFrom(void *buffer, size_t capacity,
                                   Endpoint *from, double timeout_seconds);

    /** Raw descriptor (for poll integration in the daemons). */
    int fd() const { return fd_; }

  private:
    int fd_ = -1;
};

} // namespace net
} // namespace mercury

#endif // MERCURY_NET_UDP_HH
