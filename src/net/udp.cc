#include "net/udp.hh"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "util/logging.hh"
#include "util/strings.hh"

namespace mercury {
namespace net {

std::string
Endpoint::toString() const
{
    in_addr addr;
    addr.s_addr = address;
    char buf[INET_ADDRSTRLEN] = {};
    inet_ntop(AF_INET, &addr, buf, sizeof(buf));
    return format("%s:%u", buf, static_cast<unsigned>(port));
}

std::optional<uint32_t>
resolveHost(const std::string &host)
{
    in_addr parsed;
    if (inet_pton(AF_INET, host.c_str(), &parsed) == 1)
        return parsed.s_addr;

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_DGRAM;
    addrinfo *result = nullptr;
    if (getaddrinfo(host.c_str(), nullptr, &hints, &result) != 0)
        return std::nullopt;
    std::optional<uint32_t> out;
    for (addrinfo *it = result; it; it = it->ai_next) {
        if (it->ai_family == AF_INET) {
            out = reinterpret_cast<sockaddr_in *>(it->ai_addr)
                      ->sin_addr.s_addr;
            break;
        }
    }
    freeaddrinfo(result);
    return out;
}

UdpSocket::UdpSocket()
{
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0)
        fatal("socket(): ", std::strerror(errno));
}

UdpSocket::~UdpSocket()
{
    if (fd_ >= 0)
        ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket &&other) noexcept
    : fd_(other.fd_)
{
    other.fd_ = -1;
}

UdpSocket &
UdpSocket::operator=(UdpSocket &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
UdpSocket::bind(uint16_t port)
{
    // A supervised restart must reclaim the crashed daemon's port.
    // SO_REUSEADDR alone is not enough on Linux UDP (both the holder
    // and the binder must set it, and the dying process's socket may
    // linger briefly), so also retry EADDRINUSE for a couple of
    // seconds before giving up.
    if (port != 0) {
        int one = 1;
        if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one)) < 0) {
            warn("setsockopt(SO_REUSEADDR): ", std::strerror(errno));
        }
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);

    constexpr int kBindAttempts = 20;
    constexpr auto kBindRetryDelay = std::chrono::milliseconds(100);
    for (int attempt = 1;; ++attempt) {
        if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) == 0)
            return;
        if (errno != EADDRINUSE || port == 0 ||
            attempt >= kBindAttempts)
            fatal("bind(", port, "): ", std::strerror(errno));
        if (attempt == 1)
            inform("bind(", port, "): address in use, retrying for up "
                   "to ", kBindAttempts, " attempts");
        std::this_thread::sleep_for(kBindRetryDelay);
    }
}

uint16_t
UdpSocket::localPort() const
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr), &len) < 0)
        return 0;
    return ntohs(addr.sin_port);
}

bool
UdpSocket::sendTo(const Endpoint &to, const void *data, size_t length)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = to.address;
    addr.sin_port = htons(to.port);
    ssize_t sent;
    do {
        sent = ::sendto(fd_, data, length, 0,
                        reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr));
    } while (sent < 0 && errno == EINTR);
    if (sent < 0) {
        warn("sendto(", to.toString(), "): ", std::strerror(errno));
        return false;
    }
    if (static_cast<size_t>(sent) != length) {
        warn("sendto(", to.toString(), "): short send, ", sent, " of ",
             length, " bytes");
        return false;
    }
    return true;
}

std::optional<size_t>
UdpSocket::recvFrom(void *buffer, size_t capacity, Endpoint *from,
                    double timeout_seconds)
{
    using Clock = std::chrono::steady_clock;
    const bool bounded = timeout_seconds >= 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               bounded ? timeout_seconds : 0.0));

    // A signal interrupting poll()/recvfrom() is not packet loss:
    // retry with whatever remains of the timeout budget.
    for (;;) {
        int timeout_ms = -1;
        if (bounded) {
            double remaining =
                std::chrono::duration<double>(deadline - Clock::now())
                    .count();
            timeout_ms = remaining <= 0.0
                             ? 0
                             : static_cast<int>(
                                   std::ceil(remaining * 1000.0));
        }
        pollfd pfd{fd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (ready == 0)
            return std::nullopt; // genuine timeout

        sockaddr_in addr{};
        socklen_t len = sizeof(addr);
        ssize_t got = ::recvfrom(fd_, buffer, capacity, 0,
                                 reinterpret_cast<sockaddr *>(&addr),
                                 &len);
        if (got < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK) {
                continue;
            }
            return std::nullopt;
        }
        if (from) {
            from->address = addr.sin_addr.s_addr;
            from->port = ntohs(addr.sin_port);
        }
        return static_cast<size_t>(got);
    }
}

} // namespace net
} // namespace mercury
