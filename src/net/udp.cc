#include "net/udp.hh"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "util/logging.hh"
#include "util/strings.hh"

namespace mercury {
namespace net {

namespace {

/** recvmmsg/sendmmsg vs portable fallback (see the header). */
std::atomic<bool> batchSyscalls{true};

} // namespace

void
setBatchSyscallsEnabled(bool enabled)
{
    batchSyscalls.store(enabled, std::memory_order_relaxed);
}

bool
batchSyscallsEnabled()
{
#ifdef __linux__
    return batchSyscalls.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

std::string
Endpoint::toString() const
{
    in_addr addr;
    addr.s_addr = address;
    char buf[INET_ADDRSTRLEN] = {};
    inet_ntop(AF_INET, &addr, buf, sizeof(buf));
    return format("%s:%u", buf, static_cast<unsigned>(port));
}

std::optional<uint32_t>
resolveHost(const std::string &host)
{
    in_addr parsed;
    if (inet_pton(AF_INET, host.c_str(), &parsed) == 1)
        return parsed.s_addr;

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_DGRAM;
    addrinfo *result = nullptr;
    if (getaddrinfo(host.c_str(), nullptr, &hints, &result) != 0)
        return std::nullopt;
    std::optional<uint32_t> out;
    for (addrinfo *it = result; it; it = it->ai_next) {
        if (it->ai_family == AF_INET) {
            out = reinterpret_cast<sockaddr_in *>(it->ai_addr)
                      ->sin_addr.s_addr;
            break;
        }
    }
    freeaddrinfo(result);
    return out;
}

UdpSocket::UdpSocket()
{
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0)
        fatal("socket(): ", std::strerror(errno));
}

UdpSocket::~UdpSocket()
{
    if (fd_ >= 0)
        ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket &&other) noexcept
    : fd_(other.fd_)
{
    other.fd_ = -1;
}

UdpSocket &
UdpSocket::operator=(UdpSocket &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
UdpSocket::bind(uint16_t port, bool reuse_port)
{
    // A supervised restart must reclaim the crashed daemon's port.
    // SO_REUSEADDR alone is not enough on Linux UDP (both the holder
    // and the binder must set it, and the dying process's socket may
    // linger briefly), so also retry EADDRINUSE for a couple of
    // seconds before giving up.
    if (port != 0) {
        int one = 1;
        if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one)) < 0) {
            warn("setsockopt(SO_REUSEADDR): ", std::strerror(errno));
        }
    }
    if (reuse_port) {
#ifdef SO_REUSEPORT
        int one = 1;
        if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one,
                         sizeof(one)) < 0) {
            // Sharding degrades to one effective receiver; the daemon
            // still works, so warn rather than die.
            warn("setsockopt(SO_REUSEPORT): ", std::strerror(errno));
        }
#else
        warn("SO_REUSEPORT unsupported on this platform; "
             "sharded sockets will contend on one queue");
#endif
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);

    constexpr int kBindAttempts = 20;
    constexpr auto kBindRetryDelay = std::chrono::milliseconds(100);
    for (int attempt = 1;; ++attempt) {
        if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) == 0)
            return;
        if (errno != EADDRINUSE || port == 0 ||
            attempt >= kBindAttempts)
            fatal("bind(", port, "): ", std::strerror(errno));
        if (attempt == 1)
            inform("bind(", port, "): address in use, retrying for up "
                   "to ", kBindAttempts, " attempts");
        std::this_thread::sleep_for(kBindRetryDelay);
    }
}

uint16_t
UdpSocket::localPort() const
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr), &len) < 0)
        return 0;
    return ntohs(addr.sin_port);
}

bool
UdpSocket::sendTo(const Endpoint &to, const void *data, size_t length)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = to.address;
    addr.sin_port = htons(to.port);
    ssize_t sent;
    do {
        sent = ::sendto(fd_, data, length, 0,
                        reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr));
    } while (sent < 0 && errno == EINTR);
    if (sent < 0) {
        warn("sendto(", to.toString(), "): ", std::strerror(errno));
        return false;
    }
    if (static_cast<size_t>(sent) != length) {
        warn("sendto(", to.toString(), "): short send, ", sent, " of ",
             length, " bytes");
        return false;
    }
    return true;
}

std::optional<size_t>
UdpSocket::recvFrom(void *buffer, size_t capacity, Endpoint *from,
                    double timeout_seconds)
{
    using Clock = std::chrono::steady_clock;
    const bool bounded = timeout_seconds >= 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               bounded ? timeout_seconds : 0.0));

    // A signal interrupting poll()/recvfrom() is not packet loss:
    // retry with whatever remains of the timeout budget.
    for (;;) {
        int timeout_ms = -1;
        if (bounded) {
            double remaining =
                std::chrono::duration<double>(deadline - Clock::now())
                    .count();
            timeout_ms = remaining <= 0.0
                             ? 0
                             : static_cast<int>(
                                   std::ceil(remaining * 1000.0));
        }
        pollfd pfd{fd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (ready == 0)
            return std::nullopt; // genuine timeout

        sockaddr_in addr{};
        socklen_t len = sizeof(addr);
        ssize_t got = ::recvfrom(fd_, buffer, capacity, 0,
                                 reinterpret_cast<sockaddr *>(&addr),
                                 &len);
        if (got < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK) {
                continue;
            }
            return std::nullopt;
        }
        if (from) {
            from->address = addr.sin_addr.s_addr;
            from->port = ntohs(addr.sin_port);
        }
        return static_cast<size_t>(got);
    }
}

size_t
UdpSocket::recvMany(void *buffers, size_t capacity, RecvDatagram *out,
                    size_t count, double timeout_seconds)
{
    if (count == 0 || capacity == 0)
        return 0;
    if (count > kMaxBatch)
        count = kMaxBatch;

    // Block (bounded) for the first datagram only; the rest of the
    // batch is whatever is already queued. This keeps worst-case
    // latency at one datagram while amortizing syscalls under load.
    uint8_t *base = static_cast<uint8_t *>(buffers);
    auto first = recvFrom(base, capacity, &out[0].from, timeout_seconds);
    if (!first)
        return 0;
    out[0].length = *first;
    size_t received = 1;

#ifdef __linux__
    if (batchSyscallsEnabled()) {
        while (received < count) {
            mmsghdr msgs[kMaxBatch];
            iovec iovs[kMaxBatch];
            sockaddr_in addrs[kMaxBatch];
            size_t want = count - received;
            for (size_t i = 0; i < want; ++i) {
                std::memset(&msgs[i], 0, sizeof(msgs[i]));
                iovs[i].iov_base = base + (received + i) * capacity;
                iovs[i].iov_len = capacity;
                msgs[i].msg_hdr.msg_iov = &iovs[i];
                msgs[i].msg_hdr.msg_iovlen = 1;
                msgs[i].msg_hdr.msg_name = &addrs[i];
                msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
            }
            int got = ::recvmmsg(fd_, msgs, static_cast<unsigned>(want),
                                 MSG_DONTWAIT, nullptr);
            if (got < 0) {
                if (errno == EINTR)
                    continue;
                break; // EAGAIN: the queue is drained
            }
            for (int i = 0; i < got; ++i) {
                out[received].length = msgs[i].msg_len;
                out[received].from.address = addrs[i].sin_addr.s_addr;
                out[received].from.port = ntohs(addrs[i].sin_port);
                ++received;
            }
            if (static_cast<size_t>(got) < want)
                break;
        }
        return received;
    }
#endif

    // Portable fallback: non-blocking single-datagram drain.
    while (received < count) {
        auto more = recvFrom(base + received * capacity, capacity,
                             &out[received].from, 0.0);
        if (!more)
            break;
        out[received].length = *more;
        ++received;
    }
    return received;
}

size_t
UdpSocket::sendMany(const SendDatagram *items, size_t count,
                    size_t *first_error)
{
    size_t sent = 0;
    bool failed = false;
    size_t failed_at = count;

#ifdef __linux__
    if (batchSyscallsEnabled()) {
        size_t offset = 0;
        while (offset < count) {
            mmsghdr msgs[kMaxBatch];
            iovec iovs[kMaxBatch];
            sockaddr_in addrs[kMaxBatch];
            size_t want = std::min(count - offset, kMaxBatch);
            for (size_t i = 0; i < want; ++i) {
                const SendDatagram &item = items[offset + i];
                std::memset(&msgs[i], 0, sizeof(msgs[i]));
                std::memset(&addrs[i], 0, sizeof(addrs[i]));
                addrs[i].sin_family = AF_INET;
                addrs[i].sin_addr.s_addr = item.to.address;
                addrs[i].sin_port = htons(item.to.port);
                iovs[i].iov_base = const_cast<void *>(item.data);
                iovs[i].iov_len = item.length;
                msgs[i].msg_hdr.msg_iov = &iovs[i];
                msgs[i].msg_hdr.msg_iovlen = 1;
                msgs[i].msg_hdr.msg_name = &addrs[i];
                msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
            }
            int done = ::sendmmsg(fd_, msgs, static_cast<unsigned>(want), 0);
            if (done < 0) {
                if (errno == EINTR)
                    continue;
                // The datagram at `offset` is unsendable: record it,
                // skip it, and keep shipping the rest of the batch.
                if (!failed) {
                    failed = true;
                    failed_at = offset;
                }
                ++offset;
                continue;
            }
            for (int i = 0; i < done; ++i) {
                if (msgs[i].msg_len ==
                    static_cast<unsigned>(items[offset + i].length)) {
                    ++sent;
                } else if (!failed) {
                    failed = true;
                    failed_at = offset + i;
                }
            }
            offset += static_cast<size_t>(done);
            if (static_cast<size_t>(done) < want && offset < count) {
                // Partial batch without an errno: treat the next
                // datagram as the failure and move past it.
                if (!failed) {
                    failed = true;
                    failed_at = offset;
                }
                ++offset;
            }
        }
        if (first_error)
            *first_error = failed ? failed_at : count;
        return sent;
    }
#endif

    for (size_t i = 0; i < count; ++i) {
        const SendDatagram &item = items[i];
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = item.to.address;
        addr.sin_port = htons(item.to.port);
        ssize_t done;
        do {
            done = ::sendto(fd_, item.data, item.length, 0,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr));
        } while (done < 0 && errno == EINTR);
        if (done == static_cast<ssize_t>(item.length)) {
            ++sent;
        } else if (!failed) {
            failed = true;
            failed_at = i;
        }
    }
    if (first_error)
        *first_error = failed ? failed_at : count;
    return sent;
}

} // namespace net
} // namespace mercury
