#include "net/faults.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mercury {
namespace net {

FaultInjector::FaultInjector(const FaultSpec &spec)
    : spec_(spec), rng_(spec.seed)
{
}

FaultPlan
FaultInjector::plan()
{
    ++counters_.datagrams;
    FaultPlan plan;
    if (rng_.chance(spec_.dropProbability)) {
        plan.drop = true;
        ++counters_.dropped;
        return plan;
    }
    if (rng_.chance(spec_.duplicateProbability)) {
        plan.copies = 2;
        ++counters_.duplicated;
    }
    if (rng_.chance(spec_.reorderProbability)) {
        plan.reordered = true;
        plan.delaySeconds += spec_.reorderDelaySeconds;
        ++counters_.reordered;
    } else if (rng_.chance(spec_.delayProbability)) {
        plan.delaySeconds +=
            rng_.uniform(spec_.delayMinSeconds, spec_.delayMaxSeconds);
        ++counters_.delayed;
    }
    return plan;
}

FaultySocket::FaultySocket(UdpSocket &inner, const FaultSpec &spec)
    : inner_(inner), injector_(spec)
{
}

bool
FaultySocket::sendTo(const Endpoint &to, const void *data, size_t length)
{
    FaultPlan plan = injector_.plan();
    if (plan.drop)
        return true; // vanished in flight: a successful send, to the app
    if (plan.reordered) {
        // Hold this one; an earlier hold is released first (it has now
        // been overtaken by at least one datagram).
        flush();
        const uint8_t *bytes = static_cast<const uint8_t *>(data);
        held_ = Held{to, std::vector<uint8_t>(bytes, bytes + length),
                     plan.copies};
        return true;
    }
    bool ok = true;
    for (int copy = 0; copy < plan.copies; ++copy)
        ok = inner_.sendTo(to, data, length) && ok;
    flush();
    return ok;
}

std::optional<size_t>
FaultySocket::recvFrom(void *buffer, size_t capacity, Endpoint *from,
                       double timeout_seconds)
{
    return inner_.recvFrom(buffer, capacity, from, timeout_seconds);
}

void
FaultySocket::flush()
{
    if (!held_)
        return;
    for (int copy = 0; copy < held_->copies; ++copy)
        inner_.sendTo(held_->to, held_->data.data(), held_->data.size());
    held_.reset();
}

FaultyChannel::FaultyChannel(Handler handler,
                             const FaultSpec &request_faults,
                             const FaultSpec &reply_faults,
                             double latency_seconds)
    : handler_(std::move(handler)), requestFaults_(request_faults),
      replyFaults_(reply_faults), latency_(latency_seconds)
{
}

void
FaultyChannel::enqueue(double time, bool to_server, Datagram payload)
{
    Event event{time, to_server, nextEventId_++, std::move(payload)};
    auto pos = std::upper_bound(
        events_.begin(), events_.end(), event,
        [](const Event &a, const Event &b) {
            return a.time != b.time ? a.time < b.time : a.id < b.id;
        });
    events_.insert(pos, std::move(event));
}

std::optional<FaultyChannel::Event>
FaultyChannel::popDueBy(double limit)
{
    if (events_.empty() || events_.front().time > limit)
        return std::nullopt;
    Event event = std::move(events_.front());
    events_.pop_front();
    return event;
}

bool
FaultyChannel::send(const void *data, size_t length)
{
    FaultPlan plan = requestFaults_.plan();
    if (plan.drop)
        return true; // at-most-once UDP: the sender never learns
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    Datagram payload(bytes, bytes + length);
    double arrival = clock_ + latency_ / 2.0 + plan.delaySeconds;
    for (int copy = 0; copy < plan.copies; ++copy)
        enqueue(arrival, true, payload);
    return true;
}

std::optional<size_t>
FaultyChannel::recv(void *buffer, size_t capacity, double timeout_seconds)
{
    double deadline = clock_ + std::max(timeout_seconds, 0.0);
    while (auto event = popDueBy(deadline)) {
        clock_ = std::max(clock_, event->time);
        if (event->toServer) {
            auto reply =
                handler_(event->payload.data(), event->payload.size());
            if (!reply)
                continue;
            FaultPlan plan = replyFaults_.plan();
            if (plan.drop)
                continue;
            double arrival = clock_ + latency_ / 2.0 + plan.delaySeconds;
            for (int copy = 0; copy < plan.copies; ++copy)
                enqueue(arrival, false, *reply);
            continue;
        }
        size_t got = std::min(event->payload.size(), capacity);
        std::memcpy(buffer, event->payload.data(), got);
        return got;
    }
    clock_ = deadline;
    return std::nullopt;
}

const char *
sensorFaultModeName(SensorFaultSpec::Mode mode)
{
    switch (mode) {
      case SensorFaultSpec::Mode::None: return "none";
      case SensorFaultSpec::Mode::StuckAt: return "stuck-at";
      case SensorFaultSpec::Mode::Spike: return "spike";
      case SensorFaultSpec::Mode::Drift: return "drift";
      case SensorFaultSpec::Mode::Dropout: return "dropout";
    }
    return "?";
}

SensorFaultInjector::SensorFaultInjector(const SensorFaultSpec &spec)
    : spec_(spec), rng_(spec.seed)
{
}

bool
SensorFaultInjector::activeAt(double now) const
{
    return spec_.mode != SensorFaultSpec::Mode::None &&
           now >= spec_.startSeconds && now < spec_.endSeconds;
}

std::optional<double>
SensorFaultInjector::apply(double now, std::optional<double> raw)
{
    ++counters_.readings;
    if (!activeAt(now))
        return raw;
    switch (spec_.mode) {
      case SensorFaultSpec::Mode::None:
        return raw;
      case SensorFaultSpec::Mode::StuckAt:
        if (!haveStuck_) {
            stuckValue_ = std::isnan(spec_.stuckValue)
                              ? raw.value_or(0.0)
                              : spec_.stuckValue;
            haveStuck_ = true;
        }
        ++counters_.faulted;
        return stuckValue_;
      case SensorFaultSpec::Mode::Spike:
        if (raw && rng_.chance(spec_.spikeProbability)) {
            ++counters_.faulted;
            return *raw + spec_.spikeMagnitude;
        }
        return raw;
      case SensorFaultSpec::Mode::Drift:
        if (!raw)
            return raw;
        if (!driftStarted_) {
            driftStarted_ = true;
            driftStart_ = now;
        }
        ++counters_.faulted;
        return *raw + spec_.driftPerSecond * (now - driftStart_);
      case SensorFaultSpec::Mode::Dropout:
        if (rng_.chance(spec_.dropProbability)) {
            ++counters_.faulted;
            ++counters_.dropped;
            return std::nullopt;
        }
        return raw;
    }
    return raw;
}

} // namespace net
} // namespace mercury
