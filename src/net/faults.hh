/**
 * @file
 * Deterministic network-fault injection for the UDP control plane.
 *
 * Mercury's monitord updates, readsensor() round trips and fiddle
 * commands are all 128-byte at-most-once UDP datagrams. This header
 * provides the machinery to prove they survive a hostile network:
 *
 *  - FaultSpec / FaultInjector: seeded per-datagram decisions (drop,
 *    duplicate, reorder, delay) with exact counters, so a test can
 *    compare detected loss against injected loss.
 *  - FaultySocket: wraps a real UdpSocket and applies faults on the
 *    send side — for end-to-end daemon tests over loopback.
 *  - FaultyChannel: a fully in-process ClientChannel with a *virtual*
 *    clock. Requests and replies travel through fault-planned delivery
 *    queues and a server callback; timeouts, retries and stale replies
 *    all happen in simulated time, so a 10k-round-trip loss test runs
 *    in milliseconds.
 *
 * Everything is seeded through util/random.hh: identical seeds yield
 * identical fault schedules, keeping the robustness tests repeatable.
 */

#ifndef MERCURY_NET_FAULTS_HH
#define MERCURY_NET_FAULTS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "net/channel.hh"
#include "net/udp.hh"
#include "util/random.hh"

namespace mercury {
namespace net {

/** Fault probabilities and shapes for one direction of a link. */
struct FaultSpec
{
    double dropProbability = 0.0;      //!< datagram vanishes
    double duplicateProbability = 0.0; //!< datagram delivered twice
    double reorderProbability = 0.0;   //!< held back past later traffic
    double reorderDelaySeconds = 0.02; //!< how late a reordered one is
    double delayProbability = 0.0;     //!< extra in-flight latency
    double delayMinSeconds = 0.0;
    double delayMaxSeconds = 0.0;
    uint64_t seed = 0x6d657263;        //!< PRNG seed ('merc')
};

/** What happens to one datagram. */
struct FaultPlan
{
    bool drop = false;
    int copies = 1;              //!< delivered copies when not dropped
    double delaySeconds = 0.0;   //!< extra latency (reorder or delay)
    bool reordered = false;
};

/**
 * Seeded per-datagram fault decisions with exact counters.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultSpec &spec);

    /** Decide the fate of the next datagram (deterministic). */
    FaultPlan plan();

    struct Counters
    {
        uint64_t datagrams = 0;  //!< plans issued
        uint64_t dropped = 0;
        uint64_t duplicated = 0; //!< extra copies created
        uint64_t reordered = 0;
        uint64_t delayed = 0;
    };

    const Counters &counters() const { return counters_; }
    const FaultSpec &spec() const { return spec_; }

  private:
    FaultSpec spec_;
    Rng rng_;
    Counters counters_;
};

/**
 * Send-side fault wrapper over a real UdpSocket (borrowed). Drops and
 * duplicates sends; reordering holds one datagram back and releases it
 * after the next delivered send. Receives pass through untouched —
 * faults on one side of a loopback link exercise both peers.
 */
class FaultySocket
{
  public:
    FaultySocket(UdpSocket &inner, const FaultSpec &spec);

    bool sendTo(const Endpoint &to, const void *data, size_t length);
    std::optional<size_t> recvFrom(void *buffer, size_t capacity,
                                   Endpoint *from, double timeout_seconds);

    /** Release a held (reordered) datagram, if any. */
    void flush();

    const FaultInjector &injector() const { return injector_; }

  private:
    struct Held
    {
        Endpoint to;
        std::vector<uint8_t> data;
        int copies = 1;
    };

    UdpSocket &inner_;
    FaultInjector injector_;
    std::optional<Held> held_;
};

/**
 * In-process request/reply channel with independent fault injection on
 * each direction and a virtual clock.
 *
 * send() schedules the request for delivery to @p handler; recv()
 * advances virtual time, runs due deliveries through the handler, and
 * returns the first client-bound datagram inside the timeout. Replies
 * delayed past a caller's deadline stay queued and surface on later
 * recv() calls — exactly the stale-reply hazard the hardened transport
 * has to drain.
 */
class FaultyChannel final : public ClientChannel
{
  public:
    using Datagram = std::vector<uint8_t>;

    /** Server logic: consumes a request, optionally returns a reply. */
    using Handler =
        std::function<std::optional<Datagram>(const uint8_t *, size_t)>;

    FaultyChannel(Handler handler, const FaultSpec &request_faults,
                  const FaultSpec &reply_faults,
                  double latency_seconds = 0.0002);

    bool send(const void *data, size_t length) override;
    std::optional<size_t> recv(void *buffer, size_t capacity,
                               double timeout_seconds) override;
    double now() override { return clock_; }

    const FaultInjector &requestInjector() const { return requestFaults_; }
    const FaultInjector &replyInjector() const { return replyFaults_; }

  private:
    struct Event
    {
        double time = 0.0;
        bool toServer = false;
        uint64_t id = 0; //!< tie-break so equal times stay FIFO
        Datagram payload;
    };

    void enqueue(double time, bool to_server, Datagram payload);
    /** Pop the earliest event at or before @p limit. */
    std::optional<Event> popDueBy(double limit);

    Handler handler_;
    FaultInjector requestFaults_;
    FaultInjector replyFaults_;
    double latency_;
    double clock_ = 0.0;
    uint64_t nextEventId_ = 0;
    std::deque<Event> events_; //!< kept sorted by (time, id)
};

/**
 * Reading-level fault shape for one sensor stream (paper-side sensor
 * failures rather than network failures: the datagram arrives fine,
 * the *value* is wrong). Active inside [startSeconds, endSeconds).
 */
struct SensorFaultSpec
{
    enum class Mode : uint8_t {
        None,    //!< pass-through
        StuckAt, //!< reading freezes (at stuckValue, or first faulted)
        Spike,   //!< occasional +spikeMagnitude excursions
        Drift,   //!< reading creeps away at driftPerSecond
        Dropout, //!< reading goes missing with dropProbability
    };

    Mode mode = Mode::None;
    double startSeconds = 0.0;
    double endSeconds = 1e18;
    /** StuckAt: frozen value; NaN freezes at the first faulted
     *  reading. */
    double stuckValue = std::numeric_limits<double>::quiet_NaN();
    double spikeProbability = 0.2;
    double spikeMagnitude = 40.0;
    double driftPerSecond = 0.01;
    double dropProbability = 1.0;
    uint64_t seed = 0x73656e73; //!< PRNG seed ('sens')
};

const char *sensorFaultModeName(SensorFaultSpec::Mode mode);

/**
 * Applies one SensorFaultSpec to a stream of readings. Seeded and
 * deterministic like FaultInjector; counters let tests compare what
 * was corrupted against what the guard caught.
 */
class SensorFaultInjector
{
  public:
    explicit SensorFaultInjector(const SensorFaultSpec &spec);

    /** Transform one reading taken at @p now (nullopt = no reading). */
    std::optional<double> apply(double now, std::optional<double> raw);

    /** True when the fault window covers @p now. */
    bool activeAt(double now) const;

    struct Counters
    {
        uint64_t readings = 0; //!< readings seen
        uint64_t faulted = 0;  //!< readings altered
        uint64_t dropped = 0;  //!< readings suppressed (Dropout)
    };

    const Counters &counters() const { return counters_; }
    const SensorFaultSpec &spec() const { return spec_; }

  private:
    SensorFaultSpec spec_;
    Rng rng_;
    Counters counters_;
    bool haveStuck_ = false;
    double stuckValue_ = 0.0;
    bool driftStarted_ = false;
    double driftStart_ = 0.0;
};

} // namespace net
} // namespace mercury

#endif // MERCURY_NET_FAULTS_HH
