/**
 * @file
 * Client-side datagram channel abstraction.
 *
 * The sensor transport's retry/deadline loop is transport-agnostic: it
 * needs "send one datagram", "wait up to T seconds for one datagram"
 * and a monotonic clock. ClientChannel captures exactly that, so the
 * same hardened loop runs over real UDP (UdpClientChannel) and over
 * the deterministic fault-injecting channel (net/faults.hh) that the
 * robustness tests drive with a virtual clock.
 */

#ifndef MERCURY_NET_CHANNEL_HH
#define MERCURY_NET_CHANNEL_HH

#include <cstddef>
#include <optional>

#include "net/udp.hh"

namespace mercury {
namespace net {

/**
 * One client's view of a request/reply datagram channel.
 */
class ClientChannel
{
  public:
    virtual ~ClientChannel() = default;

    /** Send one datagram toward the server. False on local error. */
    virtual bool send(const void *data, size_t length) = 0;

    /**
     * Wait up to @p timeout_seconds for one datagram. Returns the byte
     * count, or nullopt on timeout.
     */
    virtual std::optional<size_t> recv(void *buffer, size_t capacity,
                                       double timeout_seconds) = 0;

    /**
     * Monotonic seconds. Real channels report wall time; fault-model
     * channels report virtual time, so deadline tests cost nothing.
     */
    virtual double now() = 0;
};

/**
 * Real UDP channel: an ephemeral-port socket aimed at one server.
 */
class UdpClientChannel final : public ClientChannel
{
  public:
    explicit UdpClientChannel(Endpoint server);

    bool send(const void *data, size_t length) override;
    std::optional<size_t> recv(void *buffer, size_t capacity,
                               double timeout_seconds) override;
    double now() override;

  private:
    UdpSocket socket_;
    Endpoint server_;
};

} // namespace net
} // namespace mercury

#endif // MERCURY_NET_CHANNEL_HH
