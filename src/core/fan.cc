#include "core/fan.hh"

#include <algorithm>
#include <cmath>

#include "core/thermal_graph.hh"
#include "util/logging.hh"

namespace mercury {
namespace core {

double
FanCurve::cfmFor(double temperature) const
{
    if (temperature <= lowTemperature)
        return minCfm;
    if (temperature >= highTemperature)
        return maxCfm;
    double alpha = (temperature - lowTemperature) /
                   (highTemperature - lowTemperature);
    return minCfm + alpha * (maxCfm - minCfm);
}

FanController::FanController(ThermalGraph &graph, std::string control_node,
                             FanCurve curve)
    : graph_(graph), controlNode_(std::move(control_node)), curve_(curve)
{
    if (!graph_.tryNodeId(controlNode_)) {
        MERCURY_PANIC("FanController: machine '", graph_.name(),
                      "' has no node '", controlNode_, "'");
    }
    if (curve_.highTemperature <= curve_.lowTemperature ||
        curve_.maxCfm < curve_.minCfm || curve_.minCfm < 0.0) {
        MERCURY_PANIC("FanController: malformed fan curve");
    }
    currentCfm_ = curve_.cfmFor(graph_.temperature(controlNode_));
    graph_.setFanCfm(currentCfm_);
}

void
FanController::update()
{
    double target = curve_.cfmFor(graph_.temperature(controlNode_));
    if (std::abs(target - currentCfm_) < curve_.hysteresisCfm)
        return;
    currentCfm_ = target;
    graph_.setFanCfm(currentCfm_);
}

} // namespace core
} // namespace mercury
