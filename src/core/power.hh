/**
 * @file
 * Component power models (Section 2.1, equations 3-4).
 *
 * The default model is linear in the component's high-level
 * utilization: P(u) = Pbase + u (Pmax - Pbase). The paper notes this
 * can be replaced per component; we also provide a piecewise-linear
 * table model and the performance-counter model the authors built for
 * the Pentium 4 (Section 2.3), which maps observed event counts to an
 * energy estimate and back to a "low-level utilization".
 */

#ifndef MERCURY_CORE_POWER_HH
#define MERCURY_CORE_POWER_HH

#include <memory>
#include <string>
#include <vector>

namespace mercury {
namespace core {

/**
 * Maps a utilization in [0, 1] to average power draw [W].
 */
class PowerModel
{
  public:
    virtual ~PowerModel() = default;

    /** Average power at the given utilization [W]. */
    virtual double power(double utilization) const = 0;

    /** Power when idle [W]. */
    virtual double basePower() const { return power(0.0); }

    /** Power when fully utilized [W]. */
    virtual double maxPower() const { return power(1.0); }
};

/**
 * Equation 4: P(u) = Pbase + u (Pmax - Pbase).
 */
class LinearPowerModel : public PowerModel
{
  public:
    LinearPowerModel(double p_base, double p_max);

    double power(double utilization) const override;
    double basePower() const override { return pBase_; }
    double maxPower() const override { return pMax_; }

    /** Change the range on-line (fiddle uses this). */
    void setRange(double p_base, double p_max);

  private:
    double pBase_;
    double pMax_;
};

/**
 * Piecewise-linear utilization -> power curve for components whose
 * consumption is not linear in high-level utilization.
 */
class TablePowerModel : public PowerModel
{
  public:
    /**
     * @param points (utilization, power) pairs; utilizations must be
     * strictly increasing and cover 0 and 1.
     */
    explicit TablePowerModel(std::vector<std::pair<double, double>> points);

    double power(double utilization) const override;

  private:
    std::vector<std::pair<double, double>> points_;
};

/**
 * Performance-counter energy accounting for modern CPUs (Section 2.3).
 *
 * Each hardware event class carries an energy cost; an observation
 * interval's counts yield an energy, hence an average power, which is
 * then normalised into the [Pbase, Pmax] range as a "low-level
 * utilization" so the rest of Mercury is unchanged.
 */
class PerfCounterPowerModel
{
  public:
    /** One monitored event class and its per-occurrence energy [nJ]. */
    struct EventClass
    {
        std::string name;
        double nanojoulesPerEvent;
    };

    PerfCounterPowerModel(std::vector<EventClass> events, double p_base,
                          double p_max);

    /** Number of configured event classes. */
    size_t eventCount() const { return events_.size(); }

    const EventClass &eventClass(size_t i) const { return events_[i]; }

    /**
     * Energy [J] for one observation interval given per-class counts
     * (same order as the configured classes). The idle power burns for
     * the whole interval on top of the event energy.
     */
    double intervalEnergy(const std::vector<uint64_t> &counts,
                          double interval_seconds) const;

    /** Average power [W] over the interval. */
    double intervalPower(const std::vector<uint64_t> &counts,
                         double interval_seconds) const;

    /**
     * Map an average power onto [0, 1] with 0 = Pbase, 1 = Pmax
     * (clamped); this is the utilization monitord reports to the
     * solver for perf-counter-driven CPUs.
     */
    double lowLevelUtilization(double average_power) const;

    double basePower() const { return pBase_; }
    double maxPower() const { return pMax_; }

  private:
    std::vector<EventClass> events_;
    double pBase_;
    double pMax_;
};

/**
 * A default Pentium 4-flavoured event set with plausible per-event
 * energies, for tests and the synthetic counter source. The absolute
 * values only need to produce powers inside [Pbase, Pmax]; the paper's
 * own mapping came from Bellosa's event-driven accounting.
 */
PerfCounterPowerModel pentium4CounterModel(double p_base = 10.0,
                                           double p_max = 55.0);

} // namespace core
} // namespace mercury

#endif // MERCURY_CORE_POWER_HH
