/**
 * @file
 * Runtime thermal model of one machine: the coarse-grained
 * finite-element analysis at Mercury's heart (Section 2 of the paper).
 *
 * Per time step the model performs the paper's traversals:
 *   1. component heat generation, Q = P(u) dt          (eq. 3-4)
 *   2. inter-component heat flow, Q = k (T1 - T2) dt   (eq. 2)
 *   3. solid temperature update, dT = dQ / (m c)       (eq. 5)
 *   4. intra-machine air movement: every air vertex takes the
 *      mass-flow-weighted average of its upstream temperatures
 *      (perfect mixing) plus the heat it absorbed from components.
 *
 * A time step is automatically split into explicit-Euler substeps when
 * the stiffest solid node would otherwise be unstable.
 *
 * Hot state (temperatures, heat gains, mass flows, pins) lives in
 * dense structure-of-arrays storage and the adjacency is flattened
 * into CSR offset+index arrays, so a substep is a handful of linear
 * scans with no per-call heap traffic. Derived quantities that only
 * change on explicit mutation — per-node power draw, inverse heat
 * capacities, the substep count — are cached and recomputed on the
 * mutating calls (setUtilization, setHeatK, setFanCfm, ...), not once
 * per step.
 */

#ifndef MERCURY_CORE_THERMAL_GRAPH_HH
#define MERCURY_CORE_THERMAL_GRAPH_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/power.hh"
#include "core/spec.hh"

namespace mercury {
namespace core {

/** Dense index of a node inside one ThermalGraph. */
using NodeId = size_t;

/**
 * One machine instantiated from a MachineSpec.
 */
class ThermalGraph
{
  public:
    /** Build from a validated spec; panics when the spec is invalid. */
    explicit ThermalGraph(const MachineSpec &spec);

    ThermalGraph(const ThermalGraph &) = delete;
    ThermalGraph &operator=(const ThermalGraph &) = delete;

    const std::string &name() const { return name_; }

    /** @name Simulation */
    /// @{

    /**
     * Advance the model by @p dt_seconds (substeps are automatic).
     * Returns the largest per-node |dT| any single substep produced —
     * the quiescence signal the active-set solver freezes on. The
     * value is derived from the same arithmetic that updates the
     * temperatures, so tracking it does not perturb the trajectory.
     */
    double step(double dt_seconds);

    /** Substep count step() would use for @p dt_seconds. */
    int substepsFor(double dt_seconds) const;

    /**
     * Advance only the energy accumulator by @p joules, exactly what
     * a frozen (quiescent) machine consumes: its utilizations — and
     * therefore its power draw — cannot change while frozen, so the
     * integral is poweredWatts() x dt and the thermal state stays
     * untouched. The solver caches poweredWatts() at freeze time so
     * the per-iteration frozen cost is one add, not a node scan.
     */
    void accrueFrozenEnergy(double joules) { energyConsumed_ += joules; }

    /** Total instantaneous draw over the powered nodes [W]. */
    double poweredWatts() const;

    /**
     * Monotonic counter bumped by every input mutation (utilization
     * changes, pins, edge constants, fan flow, power models, direct
     * temperature writes). The active-set solver compares it to decide
     * whether a machine's inputs changed since it froze; anything that
     * bumps it wakes a frozen machine on the next iteration.
     */
    uint64_t inputVersion() const { return inputVersion_; }

    /**
     * Monotonic counter bumped whenever any published state (node
     * temperatures or utilizations) may have changed: every step(),
     * every input mutation, and inlet deliveries that changed the
     * value. The telemetry writer skips recopying a machine whose
     * stateVersion is unchanged since its last publish.
     */
    uint64_t stateVersion() const { return stateVersion_; }

    /// @}
    /** @name State access */
    /// @{

    NodeId nodeId(const std::string &node_name) const;
    std::optional<NodeId> tryNodeId(const std::string &node_name) const;
    size_t nodeCount() const { return nodes_.size(); }
    const std::string &nodeName(NodeId id) const;
    NodeKind nodeKind(NodeId id) const;
    std::vector<std::string> nodeNames() const;

    double temperature(NodeId id) const;
    double temperature(const std::string &node_name) const;

    /** Snapshot every node temperature, in node-id order. */
    std::vector<double> temperatures() const;

    /** Restore a snapshot taken from an identical graph. */
    void setTemperatures(const std::vector<double> &values);

    /** Exhaust air temperature [degC] (input to the room model). */
    double exhaustTemperature() const;

    /** Air mass flow through a vertex [kg/s] (0 for solids). */
    double massFlow(NodeId id) const;

    /** Current utilization of a powered node in [0, 1]. */
    double utilization(const std::string &node_name) const;
    double utilization(NodeId id) const;

    /** Instantaneous power draw of a node [W] (0 when unpowered). */
    double power(const std::string &node_name) const;

    /** Sum of all component powers [W]. */
    double totalPower() const;

    /** Electrical energy integrated since construction [J]. */
    double energyConsumed() const { return energyConsumed_; }

    /// @}
    /** @name Dynamic inputs (monitord, fiddle, room model) */
    /// @{

    /** Set a powered node's utilization (clamped to [0, 1]). */
    void setUtilization(const std::string &node_name, double value);

    /**
     * Fast path for resolved handles (monitord updates arrive every
     * second per component; this skips the name lookup). Panics when
     * the node is unpowered, like the string overload.
     */
    void setUtilization(NodeId id, double value);

    /** True when the node id carries a power model. */
    bool isPowered(NodeId id) const;

    /** Inlet boundary temperature [degC]. */
    void setInletTemperature(double celsius);
    double inletTemperature() const;

    /**
     * The room model's per-iteration inlet delivery. Writes the same
     * boundary as setInletTemperature but does not count as an input
     * mutation: the solver compares the delivered value against the
     * frozen inlet with its own epsilon, so a steady room does not
     * wake a quiescent machine every second.
     */
    void deliverInletTemperature(double celsius);

    /** Instantly set a node temperature; it evolves freely afterwards. */
    void setTemperature(const std::string &node_name, double celsius);

    /** Hold a node at a fixed temperature until unpinned. */
    void pinTemperature(const std::string &node_name, double celsius);
    void unpinTemperature(const std::string &node_name);
    bool isPinned(const std::string &node_name) const;

    /** Change the k constant of an existing heat edge [W/K]. */
    void setHeatK(const std::string &a, const std::string &b, double k);
    double heatK(const std::string &a, const std::string &b) const;
    bool hasHeatEdge(const std::string &a, const std::string &b) const;

    /** True when a directed air edge from -> to exists. */
    bool hasAirEdge(const std::string &from, const std::string &to) const;

    /** True when the node exists and has a power model. */
    bool isPowered(const std::string &node_name) const;

    /** Change the fraction of an existing air edge; flows recompute. */
    void setAirFraction(const std::string &from, const std::string &to,
                        double fraction);

    /** Change the fan's volumetric flow [CFM]; flows recompute. */
    void setFanCfm(double cfm);
    double fanCfm() const { return fanCfm_; }

    /** Replace a node's linear power range [W]. */
    void setPowerRange(const std::string &node_name, double p_min,
                       double p_max);

    /** Install a custom power model for a node. */
    void setPowerModel(const std::string &node_name,
                       std::unique_ptr<PowerModel> model);

    /// @}
    /** @name Checkpoint enumeration (src/state capture/restore)
     * Index-based views over the mutable constants so a checkpoint can
     * enumerate them without knowing edge names, and index-based
     * setters that maintain the CSR/substep caches exactly like their
     * named counterparts.
     */
    /// @{

    struct HeatEdgeView
    {
        std::string a;
        std::string b;
        double k;
    };

    struct AirEdgeView
    {
        std::string from;
        std::string to;
        double fraction;
    };

    size_t heatEdgeCount() const { return heatEdges_.size(); }
    HeatEdgeView heatEdge(size_t index) const;
    void setHeatK(size_t index, double k);

    size_t airEdgeCount() const { return airEdges_.size(); }
    AirEdgeView airEdge(size_t index) const;
    void setAirFraction(size_t index, double fraction);

    /** Powered node ids, ascending. */
    const std::vector<NodeId> &poweredNodeIds() const
    {
        return poweredIds_;
    }

    bool isPinned(NodeId id) const { return pinned_.at(id) != 0; }
    double pinnedTemperature(NodeId id) const { return pinValue_.at(id); }
    void pinTemperature(NodeId id, double celsius);
    void unpinTemperature(NodeId id)
    {
        pinned_.at(id) = 0;
        noteInputChanged();
    }

    /** Base/max power of a powered node's model [W]. */
    double basePower(NodeId id) const;
    double maxPower(NodeId id) const;

    /** Overwrite the integrated energy counter (checkpoint restore). */
    void restoreEnergyConsumed(double joules) { energyConsumed_ = joules; }

    /// @}

  private:
    /** Cold per-node data; hot state lives in the dense arrays below. */
    struct Node
    {
        std::string name;
        NodeKind kind;
        double mass = 0.0;          // kg (solids; fallback air mass)
        double specificHeat = 0.0;  // J/(kg K)
        double utilization = 0.0;   // [0, 1]
        std::unique_ptr<PowerModel> powerModel; // null if unpowered
    };

    struct HeatEdge
    {
        NodeId a;
        NodeId b;
        double k; // W/K
    };

    struct AirEdge
    {
        NodeId from;
        NodeId to;
        double fraction;
    };

    NodeId requireNode(const std::string &node_name) const;
    Node &poweredNode(const std::string &node_name);

    /** Recompute per-vertex mass flows and the air topological order. */
    void recomputeFlows();

    /** Refresh the flattened copy of the heat-edge constants. */
    void syncHeatCsrK();

    /** Refresh cached power draw after a utilization/model change. */
    void refreshWatts(NodeId id);

    /** An input mutation: wakes frozen machines, dirties telemetry. */
    void noteInputChanged()
    {
        ++inputVersion_;
        ++stateVersion_;
    }

    /** One explicit-Euler substep; returns its max per-node |dT|. */
    double substep(double dt);

    std::string name_;
    std::vector<Node> nodes_;
    std::vector<HeatEdge> heatEdges_;
    std::vector<AirEdge> airEdges_;
    std::unordered_map<std::string, NodeId> byName_;

    NodeId inlet_ = 0;
    NodeId exhaust_ = 0;
    double fanCfm_ = 0.0;

    /** @name Dense per-node state (indexed by NodeId) */
    /// @{
    std::vector<double> temperature_;  //!< degC
    std::vector<double> heatGain_;     //!< scratch: J this substep
    std::vector<double> massFlow_;     //!< kg/s through air vertices
    std::vector<double> watts_;        //!< cached P(utilization)
    std::vector<double> invCapacity_;  //!< 1/(m c) for solids, else 0
    std::vector<double> invStagnant_;  //!< 1/capacity for stagnant air
    std::vector<uint8_t> pinned_;      //!< bool: temperature held
    std::vector<double> pinValue_;     //!< pinned temperature [degC]
    /// @}

    /** Powered node ids, ascending (drives heat generation). */
    std::vector<NodeId> poweredIds_;

    /** Component node ids, ascending (drives the solid update). */
    std::vector<NodeId> solidIds_;

    /** Air vertices in upstream-to-downstream order (excludes inlet). */
    std::vector<NodeId> airOrder_;

    /** @name CSR adjacency
     * heatCsr*: heat edges incident to each node. For row i the
     * entries are [heatOffsets_[i], heatOffsets_[i+1]); heatCsrK_ and
     * heatCsrOther_ mirror the edge constant and the opposite
     * endpoint so the air traversal never touches heatEdges_.
     * airIn*: incoming air edges per node; airInWeight_ caches
     * fraction * massFlow(from), refreshed by recomputeFlows().
     */
    /// @{
    std::vector<uint32_t> heatOffsets_;
    std::vector<uint32_t> heatCsrEdge_;  //!< index into heatEdges_
    std::vector<uint32_t> heatCsrOther_; //!< opposite endpoint
    std::vector<double> heatCsrK_;       //!< mirrored edge constant

    std::vector<uint32_t> airInOffsets_;
    std::vector<uint32_t> airInFrom_;  //!< upstream vertex
    std::vector<double> airInWeight_;  //!< fraction * massFlow(from)
    std::vector<double> flowIn_;       //!< total inflow per node [kg/s]
    /// @}

    /** @name Substep-plan cache
     * substepsFor() depends only on the edge constants, the mass
     * flows and dt; mutators flag it dirty instead of every step()
     * re-deriving the stability bound.
     */
    /// @{
    mutable bool planDirty_ = true;
    mutable double planDt_ = 0.0;
    mutable int planSubsteps_ = 1;
    /// @}

    double energyConsumed_ = 0.0;

    /** @name Change tracking (quiescence + telemetry; see accessors) */
    /// @{
    uint64_t inputVersion_ = 0;
    uint64_t stateVersion_ = 0;
    /// @}

    /** Thermal mass [J/K] used for stagnant (zero-flow) air vertices. */
    static constexpr double kStagnantAirHeatCapacity = 60.0;
};

} // namespace core
} // namespace mercury

#endif // MERCURY_CORE_THERMAL_GRAPH_HH
