#include "core/spec.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/strings.hh"
#include "util/units.hh"

namespace mercury {
namespace core {

const NodeSpec *
MachineSpec::findNode(const std::string &node_name) const
{
    for (const NodeSpec &node : nodes) {
        if (node.name == node_name)
            return &node;
    }
    return nullptr;
}

const RoomNodeSpec *
RoomSpec::findNode(const std::string &node_name) const
{
    for (const RoomNodeSpec &node : nodes) {
        if (node.name == node_name)
            return &node;
    }
    return nullptr;
}

const MachineSpec *
ConfigSpec::findMachine(const std::string &machine_name) const
{
    for (const MachineSpec &machine : machines) {
        if (machine.name == machine_name)
            return &machine;
    }
    return nullptr;
}

namespace {

/** True when a node kind carries flowing air. */
bool
isAirKind(NodeKind kind)
{
    return kind == NodeKind::Air || kind == NodeKind::Inlet ||
           kind == NodeKind::Exhaust;
}

/** Kahn's algorithm: true when the directed edge list is acyclic. */
bool
isAcyclic(const std::vector<std::string> &names,
          const std::vector<AirEdgeSpec> &edges)
{
    std::map<std::string, int> indegree;
    std::map<std::string, std::vector<std::string>> adj;
    for (const std::string &name : names)
        indegree[name] = 0;
    for (const AirEdgeSpec &edge : edges) {
        adj[edge.from].push_back(edge.to);
        ++indegree[edge.to];
    }
    std::vector<std::string> ready;
    for (auto &[name, deg] : indegree) {
        if (deg == 0)
            ready.push_back(name);
    }
    size_t visited = 0;
    while (!ready.empty()) {
        std::string node = ready.back();
        ready.pop_back();
        ++visited;
        for (const std::string &next : adj[node]) {
            if (--indegree[next] == 0)
                ready.push_back(next);
        }
    }
    return visited == names.size();
}

} // namespace

std::vector<std::string>
validate(const MachineSpec &spec)
{
    std::vector<std::string> problems;
    auto report = [&](const std::string &msg) {
        problems.push_back("machine '" + spec.name + "': " + msg);
    };

    if (spec.name.empty())
        problems.push_back("machine with empty name");
    if (spec.fanCfm < 0.0)
        report("negative fan flow");

    std::set<std::string> names;
    size_t inlets = 0;
    size_t exhausts = 0;
    for (const NodeSpec &node : spec.nodes) {
        if (node.name.empty()) {
            report("node with empty name");
            continue;
        }
        if (!names.insert(node.name).second)
            report("duplicate node '" + node.name + "'");
        if (node.kind == NodeKind::Inlet)
            ++inlets;
        if (node.kind == NodeKind::Exhaust)
            ++exhausts;
        if (node.kind == NodeKind::Component) {
            if (node.mass <= 0.0)
                report("component '" + node.name + "' needs mass > 0");
            if (node.specificHeat <= 0.0)
                report("component '" + node.name +
                       "' needs specific heat > 0");
        }
        if (node.hasPower) {
            if (node.minPower < 0.0 || node.maxPower < node.minPower) {
                report("node '" + node.name +
                       "' has inconsistent power range");
            }
        }
    }
    if (inlets != 1)
        report(format("expected exactly 1 inlet, found %zu", inlets));
    if (exhausts != 1)
        report(format("expected exactly 1 exhaust, found %zu", exhausts));

    for (const HeatEdgeSpec &edge : spec.heatEdges) {
        if (!names.count(edge.a))
            report("heat edge references unknown node '" + edge.a + "'");
        if (!names.count(edge.b))
            report("heat edge references unknown node '" + edge.b + "'");
        if (edge.a == edge.b)
            report("heat edge from '" + edge.a + "' to itself");
        if (edge.k <= 0.0)
            report("heat edge " + edge.a + " -- " + edge.b +
                   " needs k > 0");
    }

    // Outgoing air fractions must sum to 1 for every air vertex that
    // has any outgoing flow; exhausts must have none.
    std::map<std::string, double> out_frac;
    std::vector<std::string> air_names;
    for (const NodeSpec &node : spec.nodes) {
        if (isAirKind(node.kind))
            air_names.push_back(node.name);
    }
    for (const AirEdgeSpec &edge : spec.airEdges) {
        const NodeSpec *from = spec.findNode(edge.from);
        const NodeSpec *to = spec.findNode(edge.to);
        if (!from) {
            report("air edge references unknown node '" + edge.from + "'");
            continue;
        }
        if (!to) {
            report("air edge references unknown node '" + edge.to + "'");
            continue;
        }
        if (!isAirKind(from->kind) || !isAirKind(to->kind)) {
            report("air edge " + edge.from + " -> " + edge.to +
                   " must connect air vertices");
            continue;
        }
        if (from->kind == NodeKind::Exhaust)
            report("exhaust '" + edge.from + "' has outgoing air flow");
        if (to->kind == NodeKind::Inlet)
            report("inlet '" + edge.to + "' has incoming air flow");
        if (edge.fraction <= 0.0 || edge.fraction > 1.0) {
            report("air edge " + edge.from + " -> " + edge.to +
                   " has fraction outside (0, 1]");
        }
        out_frac[edge.from] += edge.fraction;
    }
    for (const NodeSpec &node : spec.nodes) {
        if (!isAirKind(node.kind) || node.kind == NodeKind::Exhaust)
            continue;
        auto it = out_frac.find(node.name);
        double sum = it == out_frac.end() ? 0.0 : it->second;
        if (std::abs(sum - 1.0) > 1e-6) {
            report(format("air vertex '%s' has outgoing fractions summing "
                          "to %.6f (expected 1)", node.name.c_str(), sum));
        }
    }
    if (problems.empty() && !isAcyclic(air_names, spec.airEdges))
        report("air-flow graph has a cycle");

    return problems;
}

std::vector<std::string>
validate(const RoomSpec &room, const ConfigSpec &config)
{
    std::vector<std::string> problems;
    auto report = [&](const std::string &msg) {
        problems.push_back("room '" + room.name + "': " + msg);
    };

    std::set<std::string> names;
    std::vector<std::string> all_names;
    for (const RoomNodeSpec &node : room.nodes) {
        if (!names.insert(node.name).second)
            report("duplicate node '" + node.name + "'");
        all_names.push_back(node.name);
        if (node.kind == RoomNodeKind::Machine &&
            !config.findMachine(node.machine)) {
            report("machine node '" + node.name +
                   "' references unknown machine '" + node.machine + "'");
        }
    }

    std::map<std::string, double> out_frac;
    for (const AirEdgeSpec &edge : room.edges) {
        if (!names.count(edge.from))
            report("edge references unknown node '" + edge.from + "'");
        if (!names.count(edge.to))
            report("edge references unknown node '" + edge.to + "'");
        if (edge.fraction <= 0.0 || edge.fraction > 1.0) {
            report("edge " + edge.from + " -> " + edge.to +
                   " has fraction outside (0, 1]");
        }
        out_frac[edge.from] += edge.fraction;
    }
    for (const RoomNodeSpec &node : room.nodes) {
        if (node.kind == RoomNodeKind::Sink)
            continue;
        auto it = out_frac.find(node.name);
        double sum = it == out_frac.end() ? 0.0 : it->second;
        if (std::abs(sum - 1.0) > 1e-6) {
            report(format("node '%s' has outgoing fractions summing to "
                          "%.6f (expected 1)", node.name.c_str(), sum));
        }
    }
    if (problems.empty() && !isAcyclic(all_names, room.edges))
        report("room air graph has a cycle");

    return problems;
}

MachineSpec
table1Server(const std::string &name)
{
    using units::kAluminumSpecificHeat;
    using units::kFr4SpecificHeat;

    MachineSpec spec;
    spec.name = name;
    spec.inletTemperature = 21.6;
    spec.fanCfm = 38.6;
    spec.initialTemperature = 21.6;

    auto component = [](std::string node_name, double mass, double c,
                        double pmin, double pmax, bool powered) {
        NodeSpec node;
        node.name = std::move(node_name);
        node.kind = NodeKind::Component;
        node.mass = mass;
        node.specificHeat = c;
        node.minPower = pmin;
        node.maxPower = pmax;
        node.hasPower = powered;
        return node;
    };
    auto air = [](std::string node_name, NodeKind kind = NodeKind::Air) {
        NodeSpec node;
        node.name = std::move(node_name);
        node.kind = kind;
        return node;
    };

    // Table 1: masses [kg], specific heats [J/(kg K)], (min, max)
    // powers [W]. The power supply and motherboard dissipate a fixed
    // load-independent power.
    spec.nodes.push_back(
        component("disk_platters", 0.336, kAluminumSpecificHeat, 9, 14,
                  true));
    spec.nodes.push_back(
        component("disk_shell", 0.505, kAluminumSpecificHeat, 0, 0, false));
    spec.nodes.push_back(
        component("cpu", 0.151, kAluminumSpecificHeat, 7, 31, true));
    spec.nodes.push_back(
        component("ps", 1.643, kAluminumSpecificHeat, 40, 40, true));
    spec.nodes.push_back(
        component("motherboard", 0.718, kFr4SpecificHeat, 4, 4, true));

    spec.nodes.push_back(air("inlet", NodeKind::Inlet));
    spec.nodes.push_back(air("disk_air"));
    spec.nodes.push_back(air("disk_air_down"));
    spec.nodes.push_back(air("ps_air"));
    spec.nodes.push_back(air("ps_air_down"));
    spec.nodes.push_back(air("void_air"));
    spec.nodes.push_back(air("cpu_air"));
    spec.nodes.push_back(air("cpu_air_down"));
    spec.nodes.push_back(air("exhaust", NodeKind::Exhaust));

    // Table 1 heat-flow constants k [W/K].
    spec.heatEdges.push_back({"disk_platters", "disk_shell", 2.0});
    spec.heatEdges.push_back({"disk_shell", "disk_air", 1.9});
    spec.heatEdges.push_back({"cpu", "cpu_air", 0.75});
    spec.heatEdges.push_back({"ps", "ps_air", 4.0});
    spec.heatEdges.push_back({"motherboard", "void_air", 10.0});
    spec.heatEdges.push_back({"motherboard", "cpu", 0.1});

    // Table 1 air fractions (Figure 1(b) topology).
    spec.airEdges.push_back({"inlet", "disk_air", 0.4});
    spec.airEdges.push_back({"inlet", "ps_air", 0.5});
    spec.airEdges.push_back({"inlet", "void_air", 0.1});
    spec.airEdges.push_back({"disk_air", "disk_air_down", 1.0});
    spec.airEdges.push_back({"disk_air_down", "void_air", 1.0});
    spec.airEdges.push_back({"ps_air", "ps_air_down", 1.0});
    spec.airEdges.push_back({"ps_air_down", "void_air", 0.85});
    spec.airEdges.push_back({"ps_air_down", "cpu_air", 0.15});
    spec.airEdges.push_back({"void_air", "cpu_air", 0.05});
    spec.airEdges.push_back({"void_air", "exhaust", 0.95});
    spec.airEdges.push_back({"cpu_air", "cpu_air_down", 1.0});
    spec.airEdges.push_back({"cpu_air_down", "exhaust", 1.0});

    return spec;
}

RoomSpec
table1Room(const std::vector<std::string> &machine_names,
           double ac_supply_temperature)
{
    RoomSpec room;
    room.name = "room";

    RoomNodeSpec ac;
    ac.name = "ac";
    ac.kind = RoomNodeKind::Source;
    ac.temperature = ac_supply_temperature;
    room.nodes.push_back(ac);

    RoomNodeSpec sink;
    sink.name = "cluster_exhaust";
    sink.kind = RoomNodeKind::Sink;
    room.nodes.push_back(sink);

    double share = 1.0 / static_cast<double>(machine_names.size());
    for (const std::string &machine_name : machine_names) {
        RoomNodeSpec node;
        node.name = machine_name;
        node.kind = RoomNodeKind::Machine;
        node.machine = machine_name;
        room.nodes.push_back(node);
        room.edges.push_back({"ac", machine_name, share});
        room.edges.push_back({machine_name, "cluster_exhaust", 1.0});
    }
    return room;
}

} // namespace core
} // namespace mercury
