#include "core/power.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mercury {
namespace core {

LinearPowerModel::LinearPowerModel(double p_base, double p_max)
    : pBase_(p_base), pMax_(p_max)
{
    if (p_base < 0.0 || p_max < p_base)
        MERCURY_PANIC("LinearPowerModel: bad range [", p_base, ", ",
                      p_max, "]");
}

double
LinearPowerModel::power(double utilization) const
{
    double u = std::clamp(utilization, 0.0, 1.0);
    return pBase_ + u * (pMax_ - pBase_);
}

void
LinearPowerModel::setRange(double p_base, double p_max)
{
    if (p_base < 0.0 || p_max < p_base)
        MERCURY_PANIC("LinearPowerModel::setRange: bad range [", p_base,
                      ", ", p_max, "]");
    pBase_ = p_base;
    pMax_ = p_max;
}

TablePowerModel::TablePowerModel(
    std::vector<std::pair<double, double>> points)
    : points_(std::move(points))
{
    if (points_.size() < 2)
        MERCURY_PANIC("TablePowerModel: need at least two points");
    for (size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].first <= points_[i - 1].first)
            MERCURY_PANIC("TablePowerModel: non-increasing utilizations");
    }
    if (points_.front().first > 0.0 || points_.back().first < 1.0)
        MERCURY_PANIC("TablePowerModel: points must cover [0, 1]");
}

double
TablePowerModel::power(double utilization) const
{
    double u = std::clamp(utilization, 0.0, 1.0);
    auto it = std::lower_bound(points_.begin(), points_.end(), u,
                               [](const auto &pt, double value) {
                                   return pt.first < value;
                               });
    if (it == points_.begin())
        return it->second;
    if (it == points_.end())
        return points_.back().second;
    auto lo = *(it - 1);
    auto hi = *it;
    double span = hi.first - lo.first;
    double alpha = span > 0.0 ? (u - lo.first) / span : 1.0;
    return lo.second + alpha * (hi.second - lo.second);
}

PerfCounterPowerModel::PerfCounterPowerModel(std::vector<EventClass> events,
                                             double p_base, double p_max)
    : events_(std::move(events)), pBase_(p_base), pMax_(p_max)
{
    if (events_.empty())
        MERCURY_PANIC("PerfCounterPowerModel: no event classes");
    if (p_base < 0.0 || p_max <= p_base)
        MERCURY_PANIC("PerfCounterPowerModel: bad power range [", p_base,
                      ", ", p_max, "]");
    for (const EventClass &event : events_) {
        if (event.nanojoulesPerEvent < 0.0)
            MERCURY_PANIC("PerfCounterPowerModel: negative energy for ",
                          event.name);
    }
}

double
PerfCounterPowerModel::intervalEnergy(const std::vector<uint64_t> &counts,
                                      double interval_seconds) const
{
    if (counts.size() != events_.size()) {
        MERCURY_PANIC("PerfCounterPowerModel: got ", counts.size(),
                      " counts for ", events_.size(), " event classes");
    }
    if (interval_seconds <= 0.0)
        MERCURY_PANIC("PerfCounterPowerModel: non-positive interval");
    double joules = pBase_ * interval_seconds;
    for (size_t i = 0; i < counts.size(); ++i) {
        joules += static_cast<double>(counts[i]) *
                  events_[i].nanojoulesPerEvent * 1e-9;
    }
    return joules;
}

double
PerfCounterPowerModel::intervalPower(const std::vector<uint64_t> &counts,
                                     double interval_seconds) const
{
    return intervalEnergy(counts, interval_seconds) / interval_seconds;
}

double
PerfCounterPowerModel::lowLevelUtilization(double average_power) const
{
    double u = (average_power - pBase_) / (pMax_ - pBase_);
    return std::clamp(u, 0.0, 1.0);
}

PerfCounterPowerModel
pentium4CounterModel(double p_base, double p_max)
{
    // Event energies loosely follow the event-driven accounting
    // literature: memory traffic costs far more per event than retired
    // micro-ops. Magnitudes are chosen so a fully loaded synthetic P4
    // (~2e9 uops/s plus cache/memory traffic) lands near p_max.
    std::vector<PerfCounterPowerModel::EventClass> events{
        {"uops_retired", 8.0},
        {"l2_misses", 120.0},
        {"memory_transactions", 320.0},
        {"branch_mispredicts", 40.0},
    };
    return PerfCounterPowerModel(std::move(events), p_base, p_max);
}

} // namespace core
} // namespace mercury
