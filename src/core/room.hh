/**
 * @file
 * Inter-machine air-flow model (the paper's Figure 1(c) graph).
 *
 * Machine inlet temperatures are computed from the room graph: air
 * conditioners supply air at a set temperature, machines consume inlet
 * air and emit exhaust air, and mixing vertices blend streams under
 * the paper's perfect-mixing assumption. Recirculation (exhaust fed
 * back to inlets) is expressed with ordinary edges.
 */

#ifndef MERCURY_CORE_ROOM_HH
#define MERCURY_CORE_ROOM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/spec.hh"

namespace mercury {
namespace core {

class ThermalGraph;

/**
 * Runtime room model; drives the inlet temperature of every machine
 * each solver iteration.
 */
class RoomModel
{
  public:
    /**
     * @param spec validated room description
     * @param machines machine name -> live model; every Machine node in
     * the spec must resolve here. Pointers are borrowed, not owned.
     */
    RoomModel(const RoomSpec &spec,
              const std::unordered_map<std::string, ThermalGraph *> &machines);

    /**
     * Propagate air temperatures through the room graph and write each
     * machine's inlet temperature (unless overridden). Call once per
     * solver iteration, before stepping the machine models.
     */
    void step();

    /** Current air temperature at a room vertex [degC]. */
    double temperature(const std::string &node_name) const;

    /** Change an air conditioner's supply temperature (fiddle). */
    void setSourceTemperature(const std::string &node_name, double celsius);

    /** Change an edge fraction (fiddle), e.g. to model a blocked duct. */
    void setEdgeFraction(const std::string &from, const std::string &to,
                         double fraction);

    /**
     * Force a machine's inlet to a fixed temperature, bypassing the
     * room graph. This is how `fiddle <machine> temperature inlet X`
     * behaves in cluster mode. Pass nullopt to restore room control.
     */
    void setInletOverride(const std::string &machine_name,
                          std::optional<double> celsius);

    std::optional<double>
    inletOverride(const std::string &machine_name) const;

    /** Names of all room vertices, in spec order. */
    std::vector<std::string> nodeNames() const;

    /** True when the vertex exists. */
    bool hasNode(const std::string &node_name) const;

    /** True when the vertex exists and is a Source. */
    bool isSource(const std::string &node_name) const;

    /** True when a directed edge from -> to exists. */
    bool hasEdge(const std::string &from, const std::string &to) const;

    /** @name Checkpoint enumeration (src/state capture/restore) */
    /// @{

    struct EdgeView
    {
        std::string from;
        std::string to;
        double fraction;
    };

    size_t edgeCount() const { return edges_.size(); }
    EdgeView edge(size_t index) const;
    void setEdgeFraction(size_t index, double fraction);

    /// @}

  private:
    struct Node
    {
        std::string name;
        RoomNodeKind kind;
        double temperature; // degC (Source: supply; else last computed)
        ThermalGraph *machine = nullptr;
        double massFlow = 0.0; // kg/s leaving this vertex
        std::optional<double> inletOverride;
    };

    struct Edge
    {
        size_t from;
        size_t to;
        double fraction;
    };

    size_t requireNode(const std::string &node_name) const;

    /** Rebuild the per-vertex incoming-edge CSR rows. */
    void buildIncoming();

    std::vector<Node> nodes_;
    std::vector<Edge> edges_;
    std::unordered_map<std::string, size_t> byName_;
    std::vector<size_t> order_; // topological

    /**
     * Incoming edges per vertex in CSR form (offsets into inEdge_,
     * which indexes edges_). step() runs every solver iteration over
     * every room vertex; without this it rescanned the whole edge
     * list per vertex — O(V E) per iteration, the dominant cost for
     * large clusters.
     */
    std::vector<uint32_t> inOffsets_;
    std::vector<uint32_t> inEdge_;
};

} // namespace core
} // namespace mercury

#endif // MERCURY_CORE_ROOM_HH
