#include "core/trace.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "core/solver.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace mercury {
namespace core {

void
UtilizationTrace::add(double time, const std::string &machine,
                      const std::string &component, double utilization)
{
    if (!samples_.empty() && time < samples_.back().time)
        sorted_ = false;
    samples_.push_back({time, machine, component, utilization});
}

void
UtilizationTrace::sortIfNeeded() const
{
    if (sorted_)
        return;
    std::stable_sort(samples_.begin(), samples_.end(),
                     [](const UtilizationSample &a,
                        const UtilizationSample &b) {
                         return a.time < b.time;
                     });
    sorted_ = true;
}

const std::vector<UtilizationSample> &
UtilizationTrace::samples() const
{
    sortIfNeeded();
    return samples_;
}

double
UtilizationTrace::duration() const
{
    sortIfNeeded();
    return samples_.empty() ? 0.0 : samples_.back().time;
}

UtilizationTrace
UtilizationTrace::load(std::istream &in)
{
    UtilizationTrace trace;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string text = trim(line);
        if (text.empty() || text[0] == '#')
            continue;
        if (line_no == 1 && startsWith(text, "time"))
            continue; // header row
        std::vector<std::string> cells = split(text, ',');
        if (cells.size() != 4) {
            fatal("utilization trace line ", line_no, ": expected 4 "
                  "fields, got ", cells.size());
        }
        auto time = parseDouble(cells[0]);
        auto util = parseDouble(cells[3]);
        if (!time || !util) {
            fatal("utilization trace line ", line_no,
                  ": malformed number");
        }
        trace.add(*time, trim(cells[1]), trim(cells[2]), *util);
    }
    return trace;
}

UtilizationTrace
UtilizationTrace::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open utilization trace '", path, "'");
    return load(in);
}

void
UtilizationTrace::save(std::ostream &out) const
{
    sortIfNeeded();
    out << "time_s,machine,component,utilization\n";
    for (const UtilizationSample &sample : samples_) {
        out << format("%.6g,", sample.time) << csvEscape(sample.machine)
            << ',' << csvEscape(sample.component)
            << format(",%.6g\n", sample.utilization);
    }
}

UtilizationTrace
UtilizationTrace::replicated(
    const std::map<std::string, std::vector<std::string>> &mapping) const
{
    sortIfNeeded();
    UtilizationTrace out;
    for (const UtilizationSample &sample : samples_) {
        auto it = mapping.find(sample.machine);
        if (it == mapping.end()) {
            out.add(sample.time, sample.machine, sample.component,
                    sample.utilization);
            continue;
        }
        for (const std::string &clone : it->second)
            out.add(sample.time, clone, sample.component,
                    sample.utilization);
    }
    return out;
}

TraceRunner::TraceRunner(Solver &solver, const UtilizationTrace &trace)
    : solver_(solver), trace_(trace)
{
}

void
TraceRunner::record(const std::string &machine, const std::string &component)
{
    if (ran_)
        MERCURY_PANIC("TraceRunner: record() after run()");
    recorded_.emplace_back(machine, component);
    series_.emplace_back(machine + "." + component);
}

void
TraceRunner::recordAll()
{
    for (const std::string &machine_name : solver_.machineNames()) {
        for (const std::string &node : solver_.machine(machine_name)
                                           .nodeNames()) {
            record(machine_name, node);
        }
    }
}

void
TraceRunner::run(double duration_seconds)
{
    if (ran_)
        MERCURY_PANIC("TraceRunner: run() called twice");
    ran_ = true;
    double start = solver_.emulatedSeconds();
    if (duration_seconds < 0.0)
        duration_seconds = std::max(0.0, trace_.duration() - start);
    double end = start + duration_seconds;

    // Resolve recorded components and trace targets to solver handles
    // once, instead of walking the string -> alias -> NodeId map chain
    // for every sample and every recorded series each iteration.
    // Unresolvable names fall back to the string path so its panics
    // (unknown machine / component) are unchanged.
    std::vector<std::optional<Solver::NodeRef>> recorded_refs;
    recorded_refs.reserve(recorded_.size());
    for (const auto &[machine, component] : recorded_)
        recorded_refs.push_back(solver_.tryResolveRef(machine, component));

    std::unordered_map<std::string, std::optional<Solver::NodeRef>>
        sample_refs;
    auto apply = [&](const UtilizationSample &sample) {
        std::string key = sample.machine + "." + sample.component;
        auto it = sample_refs.find(key);
        if (it == sample_refs.end()) {
            it = sample_refs
                     .emplace(std::move(key),
                              solver_.tryResolveRef(sample.machine,
                                                    sample.component))
                     .first;
        }
        if (it->second) {
            solver_.setUtilization(*it->second, sample.utilization);
        } else {
            solver_.setUtilization(sample.machine, sample.component,
                                   sample.utilization);
        }
    };

    // All times below are absolute emulated seconds. On a resumed
    // (checkpoint-restored) solver the first pass over the sample list
    // re-applies the pre-checkpoint prefix; the latest value per
    // component wins before the first iteration, which is exactly the
    // state the uninterrupted run has at this point.
    const auto &samples = trace_.samples();
    size_t next = 0;
    double now = solver_.emulatedSeconds();
    while (now < end - 1e-9) {
        // Apply every sample whose timestamp has passed.
        while (next < samples.size() &&
               samples[next].time <= now + 1e-9) {
            apply(samples[next]);
            ++next;
        }
        solver_.iterate();
        now = solver_.emulatedSeconds();
        for (size_t i = 0; i < recorded_.size(); ++i) {
            double value =
                recorded_refs[i]
                    ? solver_.temperature(*recorded_refs[i])
                    : solver_.temperature(recorded_[i].first,
                                          recorded_[i].second);
            series_[i].add(now, value);
        }
    }
}

const TimeSeries &
TraceRunner::series(const std::string &machine,
                    const std::string &component) const
{
    std::string key = machine + "." + component;
    for (const TimeSeries &ts : series_) {
        if (ts.name() == key)
            return ts;
    }
    MERCURY_PANIC("TraceRunner: '", key, "' was not recorded");
}

void
TraceRunner::writeCsv(std::ostream &out) const
{
    std::vector<const TimeSeries *> refs;
    refs.reserve(series_.size());
    for (const TimeSeries &ts : series_)
        refs.push_back(&ts);
    writeAlignedSeries(out, refs);
}

} // namespace core
} // namespace mercury
