/**
 * @file
 * Plain-data specifications for Mercury's three input graphs
 * (Section 2.2 of the paper): the inter-component heat-flow graph, the
 * intra-machine air-flow graph, and the inter-machine (room) air-flow
 * graph. Specs are produced by the graphdot parser or built
 * programmatically, then instantiated into runtime models
 * (core/thermal_graph.hh, core/room.hh).
 */

#ifndef MERCURY_CORE_SPEC_HH
#define MERCURY_CORE_SPEC_HH

#include <optional>
#include <string>
#include <vector>

namespace mercury {
namespace core {

/** Role of a vertex in a machine's combined heat/air graph. */
enum class NodeKind {
    Component, //!< solid part with thermal mass (CPU, disk shell, ...)
    Air,       //!< flowing air region inside the machine
    Inlet,     //!< boundary: air entering the case (temperature is set
               //!< by the user, by fiddle, or by the room model)
    Exhaust    //!< boundary: air leaving the case
};

/** One vertex of a machine graph. */
struct NodeSpec
{
    std::string name;
    NodeKind kind = NodeKind::Component;

    /** Mass [kg]; required for components, optional for stagnant air. */
    double mass = 0.0;

    /** Specific heat capacity [J/(kg K)]. */
    double specificHeat = 0.0;

    /** Idle power Pbase [W]; only meaningful with hasPower. */
    double minPower = 0.0;

    /** Full-utilization power Pmax [W]. */
    double maxPower = 0.0;

    /** True when the node converts electrical power into heat. */
    bool hasPower = false;

    /** Initial / boundary temperature [degC]; nullopt = machine default. */
    std::optional<double> initialTemperature;
};

/** Undirected heat-flow edge: Q = k (T_a - T_b) dt. */
struct HeatEdgeSpec
{
    std::string a;
    std::string b;
    double k = 0.0; //!< heat-transfer constant [W/K]
};

/** Directed air-flow edge: @p fraction of the air leaving @p from. */
struct AirEdgeSpec
{
    std::string from;
    std::string to;
    double fraction = 0.0;
};

/** A whole machine: Figure 1(a) + 1(b) of the paper plus constants. */
struct MachineSpec
{
    std::string name;

    /** Inlet air temperature when no room model drives it [degC]. */
    double inletTemperature = 21.6;

    /** Case fan volumetric flow [cubic feet per minute]. */
    double fanCfm = 38.6;

    /** Initial temperature of every object/air region [degC]. */
    double initialTemperature = 21.6;

    std::vector<NodeSpec> nodes;
    std::vector<HeatEdgeSpec> heatEdges;
    std::vector<AirEdgeSpec> airEdges;

    /** Find a node by name; nullptr when absent. */
    const NodeSpec *findNode(const std::string &node_name) const;
};

/** Role of a vertex in the inter-machine (room) air graph. */
enum class RoomNodeKind {
    Source,  //!< fixed-temperature supply (an air conditioner)
    Machine, //!< a machine: consumes inlet air, produces exhaust air
    Mix,     //!< pure mixing point (plenum, aisle)
    Sink     //!< room return / cluster exhaust
};

/** One vertex of the room graph (Figure 1(c)). */
struct RoomNodeSpec
{
    std::string name;
    RoomNodeKind kind = RoomNodeKind::Mix;

    /** Supply temperature [degC]; Source nodes only. */
    double temperature = 18.0;

    /** For Machine nodes: which MachineSpec instance this refers to. */
    std::string machine;
};

/** The room: machines + sources + sinks + directed fractional air edges. */
struct RoomSpec
{
    std::string name;
    std::vector<RoomNodeSpec> nodes;
    std::vector<AirEdgeSpec> edges;

    const RoomNodeSpec *findNode(const std::string &node_name) const;
};

/** A parsed configuration file: machine templates + optional room. */
struct ConfigSpec
{
    std::vector<MachineSpec> machines;
    std::optional<RoomSpec> room;

    const MachineSpec *findMachine(const std::string &machine_name) const;
};

/**
 * Validate a machine spec: unique node names, edges referencing known
 * nodes, non-negative constants, air-flow fractions out of every
 * non-exhaust air vertex summing to ~1, at least one inlet and one
 * exhaust, and an acyclic air graph. Returns a list of problems
 * (empty when valid).
 */
std::vector<std::string> validate(const MachineSpec &spec);

/** Validate a room spec against the machines it references. */
std::vector<std::string> validate(const RoomSpec &room,
                                  const ConfigSpec &config);

/**
 * The paper's Table 1 server (Pentium III + 15K SCSI disk): the
 * heat-flow graph of Figure 1(a), the air-flow graph of Figure 1(b)
 * and all constants, exactly as published. Used by validation tests,
 * the figure benches and the examples.
 */
MachineSpec table1Server(const std::string &name = "server");

/**
 * The paper's Figure 1(c) four-machine room: one AC supplying 25% of
 * its air to each machine, all exhausts merging into a cluster exhaust.
 */
RoomSpec table1Room(const std::vector<std::string> &machine_names,
                    double ac_supply_temperature = 18.0);

} // namespace core
} // namespace mercury

#endif // MERCURY_CORE_SPEC_HH
