/**
 * @file
 * Offline (trace-driven) operation: Section 2.3's "the solver ...
 * receives component utilizations from a trace file". Traces allow
 * parameter tuning without running the system software, and
 * *replicating* a trace across machine names lets Mercury emulate
 * clusters far larger than the physical testbed.
 */

#ifndef MERCURY_CORE_TRACE_HH
#define MERCURY_CORE_TRACE_HH

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/stats.hh"

namespace mercury {
namespace core {

class Solver;

/** One utilization observation. */
struct UtilizationSample
{
    double time = 0.0; //!< emulated seconds since trace start
    std::string machine;
    std::string component;
    double utilization = 0.0; //!< [0, 1]
};

/**
 * A time-ordered utilization trace.
 */
class UtilizationTrace
{
  public:
    /** Append a sample (kept sorted on read access). */
    void add(double time, const std::string &machine,
             const std::string &component, double utilization);

    /** Parse the CSV format `time_s,machine,component,utilization`. */
    static UtilizationTrace load(std::istream &in);

    /** Load from a file path; fatal on I/O error. */
    static UtilizationTrace loadFile(const std::string &path);

    /** Emit the CSV format. */
    void save(std::ostream &out) const;

    /** Samples sorted by time (stable for ties). */
    const std::vector<UtilizationSample> &samples() const;

    /** Time of the last sample; 0 for an empty trace. */
    double duration() const;

    size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /**
     * Clone samples of one machine onto many: the paper replicates
     * traces to emulate large installations. Each entry maps a source
     * machine name to the list of clone names (which may include the
     * source itself to keep it).
     */
    UtilizationTrace replicated(
        const std::map<std::string, std::vector<std::string>> &mapping) const;

  private:
    void sortIfNeeded() const;

    mutable std::vector<UtilizationSample> samples_;
    mutable bool sorted_ = true;
};

/**
 * Drives a Solver from a trace and records temperature series — the
 * offline mode whose output is "another file containing all the usage
 * and temperature information for each component over time".
 */
class TraceRunner
{
  public:
    /** @param solver configured solver (machines/room already added). */
    TraceRunner(Solver &solver, const UtilizationTrace &trace);

    /** Record this component's temperature each iteration. */
    void record(const std::string &machine, const std::string &component);

    /** Record every node of every machine. */
    void recordAll();

    /**
     * Run for @p duration_seconds (default: the rest of the trace),
     * applying samples as their timestamps pass and recording after
     * every solver iteration.
     *
     * Trace timestamps and recorded series times are *absolute*
     * emulated seconds: a solver restored from a checkpoint resumes
     * exactly where it stopped, and the resumed series continues the
     * interrupted one bitwise. A fresh solver starts at zero, so
     * plain runs are unaffected.
     */
    void run(double duration_seconds = -1.0);

    /** Recorded series for one component; fatal when not recorded. */
    const TimeSeries &series(const std::string &machine,
                             const std::string &component) const;

    /** All recorded series, in registration order. */
    const std::vector<TimeSeries> &allSeries() const { return series_; }

    /** Write every recorded series as one aligned CSV table. */
    void writeCsv(std::ostream &out) const;

  private:
    Solver &solver_;
    const UtilizationTrace &trace_;
    std::vector<std::pair<std::string, std::string>> recorded_;
    std::vector<TimeSeries> series_;
    bool ran_ = false;
};

} // namespace core
} // namespace mercury

#endif // MERCURY_CORE_TRACE_HH
