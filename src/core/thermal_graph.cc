#include "core/thermal_graph.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace mercury {
namespace core {

namespace {

bool
isAirKind(NodeKind kind)
{
    return kind == NodeKind::Air || kind == NodeKind::Inlet ||
           kind == NodeKind::Exhaust;
}

} // namespace

ThermalGraph::ThermalGraph(const MachineSpec &spec)
    : name_(spec.name), fanCfm_(spec.fanCfm)
{
    std::vector<std::string> problems = validate(spec);
    if (!problems.empty()) {
        std::string joined;
        for (const std::string &p : problems)
            joined += "\n  " + p;
        MERCURY_PANIC("invalid machine spec:", joined);
    }

    size_t count = spec.nodes.size();
    nodes_.reserve(count);
    temperature_.assign(count, 0.0);
    heatGain_.assign(count, 0.0);
    massFlow_.assign(count, 0.0);
    watts_.assign(count, 0.0);
    invCapacity_.assign(count, 0.0);
    invStagnant_.assign(count, 1.0 / kStagnantAirHeatCapacity);
    pinned_.assign(count, 0);
    pinValue_.assign(count, 0.0);

    bool saw_inlet = false;
    bool saw_exhaust = false;
    for (const NodeSpec &ns : spec.nodes) {
        NodeId id = nodes_.size();
        Node node;
        node.name = ns.name;
        node.kind = ns.kind;
        node.mass = ns.mass;
        node.specificHeat = ns.specificHeat;
        temperature_[id] =
            ns.initialTemperature.value_or(spec.initialTemperature);
        if (ns.hasPower) {
            node.powerModel =
                std::make_unique<LinearPowerModel>(ns.minPower, ns.maxPower);
            poweredIds_.push_back(id);
        }
        if (ns.kind == NodeKind::Component) {
            solidIds_.push_back(id);
            invCapacity_[id] = 1.0 / (ns.mass * ns.specificHeat);
        }
        if (ns.mass > 0.0 && ns.specificHeat > 0.0)
            invStagnant_[id] = 1.0 / (ns.mass * ns.specificHeat);
        byName_[ns.name] = id;
        if (ns.kind == NodeKind::Inlet) {
            inlet_ = id;
            saw_inlet = true;
        }
        if (ns.kind == NodeKind::Exhaust) {
            exhaust_ = id;
            saw_exhaust = true;
        }
        nodes_.push_back(std::move(node));
    }
    // validate() already demands exactly one inlet/exhaust; this is
    // defense in depth, because inlet_ defaulting to node 0 would
    // silently clobber that node's initial temperature below.
    if (!saw_inlet)
        MERCURY_PANIC("machine '", name_, "': spec has no Inlet node");
    if (!saw_exhaust)
        MERCURY_PANIC("machine '", name_, "': spec has no Exhaust node");
    temperature_[inlet_] = spec.inletTemperature;

    for (const NodeId id : poweredIds_)
        refreshWatts(id);

    for (const HeatEdgeSpec &es : spec.heatEdges)
        heatEdges_.push_back({requireNode(es.a), requireNode(es.b), es.k});
    for (const AirEdgeSpec &es : spec.airEdges) {
        airEdges_.push_back(
            {requireNode(es.from), requireNode(es.to), es.fraction});
    }

    // CSR of heat edges incident to each node. Row order matches the
    // seed's adjacency-list build: for each edge in spec order, the a
    // endpoint then the b endpoint.
    std::vector<uint32_t> degree(count, 0);
    for (const HeatEdge &edge : heatEdges_) {
        ++degree[edge.a];
        ++degree[edge.b];
    }
    heatOffsets_.assign(count + 1, 0);
    for (size_t i = 0; i < count; ++i)
        heatOffsets_[i + 1] = heatOffsets_[i] + degree[i];
    heatCsrEdge_.assign(heatOffsets_[count], 0);
    heatCsrOther_.assign(heatOffsets_[count], 0);
    heatCsrK_.assign(heatOffsets_[count], 0.0);
    {
        std::vector<uint32_t> cursor(heatOffsets_.begin(),
                                     heatOffsets_.end() - 1);
        for (size_t i = 0; i < heatEdges_.size(); ++i) {
            const HeatEdge &edge = heatEdges_[i];
            uint32_t slot_a = cursor[edge.a]++;
            heatCsrEdge_[slot_a] = static_cast<uint32_t>(i);
            heatCsrOther_[slot_a] = static_cast<uint32_t>(edge.b);
            uint32_t slot_b = cursor[edge.b]++;
            heatCsrEdge_[slot_b] = static_cast<uint32_t>(i);
            heatCsrOther_[slot_b] = static_cast<uint32_t>(edge.a);
        }
    }
    syncHeatCsrK();

    recomputeFlows();
}

NodeId
ThermalGraph::requireNode(const std::string &node_name) const
{
    auto it = byName_.find(node_name);
    if (it == byName_.end())
        MERCURY_PANIC("machine '", name_, "': unknown node '", node_name,
                      "'");
    return it->second;
}

std::optional<NodeId>
ThermalGraph::tryNodeId(const std::string &node_name) const
{
    auto it = byName_.find(node_name);
    if (it == byName_.end())
        return std::nullopt;
    return it->second;
}

NodeId
ThermalGraph::nodeId(const std::string &node_name) const
{
    return requireNode(node_name);
}

const std::string &
ThermalGraph::nodeName(NodeId id) const
{
    return nodes_.at(id).name;
}

NodeKind
ThermalGraph::nodeKind(NodeId id) const
{
    return nodes_.at(id).kind;
}

std::vector<std::string>
ThermalGraph::nodeNames() const
{
    std::vector<std::string> out;
    out.reserve(nodes_.size());
    for (const Node &node : nodes_)
        out.push_back(node.name);
    return out;
}

void
ThermalGraph::syncHeatCsrK()
{
    for (size_t slot = 0; slot < heatCsrEdge_.size(); ++slot)
        heatCsrK_[slot] = heatEdges_[heatCsrEdge_[slot]].k;
}

void
ThermalGraph::refreshWatts(NodeId id)
{
    const Node &node = nodes_[id];
    watts_[id] =
        node.powerModel ? node.powerModel->power(node.utilization) : 0.0;
}

void
ThermalGraph::recomputeFlows()
{
    size_t count = nodes_.size();

    // CSR of incoming air edges per node, in airEdges_ order (matches
    // the order the seed's adjacency lists were filled in).
    std::vector<uint32_t> in_degree(count, 0);
    for (const AirEdge &edge : airEdges_)
        ++in_degree[edge.to];
    airInOffsets_.assign(count + 1, 0);
    for (size_t i = 0; i < count; ++i)
        airInOffsets_[i + 1] = airInOffsets_[i] + in_degree[i];
    airInFrom_.assign(airInOffsets_[count], 0);
    std::vector<uint32_t> edge_of_slot(airInOffsets_[count], 0);
    {
        std::vector<uint32_t> cursor(airInOffsets_.begin(),
                                     airInOffsets_.end() - 1);
        for (size_t i = 0; i < airEdges_.size(); ++i) {
            uint32_t slot = cursor[airEdges_[i].to]++;
            airInFrom_[slot] = static_cast<uint32_t>(airEdges_[i].from);
            edge_of_slot[slot] = static_cast<uint32_t>(i);
        }
    }

    // Topological order over air vertices (Kahn), starting from the
    // inlet. The spec validator already guaranteed acyclicity.
    airOrder_.clear();
    std::vector<NodeId> ready;
    for (NodeId id = 0; id < count; ++id) {
        if (isAirKind(nodes_[id].kind) && in_degree[id] == 0)
            ready.push_back(id);
    }
    std::vector<uint32_t> remaining = in_degree;
    std::vector<NodeId> order;
    while (!ready.empty()) {
        // Pop the smallest id for determinism.
        auto it = std::min_element(ready.begin(), ready.end());
        NodeId id = *it;
        ready.erase(it);
        order.push_back(id);
        for (const AirEdge &edge : airEdges_) {
            if (edge.from == id && --remaining[edge.to] == 0)
                ready.push_back(edge.to);
        }
    }

    // Propagate mass flow from the fan through the edge fractions, and
    // cache each incoming edge's contribution weight so the substep
    // only multiplies weights by upstream temperatures.
    std::fill(massFlow_.begin(), massFlow_.end(), 0.0);
    massFlow_[inlet_] = units::cfmToKgPerS(fanCfm_);
    flowIn_.assign(count, 0.0);
    airInWeight_.assign(airInFrom_.size(), 0.0);
    for (NodeId id : order) {
        double flow_in = 0.0;
        for (uint32_t slot = airInOffsets_[id]; slot < airInOffsets_[id + 1];
             ++slot) {
            const AirEdge &edge = airEdges_[edge_of_slot[slot]];
            double weight = edge.fraction * massFlow_[edge.from];
            airInWeight_[slot] = weight;
            flow_in += weight;
        }
        massFlow_[id] += flow_in;
        flowIn_[id] = flow_in;
    }

    // The marching order used by substep() excludes the inlet (a
    // boundary) but includes everything downstream of it.
    airOrder_.clear();
    for (NodeId id : order) {
        if (id != inlet_)
            airOrder_.push_back(id);
    }

    planDirty_ = true;
}

int
ThermalGraph::substepsFor(double dt_seconds) const
{
    if (!planDirty_ && dt_seconds == planDt_)
        return planSubsteps_;

    // Explicit Euler on a solid node is stable when
    // dt * (sum of incident k) / (m c) < 1; we target <= 0.25 for
    // accuracy. Air vertices are updated algebraically and do not
    // constrain dt, except stagnant ones which use a fixed capacity.
    double worst_rate = 0.0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node &node = nodes_[id];
        double capacity = 0.0;
        if (node.kind == NodeKind::Component) {
            capacity = node.mass * node.specificHeat;
        } else if (node.kind == NodeKind::Air && massFlow_[id] <= 0.0) {
            capacity = node.mass > 0.0 && node.specificHeat > 0.0
                           ? node.mass * node.specificHeat
                           : kStagnantAirHeatCapacity;
        } else {
            continue;
        }
        double k_sum = 0.0;
        for (uint32_t slot = heatOffsets_[id]; slot < heatOffsets_[id + 1];
             ++slot)
            k_sum += heatCsrK_[slot];
        if (capacity > 0.0)
            worst_rate = std::max(worst_rate, k_sum / capacity);
    }
    int substeps = 1;
    if (worst_rate > 0.0) {
        double max_dt = 0.25 / worst_rate;
        substeps =
            std::max(1, static_cast<int>(std::ceil(dt_seconds / max_dt)));
    }
    planDirty_ = false;
    planDt_ = dt_seconds;
    planSubsteps_ = substeps;
    return substeps;
}

double
ThermalGraph::step(double dt_seconds)
{
    if (dt_seconds <= 0.0)
        MERCURY_PANIC("ThermalGraph::step: non-positive dt ", dt_seconds);
    int substeps = substepsFor(dt_seconds);
    double dt = dt_seconds / substeps;
    double max_delta = 0.0;
    for (int i = 0; i < substeps; ++i)
        max_delta = std::max(max_delta, substep(dt));
    ++stateVersion_;
    return max_delta;
}

double
ThermalGraph::poweredWatts() const
{
    double watts = 0.0;
    for (NodeId id : poweredIds_)
        watts += watts_[id];
    return watts;
}

double
ThermalGraph::substep(double dt)
{
    const double *temperature = temperature_.data();
    double *heat_gain = heatGain_.data();

    // 1. Heat generated by each powered component (eq. 3-4), using the
    // power draw cached at the last utilization/model change.
    std::fill(heatGain_.begin(), heatGain_.end(), 0.0);
    double energy = 0.0;
    for (NodeId id : poweredIds_) {
        double joules = watts_[id] * dt;
        heat_gain[id] = joules;
        energy += joules;
    }
    energyConsumed_ += energy;

    // 2. Heat transferred along every heat edge (eq. 2), using the
    // temperatures at the start of the substep.
    for (const HeatEdge &edge : heatEdges_) {
        double q = edge.k * (temperature[edge.a] - temperature[edge.b]) * dt;
        heat_gain[edge.a] -= q;
        heat_gain[edge.b] += q;
    }

    // 3. Solid temperature update (eq. 5). The per-node change also
    // feeds the quiescence signal: max_delta is computed from exactly
    // the increments applied, so it is free of extra rounding.
    double max_delta = 0.0;
    for (NodeId id : solidIds_) {
        if (pinned_[id]) {
            double delta = pinValue_[id] - temperature_[id];
            temperature_[id] = pinValue_[id];
            max_delta = std::max(max_delta, std::fabs(delta));
            continue;
        }
        double delta = heat_gain[id] * invCapacity_[id];
        temperature_[id] += delta;
        max_delta = std::max(max_delta, std::fabs(delta));
    }

    // 4. Air traversal: march downstream from the inlet. Each vertex
    // mixes its inflows perfectly and exchanges heat with its
    // neighbours. The flowing-air balance is solved implicitly —
    //   F_c (Ta - T_mix) = sum_j k_j (T_j - Ta),  F_c = mdot c_air —
    // which is unconditionally stable even when a heat edge's k
    // exceeds the stream's heat-capacity rate, and identical to the
    // explicit form at steady state.
    for (NodeId id : airOrder_) {
        if (pinned_[id]) {
            double delta = pinValue_[id] - temperature_[id];
            temperature_[id] = pinValue_[id];
            max_delta = std::max(max_delta, std::fabs(delta));
            continue;
        }
        double flow_in = flowIn_[id];
        if (flow_in > 1e-12) {
            double mix = 0.0;
            for (uint32_t slot = airInOffsets_[id];
                 slot < airInOffsets_[id + 1]; ++slot) {
                mix += airInWeight_[slot] * temperature_[airInFrom_[slot]];
            }
            double capacity_rate = flow_in * units::kAirSpecificHeat;
            double numer = mix * units::kAirSpecificHeat;
            double denom = capacity_rate;
            for (uint32_t slot = heatOffsets_[id];
                 slot < heatOffsets_[id + 1]; ++slot) {
                numer += heatCsrK_[slot] * temperature_[heatCsrOther_[slot]];
                denom += heatCsrK_[slot];
            }
            numer += watts_[id];
            double updated = numer / denom;
            max_delta =
                std::max(max_delta, std::fabs(updated - temperature_[id]));
            temperature_[id] = updated;
        } else {
            // Stagnant air: integrate like a small thermal mass.
            double delta = heat_gain[id] * invStagnant_[id];
            temperature_[id] += delta;
            max_delta = std::max(max_delta, std::fabs(delta));
        }
    }

    // Pinned inlet handled by setInletTemperature / pinTemperature.
    if (pinned_[inlet_]) {
        max_delta = std::max(
            max_delta, std::fabs(pinValue_[inlet_] - temperature_[inlet_]));
        temperature_[inlet_] = pinValue_[inlet_];
    }
    return max_delta;
}

double
ThermalGraph::temperature(NodeId id) const
{
    return temperature_.at(id);
}

double
ThermalGraph::temperature(const std::string &node_name) const
{
    return temperature_[requireNode(node_name)];
}

std::vector<double>
ThermalGraph::temperatures() const
{
    return temperature_;
}

void
ThermalGraph::setTemperatures(const std::vector<double> &values)
{
    if (values.size() != nodes_.size()) {
        MERCURY_PANIC("setTemperatures: got ", values.size(),
                      " values for ", nodes_.size(), " nodes");
    }
    temperature_ = values;
    noteInputChanged();
}

double
ThermalGraph::exhaustTemperature() const
{
    return temperature_[exhaust_];
}

double
ThermalGraph::massFlow(NodeId id) const
{
    if (id >= nodes_.size())
        MERCURY_PANIC("machine '", name_, "': node id ", id,
                      " out of range");
    return massFlow_[id];
}

double
ThermalGraph::utilization(const std::string &node_name) const
{
    return nodes_[requireNode(node_name)].utilization;
}

double
ThermalGraph::utilization(NodeId id) const
{
    return nodes_.at(id).utilization;
}

double
ThermalGraph::power(const std::string &node_name) const
{
    NodeId id = requireNode(node_name);
    return watts_[id];
}

double
ThermalGraph::totalPower() const
{
    double sum = 0.0;
    for (NodeId id : poweredIds_)
        sum += watts_[id];
    return sum;
}

ThermalGraph::Node &
ThermalGraph::poweredNode(const std::string &node_name)
{
    Node &node = nodes_[requireNode(node_name)];
    if (!node.powerModel)
        MERCURY_PANIC("machine '", name_, "': node '", node_name,
                      "' has no power model");
    return node;
}

void
ThermalGraph::setUtilization(const std::string &node_name, double value)
{
    NodeId id = requireNode(node_name);
    if (!nodes_[id].powerModel)
        MERCURY_PANIC("machine '", name_, "': node '", node_name,
                      "' has no power model");
    setUtilization(id, value);
}

void
ThermalGraph::setUtilization(NodeId id, double value)
{
    Node &node = nodes_.at(id);
    if (!node.powerModel)
        MERCURY_PANIC("machine '", name_, "': node '", node.name,
                      "' has no power model");
    // monitord re-sends the same utilization every second; an
    // unchanged value must not recompute the power draw nor wake a
    // quiescent machine.
    double clamped = std::clamp(value, 0.0, 1.0);
    if (clamped == node.utilization)
        return;
    node.utilization = clamped;
    noteInputChanged();
    refreshWatts(id);
}

bool
ThermalGraph::isPowered(NodeId id) const
{
    return nodes_.at(id).powerModel != nullptr;
}

void
ThermalGraph::setInletTemperature(double celsius)
{
    temperature_[inlet_] = celsius;
    noteInputChanged();
}

void
ThermalGraph::deliverInletTemperature(double celsius)
{
    // Not an input mutation (the room delivers every iteration); only
    // dirty the telemetry stamp, and only when the value moved.
    if (temperature_[inlet_] == celsius)
        return;
    temperature_[inlet_] = celsius;
    ++stateVersion_;
}

double
ThermalGraph::inletTemperature() const
{
    return temperature_[inlet_];
}

void
ThermalGraph::setTemperature(const std::string &node_name, double celsius)
{
    temperature_[requireNode(node_name)] = celsius;
    noteInputChanged();
}

void
ThermalGraph::pinTemperature(const std::string &node_name, double celsius)
{
    NodeId id = requireNode(node_name);
    pinned_[id] = 1;
    pinValue_[id] = celsius;
    temperature_[id] = celsius;
    noteInputChanged();
}

void
ThermalGraph::unpinTemperature(const std::string &node_name)
{
    pinned_[requireNode(node_name)] = 0;
    noteInputChanged();
}

bool
ThermalGraph::isPinned(const std::string &node_name) const
{
    return pinned_[requireNode(node_name)] != 0;
}

void
ThermalGraph::setHeatK(const std::string &a, const std::string &b, double k)
{
    if (k <= 0.0)
        MERCURY_PANIC("setHeatK: non-positive k ", k);
    NodeId na = requireNode(a);
    NodeId nb = requireNode(b);
    for (HeatEdge &edge : heatEdges_) {
        if ((edge.a == na && edge.b == nb) ||
            (edge.a == nb && edge.b == na)) {
            edge.k = k;
            syncHeatCsrK();
            planDirty_ = true;
            noteInputChanged();
            return;
        }
    }
    MERCURY_PANIC("machine '", name_, "': no heat edge ", a, " -- ", b);
}

double
ThermalGraph::heatK(const std::string &a, const std::string &b) const
{
    NodeId na = requireNode(a);
    NodeId nb = requireNode(b);
    for (const HeatEdge &edge : heatEdges_) {
        if ((edge.a == na && edge.b == nb) ||
            (edge.a == nb && edge.b == na)) {
            return edge.k;
        }
    }
    MERCURY_PANIC("machine '", name_, "': no heat edge ", a, " -- ", b);
}

bool
ThermalGraph::hasHeatEdge(const std::string &a, const std::string &b) const
{
    auto na = tryNodeId(a);
    auto nb = tryNodeId(b);
    if (!na || !nb)
        return false;
    for (const HeatEdge &edge : heatEdges_) {
        if ((edge.a == *na && edge.b == *nb) ||
            (edge.a == *nb && edge.b == *na)) {
            return true;
        }
    }
    return false;
}

bool
ThermalGraph::hasAirEdge(const std::string &from, const std::string &to) const
{
    auto nf = tryNodeId(from);
    auto nt = tryNodeId(to);
    if (!nf || !nt)
        return false;
    for (const AirEdge &edge : airEdges_) {
        if (edge.from == *nf && edge.to == *nt)
            return true;
    }
    return false;
}

bool
ThermalGraph::isPowered(const std::string &node_name) const
{
    auto id = tryNodeId(node_name);
    return id && nodes_[*id].powerModel != nullptr;
}

void
ThermalGraph::setAirFraction(const std::string &from, const std::string &to,
                             double fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        MERCURY_PANIC("setAirFraction: fraction ", fraction,
                      " outside [0, 1]");
    NodeId nf = requireNode(from);
    NodeId nt = requireNode(to);
    for (AirEdge &edge : airEdges_) {
        if (edge.from == nf && edge.to == nt) {
            edge.fraction = fraction;
            recomputeFlows();
            noteInputChanged();
            return;
        }
    }
    MERCURY_PANIC("machine '", name_, "': no air edge ", from, " -> ", to);
}

void
ThermalGraph::setFanCfm(double cfm)
{
    if (cfm < 0.0)
        MERCURY_PANIC("setFanCfm: negative flow ", cfm);
    fanCfm_ = cfm;
    recomputeFlows();
    noteInputChanged();
}

void
ThermalGraph::setPowerRange(const std::string &node_name, double p_min,
                            double p_max)
{
    NodeId id = requireNode(node_name);
    Node &node = poweredNode(node_name);
    auto *linear = dynamic_cast<LinearPowerModel *>(node.powerModel.get());
    if (linear) {
        linear->setRange(p_min, p_max);
    } else {
        node.powerModel = std::make_unique<LinearPowerModel>(p_min, p_max);
    }
    noteInputChanged();
    refreshWatts(id);
}

ThermalGraph::HeatEdgeView
ThermalGraph::heatEdge(size_t index) const
{
    const HeatEdge &edge = heatEdges_.at(index);
    return {nodes_[edge.a].name, nodes_[edge.b].name, edge.k};
}

void
ThermalGraph::setHeatK(size_t index, double k)
{
    if (k <= 0.0)
        MERCURY_PANIC("setHeatK: non-positive k ", k);
    heatEdges_.at(index).k = k;
    syncHeatCsrK();
    planDirty_ = true;
    noteInputChanged();
}

ThermalGraph::AirEdgeView
ThermalGraph::airEdge(size_t index) const
{
    const AirEdge &edge = airEdges_.at(index);
    return {nodes_[edge.from].name, nodes_[edge.to].name, edge.fraction};
}

void
ThermalGraph::setAirFraction(size_t index, double fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        MERCURY_PANIC("setAirFraction: fraction ", fraction,
                      " outside [0, 1]");
    airEdges_.at(index).fraction = fraction;
    recomputeFlows();
    noteInputChanged();
}

void
ThermalGraph::pinTemperature(NodeId id, double celsius)
{
    pinned_.at(id) = 1;
    pinValue_[id] = celsius;
    temperature_[id] = celsius;
    noteInputChanged();
}

double
ThermalGraph::basePower(NodeId id) const
{
    const Node &node = nodes_.at(id);
    if (!node.powerModel)
        MERCURY_PANIC("machine '", name_, "': node '", node.name,
                      "' has no power model");
    return node.powerModel->basePower();
}

double
ThermalGraph::maxPower(NodeId id) const
{
    const Node &node = nodes_.at(id);
    if (!node.powerModel)
        MERCURY_PANIC("machine '", name_, "': node '", node.name,
                      "' has no power model");
    return node.powerModel->maxPower();
}

void
ThermalGraph::setPowerModel(const std::string &node_name,
                            std::unique_ptr<PowerModel> model)
{
    if (!model)
        MERCURY_PANIC("setPowerModel: null model");
    NodeId id = requireNode(node_name);
    bool was_powered = nodes_[id].powerModel != nullptr;
    nodes_[id].powerModel = std::move(model);
    if (!was_powered) {
        poweredIds_.push_back(id);
        std::sort(poweredIds_.begin(), poweredIds_.end());
    }
    noteInputChanged();
    refreshWatts(id);
}

} // namespace core
} // namespace mercury
