#include "core/thermal_graph.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace mercury {
namespace core {

namespace {

bool
isAirKind(NodeKind kind)
{
    return kind == NodeKind::Air || kind == NodeKind::Inlet ||
           kind == NodeKind::Exhaust;
}

} // namespace

ThermalGraph::ThermalGraph(const MachineSpec &spec)
    : name_(spec.name), fanCfm_(spec.fanCfm)
{
    std::vector<std::string> problems = validate(spec);
    if (!problems.empty()) {
        std::string joined;
        for (const std::string &p : problems)
            joined += "\n  " + p;
        MERCURY_PANIC("invalid machine spec:", joined);
    }

    nodes_.reserve(spec.nodes.size());
    for (const NodeSpec &ns : spec.nodes) {
        Node node;
        node.name = ns.name;
        node.kind = ns.kind;
        node.mass = ns.mass;
        node.specificHeat = ns.specificHeat;
        node.temperature =
            ns.initialTemperature.value_or(spec.initialTemperature);
        if (ns.hasPower) {
            node.powerModel =
                std::make_unique<LinearPowerModel>(ns.minPower, ns.maxPower);
        }
        byName_[ns.name] = nodes_.size();
        if (ns.kind == NodeKind::Inlet)
            inlet_ = nodes_.size();
        if (ns.kind == NodeKind::Exhaust)
            exhaust_ = nodes_.size();
        nodes_.push_back(std::move(node));
    }
    nodes_[inlet_].temperature = spec.inletTemperature;

    for (const HeatEdgeSpec &es : spec.heatEdges)
        heatEdges_.push_back({requireNode(es.a), requireNode(es.b), es.k});
    for (const AirEdgeSpec &es : spec.airEdges) {
        airEdges_.push_back(
            {requireNode(es.from), requireNode(es.to), es.fraction});
    }

    incidentHeat_.assign(nodes_.size(), {});
    for (size_t i = 0; i < heatEdges_.size(); ++i) {
        incidentHeat_[heatEdges_[i].a].push_back(i);
        incidentHeat_[heatEdges_[i].b].push_back(i);
    }

    recomputeFlows();
}

NodeId
ThermalGraph::requireNode(const std::string &node_name) const
{
    auto it = byName_.find(node_name);
    if (it == byName_.end())
        MERCURY_PANIC("machine '", name_, "': unknown node '", node_name,
                      "'");
    return it->second;
}

std::optional<NodeId>
ThermalGraph::tryNodeId(const std::string &node_name) const
{
    auto it = byName_.find(node_name);
    if (it == byName_.end())
        return std::nullopt;
    return it->second;
}

NodeId
ThermalGraph::nodeId(const std::string &node_name) const
{
    return requireNode(node_name);
}

const std::string &
ThermalGraph::nodeName(NodeId id) const
{
    return nodes_.at(id).name;
}

NodeKind
ThermalGraph::nodeKind(NodeId id) const
{
    return nodes_.at(id).kind;
}

std::vector<std::string>
ThermalGraph::nodeNames() const
{
    std::vector<std::string> out;
    out.reserve(nodes_.size());
    for (const Node &node : nodes_)
        out.push_back(node.name);
    return out;
}

void
ThermalGraph::recomputeFlows()
{
    incomingAir_.assign(nodes_.size(), {});
    std::vector<size_t> out_degree(nodes_.size(), 0);
    for (size_t i = 0; i < airEdges_.size(); ++i) {
        incomingAir_[airEdges_[i].to].push_back(i);
        ++out_degree[airEdges_[i].from];
    }

    // Topological order over air vertices (Kahn), starting from the
    // inlet. The spec validator already guaranteed acyclicity.
    std::vector<size_t> in_degree(nodes_.size(), 0);
    for (const AirEdge &edge : airEdges_)
        ++in_degree[edge.to];

    airOrder_.clear();
    std::vector<NodeId> ready;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (isAirKind(nodes_[id].kind) && in_degree[id] == 0)
            ready.push_back(id);
    }
    std::vector<size_t> remaining = in_degree;
    std::vector<NodeId> order;
    while (!ready.empty()) {
        // Pop the smallest id for determinism.
        auto it = std::min_element(ready.begin(), ready.end());
        NodeId id = *it;
        ready.erase(it);
        order.push_back(id);
        for (const AirEdge &edge : airEdges_) {
            if (edge.from == id && --remaining[edge.to] == 0)
                ready.push_back(edge.to);
        }
    }

    // Propagate mass flow from the fan through the edge fractions.
    for (Node &node : nodes_)
        node.massFlow = 0.0;
    nodes_[inlet_].massFlow = units::cfmToKgPerS(fanCfm_);
    for (NodeId id : order) {
        for (size_t edge_idx : incomingAir_[id]) {
            const AirEdge &edge = airEdges_[edge_idx];
            nodes_[id].massFlow +=
                edge.fraction * nodes_[edge.from].massFlow;
        }
    }

    // The marching order used by substep() excludes the inlet (a
    // boundary) but includes everything downstream of it.
    airOrder_.clear();
    for (NodeId id : order) {
        if (id != inlet_)
            airOrder_.push_back(id);
    }
}

int
ThermalGraph::substepsFor(double dt_seconds) const
{
    // Explicit Euler on a solid node is stable when
    // dt * (sum of incident k) / (m c) < 1; we target <= 0.25 for
    // accuracy. Air vertices are updated algebraically and do not
    // constrain dt, except stagnant ones which use a fixed capacity.
    double worst_rate = 0.0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node &node = nodes_[id];
        double capacity = 0.0;
        if (node.kind == NodeKind::Component) {
            capacity = node.mass * node.specificHeat;
        } else if (node.kind == NodeKind::Air && node.massFlow <= 0.0) {
            capacity = node.mass > 0.0 && node.specificHeat > 0.0
                           ? node.mass * node.specificHeat
                           : kStagnantAirHeatCapacity;
        } else {
            continue;
        }
        double k_sum = 0.0;
        for (size_t edge_idx : incidentHeat_[id])
            k_sum += heatEdges_[edge_idx].k;
        if (capacity > 0.0)
            worst_rate = std::max(worst_rate, k_sum / capacity);
    }
    if (worst_rate <= 0.0)
        return 1;
    double max_dt = 0.25 / worst_rate;
    return std::max(1, static_cast<int>(std::ceil(dt_seconds / max_dt)));
}

void
ThermalGraph::step(double dt_seconds)
{
    if (dt_seconds <= 0.0)
        MERCURY_PANIC("ThermalGraph::step: non-positive dt ", dt_seconds);
    int substeps = substepsFor(dt_seconds);
    double dt = dt_seconds / substeps;
    for (int i = 0; i < substeps; ++i)
        substep(dt);
}

void
ThermalGraph::substep(double dt)
{
    // 1. Heat generated by each powered component (eq. 3-4).
    for (Node &node : nodes_) {
        node.heatGain = 0.0;
        if (node.powerModel) {
            double watts = node.powerModel->power(node.utilization);
            node.heatGain += watts * dt;
            energyConsumed_ += watts * dt;
        }
    }

    // 2. Heat transferred along every heat edge (eq. 2), using the
    // temperatures at the start of the substep.
    for (const HeatEdge &edge : heatEdges_) {
        double q = edge.k *
                   (nodes_[edge.a].temperature - nodes_[edge.b].temperature) *
                   dt;
        nodes_[edge.a].heatGain -= q;
        nodes_[edge.b].heatGain += q;
    }

    // 3. Solid temperature update (eq. 5).
    for (Node &node : nodes_) {
        if (node.kind != NodeKind::Component)
            continue;
        if (node.pin) {
            node.temperature = *node.pin;
            continue;
        }
        node.temperature += node.heatGain / (node.mass * node.specificHeat);
    }

    // 4. Air traversal: march downstream from the inlet. Each vertex
    // mixes its inflows perfectly and exchanges heat with its
    // neighbours. The flowing-air balance is solved implicitly —
    //   F_c (Ta - T_mix) = sum_j k_j (T_j - Ta),  F_c = mdot c_air —
    // which is unconditionally stable even when a heat edge's k
    // exceeds the stream's heat-capacity rate, and identical to the
    // explicit form at steady state.
    for (NodeId id : airOrder_) {
        Node &node = nodes_[id];
        if (node.pin) {
            node.temperature = *node.pin;
            continue;
        }
        double flow_in = 0.0;
        double mix = 0.0;
        for (size_t edge_idx : incomingAir_[id]) {
            const AirEdge &edge = airEdges_[edge_idx];
            double contribution = edge.fraction * nodes_[edge.from].massFlow;
            flow_in += contribution;
            mix += contribution * nodes_[edge.from].temperature;
        }
        if (flow_in > 1e-12) {
            double capacity_rate = flow_in * units::kAirSpecificHeat;
            double numer = mix * units::kAirSpecificHeat;
            double denom = capacity_rate;
            for (size_t edge_idx : incidentHeat_[id]) {
                const HeatEdge &edge = heatEdges_[edge_idx];
                NodeId other = edge.a == id ? edge.b : edge.a;
                numer += edge.k * nodes_[other].temperature;
                denom += edge.k;
            }
            if (node.powerModel)
                numer += node.powerModel->power(node.utilization);
            node.temperature = numer / denom;
        } else {
            // Stagnant air: integrate like a small thermal mass.
            double capacity = node.mass > 0.0 && node.specificHeat > 0.0
                                  ? node.mass * node.specificHeat
                                  : kStagnantAirHeatCapacity;
            node.temperature += node.heatGain / capacity;
        }
    }

    // Pinned inlet handled by setInletTemperature / pinTemperature.
    if (nodes_[inlet_].pin)
        nodes_[inlet_].temperature = *nodes_[inlet_].pin;
}

double
ThermalGraph::temperature(NodeId id) const
{
    return nodes_.at(id).temperature;
}

double
ThermalGraph::temperature(const std::string &node_name) const
{
    return nodes_[requireNode(node_name)].temperature;
}

std::vector<double>
ThermalGraph::temperatures() const
{
    std::vector<double> out;
    out.reserve(nodes_.size());
    for (const Node &node : nodes_)
        out.push_back(node.temperature);
    return out;
}

void
ThermalGraph::setTemperatures(const std::vector<double> &values)
{
    if (values.size() != nodes_.size()) {
        MERCURY_PANIC("setTemperatures: got ", values.size(),
                      " values for ", nodes_.size(), " nodes");
    }
    for (size_t i = 0; i < nodes_.size(); ++i)
        nodes_[i].temperature = values[i];
}

double
ThermalGraph::exhaustTemperature() const
{
    return nodes_[exhaust_].temperature;
}

double
ThermalGraph::massFlow(NodeId id) const
{
    return nodes_.at(id).massFlow;
}

double
ThermalGraph::utilization(const std::string &node_name) const
{
    return nodes_[requireNode(node_name)].utilization;
}

double
ThermalGraph::power(const std::string &node_name) const
{
    const Node &node = nodes_[requireNode(node_name)];
    if (!node.powerModel)
        return 0.0;
    return node.powerModel->power(node.utilization);
}

double
ThermalGraph::totalPower() const
{
    double sum = 0.0;
    for (const Node &node : nodes_) {
        if (node.powerModel)
            sum += node.powerModel->power(node.utilization);
    }
    return sum;
}

ThermalGraph::Node &
ThermalGraph::poweredNode(const std::string &node_name)
{
    Node &node = nodes_[requireNode(node_name)];
    if (!node.powerModel)
        MERCURY_PANIC("machine '", name_, "': node '", node_name,
                      "' has no power model");
    return node;
}

void
ThermalGraph::setUtilization(const std::string &node_name, double value)
{
    poweredNode(node_name).utilization = std::clamp(value, 0.0, 1.0);
}

void
ThermalGraph::setInletTemperature(double celsius)
{
    nodes_[inlet_].temperature = celsius;
}

double
ThermalGraph::inletTemperature() const
{
    return nodes_[inlet_].temperature;
}

void
ThermalGraph::setTemperature(const std::string &node_name, double celsius)
{
    nodes_[requireNode(node_name)].temperature = celsius;
}

void
ThermalGraph::pinTemperature(const std::string &node_name, double celsius)
{
    Node &node = nodes_[requireNode(node_name)];
    node.pin = celsius;
    node.temperature = celsius;
}

void
ThermalGraph::unpinTemperature(const std::string &node_name)
{
    nodes_[requireNode(node_name)].pin.reset();
}

bool
ThermalGraph::isPinned(const std::string &node_name) const
{
    return nodes_[requireNode(node_name)].pin.has_value();
}

void
ThermalGraph::setHeatK(const std::string &a, const std::string &b, double k)
{
    if (k <= 0.0)
        MERCURY_PANIC("setHeatK: non-positive k ", k);
    NodeId na = requireNode(a);
    NodeId nb = requireNode(b);
    for (HeatEdge &edge : heatEdges_) {
        if ((edge.a == na && edge.b == nb) ||
            (edge.a == nb && edge.b == na)) {
            edge.k = k;
            return;
        }
    }
    MERCURY_PANIC("machine '", name_, "': no heat edge ", a, " -- ", b);
}

double
ThermalGraph::heatK(const std::string &a, const std::string &b) const
{
    NodeId na = requireNode(a);
    NodeId nb = requireNode(b);
    for (const HeatEdge &edge : heatEdges_) {
        if ((edge.a == na && edge.b == nb) ||
            (edge.a == nb && edge.b == na)) {
            return edge.k;
        }
    }
    MERCURY_PANIC("machine '", name_, "': no heat edge ", a, " -- ", b);
}

bool
ThermalGraph::hasHeatEdge(const std::string &a, const std::string &b) const
{
    auto na = tryNodeId(a);
    auto nb = tryNodeId(b);
    if (!na || !nb)
        return false;
    for (const HeatEdge &edge : heatEdges_) {
        if ((edge.a == *na && edge.b == *nb) ||
            (edge.a == *nb && edge.b == *na)) {
            return true;
        }
    }
    return false;
}

bool
ThermalGraph::hasAirEdge(const std::string &from, const std::string &to) const
{
    auto nf = tryNodeId(from);
    auto nt = tryNodeId(to);
    if (!nf || !nt)
        return false;
    for (const AirEdge &edge : airEdges_) {
        if (edge.from == *nf && edge.to == *nt)
            return true;
    }
    return false;
}

bool
ThermalGraph::isPowered(const std::string &node_name) const
{
    auto id = tryNodeId(node_name);
    return id && nodes_[*id].powerModel != nullptr;
}

void
ThermalGraph::setAirFraction(const std::string &from, const std::string &to,
                             double fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        MERCURY_PANIC("setAirFraction: fraction ", fraction,
                      " outside [0, 1]");
    NodeId nf = requireNode(from);
    NodeId nt = requireNode(to);
    for (AirEdge &edge : airEdges_) {
        if (edge.from == nf && edge.to == nt) {
            edge.fraction = fraction;
            recomputeFlows();
            return;
        }
    }
    MERCURY_PANIC("machine '", name_, "': no air edge ", from, " -> ", to);
}

void
ThermalGraph::setFanCfm(double cfm)
{
    if (cfm < 0.0)
        MERCURY_PANIC("setFanCfm: negative flow ", cfm);
    fanCfm_ = cfm;
    recomputeFlows();
}

void
ThermalGraph::setPowerRange(const std::string &node_name, double p_min,
                            double p_max)
{
    Node &node = poweredNode(node_name);
    auto *linear = dynamic_cast<LinearPowerModel *>(node.powerModel.get());
    if (linear) {
        linear->setRange(p_min, p_max);
    } else {
        node.powerModel = std::make_unique<LinearPowerModel>(p_min, p_max);
    }
}

void
ThermalGraph::setPowerModel(const std::string &node_name,
                            std::unique_ptr<PowerModel> model)
{
    if (!model)
        MERCURY_PANIC("setPowerModel: null model");
    nodes_[requireNode(node_name)].powerModel = std::move(model);
}

} // namespace core
} // namespace mercury
