/**
 * @file
 * The Mercury solver: owns the machine models and the optional room
 * model, advances them in lock-step iterations (one per emulated
 * second by default) and answers temperature queries by name.
 *
 * In the paper this logic runs inside the `solver` process on a
 * separate machine; here it is a library class that the solver daemon
 * (apps/mercury_solverd.cc), the offline trace runner, the benches and
 * the tests all share.
 */

#ifndef MERCURY_CORE_SOLVER_HH
#define MERCURY_CORE_SOLVER_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/room.hh"
#include "core/spec.hh"
#include "core/thermal_graph.hh"

namespace mercury {

class ThreadPool;

namespace core {

/** Solver tuning knobs. */
struct SolverConfig
{
    /** Emulated seconds advanced per iterate() call (paper: 1 s). */
    double iterationSeconds = 1.0;

    /**
     * Machine-stepping parallelism: 0 = one executor per hardware
     * thread, 1 = serial (no pool), N = exactly N executors. Within an
     * iteration machines only couple through the room model, which
     * runs as a separate serial phase first, so fanning the machine
     * step() calls across a pool is deterministic: any thread count
     * produces bitwise-identical temperatures.
     */
    unsigned threads = 0;
};

/**
 * Whole-system temperature emulator.
 */
class Solver
{
  public:
    /**
     * Resolved handle to one node of one machine: the fast path for
     * per-second callers (monitord updates, trace replay, recorded
     * sensors) that would otherwise walk the string -> alias -> NodeId
     * map chain on every call. Handles stay valid for the life of the
     * Solver (machines are never removed).
     */
    struct NodeRef
    {
        uint32_t machine = 0;
        uint32_t node = 0;
    };

    explicit Solver(SolverConfig config = {});
    ~Solver();

    Solver(const Solver &) = delete;
    Solver &operator=(const Solver &) = delete;

    /** @name Topology */
    /// @{

    /** Instantiate a machine from its spec; the name must be unique. */
    ThermalGraph &addMachine(const MachineSpec &spec);

    /** Install the inter-machine room model (after adding machines). */
    void setRoom(const RoomSpec &spec);

    bool hasRoom() const { return room_ != nullptr; }
    RoomModel &room();
    const RoomModel &room() const;

    bool hasMachine(const std::string &machine_name) const;
    ThermalGraph &machine(const std::string &machine_name);
    const ThermalGraph &machine(const std::string &machine_name) const;
    std::vector<std::string> machineNames() const;

    /// @}
    /** @name Time stepping */
    /// @{

    /** Advance everything by one iteration period. */
    void iterate();

    /**
     * Advance by @p seconds of emulated time, running exactly
     * floor(seconds / iterationSeconds) whole iterations (with a tiny
     * epsilon so exact multiples are not lost to floating-point
     * division: run(10.0) at 1 s is always 10 iterations, run(10.6)
     * is 10, never 11). A trailing fraction of an iteration is not
     * simulated — check emulatedSeconds() for the actual time reached.
     */
    void run(double seconds);

    uint64_t iterations() const { return iterations_; }
    double iterationSeconds() const { return config_.iterationSeconds; }
    double emulatedSeconds() const;

    /**
     * Overwrite the iteration counter so emulatedSeconds() resumes
     * where a checkpoint left off. Only src/state restore should call
     * this; it does not touch any thermal state.
     */
    void restoreIterationCount(uint64_t iterations)
    {
        iterations_ = iterations;
    }

    /**
     * Install a hook that runs at the end of every iterate(), after
     * all machines have stepped — the telemetry plane publishes its
     * shared-memory snapshot here. One hook at a time; pass nullptr
     * to remove. The hook runs on whichever thread called iterate().
     */
    void setIterationHook(std::function<void()> hook);

    /// @}
    /** @name Named queries (sensor interface) */
    /// @{

    /**
     * Register an alias so user-facing component names map onto graph
     * nodes (e.g. the paper opens the sensor "disk", which reads the
     * disk_platters vertex). Aliases apply to every machine.
     */
    void addAlias(const std::string &alias, const std::string &node_name);

    /** Resolve a component name to a node name for a given machine. */
    std::string resolveNode(const std::string &machine_name,
                            const std::string &component) const;

    /** Like resolveNode but returns nullopt instead of panicking —
     *  used by the network-facing daemons, which must stay up when a
     *  peer sends garbage. */
    std::optional<std::string>
    tryResolveNode(const std::string &machine_name,
                   const std::string &component) const;

    /** Temperature of a component, through the alias map [degC]. */
    double temperature(const std::string &machine_name,
                       const std::string &component) const;

    /** Update a component's utilization (monitord's entry point). */
    void setUtilization(const std::string &machine_name,
                        const std::string &component, double value);

    /// @}
    /** @name Resolved-handle fast path */
    /// @{

    /** Resolve through the alias map; nullopt when unknown. */
    std::optional<NodeRef>
    tryResolveRef(const std::string &machine_name,
                  const std::string &component) const;

    /** Like tryResolveRef but panics on unknown targets. */
    NodeRef resolveRef(const std::string &machine_name,
                       const std::string &component) const;

    double temperature(NodeRef ref) const;
    double utilization(NodeRef ref) const;
    void setUtilization(NodeRef ref, double value);

    /** True when the referenced node carries a power model. */
    bool isPowered(NodeRef ref) const;

    /** The component alias map (telemetry publishes it to readers). */
    const std::map<std::string, std::string> &aliases() const
    {
        return aliases_;
    }

    /// @}
    /** @name Environment control (fiddle's entry points) */
    /// @{

    /**
     * Force a machine's inlet temperature. With a room model this
     * installs an override (so the room stops driving that inlet);
     * standalone it writes the boundary directly.
     */
    void setInletTemperature(const std::string &machine_name,
                             double celsius);

    /** Return the inlet to room control (no-op without a room). */
    void clearInletOverride(const std::string &machine_name);

    /// @}
    /** @name State snapshots */
    /// @{

    /**
     * Save every node temperature as CSV
     * (`machine,node,temperature_c`). Together with loadState this
     * warm-starts long experiments past their thermal transient.
     */
    void saveState(std::ostream &out) const;

    /**
     * Restore temperatures from saveState output. Unknown machines or
     * nodes are fatal (the topology must match).
     */
    void loadState(std::istream &in);

    /// @}

  private:
    /** Lazily build the worker pool once machines exist. */
    ThreadPool *pool();

    SolverConfig config_;
    std::vector<std::unique_ptr<ThermalGraph>> machines_;
    std::map<std::string, size_t> machineIndex_;
    std::unique_ptr<RoomModel> room_;
    std::map<std::string, std::string> aliases_;
    uint64_t iterations_ = 0;
    std::function<void()> iterationHook_;

    std::unique_ptr<ThreadPool> pool_; //!< null until first parallel use
    bool poolDecided_ = false;         //!< pool_ creation attempted
};

} // namespace core
} // namespace mercury

#endif // MERCURY_CORE_SOLVER_HH
