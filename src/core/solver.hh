/**
 * @file
 * The Mercury solver: owns the machine models and the optional room
 * model, advances them in lock-step iterations (one per emulated
 * second by default) and answers temperature queries by name.
 *
 * In the paper this logic runs inside the `solver` process on a
 * separate machine; here it is a library class that the solver daemon
 * (apps/mercury_solverd.cc), the offline trace runner, the benches and
 * the tests all share.
 */

#ifndef MERCURY_CORE_SOLVER_HH
#define MERCURY_CORE_SOLVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/room.hh"
#include "core/spec.hh"
#include "core/thermal_graph.hh"

namespace mercury {

class ThreadPool;

namespace core {

/** Solver tuning knobs. */
struct SolverConfig
{
    /** Emulated seconds advanced per iterate() call (paper: 1 s). */
    double iterationSeconds = 1.0;

    /**
     * Machine-stepping parallelism: 0 = one executor per hardware
     * thread, 1 = serial (no pool), N = exactly N executors. Within an
     * iteration machines only couple through the room model, which
     * runs as a separate serial phase first, so fanning the machine
     * step() calls across a pool is deterministic: any thread count
     * produces bitwise-identical temperatures.
     */
    unsigned threads = 0;

    /**
     * Quiescence-aware active-set stepping. 0 (the default) disables
     * it entirely — iterate() is bitwise-identical to the classic
     * all-machines path. A positive epsilon [degC] lets the solver
     * freeze a machine whose temperatures have converged (its max
     * per-node |dT| and its projected remaining drift both under
     * epsilon for quiescenceHoldIterations consecutive iterations,
     * with no input change) and skip its step() until something wakes
     * it: any input mutation, a delivered inlet temperature more than
     * epsilon away from the frozen value, or checkpoint restore.
     * Epsilon bounds the trajectory error a freeze may introduce.
     */
    double quiescenceEpsilon = 0.0;

    /** Consecutive calm iterations required before freezing. */
    unsigned quiescenceHoldIterations = 3;

    /**
     * Forced re-step period for frozen machines: every N iterations a
     * frozen machine steps once anyway, bounding drift and
     * re-validating the freeze (a re-step whose |dT| exceeds epsilon
     * wakes the machine). 0 disables the refresh.
     */
    unsigned quiescenceRefreshIterations = 64;
};

/**
 * Whole-system temperature emulator.
 */
class Solver
{
  public:
    /**
     * Resolved handle to one node of one machine: the fast path for
     * per-second callers (monitord updates, trace replay, recorded
     * sensors) that would otherwise walk the string -> alias -> NodeId
     * map chain on every call. Handles stay valid for the life of the
     * Solver (machines are never removed).
     */
    struct NodeRef
    {
        uint32_t machine = 0;
        uint32_t node = 0;
    };

    explicit Solver(SolverConfig config = {});
    ~Solver();

    Solver(const Solver &) = delete;
    Solver &operator=(const Solver &) = delete;

    /** @name Topology */
    /// @{

    /** Instantiate a machine from its spec; the name must be unique. */
    ThermalGraph &addMachine(const MachineSpec &spec);

    /** Install the inter-machine room model (after adding machines). */
    void setRoom(const RoomSpec &spec);

    bool hasRoom() const { return room_ != nullptr; }
    RoomModel &room();
    const RoomModel &room() const;

    bool hasMachine(const std::string &machine_name) const;
    ThermalGraph &machine(const std::string &machine_name);
    const ThermalGraph &machine(const std::string &machine_name) const;
    std::vector<std::string> machineNames() const;

    /// @}
    /** @name Time stepping */
    /// @{

    /** Advance everything by one iteration period. */
    void iterate();

    /**
     * Advance by @p seconds of emulated time, running exactly
     * floor(seconds / iterationSeconds) whole iterations (with a tiny
     * epsilon so exact multiples are not lost to floating-point
     * division: run(10.0) at 1 s is always 10 iterations, run(10.6)
     * is 10, never 11). A trailing fraction of an iteration is not
     * simulated — check emulatedSeconds() for the actual time reached.
     */
    void run(double seconds);

    /** Iterations completed. Safe to read from any thread (relaxed
     *  atomic): the request plane's stats/metrics paths poll it while
     *  the solver thread steps. */
    uint64_t
    iterations() const
    {
        return iterations_.load(std::memory_order_relaxed);
    }

    double iterationSeconds() const { return config_.iterationSeconds; }
    double emulatedSeconds() const;

    /// @}
    /** @name Quiescence (active-set stepping observability) */
    /// @{

    /** True when a positive quiescenceEpsilon enabled the engine. */
    bool quiescenceEnabled() const
    {
        return config_.quiescenceEpsilon > 0.0;
    }

    /** Machines stepped (or steppable) this iteration. Readable from
     *  any thread, like iterations(). */
    size_t
    activeMachineCount() const
    {
        return machines_.size() -
               frozenCount_.load(std::memory_order_relaxed);
    }

    /** Machines currently frozen by the quiescence engine. */
    size_t
    frozenMachineCount() const
    {
        return frozenCount_.load(std::memory_order_relaxed);
    }

    /** True when the named machine is currently frozen. */
    bool isFrozen(const std::string &machine_name) const;

    /**
     * Unfreeze every machine and forget calm history. Checkpoint
     * restore calls this: restored state has no relation to the
     * pre-restore freeze decisions, so waking the whole fleet is the
     * conservative (and always-correct) answer.
     */
    void wakeAllMachines();

    /// @}
    /** @name Checkpoint / hooks */
    /// @{

    /**
     * Overwrite the iteration counter so emulatedSeconds() resumes
     * where a checkpoint left off. Only src/state restore should call
     * this; it does not touch any thermal state.
     */
    void restoreIterationCount(uint64_t iterations)
    {
        iterations_.store(iterations, std::memory_order_relaxed);
    }

    /**
     * Install a hook that runs at the end of every iterate(), after
     * all machines have stepped — the telemetry plane publishes its
     * shared-memory snapshot here. One hook at a time; pass nullptr
     * to remove. The hook runs on whichever thread called iterate().
     */
    void setIterationHook(std::function<void()> hook);

    /// @}
    /** @name Named queries (sensor interface) */
    /// @{

    /**
     * Register an alias so user-facing component names map onto graph
     * nodes (e.g. the paper opens the sensor "disk", which reads the
     * disk_platters vertex). Aliases apply to every machine.
     */
    void addAlias(const std::string &alias, const std::string &node_name);

    /** Resolve a component name to a node name for a given machine. */
    std::string resolveNode(const std::string &machine_name,
                            const std::string &component) const;

    /** Like resolveNode but returns nullopt instead of panicking —
     *  used by the network-facing daemons, which must stay up when a
     *  peer sends garbage. */
    std::optional<std::string>
    tryResolveNode(const std::string &machine_name,
                   const std::string &component) const;

    /** Temperature of a component, through the alias map [degC]. */
    double temperature(const std::string &machine_name,
                       const std::string &component) const;

    /** Update a component's utilization (monitord's entry point). */
    void setUtilization(const std::string &machine_name,
                        const std::string &component, double value);

    /// @}
    /** @name Resolved-handle fast path */
    /// @{

    /** Resolve through the alias map; nullopt when unknown. */
    std::optional<NodeRef>
    tryResolveRef(const std::string &machine_name,
                  const std::string &component) const;

    /** Like tryResolveRef but panics on unknown targets. */
    NodeRef resolveRef(const std::string &machine_name,
                       const std::string &component) const;

    double temperature(NodeRef ref) const;
    double utilization(NodeRef ref) const;
    void setUtilization(NodeRef ref, double value);

    /** True when the referenced node carries a power model. */
    bool isPowered(NodeRef ref) const;

    /** The component alias map (telemetry publishes it to readers). */
    const std::map<std::string, std::string> &aliases() const
    {
        return aliases_;
    }

    /// @}
    /** @name Environment control (fiddle's entry points) */
    /// @{

    /**
     * Force a machine's inlet temperature. With a room model this
     * installs an override (so the room stops driving that inlet);
     * standalone it writes the boundary directly.
     */
    void setInletTemperature(const std::string &machine_name,
                             double celsius);

    /** Return the inlet to room control (no-op without a room). */
    void clearInletOverride(const std::string &machine_name);

    /// @}
    /** @name State snapshots */
    /// @{

    /**
     * Save every node temperature as CSV
     * (`machine,node,temperature_c`). Together with loadState this
     * warm-starts long experiments past their thermal transient.
     */
    void saveState(std::ostream &out) const;

    /**
     * Restore temperatures from saveState output. Unknown machines or
     * nodes are fatal (the topology must match).
     */
    void loadState(std::istream &in);

    /// @}

  private:
    /** Lazily build the worker pool once machines exist. */
    ThreadPool *pool();

    /** iterate() body when quiescenceEpsilon > 0. */
    void iterateActiveSet();

    /**
     * Per-machine quiescence bookkeeping. A machine freezes after
     * quiescenceHoldIterations consecutive "calm" iterations: inputs
     * unchanged, max |dT| <= epsilon, and the projected remaining
     * drift — the geometric tail delta * rho / (1 - rho) estimated
     * from consecutive deltas — also <= epsilon. The projection is
     * what makes epsilon a bound on trajectory error: near a thermal
     * time constant of T iterations, a per-step delta just under
     * epsilon still has ~T * epsilon of approach left, so freezing on
     * the raw delta alone could park a machine degrees away from
     * where the exact solver ends up.
     */
    struct Quiescence
    {
        uint64_t inputSeen = 0;   //!< graph inputVersion() last seen
        double lastDelta = -1.0;  //!< previous step's max |dT| (<0 none)
        uint32_t calm = 0;        //!< consecutive calm iterations
        bool frozen = false;
        bool refreshing = false;  //!< this iteration is a forced re-step
        double frozenInlet = 0.0; //!< inlet at freeze / last refresh
        double frozenWatts = 0.0; //!< poweredWatts() cached at freeze
        uint64_t nextRefresh = 0; //!< iteration of the next forced step
    };

    SolverConfig config_;
    std::vector<std::unique_ptr<ThermalGraph>> machines_;
    std::map<std::string, size_t> machineIndex_;
    std::unique_ptr<RoomModel> room_;
    std::map<std::string, std::string> aliases_;

    /** Atomic (relaxed) so the sharded request plane's stats and
     *  metrics callbacks can read progress while iterate() runs. All
     *  mutation still happens on the one stepping thread. */
    std::atomic<uint64_t> iterations_{0};
    std::function<void()> iterationHook_;

    std::unique_ptr<ThreadPool> pool_; //!< null until first parallel use
    bool poolDecided_ = false;         //!< pool_ creation attempted

    std::vector<Quiescence> quiescence_; //!< parallel to machines_
    std::vector<double> stepDelta_;      //!< scratch: per-machine |dT|
    std::vector<size_t> activeScratch_;  //!< machines stepping this turn
    std::atomic<size_t> frozenCount_{0}; //!< relaxed; see iterations_
};

} // namespace core
} // namespace mercury

#endif // MERCURY_CORE_SOLVER_HH
