#include "core/solver.hh"

#include <cmath>
#include <istream>
#include <ostream>
#include <thread>

#include "util/logging.hh"
#include "util/strings.hh"
#include "util/thread_pool.hh"

namespace mercury {
namespace core {

Solver::Solver(SolverConfig config)
    : config_(config)
{
    if (config_.iterationSeconds <= 0.0) {
        MERCURY_PANIC("Solver: non-positive iteration period ",
                      config_.iterationSeconds);
    }
    // The paper's sensor API opens "disk"; the in-disk sensor sits next
    // to the platters in the two-lump drive model borrowed from
    // Gurumurthi et al.
    aliases_["disk"] = "disk_platters";
}

Solver::~Solver() = default;

ThreadPool *
Solver::pool()
{
    if (poolDecided_)
        return pool_.get();
    poolDecided_ = true;

    unsigned executors = config_.threads;
    if (executors == 0) {
        executors = std::thread::hardware_concurrency();
        if (executors == 0)
            executors = 1;
    }
    // One executor is the calling thread itself; with a single machine
    // or a single executor the serial path is strictly cheaper.
    if (executors > 1 && machines_.size() > 1) {
        size_t workers =
            std::min<size_t>(executors - 1, machines_.size() - 1);
        pool_ = std::make_unique<ThreadPool>(workers);
    }
    return pool_.get();
}

ThermalGraph &
Solver::addMachine(const MachineSpec &spec)
{
    if (machineIndex_.count(spec.name))
        MERCURY_PANIC("Solver: duplicate machine '", spec.name, "'");
    if (room_)
        MERCURY_PANIC("Solver: add machines before installing the room");
    machines_.push_back(std::make_unique<ThermalGraph>(spec));
    machineIndex_[spec.name] = machines_.size() - 1;
    poolDecided_ = false; // machine count changed; re-evaluate the pool
    Quiescence fresh;
    fresh.inputSeen = machines_.back()->inputVersion();
    quiescence_.push_back(fresh);
    return *machines_.back();
}

void
Solver::setRoom(const RoomSpec &spec)
{
    if (room_)
        MERCURY_PANIC("Solver: room already installed");
    std::unordered_map<std::string, ThermalGraph *> live;
    for (auto &graph : machines_)
        live[graph->name()] = graph.get();
    room_ = std::make_unique<RoomModel>(spec, live);
}

RoomModel &
Solver::room()
{
    if (!room_)
        MERCURY_PANIC("Solver: no room model installed");
    return *room_;
}

const RoomModel &
Solver::room() const
{
    if (!room_)
        MERCURY_PANIC("Solver: no room model installed");
    return *room_;
}

bool
Solver::hasMachine(const std::string &machine_name) const
{
    return machineIndex_.count(machine_name) != 0;
}

ThermalGraph &
Solver::machine(const std::string &machine_name)
{
    auto it = machineIndex_.find(machine_name);
    if (it == machineIndex_.end())
        MERCURY_PANIC("Solver: unknown machine '", machine_name, "'");
    return *machines_[it->second];
}

const ThermalGraph &
Solver::machine(const std::string &machine_name) const
{
    auto it = machineIndex_.find(machine_name);
    if (it == machineIndex_.end())
        MERCURY_PANIC("Solver: unknown machine '", machine_name, "'");
    return *machines_[it->second];
}

std::vector<std::string>
Solver::machineNames() const
{
    std::vector<std::string> out;
    out.reserve(machines_.size());
    for (const auto &graph : machines_)
        out.push_back(graph->name());
    return out;
}

void
Solver::iterate()
{
    if (config_.quiescenceEpsilon > 0.0) {
        iterateActiveSet();
        return;
    }

    // Phase 1 (serial): the room model reads every machine's exhaust
    // and writes every machine's inlet boundary.
    if (room_)
        room_->step();

    // Phase 2 (parallel): machines are now independent until the next
    // room phase, so their step() calls fan out across the pool. Each
    // machine only touches its own state, making the result identical
    // to the serial loop for any thread count.
    ThreadPool *fanout = pool();
    if (fanout) {
        double dt = config_.iterationSeconds;
        fanout->parallelFor(machines_.size(),
                            [&](size_t i) { machines_[i]->step(dt); });
    } else {
        for (auto &graph : machines_)
            graph->step(config_.iterationSeconds);
    }
    ++iterations_;
    if (iterationHook_)
        iterationHook_();
}

void
Solver::iterateActiveSet()
{
    const double eps = config_.quiescenceEpsilon;
    const double dt = config_.iterationSeconds;
    const uint64_t refresh = config_.quiescenceRefreshIterations;

    // Phase 1 (serial): the room still runs every iteration — it is
    // the coupling between machines and the source of inlet-driven
    // wakes. It delivers inlets via deliverInletTemperature(), which
    // does not count as an input mutation.
    if (room_)
        room_->step();

    // Phase A (serial): decide who steps. Frozen machines wake when
    // an input changed or the delivered inlet drifted past epsilon;
    // otherwise they either take a forced refresh re-step or skip the
    // iteration entirely, accruing energy analytically.
    activeScratch_.clear();
    stepDelta_.resize(machines_.size());
    for (size_t i = 0; i < machines_.size(); ++i) {
        ThermalGraph &graph = *machines_[i];
        Quiescence &q = quiescence_[i];
        if (!q.frozen) {
            activeScratch_.push_back(i);
            continue;
        }
        bool wake = graph.inputVersion() != q.inputSeen ||
                    std::fabs(graph.inletTemperature() - q.frozenInlet) >
                        eps;
        if (wake) {
            q.frozen = false;
            q.refreshing = false;
            q.calm = 0;
            q.lastDelta = -1.0;
            --frozenCount_;
            activeScratch_.push_back(i);
        } else if (refresh > 0 && iterations_ >= q.nextRefresh) {
            q.refreshing = true;
            activeScratch_.push_back(i);
        } else {
            // Watts are constant while frozen (any change to them is
            // an input mutation, which wakes): the energy integral is
            // the cached draw times dt, one add per machine.
            graph.accrueFrozenEnergy(q.frozenWatts * dt);
        }
    }

    // Phase 2 (parallel): fan the active machines out across the
    // pool. Same independence argument as the classic path; the
    // per-machine |dT| lands in stepDelta_ without sharing.
    ThreadPool *fanout = pool();
    if (fanout && activeScratch_.size() > 1) {
        fanout->parallelFor(activeScratch_.size(), [&](size_t k) {
            size_t i = activeScratch_[k];
            stepDelta_[i] = machines_[i]->step(dt);
        });
    } else {
        for (size_t i : activeScratch_)
            stepDelta_[i] = machines_[i]->step(dt);
    }

    // Phase B (serial): freeze bookkeeping. A machine is "calm" when
    // its inputs did not change, its max |dT| is under epsilon, and
    // the geometric-tail projection says the remaining approach also
    // fits in epsilon (see the Quiescence doc in solver.hh).
    for (size_t k = 0; k < activeScratch_.size(); ++k) {
        size_t i = activeScratch_[k];
        ThermalGraph &graph = *machines_[i];
        Quiescence &q = quiescence_[i];
        double delta = stepDelta_[i];
        uint64_t input = graph.inputVersion();
        bool input_changed = input != q.inputSeen;
        q.inputSeen = input;

        if (q.frozen) {
            // Forced refresh re-step: stay frozen only when the step
            // confirms nothing moved.
            q.refreshing = false;
            if (!input_changed && delta <= eps) {
                q.frozenInlet = graph.inletTemperature();
                q.nextRefresh = iterations_ + refresh;
            } else {
                q.frozen = false;
                q.calm = 0;
                q.lastDelta = -1.0;
                --frozenCount_;
            }
            continue;
        }

        bool calm = !input_changed && delta <= eps;
        if (calm && delta > 0.0) {
            if (q.lastDelta > 0.0 && delta < q.lastDelta) {
                double rho = delta / q.lastDelta;
                double remaining = delta * rho / (1.0 - rho);
                calm = remaining <= eps;
            } else {
                // No decreasing history yet — can't project the tail.
                calm = false;
            }
        }
        q.lastDelta = input_changed ? -1.0 : delta;
        if (calm) {
            if (++q.calm >= config_.quiescenceHoldIterations) {
                q.frozen = true;
                ++frozenCount_;
                q.frozenInlet = graph.inletTemperature();
                q.frozenWatts = graph.poweredWatts();
                q.nextRefresh = iterations_ + refresh;
            }
        } else {
            q.calm = 0;
        }
    }

    ++iterations_;
    if (iterationHook_)
        iterationHook_();
}

bool
Solver::isFrozen(const std::string &machine_name) const
{
    auto it = machineIndex_.find(machine_name);
    if (it == machineIndex_.end())
        MERCURY_PANIC("Solver: unknown machine '", machine_name, "'");
    return quiescence_[it->second].frozen;
}

void
Solver::wakeAllMachines()
{
    for (size_t i = 0; i < quiescence_.size(); ++i) {
        Quiescence &q = quiescence_[i];
        q.frozen = false;
        q.refreshing = false;
        q.calm = 0;
        q.lastDelta = -1.0;
        q.inputSeen = machines_[i]->inputVersion();
    }
    frozenCount_ = 0;
}

void
Solver::setIterationHook(std::function<void()> hook)
{
    iterationHook_ = std::move(hook);
}

void
Solver::run(double seconds)
{
    // Floor plus epsilon: whole iterations that fit into `seconds`,
    // never rounding a trailing fraction up (see the header contract).
    double ratio = seconds / config_.iterationSeconds;
    long steps = static_cast<long>(std::floor(ratio + 1e-9));
    for (long i = 0; i < steps; ++i)
        iterate();
}

double
Solver::emulatedSeconds() const
{
    return static_cast<double>(iterations_) * config_.iterationSeconds;
}

void
Solver::addAlias(const std::string &alias, const std::string &node_name)
{
    aliases_[alias] = node_name;
}

std::string
Solver::resolveNode(const std::string &machine_name,
                    const std::string &component) const
{
    auto resolved = tryResolveNode(machine_name, component);
    if (!resolved) {
        MERCURY_PANIC("Solver: machine '", machine_name,
                      "' has no component '", component, "'");
    }
    return *resolved;
}

std::optional<std::string>
Solver::tryResolveNode(const std::string &machine_name,
                       const std::string &component) const
{
    if (!hasMachine(machine_name))
        return std::nullopt;
    const ThermalGraph &graph = machine(machine_name);
    if (graph.tryNodeId(component))
        return component;
    auto it = aliases_.find(component);
    if (it != aliases_.end() && graph.tryNodeId(it->second))
        return it->second;
    return std::nullopt;
}

double
Solver::temperature(const std::string &machine_name,
                    const std::string &component) const
{
    const ThermalGraph &graph = machine(machine_name);
    return graph.temperature(resolveNode(machine_name, component));
}

void
Solver::setUtilization(const std::string &machine_name,
                       const std::string &component, double value)
{
    ThermalGraph &graph = machine(machine_name);
    graph.setUtilization(resolveNode(machine_name, component), value);
}

std::optional<Solver::NodeRef>
Solver::tryResolveRef(const std::string &machine_name,
                      const std::string &component) const
{
    auto it = machineIndex_.find(machine_name);
    if (it == machineIndex_.end())
        return std::nullopt;
    const ThermalGraph &graph = *machines_[it->second];
    std::optional<NodeId> node = graph.tryNodeId(component);
    if (!node) {
        auto alias = aliases_.find(component);
        if (alias == aliases_.end())
            return std::nullopt;
        node = graph.tryNodeId(alias->second);
        if (!node)
            return std::nullopt;
    }
    NodeRef ref;
    ref.machine = static_cast<uint32_t>(it->second);
    ref.node = static_cast<uint32_t>(*node);
    return ref;
}

Solver::NodeRef
Solver::resolveRef(const std::string &machine_name,
                   const std::string &component) const
{
    auto ref = tryResolveRef(machine_name, component);
    if (!ref) {
        MERCURY_PANIC("Solver: machine '", machine_name,
                      "' has no component '", component, "'");
    }
    return *ref;
}

double
Solver::temperature(NodeRef ref) const
{
    return machines_.at(ref.machine)->temperature(NodeId{ref.node});
}

double
Solver::utilization(NodeRef ref) const
{
    return machines_.at(ref.machine)->utilization(NodeId{ref.node});
}

void
Solver::setUtilization(NodeRef ref, double value)
{
    machines_.at(ref.machine)->setUtilization(NodeId{ref.node}, value);
}

bool
Solver::isPowered(NodeRef ref) const
{
    return machines_.at(ref.machine)->isPowered(NodeId{ref.node});
}

void
Solver::setInletTemperature(const std::string &machine_name, double celsius)
{
    ThermalGraph &graph = machine(machine_name);
    if (room_) {
        room_->setInletOverride(machine_name, celsius);
    } else {
        graph.setInletTemperature(celsius);
    }
}

void
Solver::clearInletOverride(const std::string &machine_name)
{
    if (room_)
        room_->setInletOverride(machine_name, std::nullopt);
}

void
Solver::saveState(std::ostream &out) const
{
    out << "machine,node,temperature_c\n";
    for (const auto &graph : machines_) {
        std::vector<double> temps = graph->temperatures();
        for (NodeId id = 0; id < temps.size(); ++id) {
            out << graph->name() << ',' << graph->nodeName(id)
                << format(",%.9g\n", temps[id]);
        }
    }
}

void
Solver::loadState(std::istream &in)
{
    std::string line;
    size_t line_no = 0;
    size_t applied = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string text = trim(line);
        if (text.empty() || text[0] == '#')
            continue;
        if (line_no == 1 && startsWith(text, "machine"))
            continue;
        std::vector<std::string> cells = split(text, ',');
        if (cells.size() != 3)
            fatal("state line ", line_no, ": expected 3 fields");
        auto value = parseDouble(cells[2]);
        if (!value)
            fatal("state line ", line_no, ": bad temperature");
        if (!hasMachine(cells[0]))
            fatal("state line ", line_no, ": unknown machine '",
                  cells[0], "'");
        ThermalGraph &graph = machine(cells[0]);
        if (!graph.tryNodeId(cells[1]))
            fatal("state line ", line_no, ": unknown node '", cells[1],
                  "'");
        graph.setTemperature(cells[1], *value);
        ++applied;
    }
    if (applied == 0)
        fatal("loadState: no temperatures found");
}

} // namespace core
} // namespace mercury
