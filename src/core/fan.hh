/**
 * @file
 * Variable-speed fans — one of the paper's Section 7 extensions:
 * "we are currently extending our models to consider clock throttling
 * and variable-speed fans. Modeling ... variable-speed fans is
 * actually fairly simple, since these behaviors are well-defined and
 * essentially depend on temperature, which Mercury emulates."
 *
 * A FanController maps a control temperature (typically the CPU's)
 * onto a fan speed with a linear ramp between two set-points plus
 * hysteresis, and writes the resulting CFM into the machine's thermal
 * graph every solver iteration — which re-derives all air mass flows,
 * exactly as a BIOS fan curve would.
 */

#ifndef MERCURY_CORE_FAN_HH
#define MERCURY_CORE_FAN_HH

#include <string>

namespace mercury {
namespace core {

class ThermalGraph;
class Solver;

/** A BIOS-style fan curve with hysteresis. */
struct FanCurve
{
    /** Below this control temperature the fan idles [degC]. */
    double lowTemperature = 35.0;

    /** At/above this temperature the fan runs flat out [degC]. */
    double highTemperature = 65.0;

    /** Idle and maximum volumetric flows [CFM]. */
    double minCfm = 15.0;
    double maxCfm = 55.0;

    /** Speed changes smaller than this are suppressed (hysteresis,
     *  so the emulation does not chatter) [CFM]. */
    double hysteresisCfm = 1.0;

    /** Flow for a control temperature, on the linear ramp. */
    double cfmFor(double temperature) const;
};

/**
 * Drives one machine's fan from one of its node temperatures.
 */
class FanController
{
  public:
    /**
     * @param graph the machine (borrowed; must outlive the controller)
     * @param control_node node whose temperature steers the fan
     */
    FanController(ThermalGraph &graph, std::string control_node,
                  FanCurve curve = {});

    /** Recompute and apply the fan speed; call once per iteration. */
    void update();

    /** Last applied flow [CFM]. */
    double currentCfm() const { return currentCfm_; }

    const FanCurve &curve() const { return curve_; }

  private:
    ThermalGraph &graph_;
    std::string controlNode_;
    FanCurve curve_;
    double currentCfm_ = 0.0;
};

} // namespace core
} // namespace mercury

#endif // MERCURY_CORE_FAN_HH
