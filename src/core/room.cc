#include "core/room.hh"

#include <algorithm>

#include "core/thermal_graph.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace mercury {
namespace core {

RoomModel::RoomModel(
    const RoomSpec &spec,
    const std::unordered_map<std::string, ThermalGraph *> &machines)
{
    size_t source_count = 0;
    double total_demand = 0.0;
    for (const RoomNodeSpec &ns : spec.nodes) {
        Node node;
        node.name = ns.name;
        node.kind = ns.kind;
        node.temperature = ns.temperature;
        if (ns.kind == RoomNodeKind::Machine) {
            auto it = machines.find(ns.machine);
            if (it == machines.end() || !it->second) {
                MERCURY_PANIC("room node '", ns.name,
                              "': no live machine named '", ns.machine, "'");
            }
            node.machine = it->second;
            node.massFlow = units::cfmToKgPerS(node.machine->fanCfm());
            total_demand += node.massFlow;
            node.temperature = node.machine->exhaustTemperature();
        }
        if (ns.kind == RoomNodeKind::Source)
            ++source_count;
        byName_[ns.name] = nodes_.size();
        nodes_.push_back(node);
    }
    if (source_count == 0)
        MERCURY_PANIC("room '", spec.name, "' has no air source");

    // Approximation: each source supplies an equal share of the total
    // machine fan demand. Mixing weights are renormalized per receiving
    // vertex, so only the relative magnitudes matter (e.g. against
    // recirculated exhaust streams).
    for (Node &node : nodes_) {
        if (node.kind == RoomNodeKind::Source)
            node.massFlow = total_demand / static_cast<double>(source_count);
    }

    for (const AirEdgeSpec &es : spec.edges) {
        edges_.push_back(
            {requireNode(es.from), requireNode(es.to), es.fraction});
    }

    // Topological order (spec validation guaranteed acyclicity).
    std::vector<size_t> in_degree(nodes_.size(), 0);
    for (const Edge &edge : edges_)
        ++in_degree[edge.to];
    std::vector<size_t> ready;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        if (in_degree[i] == 0)
            ready.push_back(i);
    }
    while (!ready.empty()) {
        auto it = std::min_element(ready.begin(), ready.end());
        size_t id = *it;
        ready.erase(it);
        order_.push_back(id);
        for (const Edge &edge : edges_) {
            if (edge.from == id && --in_degree[edge.to] == 0)
                ready.push_back(edge.to);
        }
    }
    if (order_.size() != nodes_.size())
        MERCURY_PANIC("room graph has a cycle");

    buildIncoming();

    // Mix vertices pass through the flow they receive; compute once.
    for (size_t id : order_) {
        Node &node = nodes_[id];
        if (node.kind != RoomNodeKind::Mix && node.kind != RoomNodeKind::Sink)
            continue;
        double flow = 0.0;
        for (uint32_t slot = inOffsets_[id]; slot < inOffsets_[id + 1];
             ++slot) {
            const Edge &edge = edges_[inEdge_[slot]];
            flow += edge.fraction * nodes_[edge.from].massFlow;
        }
        node.massFlow = flow;
    }
}

void
RoomModel::buildIncoming()
{
    std::vector<uint32_t> degree(nodes_.size(), 0);
    for (const Edge &edge : edges_)
        ++degree[edge.to];
    inOffsets_.assign(nodes_.size() + 1, 0);
    for (size_t i = 0; i < nodes_.size(); ++i)
        inOffsets_[i + 1] = inOffsets_[i] + degree[i];
    inEdge_.assign(edges_.size(), 0);
    std::vector<uint32_t> cursor(inOffsets_.begin(), inOffsets_.end() - 1);
    for (size_t i = 0; i < edges_.size(); ++i)
        inEdge_[cursor[edges_[i].to]++] = static_cast<uint32_t>(i);
}

size_t
RoomModel::requireNode(const std::string &node_name) const
{
    auto it = byName_.find(node_name);
    if (it == byName_.end())
        MERCURY_PANIC("room: unknown node '", node_name, "'");
    return it->second;
}

void
RoomModel::step()
{
    // Machines may change their fan speeds at run time (variable-speed
    // fans, fiddle): refresh flows before mixing. Sources keep
    // supplying an equal share of the current total demand; mixing
    // vertices pass through what they receive.
    double total_demand = 0.0;
    size_t source_count = 0;
    for (Node &node : nodes_) {
        if (node.kind == RoomNodeKind::Machine) {
            node.massFlow = units::cfmToKgPerS(node.machine->fanCfm());
            total_demand += node.massFlow;
        } else if (node.kind == RoomNodeKind::Source) {
            ++source_count;
        }
    }
    for (Node &node : nodes_) {
        if (node.kind == RoomNodeKind::Source) {
            node.massFlow =
                total_demand / static_cast<double>(source_count);
        }
    }
    for (size_t id : order_) {
        Node &mix_node = nodes_[id];
        if (mix_node.kind == RoomNodeKind::Mix ||
            mix_node.kind == RoomNodeKind::Sink) {
            double flow = 0.0;
            for (uint32_t slot = inOffsets_[id]; slot < inOffsets_[id + 1];
                 ++slot) {
                const Edge &edge = edges_[inEdge_[slot]];
                flow += edge.fraction * nodes_[edge.from].massFlow;
            }
            mix_node.massFlow = flow;
        }
    }

    // March downstream. A vertex's mixed inflow temperature is the
    // flow-weighted average of its incoming streams (perfect mixing).
    for (size_t id : order_) {
        Node &node = nodes_[id];
        if (node.kind == RoomNodeKind::Source)
            continue; // fixed supply temperature

        double flow_in = 0.0;
        double mix = 0.0;
        for (uint32_t slot = inOffsets_[id]; slot < inOffsets_[id + 1];
             ++slot) {
            const Edge &edge = edges_[inEdge_[slot]];
            double contribution = edge.fraction * nodes_[edge.from].massFlow;
            flow_in += contribution;
            mix += contribution * nodes_[edge.from].temperature;
        }
        double mixed = flow_in > 1e-12 ? mix / flow_in : node.temperature;

        switch (node.kind) {
          case RoomNodeKind::Machine:
            // Per-iteration boundary delivery, not an input mutation:
            // deliver keeps the quiescence engine from treating every
            // steady-state inlet write as a wake (override set-time
            // already woke the machine through setInletOverride).
            if (node.inletOverride) {
                node.machine->deliverInletTemperature(*node.inletOverride);
            } else if (flow_in > 1e-12) {
                node.machine->deliverInletTemperature(mixed);
            }
            // The vertex itself carries the machine's exhaust stream.
            node.temperature = node.machine->exhaustTemperature();
            break;
          case RoomNodeKind::Mix:
          case RoomNodeKind::Sink:
            if (flow_in > 1e-12)
                node.temperature = mixed;
            break;
          case RoomNodeKind::Source:
            break;
        }
    }
}

double
RoomModel::temperature(const std::string &node_name) const
{
    return nodes_[requireNode(node_name)].temperature;
}

void
RoomModel::setSourceTemperature(const std::string &node_name, double celsius)
{
    Node &node = nodes_[requireNode(node_name)];
    if (node.kind != RoomNodeKind::Source)
        MERCURY_PANIC("room node '", node_name, "' is not a source");
    node.temperature = celsius;
}

void
RoomModel::setEdgeFraction(const std::string &from, const std::string &to,
                           double fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        MERCURY_PANIC("room edge fraction ", fraction, " outside [0, 1]");
    size_t nf = requireNode(from);
    size_t nt = requireNode(to);
    for (Edge &edge : edges_) {
        if (edge.from == nf && edge.to == nt) {
            edge.fraction = fraction;
            return;
        }
    }
    MERCURY_PANIC("room: no edge ", from, " -> ", to);
}

RoomModel::EdgeView
RoomModel::edge(size_t index) const
{
    const Edge &e = edges_.at(index);
    return {nodes_[e.from].name, nodes_[e.to].name, e.fraction};
}

void
RoomModel::setEdgeFraction(size_t index, double fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        MERCURY_PANIC("room edge fraction ", fraction, " outside [0, 1]");
    edges_.at(index).fraction = fraction;
}

void
RoomModel::setInletOverride(const std::string &machine_name,
                            std::optional<double> celsius)
{
    Node &node = nodes_[requireNode(machine_name)];
    if (node.kind != RoomNodeKind::Machine)
        MERCURY_PANIC("room node '", machine_name, "' is not a machine");
    node.inletOverride = celsius;
    if (celsius)
        node.machine->setInletTemperature(*celsius);
}

std::optional<double>
RoomModel::inletOverride(const std::string &machine_name) const
{
    const Node &node = nodes_[requireNode(machine_name)];
    if (node.kind != RoomNodeKind::Machine)
        MERCURY_PANIC("room node '", machine_name, "' is not a machine");
    return node.inletOverride;
}

bool
RoomModel::hasNode(const std::string &node_name) const
{
    return byName_.count(node_name) != 0;
}

bool
RoomModel::isSource(const std::string &node_name) const
{
    auto it = byName_.find(node_name);
    return it != byName_.end() &&
           nodes_[it->second].kind == RoomNodeKind::Source;
}

bool
RoomModel::hasEdge(const std::string &from, const std::string &to) const
{
    auto nf = byName_.find(from);
    auto nt = byName_.find(to);
    if (nf == byName_.end() || nt == byName_.end())
        return false;
    for (const Edge &edge : edges_) {
        if (edge.from == nf->second && edge.to == nt->second)
            return true;
    }
    return false;
}

std::vector<std::string>
RoomModel::nodeNames() const
{
    std::vector<std::string> out;
    out.reserve(nodes_.size());
    for (const Node &node : nodes_)
        out.push_back(node.name);
    return out;
}

} // namespace core
} // namespace mercury
