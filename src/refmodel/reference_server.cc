#include "refmodel/reference_server.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace mercury {
namespace refmodel {

namespace {

/** Nominal fan flow the convective couplings were "measured" at. */
constexpr double kNominalCfm = 38.6;

/** Lump heat capacities [J/K] = mass [kg] x specific heat [J/(kg K)]. */
constexpr double kCapacity[ReferenceServer::kStateCount] = {
    0.021 * 700.0,  // cpu_die (die + spreader)
    0.130 * 896.0,  // heat_sink
    0.336 * 896.0,  // disk_platters
    0.505 * 896.0,  // disk_shell
    1.643 * 896.0,  // ps
    0.718 * 1245.0, // motherboard
    0.005 * 1006.0, // disk_air
    0.005 * 1006.0, // ps_air
    0.008 * 1006.0, // void_air
    0.003 * 1006.0, // cpu_air
    0.004 * 1006.0, // exhaust
};

/** Air fractions of the inlet flow reaching each region (Table 1). */
constexpr double kDiskBranch = 0.4;
constexpr double kPsBranch = 0.5;
constexpr double kVoidDirect = 0.1;
constexpr double kPsToVoid = 0.85;
constexpr double kPsToCpu = 0.15;
constexpr double kVoidToCpu = 0.05;
constexpr double kVoidToExhaust = 0.95;

} // namespace

ReferenceServer::ReferenceServer(ReferenceConfig config)
    : config_(config), temps_(kStateCount, config.inletTemperature),
      noise_(config.noiseSeed)
{
    if (config_.integrationStep <= 0.0)
        MERCURY_PANIC("ReferenceServer: non-positive integration step");
    for (const std::string &probe : probeNames())
        sensorState_[probe] = config_.inletTemperature;
}

void
ReferenceServer::setUtilization(const std::string &component,
                                double utilization)
{
    double u = std::clamp(utilization, 0.0, 1.0);
    if (component == "cpu") {
        cpuUtilization_ = u;
    } else if (component == "disk") {
        diskUtilization_ = u;
    } else {
        MERCURY_PANIC("ReferenceServer: unknown component '", component,
                      "' (want cpu or disk)");
    }
}

void
ReferenceServer::setInletTemperature(double celsius)
{
    config_.inletTemperature = celsius;
}

void
ReferenceServer::setFanCfm(double cfm)
{
    if (cfm < 0.0)
        MERCURY_PANIC("ReferenceServer: negative fan flow");
    config_.fanCfm = cfm;
}

double
ReferenceServer::cpuPower() const
{
    // Mildly super-linear: high utilization costs proportionally more
    // (frequency-scaling-free P3 behaviour; Mercury's linear equation 4
    // must absorb this through calibration).
    double u = cpuUtilization_;
    return 7.0 + 24.0 * (0.88 * u + 0.12 * u * u);
}

double
ReferenceServer::diskPower() const
{
    // Seek-dominated: concave in utilization.
    return 9.0 + 5.0 * std::pow(diskUtilization_, 0.85);
}

double
ReferenceServer::totalPower() const
{
    double cpu = cpuPower();
    double disk = diskPower();
    double ps = 38.5 + 0.06 * (cpu + disk);
    return cpu + disk + ps + 4.0;
}

double
ReferenceServer::convection(double h_nominal, double) const
{
    // Forced-convection scaling with flow^0.8 (Dittus-Boelter-like).
    double ratio = std::max(0.02, config_.fanCfm / kNominalCfm);
    return h_nominal * std::pow(ratio, 0.8);
}

ReferenceServer::State
ReferenceServer::derivative(const State &t) const
{
    State rate(kStateCount, 0.0);
    auto add = [&](StateIndex node, double watts) {
        rate[node] += watts / kCapacity[node];
    };
    // Conduction/convection between two lumps; h drifts slightly with
    // the hotter lump's temperature (Mercury assumes it does not).
    auto couple = [&](StateIndex a, StateIndex b, double h) {
        double hot = std::max(t[a], t[b]);
        double h_eff = h * (1.0 + 0.002 * (hot - 25.0));
        double watts = h_eff * (t[a] - t[b]);
        add(a, -watts);
        add(b, watts);
    };

    double cpu = cpuPower();
    double disk = diskPower();
    double ps = 38.5 + 0.06 * (cpu + disk);

    // Heat generation.
    add(kCpuDie, cpu);
    add(kDiskPlatters, disk);
    add(kPs, ps);
    add(kMotherboard, 4.0);

    // Solid-solid conduction (flow-independent).
    couple(kCpuDie, kHeatSink, 6.0);
    couple(kCpuDie, kMotherboard, 0.12);
    couple(kDiskPlatters, kDiskShell, 2.2);

    // Solid-air convection (flow-dependent).
    couple(kHeatSink, kCpuAir, convection(1.0, kPsToCpu));
    couple(kDiskShell, kDiskAir, convection(2.1, kDiskBranch));
    couple(kPs, kPsAir, convection(4.4, kPsBranch));
    couple(kMotherboard, kVoidAir, convection(10.5, 1.0));

    // Advection: mdot_in c (T_upstream_mix - T_region).
    double flow = units::cfmToKgPerS(config_.fanCfm);
    double c_air = units::kAirSpecificHeat;
    double t_in = config_.inletTemperature;

    auto advect = [&](StateIndex node, double mdot_in, double mix) {
        add(node, mdot_in * c_air * (mix - t[node]));
    };

    advect(kDiskAir, kDiskBranch * flow, t_in);
    advect(kPsAir, kPsBranch * flow, t_in);

    double void_in = (kVoidDirect + kDiskBranch + kPsToVoid * kPsBranch) *
                     flow;
    double void_mix = 0.0;
    if (void_in > 1e-12) {
        void_mix = (kVoidDirect * flow * t_in +
                    kDiskBranch * flow * t[kDiskAir] +
                    kPsToVoid * kPsBranch * flow * t[kPsAir]) /
                   void_in;
    }
    advect(kVoidAir, void_in, void_mix);

    double cpu_in = (kPsToCpu * kPsBranch + kVoidToCpu * 0.925) * flow;
    double cpu_mix = 0.0;
    if (cpu_in > 1e-12) {
        cpu_mix = (kPsToCpu * kPsBranch * flow * t[kPsAir] +
                   kVoidToCpu * 0.925 * flow * t[kVoidAir]) /
                  cpu_in;
    }
    advect(kCpuAir, cpu_in, cpu_mix);

    double exhaust_in = (kVoidToExhaust * 0.925 + 0.12125) * flow;
    double exhaust_mix = 0.0;
    if (exhaust_in > 1e-12) {
        exhaust_mix = (kVoidToExhaust * 0.925 * flow * t[kVoidAir] +
                       0.12125 * flow * t[kCpuAir]) /
                      exhaust_in;
    }
    advect(kExhaust, exhaust_in, exhaust_mix);

    return rate;
}

void
ReferenceServer::rk4Step(double dt)
{
    State k1 = derivative(temps_);
    State probe(kStateCount);
    for (int i = 0; i < kStateCount; ++i)
        probe[i] = temps_[i] + 0.5 * dt * k1[i];
    State k2 = derivative(probe);
    for (int i = 0; i < kStateCount; ++i)
        probe[i] = temps_[i] + 0.5 * dt * k2[i];
    State k3 = derivative(probe);
    for (int i = 0; i < kStateCount; ++i)
        probe[i] = temps_[i] + dt * k3[i];
    State k4 = derivative(probe);
    for (int i = 0; i < kStateCount; ++i) {
        temps_[i] +=
            dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

void
ReferenceServer::step(double dt)
{
    if (dt <= 0.0)
        MERCURY_PANIC("ReferenceServer::step: non-positive dt");
    double remaining = dt;
    while (remaining > 1e-12) {
        double h = std::min(remaining, config_.integrationStep);
        rk4Step(h);
        time_ += h;
        remaining -= h;
        // First-order sensor lag tracks the true values continuously.
        if (config_.sensorLagSeconds > 0.0) {
            double alpha = h / config_.sensorLagSeconds;
            alpha = std::min(1.0, alpha);
            for (auto &[probe, state] : sensorState_)
                state += alpha * (trueTemperature(probe) - state);
        } else {
            for (auto &[probe, state] : sensorState_)
                state = trueTemperature(probe);
        }
    }
}

double
ReferenceServer::trueTemperature(const std::string &probe) const
{
    static const std::map<std::string, StateIndex> kProbes = {
        {"cpu_die", kCpuDie},         {"heat_sink", kHeatSink},
        {"disk_platters", kDiskPlatters}, {"disk_shell", kDiskShell},
        {"ps", kPs},                  {"motherboard", kMotherboard},
        {"disk_air", kDiskAir},       {"ps_air", kPsAir},
        {"void_air", kVoidAir},       {"cpu_air", kCpuAir},
        {"exhaust", kExhaust},
    };
    auto it = kProbes.find(probe);
    if (it == kProbes.end())
        MERCURY_PANIC("ReferenceServer: unknown probe '", probe, "'");
    return temps_[it->second];
}

double
ReferenceServer::readSensor(const std::string &probe)
{
    auto it = sensorState_.find(probe);
    if (it == sensorState_.end())
        MERCURY_PANIC("ReferenceServer: unknown probe '", probe, "'");
    double value = it->second;
    if (config_.sensorNoiseStddev > 0.0)
        value += noise_.gaussian(0.0, config_.sensorNoiseStddev);
    if (config_.sensorQuantization > 0.0) {
        value = std::round(value / config_.sensorQuantization) *
                config_.sensorQuantization;
    }
    return value;
}

std::vector<std::string>
ReferenceServer::probeNames() const
{
    return {"cpu_die",   "heat_sink", "disk_platters", "disk_shell",
            "ps",        "motherboard", "disk_air",    "ps_air",
            "void_air",  "cpu_air",   "exhaust"};
}

} // namespace refmodel
} // namespace mercury
