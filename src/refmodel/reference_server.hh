/**
 * @file
 * The "real machine" substitute used for Mercury's validation
 * (Section 3.1 of the paper used a physical Pentium III server).
 *
 * This reference model is deliberately *richer* than Mercury's
 * coarse-grained emulation, so that calibrating Mercury against it
 * exercises the same correction the paper performed against hardware:
 *
 *  - components are split into multiple lumps (CPU die + heat sink,
 *    disk platters + shell) with their own masses;
 *  - convective couplings scale with air flow as h ~ (flow)^0.8 and
 *    drift slightly with temperature — Mercury assumes constant k;
 *  - power curves are mildly non-linear in utilization — Mercury
 *    assumes the linear equation 4;
 *  - air regions have thermal mass (transport lag) instead of
 *    Mercury's instantaneous mixing;
 *  - the whole state is integrated with RK4 at a 100 ms step;
 *  - sensors add first-order lag, Gaussian noise and quantization
 *    (the paper's thermometers were good to 1.5 degC, the in-disk
 *    sensor to 3 degC).
 */

#ifndef MERCURY_REFMODEL_REFERENCE_SERVER_HH
#define MERCURY_REFMODEL_REFERENCE_SERVER_HH

#include <map>
#include <string>
#include <vector>

#include "util/random.hh"

namespace mercury {
namespace refmodel {

/** Tunables of the reference machine. */
struct ReferenceConfig
{
    double inletTemperature = 21.6; //!< degC
    double fanCfm = 38.6;

    /** Sensor imperfections (set noise to 0 for exact reads). */
    double sensorNoiseStddev = 0.15; //!< degC
    double sensorQuantization = 0.1; //!< degC steps; 0 disables
    double sensorLagSeconds = 4.0;   //!< first-order time constant
    uint64_t noiseSeed = 12345;

    /** Internal RK4 step [s]. */
    double integrationStep = 0.1;
};

/**
 * High-fidelity Table-1-like server. Probes (for trueTemperature and
 * readSensor): cpu_die, heat_sink, cpu_air, disk_platters, disk_shell,
 * disk_air, ps, motherboard, void_air, exhaust.
 */
class ReferenceServer
{
  public:
    explicit ReferenceServer(ReferenceConfig config = {});

    /** @name Inputs */
    /// @{
    /** @param component "cpu" or "disk". */
    void setUtilization(const std::string &component, double utilization);
    void setInletTemperature(double celsius);
    void setFanCfm(double cfm);
    double inletTemperature() const { return config_.inletTemperature; }
    /// @}

    /** Advance the model by @p dt seconds (internally substepped). */
    void step(double dt);

    double time() const { return time_; }

    /** Exact state of a probe [degC] (no sensor artifacts). */
    double trueTemperature(const std::string &probe) const;

    /** Sensor reading: lagged, noisy, quantized. */
    double readSensor(const std::string &probe);

    /** All probe names. */
    std::vector<std::string> probeNames() const;

    /** Instantaneous electrical power [W]. */
    double totalPower() const;

    /** Indices into the state vector (public for the implementation's
     *  capacity table; not part of the stable API). */
    enum StateIndex {
        kCpuDie,
        kHeatSink,
        kDiskPlatters,
        kDiskShell,
        kPs,
        kMotherboard,
        kDiskAir,
        kPsAir,
        kVoidAir,
        kCpuAir,
        kExhaust,
        kStateCount
    };

  private:
    using State = std::vector<double>;

    /** dT/dt for the full state. */
    State derivative(const State &temps) const;

    void rk4Step(double dt);

    double cpuPower() const;
    double diskPower() const;

    /** Flow-dependent convective coupling [W/K]. */
    double convection(double h_nominal, double branch_flow_nominal) const;

    ReferenceConfig config_;
    State temps_;
    double cpuUtilization_ = 0.0;
    double diskUtilization_ = 0.0;
    double time_ = 0.0;
    mutable Rng noise_;

    /** First-order-lagged sensor states, keyed by probe. */
    std::map<std::string, double> sensorState_;
};

} // namespace refmodel
} // namespace mercury

#endif // MERCURY_REFMODEL_REFERENCE_SERVER_HH
