/**
 * @file
 * Small durable-file helpers shared by the daemons.
 *
 * atomicWriteFile() is the tmp+fsync+rename+dir-fsync dance the
 * checkpoint saver uses, packaged for the little metadata files
 * (--port-file, supervisord's failover flip) where a reader must never
 * observe a half-written value.
 */

#ifndef MERCURY_UTIL_FILEIO_HH
#define MERCURY_UTIL_FILEIO_HH

#include <string>

namespace mercury {

/**
 * Replace @p path with @p contents atomically: write to path.tmp,
 * fsync, rename over path, fsync the containing directory. Readers see
 * either the old file or the new one, never a prefix. Returns false
 * (with a diagnostic in @p error when non-null) on any syscall
 * failure; the destination is untouched in that case.
 */
bool atomicWriteFile(const std::string &path, const std::string &contents,
                     std::string *error = nullptr);

} // namespace mercury

#endif // MERCURY_UTIL_FILEIO_HH
