/**
 * @file
 * A minimal command-line flag parser for the suite's binaries
 * (mercury_solverd, monitord, fiddle, the figure benches). Flags take
 * the forms `--name value` and `--name=value`; `--help` prints usage.
 */

#ifndef MERCURY_UTIL_FLAGS_HH
#define MERCURY_UTIL_FLAGS_HH

#include <map>
#include <string>
#include <vector>

namespace mercury {

/**
 * Declarative flag registry plus parsed results.
 */
class FlagSet
{
  public:
    /** @param program name shown in usage, @param summary one-liner. */
    FlagSet(std::string program, std::string summary);

    /** Declare a string flag with a default value. */
    void defineString(const std::string &name, const std::string &def,
                      const std::string &help);

    /** Declare a floating-point flag. */
    void defineDouble(const std::string &name, double def,
                      const std::string &help);

    /** Declare an integer flag. */
    void defineInt(const std::string &name, long long def,
                   const std::string &help);

    /** Declare a boolean flag (`--name` alone means true). */
    void defineBool(const std::string &name, bool def,
                    const std::string &help);

    /**
     * Parse argv. Unknown flags or malformed values are fatal. Returns
     * false (after printing usage) when --help was requested.
     * Non-flag arguments are collected into positional().
     */
    bool parse(int argc, const char *const *argv);

    std::string getString(const std::string &name) const;
    double getDouble(const std::string &name) const;
    long long getInt(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** True when the user supplied the flag explicitly. */
    bool provided(const std::string &name) const;

    const std::vector<std::string> &positional() const { return positional_; }

    /** Render usage text. */
    std::string usage() const;

  private:
    enum class Kind { String, Double, Int, Bool };

    struct Flag
    {
        Kind kind;
        std::string help;
        std::string value;   // canonical textual value
        std::string defValue;
        bool provided = false;
    };

    const Flag &lookup(const std::string &name, Kind kind) const;

    std::string program_;
    std::string summary_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
    std::vector<std::string> positional_;
};

} // namespace mercury

#endif // MERCURY_UTIL_FLAGS_HH
