#include "util/thread_pool.hh"

#include <algorithm>

namespace mercury {

ThreadPool::ThreadPool(size_t worker_count)
{
    workers_.reserve(worker_count);
    for (size_t i = 0; i < worker_count; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::parallelFor(size_t count, const std::function<void(size_t)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Chunked claiming: one cursor fetch hands an executor `grain`
    // consecutive indices, keeping contention O(executors * 8) instead
    // of O(count) when the per-index work is tiny (4k machine steps).
    size_t grain = count / ((workers_.size() + 1) * 8);
    if (grain == 0)
        grain = 1;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobFn_ = &fn;
        jobCount_ = count;
        jobGrain_ = grain;
        jobNext_.store(0, std::memory_order_relaxed);
        busyWorkers_ = workers_.size();
        ++generation_;
    }
    wake_.notify_all();

    // The caller drains chunks alongside the workers.
    for (;;) {
        size_t begin = jobNext_.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= count)
            break;
        size_t end = std::min(begin + grain, count);
        for (size_t index = begin; index < end; ++index)
            fn(index);
    }

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return busyWorkers_ == 0; });
    jobFn_ = nullptr;
}

void
ThreadPool::workerLoop()
{
    uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(size_t)> *fn = nullptr;
        size_t count = 0;
        size_t grain = 1;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stopping_ || generation_ != seen_generation;
            });
            if (stopping_)
                return;
            seen_generation = generation_;
            fn = jobFn_;
            count = jobCount_;
            grain = jobGrain_;
        }

        for (;;) {
            size_t begin =
                jobNext_.fetch_add(grain, std::memory_order_relaxed);
            if (begin >= count)
                break;
            size_t end = std::min(begin + grain, count);
            for (size_t index = begin; index < end; ++index)
                (*fn)(index);
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            --busyWorkers_;
        }
        done_.notify_one();
    }
}

} // namespace mercury
