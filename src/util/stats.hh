/**
 * @file
 * Running statistics and time-series containers used by the validation
 * harnesses (error accounting against the reference model) and by the
 * Freon evaluation (utilization/temperature series, drop counting).
 */

#ifndef MERCURY_UTIL_STATS_HH
#define MERCURY_UTIL_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace mercury {

/**
 * Single-pass accumulator for mean/variance/min/max (Welford).
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void reset();

    size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance; zero with fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named (time, value) series with summary helpers. Used to collect
 * temperature and utilization traces for the figure benches.
 */
class TimeSeries
{
  public:
    TimeSeries() = default;
    explicit TimeSeries(std::string name) : name_(std::move(name)) {}

    /** Append a sample; times are expected to be non-decreasing. */
    void add(double time, double value);

    const std::string &name() const { return name_; }
    size_t size() const { return times_.size(); }
    bool empty() const { return times_.empty(); }

    double timeAt(size_t i) const { return times_[i]; }
    double valueAt(size_t i) const { return values_[i]; }
    const std::vector<double> &times() const { return times_; }
    const std::vector<double> &values() const { return values_; }

    /** Linear interpolation at @p time (clamped to the covered range). */
    double sampleAt(double time) const;

    double minValue() const;
    double maxValue() const;
    double meanValue() const;

    /** Last value, or @p fallback when empty. */
    double lastValue(double fallback = 0.0) const;

    /**
     * Maximum absolute difference against another series, comparing at
     * this series' sample times via interpolation. This is the "within
     * 1 degree C" validation metric from the paper's Section 3.
     */
    double maxAbsError(const TimeSeries &other) const;

    /** Mean absolute difference, sampled like maxAbsError. */
    double meanAbsError(const TimeSeries &other) const;

    /** First time the series reaches @p threshold, or -1 if never. */
    double firstTimeAbove(double threshold) const;

  private:
    std::string name_;
    std::vector<double> times_;
    std::vector<double> values_;
};

/**
 * Histogram with fixed-width bins, for latency distributions.
 */
class Histogram
{
  public:
    /** @param lo lower bound, @param hi upper bound, @param bins count. */
    Histogram(double lo, double hi, size_t bins);

    /** Add a sample (clamped into the outermost bins). */
    void add(double value);

    /** Merge another histogram of identical shape. */
    void merge(const Histogram &other);

    size_t count() const { return total_; }
    size_t binCount() const { return counts_.size(); }
    size_t binAt(size_t i) const { return counts_[i]; }
    double binLow(size_t i) const;
    double binHigh(size_t i) const;

    /** Approximate quantile (0..1) by linear scan over bins. */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    std::vector<size_t> counts_;
    size_t total_ = 0;
};

} // namespace mercury

#endif // MERCURY_UTIL_STATS_HH
