/**
 * @file
 * A persistent worker pool for data-parallel fan-out. The solver uses
 * it to step independent machine models concurrently: one pool lives
 * for the lifetime of the Solver, so iterating does not pay thread
 * creation cost (the paper's ~100 us/iteration budget leaves no room
 * for a per-iteration std::thread spawn).
 *
 * parallelFor() dispatches indices [0, count) to the workers through a
 * shared atomic cursor, and the calling thread participates, so a pool
 * of N threads applies N+1 executors. Executors claim contiguous
 * chunks of indices (grain = count / (executors * 8), min 1) rather
 * than one index per fetch, so thousands of sub-microsecond work items
 * do not serialize on cache-line ping-pong over the cursor. Work items
 * must be independent; completion of parallelFor() is a full barrier
 * (all writes made by the workers happen-before it returns).
 */

#ifndef MERCURY_UTIL_THREAD_POOL_HH
#define MERCURY_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mercury {

class ThreadPool
{
  public:
    /**
     * Spawn @p worker_count persistent workers. Zero is allowed and
     * makes parallelFor() run inline on the caller (handy for forcing
     * the serial path without sprinkling if-statements at call sites).
     */
    explicit ThreadPool(size_t worker_count);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Joins all workers; outstanding parallelFor calls must be done. */
    ~ThreadPool();

    /** Number of worker threads (excluding the calling thread). */
    size_t workerCount() const { return workers_.size(); }

    /**
     * Run fn(i) for every i in [0, count), spread across the workers
     * and the calling thread; blocks until every index completed.
     * Not reentrant: do not call parallelFor from inside fn.
     */
    void parallelFor(size_t count, const std::function<void(size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    uint64_t generation_ = 0; //!< bumped once per parallelFor call
    size_t busyWorkers_ = 0;  //!< workers still inside the current job
    bool stopping_ = false;

    // Current job; valid while busyWorkers_ > 0.
    const std::function<void(size_t)> *jobFn_ = nullptr;
    size_t jobCount_ = 0;
    size_t jobGrain_ = 1; //!< indices claimed per cursor fetch
    std::atomic<size_t> jobNext_{0};
};

} // namespace mercury

#endif // MERCURY_UTIL_THREAD_POOL_HH
