/**
 * @file
 * Physical constants and unit conversions used throughout the thermal
 * models. Mercury works internally in SI units (kg, J, W, seconds,
 * degrees Celsius for temperatures — all heat-transfer equations only
 * involve temperature differences, so Celsius and Kelvin are
 * interchangeable there).
 */

#ifndef MERCURY_UTIL_UNITS_HH
#define MERCURY_UTIL_UNITS_HH

namespace mercury {
namespace units {

/** Specific heat capacity of air at ~300 K [J/(kg K)]. */
inline constexpr double kAirSpecificHeat = 1006.0;

/** Density of air at ~300 K, 1 atm [kg/m^3]. */
inline constexpr double kAirDensity = 1.184;

/** Specific heat capacity of aluminium [J/(kg K)] (Table 1 uses 896). */
inline constexpr double kAluminumSpecificHeat = 896.0;

/** Specific heat capacity of FR4 board material [J/(kg K)] (Table 1: 1245). */
inline constexpr double kFr4SpecificHeat = 1245.0;

/** Cubic feet per minute -> cubic metres per second. */
inline constexpr double
cfmToM3PerS(double cfm)
{
    return cfm * 0.3048 * 0.3048 * 0.3048 / 60.0;
}

/** Cubic metres per second -> cubic feet per minute. */
inline constexpr double
m3PerSToCfm(double m3s)
{
    return m3s * 60.0 / (0.3048 * 0.3048 * 0.3048);
}

/** Volumetric air flow [m^3/s] -> mass flow [kg/s]. */
inline constexpr double
airMassFlow(double m3s)
{
    return m3s * kAirDensity;
}

/** Fan speed in CFM -> air mass flow in kg/s. */
inline constexpr double
cfmToKgPerS(double cfm)
{
    return airMassFlow(cfmToM3PerS(cfm));
}

/** Celsius -> Kelvin. */
inline constexpr double
celsiusToKelvin(double celsius)
{
    return celsius + 273.15;
}

/** Kelvin -> Celsius. */
inline constexpr double
kelvinToCelsius(double kelvin)
{
    return kelvin - 273.15;
}

} // namespace units
} // namespace mercury

#endif // MERCURY_UTIL_UNITS_HH
