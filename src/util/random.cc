#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace mercury {

namespace {

/** SplitMix64: seed expander recommended by the xoshiro authors. */
uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t value, int shift)
{
    return (value << shift) | (value >> (64 - shift));
}

} // namespace

Rng::Rng(uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(uint64_t seed_value)
{
    uint64_t sm = seed_value;
    for (auto &word : state_)
        word = splitMix64(sm);
    hasCachedGaussian_ = false;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    if (lo > hi)
        MERCURY_PANIC("uniformInt: lo ", lo, " > hi ", hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(next() % span);
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * M_PI * u2;
    cachedGaussian_ = radius * std::sin(angle);
    hasCachedGaussian_ = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::exponential(double rate)
{
    if (rate <= 0.0)
        MERCURY_PANIC("exponential: non-positive rate ", rate);
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

bool
Rng::chance(double probability)
{
    return uniform() < probability;
}

} // namespace mercury
