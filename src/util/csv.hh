/**
 * @file
 * CSV emission for experiment output. The figure benches print their
 * series as CSV on stdout (and optionally to files) so they can be fed
 * straight into gnuplot/matplotlib to regenerate the paper's plots.
 */

#ifndef MERCURY_UTIL_CSV_HH
#define MERCURY_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace mercury {

class TimeSeries;

/**
 * Streams rows of comma-separated values with a fixed column schema.
 */
class CsvWriter
{
  public:
    /** Write to @p out; the header row is emitted immediately. */
    CsvWriter(std::ostream &out, std::vector<std::string> columns);

    /** Emit one row; must match the column count. */
    void row(const std::vector<double> &values);

    /** Emit one row of preformatted cells; must match the column count. */
    void rowStrings(const std::vector<std::string> &cells);

    size_t columnCount() const { return columns_.size(); }
    size_t rowsWritten() const { return rows_; }

  private:
    std::ostream &out_;
    std::vector<std::string> columns_;
    size_t rows_ = 0;
};

/**
 * Write several aligned time series as one CSV table. All series are
 * sampled at the times of the first one (linear interpolation), which
 * matches how the paper's figures overlay measured and emulated curves.
 */
void writeAlignedSeries(std::ostream &out,
                        const std::vector<const TimeSeries *> &series,
                        const std::string &timeColumn = "time_s");

/** Escape a cell per RFC 4180 (quotes/commas/newlines). */
std::string csvEscape(const std::string &cell);

} // namespace mercury

#endif // MERCURY_UTIL_CSV_HH
