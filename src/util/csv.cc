#include "util/csv.hh"

#include <cstdio>

#include "util/logging.hh"
#include "util/stats.hh"

namespace mercury {

std::string
csvEscape(const std::string &cell)
{
    bool needs_quotes = false;
    for (char ch : cell) {
        if (ch == ',' || ch == '"' || ch == '\n' || ch == '\r') {
            needs_quotes = true;
            break;
        }
    }
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += "\"\"";
        else
            out += ch;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(std::ostream &out, std::vector<std::string> columns)
    : out_(out), columns_(std::move(columns))
{
    if (columns_.empty())
        MERCURY_PANIC("CsvWriter: no columns");
    for (size_t i = 0; i < columns_.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << csvEscape(columns_[i]);
    }
    out_ << '\n';
}

void
CsvWriter::row(const std::vector<double> &values)
{
    if (values.size() != columns_.size()) {
        MERCURY_PANIC("CsvWriter: row has ", values.size(),
                      " cells, expected ", columns_.size());
    }
    char buf[64];
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            out_ << ',';
        std::snprintf(buf, sizeof(buf), "%.6g", values[i]);
        out_ << buf;
    }
    out_ << '\n';
    ++rows_;
}

void
CsvWriter::rowStrings(const std::vector<std::string> &cells)
{
    if (cells.size() != columns_.size()) {
        MERCURY_PANIC("CsvWriter: row has ", cells.size(),
                      " cells, expected ", columns_.size());
    }
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << csvEscape(cells[i]);
    }
    out_ << '\n';
    ++rows_;
}

void
writeAlignedSeries(std::ostream &out,
                   const std::vector<const TimeSeries *> &series,
                   const std::string &timeColumn)
{
    if (series.empty())
        MERCURY_PANIC("writeAlignedSeries: no series");
    std::vector<std::string> columns{timeColumn};
    for (const TimeSeries *ts : series)
        columns.push_back(ts->name());
    CsvWriter writer(out, columns);
    const TimeSeries &base = *series.front();
    for (size_t i = 0; i < base.size(); ++i) {
        std::vector<double> row{base.timeAt(i)};
        row.push_back(base.valueAt(i));
        for (size_t s = 1; s < series.size(); ++s)
            row.push_back(series[s]->sampleAt(base.timeAt(i)));
        writer.row(row);
    }
}

} // namespace mercury
