/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic element in the suite (workload arrivals, sensor
 * noise, synthetic utilization) draws from an explicitly seeded Rng so
 * that experiments are bit-for-bit repeatable — repeatability is one of
 * Mercury's core selling points over real-hardware measurement.
 */

#ifndef MERCURY_UTIL_RANDOM_HH
#define MERCURY_UTIL_RANDOM_HH

#include <cstdint>

namespace mercury {

/**
 * A small, fast, seedable PRNG (xoshiro256**). Not cryptographic; more
 * than adequate for workload synthesis and noise injection.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (cached second variate). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Exponential with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Bernoulli trial. */
    bool chance(double probability);

    /** Re-seed, clearing any cached state. */
    void seed(uint64_t seed);

  private:
    uint64_t state_[4];
    bool hasCachedGaussian_ = false;
    double cachedGaussian_ = 0.0;
};

} // namespace mercury

#endif // MERCURY_UTIL_RANDOM_HH
