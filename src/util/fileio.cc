#include "util/fileio.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace mercury {

namespace {

void
setError(std::string *error, std::string message)
{
    if (error)
        *error = std::move(message);
}

} // namespace

bool
atomicWriteFile(const std::string &path, const std::string &contents,
                std::string *error)
{
    std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setError(error, "open " + tmp + ": " + std::strerror(errno));
        return false;
    }
    size_t written = 0;
    while (written < contents.size()) {
        ssize_t n = ::write(fd, contents.data() + written,
                            contents.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "write " + tmp + ": " + std::strerror(errno));
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        written += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
        setError(error, "fsync " + tmp + ": " + std::strerror(errno));
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        setError(error, "close " + tmp + ": " + std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "rename " + tmp + ": " + std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    // Persist the rename itself: fsync the containing directory.
    size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : path.substr(0, slash + 1);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

} // namespace mercury
