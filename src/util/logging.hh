/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (aborts), fatal() for user errors (exits), warn()/inform() for
 * non-fatal status. All messages go to stderr so that data written to
 * stdout (CSV series from benches, for instance) stays clean.
 */

#ifndef MERCURY_UTIL_LOGGING_HH
#define MERCURY_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace mercury {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Quiet,   //!< fatal/panic only
    Normal,  //!< + warn
    Info,    //!< + inform
    Debug    //!< + debugLog
};

/** Set the global verbosity. Thread-safe via atomic store. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {

/** Emit one formatted line with the given severity tag. */
void emit(const char *tag, const std::string &msg);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Internal invariant violation: print and abort (core-dumpable). */
template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line, detail::concat(std::forward<Args>(args)...));
}

/** User-caused unrecoverable error: print and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Possibly-incorrect behaviour the user should investigate. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Normal)
        detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/** Normal operating status, no connotation of a problem. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Info)
        detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Developer-facing trace output. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::emit("debug", detail::concat(std::forward<Args>(args)...));
}

#define MERCURY_PANIC(...) ::mercury::panicAt(__FILE__, __LINE__, __VA_ARGS__)

} // namespace mercury

#endif // MERCURY_UTIL_LOGGING_HH
