#include "util/flags.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"
#include "util/strings.hh"

namespace mercury {

namespace {

/**
 * Why a numeric flag value failed, for the fatal() message. "10x",
 * "1e999", and "" all fail parseDouble() identically; the operator
 * staring at a service script deserves to know which mistake it was.
 */
std::string
describeBadDouble(const std::string &value)
{
    std::string buf = trim(value);
    if (buf.empty())
        return "empty value";
    errno = 0;
    char *end = nullptr;
    double parsed = std::strtod(buf.c_str(), &end);
    if (end == buf.c_str())
        return "not a number";
    if (end != buf.c_str() + buf.size()) {
        return "trailing garbage after '" +
               buf.substr(0, static_cast<size_t>(end - buf.c_str())) +
               "'";
    }
    if (errno == ERANGE) {
        return parsed == 0.0 ? "underflows a double"
                             : "out of range for a double";
    }
    return "not a number";
}

std::string
describeBadInt(const std::string &value)
{
    std::string buf = trim(value);
    if (buf.empty())
        return "empty value";
    errno = 0;
    char *end = nullptr;
    (void)std::strtoll(buf.c_str(), &end, 10);
    if (end == buf.c_str())
        return "not an integer";
    if (end != buf.c_str() + buf.size()) {
        return "trailing garbage after '" +
               buf.substr(0, static_cast<size_t>(end - buf.c_str())) +
               "'";
    }
    if (errno == ERANGE)
        return "out of range for a 64-bit integer";
    return "not an integer";
}

} // namespace

FlagSet::FlagSet(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{
}

void
FlagSet::defineString(const std::string &name, const std::string &def,
                      const std::string &help)
{
    flags_[name] = Flag{Kind::String, help, def, def, false};
    order_.push_back(name);
}

void
FlagSet::defineDouble(const std::string &name, double def,
                      const std::string &help)
{
    std::string text = format("%g", def);
    flags_[name] = Flag{Kind::Double, help, text, text, false};
    order_.push_back(name);
}

void
FlagSet::defineInt(const std::string &name, long long def,
                   const std::string &help)
{
    std::string text = format("%lld", def);
    flags_[name] = Flag{Kind::Int, help, text, text, false};
    order_.push_back(name);
}

void
FlagSet::defineBool(const std::string &name, bool def,
                    const std::string &help)
{
    std::string text = def ? "true" : "false";
    flags_[name] = Flag{Kind::Bool, help, text, text, false};
    order_.push_back(name);
}

bool
FlagSet::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (!startsWith(arg, "--")) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        if (body == "help") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        std::string name;
        std::string value;
        bool have_value = false;
        size_t eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
            have_value = true;
        } else {
            name = body;
        }
        auto it = flags_.find(name);
        if (it == flags_.end())
            fatal("unknown flag --", name, "\n", usage());
        Flag &flag = it->second;
        if (!have_value) {
            if (flag.kind == Kind::Bool) {
                value = "true";
            } else {
                if (i + 1 >= argc)
                    fatal("flag --", name, " needs a value");
                value = argv[++i];
            }
        }
        switch (flag.kind) {
          case Kind::Double: {
            auto parsed = parseDouble(value);
            if (!parsed) {
                fatal("flag --", name, ": bad number '", value, "' (",
                      describeBadDouble(value), ")");
            }
            // strtod happily parses "nan" and "inf"; no flag here
            // means either (a NaN threshold disables every
            // comparison against it, silently).
            if (!std::isfinite(*parsed)) {
                fatal("flag --", name, ": bad number '", value,
                      "' (must be finite)");
            }
            break;
          }
          case Kind::Int: {
            if (!parseInt(value)) {
                fatal("flag --", name, ": bad integer '", value, "' (",
                      describeBadInt(value), ")");
            }
            break;
          }
          case Kind::Bool:
            if (!parseBool(value))
                fatal("flag --", name, ": bad boolean '", value, "'");
            break;
          case Kind::String:
            break;
        }
        flag.value = value;
        flag.provided = true;
    }
    return true;
}

const FlagSet::Flag &
FlagSet::lookup(const std::string &name, Kind kind) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        MERCURY_PANIC("flag --", name, " was never defined");
    if (it->second.kind != kind)
        MERCURY_PANIC("flag --", name, " accessed with the wrong type");
    return it->second;
}

std::string
FlagSet::getString(const std::string &name) const
{
    return lookup(name, Kind::String).value;
}

double
FlagSet::getDouble(const std::string &name) const
{
    return *parseDouble(lookup(name, Kind::Double).value);
}

long long
FlagSet::getInt(const std::string &name) const
{
    return *parseInt(lookup(name, Kind::Int).value);
}

bool
FlagSet::getBool(const std::string &name) const
{
    return *parseBool(lookup(name, Kind::Bool).value);
}

bool
FlagSet::provided(const std::string &name) const
{
    auto it = flags_.find(name);
    return it != flags_.end() && it->second.provided;
}

std::string
FlagSet::usage() const
{
    std::string out = program_ + ": " + summary_ + "\n\nFlags:\n";
    for (const std::string &name : order_) {
        const Flag &flag = flags_.at(name);
        out += format("  --%-24s %s (default: %s)\n", name.c_str(),
                      flag.help.c_str(), flag.defValue.c_str());
    }
    return out;
}

} // namespace mercury
