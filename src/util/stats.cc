#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mercury {

void
RunningStats::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    size_t total = count_ + other.count_;
    m2_ += other.m2_ + delta * delta *
           static_cast<double>(count_) * static_cast<double>(other.count_) /
           static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.count_) /
             static_cast<double>(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = total;
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
TimeSeries::add(double time, double value)
{
    if (!times_.empty() && time < times_.back()) {
        MERCURY_PANIC("TimeSeries '", name_, "': non-monotonic time ",
                      time, " after ", times_.back());
    }
    times_.push_back(time);
    values_.push_back(value);
}

double
TimeSeries::sampleAt(double time) const
{
    if (times_.empty())
        MERCURY_PANIC("TimeSeries '", name_, "': sampleAt on empty series");
    if (time <= times_.front())
        return values_.front();
    if (time >= times_.back())
        return values_.back();
    auto it = std::lower_bound(times_.begin(), times_.end(), time);
    size_t hi = static_cast<size_t>(it - times_.begin());
    size_t lo = hi - 1;
    double span = times_[hi] - times_[lo];
    if (span <= 0.0)
        return values_[hi];
    double alpha = (time - times_[lo]) / span;
    return values_[lo] + alpha * (values_[hi] - values_[lo]);
}

double
TimeSeries::minValue() const
{
    double out = values_.empty() ? 0.0 : values_.front();
    for (double v : values_)
        out = std::min(out, v);
    return out;
}

double
TimeSeries::maxValue() const
{
    double out = values_.empty() ? 0.0 : values_.front();
    for (double v : values_)
        out = std::max(out, v);
    return out;
}

double
TimeSeries::meanValue() const
{
    if (values_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values_)
        sum += v;
    return sum / static_cast<double>(values_.size());
}

double
TimeSeries::lastValue(double fallback) const
{
    return values_.empty() ? fallback : values_.back();
}

double
TimeSeries::maxAbsError(const TimeSeries &other) const
{
    double worst = 0.0;
    for (size_t i = 0; i < times_.size(); ++i) {
        double diff = std::abs(values_[i] - other.sampleAt(times_[i]));
        worst = std::max(worst, diff);
    }
    return worst;
}

double
TimeSeries::meanAbsError(const TimeSeries &other) const
{
    if (times_.empty())
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < times_.size(); ++i)
        sum += std::abs(values_[i] - other.sampleAt(times_[i]));
    return sum / static_cast<double>(times_.size());
}

double
TimeSeries::firstTimeAbove(double threshold) const
{
    for (size_t i = 0; i < times_.size(); ++i) {
        if (values_[i] >= threshold)
            return times_[i];
    }
    return -1.0;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        MERCURY_PANIC("Histogram: bad range [", lo, ", ", hi, ") x", bins);
}

void
Histogram::add(double value)
{
    double frac = (value - lo_) / (hi_ - lo_);
    long bin = static_cast<long>(frac * static_cast<double>(counts_.size()));
    bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(bin)];
    ++total_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.lo_ != lo_ || other.hi_ != hi_ ||
        other.counts_.size() != counts_.size()) {
        MERCURY_PANIC("Histogram::merge: shape mismatch");
    }
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

double
Histogram::binLow(size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
           static_cast<double>(counts_.size());
}

double
Histogram::binHigh(size_t i) const
{
    return binLow(i + 1);
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    double target = q * static_cast<double>(total_);
    double seen = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        seen += static_cast<double>(counts_[i]);
        if (seen >= target)
            return 0.5 * (binLow(i) + binHigh(i));
    }
    return hi_;
}

} // namespace mercury
