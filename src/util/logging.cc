#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mercury {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Normal};
std::mutex emitMutex;

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    std::lock_guard<std::mutex> guard(emitMutex);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> guard(emitMutex);
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
        std::fflush(stderr);
    }
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> guard(emitMutex);
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
        std::fflush(stderr);
    }
    std::exit(1);
}

} // namespace detail

} // namespace mercury
