/**
 * @file
 * Small string helpers shared across the suite (trimming, splitting,
 * numeric parsing with error reporting).
 */

#ifndef MERCURY_UTIL_STRINGS_HH
#define MERCURY_UTIL_STRINGS_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mercury {

/** Strip ASCII whitespace from both ends. */
std::string trim(std::string_view text);

/** Split on a single character; empty fields are preserved. */
std::vector<std::string> split(std::string_view text, char sep);

/** Split on runs of ASCII whitespace; empty fields are dropped. */
std::vector<std::string> splitWhitespace(std::string_view text);

/** True if @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True if @p text ends with @p suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

/** Parse a double; nullopt when not fully consumed or malformed. */
std::optional<double> parseDouble(std::string_view text);

/** Parse a signed 64-bit integer; nullopt on failure. */
std::optional<long long> parseInt(std::string_view text);

/** Parse "true"/"false"/"1"/"0" (case-insensitive). */
std::optional<bool> parseBool(std::string_view text);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace mercury

#endif // MERCURY_UTIL_STRINGS_HH
