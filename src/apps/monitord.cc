/**
 * @file
 * monitord: per-machine monitoring daemon. Samples CPU/disk/network
 * utilization (from /proc by default, or replayed from a trace) once
 * per second and ships 128-byte UDP updates to the solver (paper
 * Section 2.3).
 *
 *   monitord --machine m1 --solver-host solvermachine --solver-port 8367
 */

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <thread>

#include "core/trace.hh"
#include "guard/sensor_guard.hh"
#include "metrics/metrics.hh"
#include "monitor/monitord.hh"
#include "sensor/client.hh"
#include "util/flags.hh"
#include "util/logging.hh"

namespace {

volatile std::sig_atomic_t stopRequested = 0;

void
handleSignal(int)
{
    stopRequested = 1;
}

std::string
localHostname()
{
    char buf[256] = {};
    if (::gethostname(buf, sizeof(buf) - 1) != 0)
        return "localhost";
    return buf;
}

/**
 * Sleep for @p seconds in short slices so a SIGINT/SIGTERM turns
 * around in ~100 ms instead of waiting out a full period.
 */
void
interruptibleSleep(double seconds)
{
    using Clock = std::chrono::steady_clock;
    auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    while (!stopRequested && Clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mercury;

    FlagSet flags("monitord", "Mercury component-utilization monitor");
    flags.defineString("machine", "", "machine name (default: hostname)");
    flags.defineString("solver-host", "127.0.0.1", "solver host");
    flags.defineInt("solver-port", 8367, "solver UDP port");
    flags.defineDouble("period", 1.0, "seconds between updates");
    flags.defineBool("no-batched-updates", false,
                     "send one datagram per sendto() instead of "
                     "batching each tick through sendmmsg");
    flags.defineString("source", "proc",
                       "utilization source: proc | trace");
    flags.defineString("trace", "", "trace file for --source trace");
    flags.defineDouble("duration", 0.0,
                       "exit after this many seconds (0 = forever)");
    flags.defineString("record", "",
                       "also append every sample to this utilization "
                       "trace CSV (for later offline replay)");
    flags.defineInt("backlog", 600,
                    "samples queued while the solver is unreachable "
                    "(0 disables the outage backlog)");
    flags.defineString("gap-fill", "replay",
                       "what to ship from the backlog on reconnect: "
                       "replay | hold-last");
    flags.defineDouble("probe-seconds", 5.0,
                       "seconds between solver reachability probes "
                       "(only with --backlog > 0)");
    flags.defineString("metrics-path", "",
                       "write a Prometheus-style metrics text file here "
                       "periodically (atomic rename; empty disables)");
    flags.defineDouble("metrics-seconds", 10.0,
                       "seconds between metrics file writes");
    flags.defineBool("sensor-guard", false,
                     "validate sampled utilizations through the sensor "
                     "trust layer; implausible samples ship their "
                     "substitute with the update's trust tag set");
    flags.defineBool("verbose", false, "enable info logging");
    if (!flags.parse(argc, argv))
        return 0;
    if (flags.getBool("verbose"))
        setLogLevel(LogLevel::Info);

    std::string machine = flags.getString("machine");
    if (machine.empty())
        machine = localHostname();

    auto address = net::resolveHost(flags.getString("solver-host"));
    if (!address)
        fatal("cannot resolve solver host '",
              flags.getString("solver-host"), "'");
    net::Endpoint solver{*address,
                         static_cast<uint16_t>(flags.getInt("solver-port"))};

    std::unique_ptr<monitor::UtilizationSource> source;
    core::UtilizationTrace trace; // must outlive the source
    std::string kind = flags.getString("source");
    if (kind == "proc") {
        auto proc = std::make_unique<monitor::ProcSource>();
        if (!proc->available())
            fatal("/proc is not readable; use --source trace");
        source = std::move(proc);
    } else if (kind == "trace") {
        if (flags.getString("trace").empty())
            fatal("--source trace needs --trace <file>");
        trace = core::UtilizationTrace::loadFile(flags.getString("trace"));
        source = std::make_unique<monitor::TraceSource>(trace, machine);
    } else {
        fatal("unknown source '", kind, "'");
    }

    auto socket = std::make_shared<net::UdpSocket>();
    // Batch each tick's updates (and outage replays) into sendmmsg
    // calls; --no-batched-updates falls back to one sendto() each.
    auto batcher =
        std::make_shared<monitor::UpdateBatcher>(socket, solver);
    bool batching = !flags.getBool("no-batched-updates");
    monitor::Monitord::Sink sink =
        batching ? batcher->sink()
                 : monitor::Monitord::udpSink(socket, solver);

    // --record: tee every sample into a trace file so a live machine's
    // behaviour can be replayed offline later (mercury_trace).
    core::UtilizationTrace recorded;
    std::ofstream record_file;
    auto record_clock = std::make_shared<double>(0.0);
    bool recording = !flags.getString("record").empty();
    if (recording) {
        record_file.open(flags.getString("record"));
        if (!record_file)
            fatal("cannot open --record file '",
                  flags.getString("record"), "'");
        monitor::Monitord::Sink udp = std::move(sink);
        sink = [udp, &recorded, record_clock](
                   const proto::UtilizationUpdate &update) {
            udp(update);
            recorded.add(*record_clock, update.machine, update.component,
                         update.utilization);
        };
    }

    monitor::Monitord daemon(machine, std::move(source), std::move(sink));

    // Utilization counters step freely and have no thermal model to
    // cross-check against, so the guard runs the loosened utilization
    // profile: range + stuck-at only.
    std::unique_ptr<guard::SensorGuard> sensor_guard;
    if (flags.getBool("sensor-guard")) {
        sensor_guard = std::make_unique<guard::SensorGuard>(
            guard::GuardConfig::utilizationProfile());
        daemon.setGuard(sensor_guard.get());
    }

    // Outage backlog: queue samples while the solver is unreachable
    // and replay them on reconnect. Reachability is decided by a
    // cheap fiddle("stats") round trip on its own cadence.
    long long backlog_capacity = flags.getInt("backlog");
    if (backlog_capacity < 0)
        fatal("--backlog must be >= 0");
    std::unique_ptr<sensor::SensorClient> probe;
    double probe_seconds = flags.getDouble("probe-seconds");
    if (backlog_capacity > 0) {
        monitor::Monitord::BacklogConfig backlog_config;
        backlog_config.capacity = static_cast<size_t>(backlog_capacity);
        std::string gap_fill = flags.getString("gap-fill");
        if (gap_fill == "replay") {
            backlog_config.policy =
                monitor::Monitord::GapFillPolicy::Replay;
        } else if (gap_fill == "hold-last") {
            backlog_config.policy =
                monitor::Monitord::GapFillPolicy::HoldLast;
        } else {
            fatal("unknown --gap-fill '", gap_fill,
                  "' (replay | hold-last)");
        }
        daemon.enableBacklog(backlog_config);
        if (probe_seconds <= 0.0)
            fatal("--probe-seconds must be > 0");
        probe = std::make_unique<sensor::SensorClient>(
            std::make_unique<sensor::UdpTransport>(
                flags.getString("solver-host"),
                static_cast<uint16_t>(flags.getInt("solver-port"))),
            machine);
    }

    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);

    // Export daemon health; written periodically when --metrics-path
    // is set (the solver daemon exposes its registry over RPC, but
    // monitord has no server socket, so the file is its only surface).
    metrics::Registry &registry = metrics::Registry::global();
    metrics::CallbackGuard sent_guard, depth_guard, replayed_guard,
        dropped_guard, online_guard, send_err_guard;
    send_err_guard.add(registry, "monitor_update_send_errors_total",
                       "update datagrams that failed to send",
                       [batcher] {
                           return static_cast<double>(
                               batcher->sendErrors());
                       });
    sent_guard.add(registry, "monitor_updates_sent_total",
                   "utilization updates shipped to the solver",
                   [&daemon] {
                       return static_cast<double>(daemon.updatesSent());
                   });
    depth_guard.add(registry, "monitor_backlog_depth",
                    "samples currently queued for an unreachable solver",
                    [&daemon] {
                        return static_cast<double>(daemon.backlogDepth());
                    });
    replayed_guard.add(
        registry, "monitor_backlog_replayed_total",
        "queued samples replayed after a reconnect", [&daemon] {
            return static_cast<double>(daemon.backlogReplayed());
        });
    dropped_guard.add(
        registry, "monitor_backlog_dropped_total",
        "queued samples dropped at backlog capacity", [&daemon] {
            return static_cast<double>(daemon.backlogDropped());
        });
    online_guard.add(registry, "monitor_solver_reachable",
                     "1 while the solver answers probes", [&daemon] {
                         return daemon.online() ? 1.0 : 0.0;
                     });
    metrics::CallbackGuard subst_guard;
    if (sensor_guard) {
        subst_guard.add(
            registry, "monitor_updates_substituted_total",
            "updates shipped with a guard-substituted value", [&daemon] {
                return static_cast<double>(daemon.updatesSubstituted());
            });
    }
    std::string metrics_path = flags.getString("metrics-path");
    double metrics_seconds = flags.getDouble("metrics-seconds");
    double next_metrics = 0.0;

    inform("monitord: machine '", machine, "' -> ", solver.toString());
    double period = flags.getDouble("period");
    double duration = flags.getDouble("duration");
    auto start = std::chrono::steady_clock::now();
    double next_probe = 0.0;
    while (!stopRequested) {
        auto now = std::chrono::steady_clock::now();
        double elapsed = std::chrono::duration<double>(now - start).count();
        if (duration > 0.0 && elapsed >= duration)
            break;
        if (!metrics_path.empty() && metrics_seconds > 0.0 &&
            elapsed >= next_metrics) {
            metrics::writeTextFile(registry, metrics_path);
            next_metrics = elapsed + metrics_seconds;
        }
        if (probe && elapsed >= next_probe) {
            bool reachable = probe->fiddle("stats").first;
            if (reachable != daemon.online()) {
                if (reachable)
                    inform("monitord: solver reachable again, "
                           "replaying ", daemon.backlogDepth(),
                           " queued sample(s)");
                else
                    inform("monitord: solver unreachable, queueing "
                           "up to ", backlog_capacity, " sample(s)");
            }
            daemon.setOnline(reachable); // may replay the backlog
            batcher->flush();
            next_probe = elapsed + probe_seconds;
        }
        *record_clock = elapsed;
        daemon.tick(elapsed);
        batcher->flush();
        interruptibleSleep(period);
    }
    if (stopRequested)
        inform("monitord: signal received, flushing and exiting");
    if (recording) {
        recorded.save(record_file);
        inform("monitord: trace written to ", flags.getString("record"));
    }
    if (!metrics_path.empty())
        metrics::writeTextFile(registry, metrics_path);
    inform("monitord: sent ", daemon.updatesSent(), " updates (",
           daemon.backlogReplayed(), " replayed from backlog, ",
           daemon.backlogDropped(), " dropped, ", daemon.backlogDepth(),
           " still queued)");
    if (sensor_guard)
        inform("monitord: guard substituted ",
               daemon.updatesSubstituted(), " sample(s), ",
               sensor_guard->anomaliesTotal(), " anomalies");
    return 0;
}
