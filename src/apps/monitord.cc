/**
 * @file
 * monitord: per-machine monitoring daemon. Samples CPU/disk/network
 * utilization (from /proc by default, or replayed from a trace) once
 * per second and ships 128-byte UDP updates to the solver (paper
 * Section 2.3).
 *
 *   monitord --machine m1 --solver-host solvermachine --solver-port 8367
 */

#include <unistd.h>

#include <chrono>
#include <fstream>
#include <thread>

#include "core/trace.hh"
#include "monitor/monitord.hh"
#include "util/flags.hh"
#include "util/logging.hh"

namespace {

std::string
localHostname()
{
    char buf[256] = {};
    if (::gethostname(buf, sizeof(buf) - 1) != 0)
        return "localhost";
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mercury;

    FlagSet flags("monitord", "Mercury component-utilization monitor");
    flags.defineString("machine", "", "machine name (default: hostname)");
    flags.defineString("solver-host", "127.0.0.1", "solver host");
    flags.defineInt("solver-port", 8367, "solver UDP port");
    flags.defineDouble("period", 1.0, "seconds between updates");
    flags.defineString("source", "proc",
                       "utilization source: proc | trace");
    flags.defineString("trace", "", "trace file for --source trace");
    flags.defineDouble("duration", 0.0,
                       "exit after this many seconds (0 = forever)");
    flags.defineString("record", "",
                       "also append every sample to this utilization "
                       "trace CSV (for later offline replay)");
    flags.defineBool("verbose", false, "enable info logging");
    if (!flags.parse(argc, argv))
        return 0;
    if (flags.getBool("verbose"))
        setLogLevel(LogLevel::Info);

    std::string machine = flags.getString("machine");
    if (machine.empty())
        machine = localHostname();

    auto address = net::resolveHost(flags.getString("solver-host"));
    if (!address)
        fatal("cannot resolve solver host '",
              flags.getString("solver-host"), "'");
    net::Endpoint solver{*address,
                         static_cast<uint16_t>(flags.getInt("solver-port"))};

    std::unique_ptr<monitor::UtilizationSource> source;
    core::UtilizationTrace trace; // must outlive the source
    std::string kind = flags.getString("source");
    if (kind == "proc") {
        auto proc = std::make_unique<monitor::ProcSource>();
        if (!proc->available())
            fatal("/proc is not readable; use --source trace");
        source = std::move(proc);
    } else if (kind == "trace") {
        if (flags.getString("trace").empty())
            fatal("--source trace needs --trace <file>");
        trace = core::UtilizationTrace::loadFile(flags.getString("trace"));
        source = std::make_unique<monitor::TraceSource>(trace, machine);
    } else {
        fatal("unknown source '", kind, "'");
    }

    auto socket = std::make_shared<net::UdpSocket>();
    monitor::Monitord::Sink sink =
        monitor::Monitord::udpSink(socket, solver);

    // --record: tee every sample into a trace file so a live machine's
    // behaviour can be replayed offline later (mercury_trace).
    core::UtilizationTrace recorded;
    std::ofstream record_file;
    auto record_clock = std::make_shared<double>(0.0);
    bool recording = !flags.getString("record").empty();
    if (recording) {
        record_file.open(flags.getString("record"));
        if (!record_file)
            fatal("cannot open --record file '",
                  flags.getString("record"), "'");
        monitor::Monitord::Sink udp = std::move(sink);
        sink = [udp, &recorded, record_clock](
                   const proto::UtilizationUpdate &update) {
            udp(update);
            recorded.add(*record_clock, update.machine, update.component,
                         update.utilization);
        };
    }

    monitor::Monitord daemon(machine, std::move(source), std::move(sink));

    inform("monitord: machine '", machine, "' -> ", solver.toString());
    double period = flags.getDouble("period");
    double duration = flags.getDouble("duration");
    auto start = std::chrono::steady_clock::now();
    while (true) {
        auto now = std::chrono::steady_clock::now();
        double elapsed = std::chrono::duration<double>(now - start).count();
        if (duration > 0.0 && elapsed >= duration)
            break;
        *record_clock = elapsed;
        daemon.tick(elapsed);
        std::this_thread::sleep_for(std::chrono::duration<double>(period));
    }
    if (recording) {
        recorded.save(record_file);
        inform("monitord: trace written to ", flags.getString("record"));
    }
    inform("monitord: sent ", daemon.updatesSent(), " updates");
    return 0;
}
