/**
 * @file
 * mercury_trace: the offline mode. Drives a solver from a utilization
 * trace file and writes the full usage+temperature time series as CSV
 * — "the end result is another file containing all the usage and
 * temperature information for each component in the system over time"
 * (Section 2.3). --replicate clones one traced machine across many,
 * the paper's trick for emulating large clusters.
 *
 *   mercury_trace --config configs/table1_server.dot \
 *                 --trace load.csv --duration 5000 > temps.csv
 *
 * --replay-wal reproduces a live daemon run instead: it replays a
 * mutation WAL (optionally on top of the checkpoint the WAL generation
 * started from) through the same solver and dumps the resulting state
 * — bitwise identical to what the daemon held, because the solver is
 * deterministic and the WAL captures every input in drain order.
 *
 *   mercury_trace --config configs/table1_server.dot \
 *                 --replay-wal solver.wal \
 *                 --replay-checkpoint solver.ck > state.txt
 */

#include <iostream>

#include "core/solver.hh"
#include "core/trace.hh"
#include "graphdot/parser.hh"
#include "graphdot/writer.hh"
#include "proto/solver_service.hh"
#include "proto/wal_codec.hh"
#include "replica/wal.hh"
#include "state/checkpoint.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace {

/** Replay a WAL into @p solver and dump the final state to stdout. */
int
replayWalFile(mercury::core::Solver &solver, const std::string &wal_path,
              const std::string &checkpoint_path,
              long long replay_to_iteration)
{
    using namespace mercury;

    if (!checkpoint_path.empty()) {
        state::Checkpoint checkpoint;
        std::string error;
        if (!state::loadCheckpointFile(checkpoint_path, &checkpoint,
                                       &error) ||
            !state::restoreSolver(solver, checkpoint, &error)) {
            fatal("cannot restore '", checkpoint_path, "': ", error);
        }
        inform("mercury_trace: checkpoint restored at iteration ",
               solver.iterations());
    }

    replica::WalReadResult wal;
    std::string error;
    if (!replica::readWalFile(wal_path, &wal, &error))
        fatal("cannot read WAL '", wal_path, "': ", error);
    if (!wal.tailOk)
        warn("mercury_trace: WAL tail damaged (", wal.tailError,
             "); replaying the ", wal.records.size(),
             " record(s) before the tear");

    // handleReplicated applies a decoded mutation exactly the way the
    // live daemon's queue drain did, with no reply machinery.
    proto::SolverService service(solver);
    replica::ReplayStats stats;
    bool ok = replica::replayWal(
        solver, wal,
        [&](const replica::WalRecord &record) {
            auto message = proto::decodeWalMutation(
                record.payload.data(), record.payload.size());
            if (message)
                service.handleReplicated(*message);
            else
                warn("mercury_trace: undecodable mutation at sequence ",
                     record.sequence, ", skipping");
        },
        replay_to_iteration < 0 ? 0
                                : uint64_t(replay_to_iteration),
        &stats, &error);
    if (!ok)
        fatal("replay failed: ", error);
    inform("mercury_trace: replayed ", stats.applied, " mutation(s), ",
           stats.skipped, " skipped, ", stats.markers,
           " marker(s); final iteration ", stats.finalIteration);

    solver.saveState(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mercury;

    FlagSet flags("mercury_trace", "offline trace-driven emulation");
    flags.defineString("config", "configs/table1_server.dot",
                       "modified-dot config file");
    flags.defineString("trace", "", "utilization trace CSV");
    flags.defineDouble("duration", -1.0,
                       "emulated seconds (default: trace duration)");
    flags.defineString("record", "all",
                       "comma-separated machine.node list, or 'all'");
    flags.defineString("replicate", "",
                       "clone a traced machine: src=dst1+dst2+...");
    flags.defineDouble("iteration-seconds", 1.0,
                       "emulated seconds per solver iteration");
    flags.defineInt("threads", 0,
                    "machine-stepping executors (0 = all hardware "
                    "threads, 1 = serial)");
    flags.defineBool("graphviz", false,
                     "dump the first machine as Graphviz dot and exit");
    flags.defineString("checkpoint-path", "",
                       "save the solver state here when the run ends");
    flags.defineBool("resume", false,
                     "restore --checkpoint-path first and continue the "
                     "trace from where that run stopped");
    flags.defineString("replay-wal", "",
                       "replay this mutation WAL and dump the final "
                       "solver state (no trace run)");
    flags.defineString("replay-checkpoint", "",
                       "restore this checkpoint before replaying the "
                       "WAL (the generation's base state)");
    flags.defineInt("replay-to", -1,
                    "keep stepping to this iteration after the WAL's "
                    "last record (negative: stop at the last record)");
    if (!flags.parse(argc, argv))
        return 0;

    core::ConfigSpec config =
        graphdot::loadConfigFile(flags.getString("config"));
    if (config.machines.empty())
        fatal("config has no machines");

    if (flags.getBool("graphviz")) {
        graphdot::writeGraphviz(std::cout, config.machines.front());
        return 0;
    }

    if (!flags.getString("replay-wal").empty()) {
        core::SolverConfig replay_config;
        replay_config.iterationSeconds =
            flags.getDouble("iteration-seconds");
        long long replay_threads = flags.getInt("threads");
        if (replay_threads < 0)
            fatal("--threads must be >= 0");
        replay_config.threads = static_cast<unsigned>(replay_threads);
        core::Solver replay_solver(replay_config);
        for (const core::MachineSpec &machine : config.machines)
            replay_solver.addMachine(machine);
        if (config.room)
            replay_solver.setRoom(*config.room);
        return replayWalFile(replay_solver,
                             flags.getString("replay-wal"),
                             flags.getString("replay-checkpoint"),
                             flags.getInt("replay-to"));
    }

    if (flags.getString("trace").empty())
        fatal("--trace is required (CSV: time_s,machine,component,util)");
    core::UtilizationTrace trace =
        core::UtilizationTrace::loadFile(flags.getString("trace"));

    std::string replicate = flags.getString("replicate");
    if (!replicate.empty()) {
        auto parts = split(replicate, '=');
        if (parts.size() != 2)
            fatal("--replicate wants src=dst1+dst2+...");
        std::map<std::string, std::vector<std::string>> mapping;
        mapping[parts[0]] = split(parts[1], '+');
        trace = trace.replicated(mapping);
    }

    core::SolverConfig solver_config;
    solver_config.iterationSeconds = flags.getDouble("iteration-seconds");
    long long threads = flags.getInt("threads");
    if (threads < 0)
        fatal("--threads must be >= 0");
    solver_config.threads = static_cast<unsigned>(threads);
    core::Solver solver(solver_config);
    for (const core::MachineSpec &machine : config.machines)
        solver.addMachine(machine);
    if (config.room)
        solver.setRoom(*config.room);

    std::string checkpoint_path = flags.getString("checkpoint-path");
    if (flags.getBool("resume")) {
        if (checkpoint_path.empty())
            fatal("--resume needs --checkpoint-path");
        state::Checkpoint checkpoint;
        std::string error;
        if (!state::loadCheckpointFile(checkpoint_path, &checkpoint,
                                       &error) ||
            !state::restoreSolver(solver, checkpoint, &error)) {
            fatal("cannot resume from '", checkpoint_path, "': ", error);
        }
        inform("mercury_trace: resumed at ", solver.emulatedSeconds(),
               " emulated seconds");
    }

    core::TraceRunner runner(solver, trace);
    std::string record = flags.getString("record");
    if (record == "all") {
        runner.recordAll();
    } else {
        for (const std::string &item : split(record, ',')) {
            auto dot = item.find('.');
            if (dot == std::string::npos)
                fatal("--record items look like machine.node, got '",
                      item, "'");
            runner.record(item.substr(0, dot), item.substr(dot + 1));
        }
    }

    runner.run(flags.getDouble("duration"));
    runner.writeCsv(std::cout);

    if (!checkpoint_path.empty()) {
        std::string error;
        if (!state::saveCheckpointFile(checkpoint_path,
                                       state::captureSolver(solver),
                                       &error)) {
            fatal("cannot save checkpoint '", checkpoint_path, "': ",
                  error);
        }
    }
    return 0;
}
