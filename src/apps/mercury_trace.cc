/**
 * @file
 * mercury_trace: the offline mode. Drives a solver from a utilization
 * trace file and writes the full usage+temperature time series as CSV
 * — "the end result is another file containing all the usage and
 * temperature information for each component in the system over time"
 * (Section 2.3). --replicate clones one traced machine across many,
 * the paper's trick for emulating large clusters.
 *
 *   mercury_trace --config configs/table1_server.dot \
 *                 --trace load.csv --duration 5000 > temps.csv
 */

#include <iostream>

#include "core/solver.hh"
#include "core/trace.hh"
#include "graphdot/parser.hh"
#include "graphdot/writer.hh"
#include "state/checkpoint.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/strings.hh"

int
main(int argc, char **argv)
{
    using namespace mercury;

    FlagSet flags("mercury_trace", "offline trace-driven emulation");
    flags.defineString("config", "configs/table1_server.dot",
                       "modified-dot config file");
    flags.defineString("trace", "", "utilization trace CSV");
    flags.defineDouble("duration", -1.0,
                       "emulated seconds (default: trace duration)");
    flags.defineString("record", "all",
                       "comma-separated machine.node list, or 'all'");
    flags.defineString("replicate", "",
                       "clone a traced machine: src=dst1+dst2+...");
    flags.defineDouble("iteration-seconds", 1.0,
                       "emulated seconds per solver iteration");
    flags.defineInt("threads", 0,
                    "machine-stepping executors (0 = all hardware "
                    "threads, 1 = serial)");
    flags.defineBool("graphviz", false,
                     "dump the first machine as Graphviz dot and exit");
    flags.defineString("checkpoint-path", "",
                       "save the solver state here when the run ends");
    flags.defineBool("resume", false,
                     "restore --checkpoint-path first and continue the "
                     "trace from where that run stopped");
    if (!flags.parse(argc, argv))
        return 0;

    core::ConfigSpec config =
        graphdot::loadConfigFile(flags.getString("config"));
    if (config.machines.empty())
        fatal("config has no machines");

    if (flags.getBool("graphviz")) {
        graphdot::writeGraphviz(std::cout, config.machines.front());
        return 0;
    }

    if (flags.getString("trace").empty())
        fatal("--trace is required (CSV: time_s,machine,component,util)");
    core::UtilizationTrace trace =
        core::UtilizationTrace::loadFile(flags.getString("trace"));

    std::string replicate = flags.getString("replicate");
    if (!replicate.empty()) {
        auto parts = split(replicate, '=');
        if (parts.size() != 2)
            fatal("--replicate wants src=dst1+dst2+...");
        std::map<std::string, std::vector<std::string>> mapping;
        mapping[parts[0]] = split(parts[1], '+');
        trace = trace.replicated(mapping);
    }

    core::SolverConfig solver_config;
    solver_config.iterationSeconds = flags.getDouble("iteration-seconds");
    long long threads = flags.getInt("threads");
    if (threads < 0)
        fatal("--threads must be >= 0");
    solver_config.threads = static_cast<unsigned>(threads);
    core::Solver solver(solver_config);
    for (const core::MachineSpec &machine : config.machines)
        solver.addMachine(machine);
    if (config.room)
        solver.setRoom(*config.room);

    std::string checkpoint_path = flags.getString("checkpoint-path");
    if (flags.getBool("resume")) {
        if (checkpoint_path.empty())
            fatal("--resume needs --checkpoint-path");
        state::Checkpoint checkpoint;
        std::string error;
        if (!state::loadCheckpointFile(checkpoint_path, &checkpoint,
                                       &error) ||
            !state::restoreSolver(solver, checkpoint, &error)) {
            fatal("cannot resume from '", checkpoint_path, "': ", error);
        }
        inform("mercury_trace: resumed at ", solver.emulatedSeconds(),
               " emulated seconds");
    }

    core::TraceRunner runner(solver, trace);
    std::string record = flags.getString("record");
    if (record == "all") {
        runner.recordAll();
    } else {
        for (const std::string &item : split(record, ',')) {
            auto dot = item.find('.');
            if (dot == std::string::npos)
                fatal("--record items look like machine.node, got '",
                      item, "'");
            runner.record(item.substr(0, dot), item.substr(dot + 1));
        }
    }

    runner.run(flags.getDouble("duration"));
    runner.writeCsv(std::cout);

    if (!checkpoint_path.empty()) {
        std::string error;
        if (!state::saveCheckpointFile(checkpoint_path,
                                       state::captureSolver(solver),
                                       &error)) {
            fatal("cannot save checkpoint '", checkpoint_path, "': ",
                  error);
        }
    }
    return 0;
}
