/**
 * @file
 * mercury_solverd: the solver daemon. Loads the machine/room graphs
 * from a modified-dot config file, then serves sensor reads, fiddle
 * commands and utilization updates over UDP while stepping the
 * emulation once per second (paper Section 2.3).
 *
 *   mercury_solverd --config configs/table1_cluster.dot --port 8367
 */

#include <csignal>

#include "core/solver.hh"
#include "graphdot/parser.hh"
#include "proto/solver_daemon.hh"
#include "telemetry/layout.hh"
#include "util/fileio.hh"
#include "util/flags.hh"
#include "util/logging.hh"

namespace {

mercury::proto::SolverDaemon *runningDaemon = nullptr;

void
handleSignal(int)
{
    if (runningDaemon)
        runningDaemon->stop();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mercury;

    FlagSet flags("mercury_solverd",
                  "Mercury temperature-emulation solver daemon");
    flags.defineString("config", "configs/table1_server.dot",
                       "modified-dot config file (machines + room)");
    flags.defineInt("port", 8367, "UDP port to listen on");
    flags.defineInt("serve-threads", 1,
                    "request-plane serve workers, each on its own "
                    "SO_REUSEPORT socket (1 = classic single receiver)");
    flags.defineDouble("iteration-seconds", 1.0,
                       "emulated/wall seconds per solver iteration");
    flags.defineDouble("stats-log-seconds", 60.0,
                       "seconds between packet-health log lines "
                       "(needs --verbose; 0 disables)");
    flags.defineInt("threads", 0,
                    "machine-stepping executors (0 = all hardware "
                    "threads, 1 = serial)");
    flags.defineDouble("quiescence-epsilon", 0.0,
                       "freeze machines whose max per-node |dT| and "
                       "projected drift stay under this many degC "
                       "(0 = classic all-machines stepping)");
    flags.defineInt("quiescence-hold", 3,
                    "consecutive calm iterations before freezing");
    flags.defineInt("quiescence-refresh", 64,
                    "forced re-step period for frozen machines "
                    "(iterations; 0 disables the refresh)");
    flags.defineString("shm-name", "",
                       "shared-memory telemetry segment name "
                       "(default: /mercury.<port>)");
    flags.defineBool("no-shm", false,
                     "disable the shared-memory telemetry plane");
    flags.defineString("checkpoint-path", "",
                       "crash-consistent checkpoint file (restored at "
                       "boot; empty disables checkpointing)");
    flags.defineDouble("checkpoint-seconds", 30.0,
                       "seconds between periodic checkpoint saves "
                       "(0 disables the timer)");
    flags.defineString("port-file", "",
                       "write the bound UDP port to this file "
                       "(supervisors and tests using --port 0)");
    flags.defineString("metrics-path", "",
                       "write a Prometheus-style metrics text file here "
                       "periodically (atomic rename; empty disables)");
    flags.defineDouble("metrics-seconds", 10.0,
                       "seconds between metrics file writes");
    flags.defineString("wal-path", "",
                       "deterministic mutation WAL file (replayable "
                       "with mercury_trace --replay-wal; empty "
                       "disables)");
    flags.defineInt("replication-port", -1,
                    "replication listener port for hot standbys "
                    "(0 = ephemeral; negative disables)");
    flags.defineString("replica-of", "",
                       "host:port of a primary's replication listener; "
                       "run as its read-only hot standby");
    flags.defineDouble("lease-seconds", 3.0,
                       "standby promotes itself after the primary has "
                       "been silent this long");
    flags.defineDouble("replica-heartbeat-seconds", 0.5,
                       "heartbeat period toward standbys (keep well "
                       "under the lease)");
    flags.defineInt("hash-iterations", 32,
                    "iterations between primary/standby state-hash "
                    "checks (0 disables)");
    flags.defineDouble("standby-grace-seconds", 0.0,
                       "standby that NEVER reached the primary promotes "
                       "after this long (0 = wait for contact forever)");
    flags.defineBool("verbose", false, "enable info logging");
    if (!flags.parse(argc, argv))
        return 0;
    if (flags.getBool("verbose"))
        setLogLevel(LogLevel::Info);

    core::ConfigSpec config =
        graphdot::loadConfigFile(flags.getString("config"));
    if (config.machines.empty())
        fatal("config has no machines");

    core::SolverConfig solver_config;
    solver_config.iterationSeconds = flags.getDouble("iteration-seconds");
    long long threads = flags.getInt("threads");
    if (threads < 0)
        fatal("--threads must be >= 0");
    solver_config.threads = static_cast<unsigned>(threads);
    double q_eps = flags.getDouble("quiescence-epsilon");
    long long q_hold = flags.getInt("quiescence-hold");
    long long q_refresh = flags.getInt("quiescence-refresh");
    if (q_eps < 0.0)
        fatal("--quiescence-epsilon must be >= 0");
    if (q_hold < 1)
        fatal("--quiescence-hold must be >= 1");
    if (q_refresh < 0)
        fatal("--quiescence-refresh must be >= 0");
    solver_config.quiescenceEpsilon = q_eps;
    solver_config.quiescenceHoldIterations = static_cast<unsigned>(q_hold);
    solver_config.quiescenceRefreshIterations =
        static_cast<unsigned>(q_refresh);
    core::Solver solver(solver_config);
    for (const core::MachineSpec &machine : config.machines)
        solver.addMachine(machine);
    if (config.room)
        solver.setRoom(*config.room);

    proto::SolverDaemon::Config daemon_config;
    daemon_config.port = static_cast<uint16_t>(flags.getInt("port"));
    long long serve_threads = flags.getInt("serve-threads");
    if (serve_threads < 1)
        fatal("--serve-threads must be >= 1");
    daemon_config.serveThreads = static_cast<unsigned>(serve_threads);
    daemon_config.iterationSeconds = flags.getDouble("iteration-seconds");
    daemon_config.statsLogSeconds = flags.getDouble("stats-log-seconds");
    if (!flags.getBool("no-shm")) {
        std::string shm_name = flags.getString("shm-name");
        daemon_config.shmName =
            shm_name.empty()
                ? telemetry::defaultShmName(daemon_config.port)
                : telemetry::normalizeShmName(shm_name);
    }
    daemon_config.checkpointPath = flags.getString("checkpoint-path");
    daemon_config.checkpointSeconds =
        flags.getDouble("checkpoint-seconds");
    daemon_config.metricsPath = flags.getString("metrics-path");
    daemon_config.metricsSeconds = flags.getDouble("metrics-seconds");
    daemon_config.walPath = flags.getString("wal-path");
    long long replication_port = flags.getInt("replication-port");
    if (replication_port > 65535)
        fatal("--replication-port must be <= 65535");
    daemon_config.replicationPort =
        replication_port < 0 ? -1 : static_cast<int>(replication_port);
    daemon_config.replicaOf = flags.getString("replica-of");
    daemon_config.leaseSeconds = flags.getDouble("lease-seconds");
    if (daemon_config.leaseSeconds <= 0.0)
        fatal("--lease-seconds must be > 0");
    daemon_config.replicaHeartbeatSeconds =
        flags.getDouble("replica-heartbeat-seconds");
    if (daemon_config.replicaHeartbeatSeconds <= 0.0)
        fatal("--replica-heartbeat-seconds must be > 0");
    long long hash_iterations = flags.getInt("hash-iterations");
    if (hash_iterations < 0)
        fatal("--hash-iterations must be >= 0");
    daemon_config.hashIterations =
        static_cast<unsigned>(hash_iterations);
    daemon_config.standbyGraceSeconds =
        flags.getDouble("standby-grace-seconds");
    daemon_config.portFile = flags.getString("port-file");
    proto::SolverDaemon daemon(solver, daemon_config);

    // A primary advertises itself right away; a standby leaves the
    // file naming the primary and only rewrites it at promotion (the
    // daemon does that atomically) — flipping it at boot would point
    // clients at a read-only shadow.
    std::string port_file = flags.getString("port-file");
    if (!port_file.empty() && daemon_config.replicaOf.empty()) {
        std::string error;
        if (!atomicWriteFile(port_file,
                             std::to_string(daemon.port()) + "\n",
                             &error))
            fatal("cannot write --port-file ", port_file, ": ", error);
    }

    runningDaemon = &daemon;
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);

    inform("mercury_solverd: ", config.machines.size(),
           " machine(s), listening on UDP port ", daemon.port());
    daemon.run();
    inform("mercury_solverd: ", daemon.service().updatesApplied(),
           " updates, ", daemon.service().sensorReads(), " sensor reads, ",
           daemon.service().fiddlesApplied(), " fiddles");
    inform("mercury_solverd: packet health: ",
           daemon.service().statsLine());
    return 0;
}
