/**
 * @file
 * freon_clusterd: command-line driver for the Section 5 cluster
 * experiments. Picks a policy, a cluster size and emergency settings,
 * runs the deterministic experiment and emits the same CSV series the
 * paper's figures plot.
 *
 *   freon_clusterd --policy freon-ec --servers 4 --duration 2000 \
 *                  --paper-emergencies
 */

#include <csignal>
#include <iostream>

#include "freon/experiment.hh"
#include "util/csv.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace {

using namespace mercury;

volatile std::sig_atomic_t stopRequested = 0;

void
handleSignal(int)
{
    stopRequested = 1;
}

freon::PolicyKind
parsePolicy(const std::string &name)
{
    std::string low = toLower(name);
    if (low == "none")
        return freon::PolicyKind::None;
    if (low == "freon" || low == "base")
        return freon::PolicyKind::FreonBase;
    if (low == "traditional")
        return freon::PolicyKind::Traditional;
    if (low == "freon-ec" || low == "ec")
        return freon::PolicyKind::FreonEC;
    if (low == "two-stage" || low == "freon-two-stage")
        return freon::PolicyKind::FreonTwoStage;
    fatal("unknown policy '", name,
          "' (none | freon | traditional | freon-ec | two-stage)");
}

net::SensorFaultSpec::Mode
parseFaultMode(const std::string &name)
{
    std::string low = toLower(name);
    if (low == "stuck" || low == "stuck-at")
        return net::SensorFaultSpec::Mode::StuckAt;
    if (low == "spike")
        return net::SensorFaultSpec::Mode::Spike;
    if (low == "drift")
        return net::SensorFaultSpec::Mode::Drift;
    if (low == "dropout")
        return net::SensorFaultSpec::Mode::Dropout;
    fatal("unknown sensor fault mode '", name,
          "' (stuck-at | spike | drift | dropout)");
}

/** "m1.cpu:stuck-at:480" (stream:mode[:start[:end]]), comma-joined. */
void
parseSensorFaults(const std::string &text,
                  std::map<std::string, net::SensorFaultSpec> *out)
{
    for (const std::string &entry : split(text, ',')) {
        if (trim(entry).empty())
            continue;
        auto parts = split(trim(entry), ':');
        if (parts.size() < 2 || parts.size() > 4)
            fatal("--sensor-fault wants stream:mode[:start[:end]]");
        net::SensorFaultSpec spec;
        spec.mode = parseFaultMode(parts[1]);
        if (parts.size() > 2) {
            auto start = parseDouble(parts[2]);
            if (!start)
                fatal("--sensor-fault: bad start time '", parts[2], "'");
            spec.startSeconds = *start;
        }
        if (parts.size() > 3) {
            auto end = parseDouble(parts[3]);
            if (!end)
                fatal("--sensor-fault: bad end time '", parts[3], "'");
            spec.endSeconds = *end;
        }
        (*out)[parts[0]] = spec;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("freon_clusterd",
                  "run a Freon cluster experiment and emit its series");
    flags.defineString("policy", "freon",
                       "none | freon | traditional | freon-ec | "
                       "two-stage");
    flags.defineInt("servers", 4, "cluster size");
    flags.defineDouble("duration", 2000.0, "experiment length [s]");
    flags.defineBool("paper-emergencies", true,
                     "inject the Figure 11 inlet emergencies at 480 s");
    flags.defineString("emergency", "",
                       "extra emergency time:machine:inletC "
                       "(e.g. 600:m2:33)");
    flags.defineBool("dvfs", false, "enable per-CPU DVFS governors");
    flags.defineBool("variable-fans", false,
                     "enable temperature-driven fans");
    flags.defineBool("no-batched-reads", false,
                     "tempd polls one component per request instead of "
                     "one batched request per wake-up");
    flags.defineDouble("record-period", 10.0, "series sample period [s]");
    flags.defineBool("summary-only", false, "suppress the CSV series");
    flags.defineString("metrics-path", "",
                       "write the final metrics snapshot (Prometheus "
                       "text format) here when the run ends");
    flags.defineBool("sensor-guard", false,
                     "route tempd readings through the sensor trust "
                     "layer (fault detection, substitution, degraded "
                     "modes)");
    flags.defineString("sensor-fault", "",
                       "inject sensor faults: stream:mode[:start[:end]]"
                       " entries joined by commas, e.g. "
                       "m1.cpu:stuck-at:480,m2.cpu:spike:600");
    if (!flags.parse(argc, argv))
        return 0;

    freon::ExperimentConfig config;
    config.policy = parsePolicy(flags.getString("policy"));
    config.servers = static_cast<int>(flags.getInt("servers"));
    config.workload.duration = flags.getDouble("duration");
    config.recordPeriod = flags.getDouble("record-period");
    config.enableDvfs = flags.getBool("dvfs");
    config.enableVariableFans = flags.getBool("variable-fans");
    config.batchedReads = !flags.getBool("no-batched-reads");
    if (flags.getBool("paper-emergencies"))
        config.addPaperEmergencies();
    if (!flags.getString("emergency").empty()) {
        auto parts = split(flags.getString("emergency"), ':');
        if (parts.size() != 3)
            fatal("--emergency wants time:machine:inletC");
        auto time = parseDouble(parts[0]);
        auto temp = parseDouble(parts[2]);
        if (!time || !temp)
            fatal("--emergency wants numeric time and temperature");
        config.emergencies.push_back({*time, parts[1], *temp});
    }

    // A SIGINT/SIGTERM ends the run early but still flushes the series
    // and summary recorded so far (exit 0): an interrupted sweep keeps
    // its partial data.
    config.sensorGuard = flags.getBool("sensor-guard");
    if (!flags.getString("sensor-fault").empty())
        parseSensorFaults(flags.getString("sensor-fault"),
                          &config.sensorFaults);

    config.shouldStop = [] { return stopRequested != 0; };
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);

    config.metricsPath = flags.getString("metrics-path");

    freon::ExperimentResult result = freon::runExperiment(config);
    if (result.stoppedEarly)
        std::cerr << "freon_clusterd: interrupted, emitting partial "
                     "series\n";

    if (!flags.getBool("summary-only")) {
        std::vector<const TimeSeries *> series;
        for (const auto &[name, ts] : result.cpuTemperature)
            series.push_back(&ts);
        for (const auto &[name, ts] : result.cpuUtilization)
            series.push_back(&ts);
        series.push_back(&result.activeServers);
        series.push_back(&result.clusterPower);
        writeAlignedSeries(std::cout, series);
    }

    std::cerr << format(
        "policy=%s submitted=%llu completed=%llu dropped=%llu "
        "(%.2f%%)\n",
        flags.getString("policy").c_str(),
        static_cast<unsigned long long>(result.submitted),
        static_cast<unsigned long long>(result.completed),
        static_cast<unsigned long long>(result.dropped),
        100.0 * result.dropRate);
    std::cerr << format(
        "adjustments=%llu off=%llu on=%llu energy=%.0f J\n",
        static_cast<unsigned long long>(result.weightAdjustments),
        static_cast<unsigned long long>(result.serversTurnedOff),
        static_cast<unsigned long long>(result.serversTurnedOn),
        result.energyJoules);
    for (const auto &[name, peak] : result.peakCpuTemperature) {
        std::cerr << format("%s peak=%.2f C firstOverTh=%.0f s\n",
                            name.c_str(), peak,
                            result.firstTimeOverHigh.at(name));
    }
    if (config.sensorGuard) {
        std::cerr << format(
            "guard anomalies=%llu subst=%llu quarantines=%llu "
            "recoveries=%llu degraded=%llu failsafe=%llu\n",
            static_cast<unsigned long long>(result.guardAnomalies),
            static_cast<unsigned long long>(result.guardSubstitutions),
            static_cast<unsigned long long>(result.guardQuarantines),
            static_cast<unsigned long long>(result.guardRecoveries),
            static_cast<unsigned long long>(result.degradedReports),
            static_cast<unsigned long long>(
                result.failSafeApplications));
        for (const auto &[stream, at] : result.quarantinedAtSeconds) {
            std::cerr << format("guard %s quarantined at %.0f s\n",
                                stream.c_str(), at);
        }
    }
    return 0;
}
