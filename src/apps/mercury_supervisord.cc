/**
 * @file
 * mercury_supervisord: keeps one mercury_solverd alive. Spawns the
 * command after `--`, reaps it when it dies and restarts it with
 * exponential backoff, gives up on a crash loop, and probes `fiddle
 * stats` over UDP so a daemon that is alive-but-stuck (iteration
 * counter frozen) is killed and restarted like a dead one. Point the
 * child at a --checkpoint-path and every restart resumes from the
 * last consistent snapshot.
 *
 *   mercury_supervisord --solver-port 8367 -- \
 *       ./mercury_solverd --config configs/table1_cluster.dot \
 *       --port 8367 --checkpoint-path /var/lib/mercury/solver.ck
 */

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.hh"
#include "sensor/client.hh"
#include "state/supervisor.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace {

using namespace mercury;

volatile std::sig_atomic_t stopRequested = 0;

void
handleSignal(int)
{
    stopRequested = 1;
}

double
nowSeconds()
{
    static const auto start = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/** Sleep in slices so SIGINT/SIGTERM turns around quickly. */
void
interruptibleSleep(double seconds)
{
    double deadline = nowSeconds() + seconds;
    while (!stopRequested && nowSeconds() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
}

pid_t
spawnChild(const std::vector<std::string> &command)
{
    pid_t pid = ::fork();
    if (pid < 0)
        fatal("fork(): ", std::strerror(errno));
    if (pid == 0) {
        std::vector<char *> argv;
        argv.reserve(command.size() + 1);
        for (const std::string &arg : command)
            argv.push_back(const_cast<char *>(arg.c_str()));
        argv.push_back(nullptr);
        ::execvp(argv[0], argv.data());
        // Only reached when exec fails; the shell's "command not
        // found" status tells the supervisor this is hopeless.
        ::_exit(127);
    }
    return pid;
}

/** Pull the iteration counter out of a stats line ("it=<n> ..."). */
std::optional<uint64_t>
parseIterations(const std::string &stats)
{
    for (const std::string &field : splitWhitespace(stats)) {
        if (!startsWith(field, "it="))
            continue;
        auto value = parseInt(field.substr(3));
        if (value && *value >= 0)
            return static_cast<uint64_t>(*value);
        return std::nullopt;
    }
    return std::nullopt;
}

std::string
describeExit(int status)
{
    if (WIFEXITED(status))
        return "exit status " + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return "signal " + std::to_string(WTERMSIG(status));
    return "unknown status";
}

} // namespace

int
main(int argc, char **argv)
{
    // FlagSet treats unknown flags as fatal, so split the child's
    // command line off at `--` before parsing our own.
    std::vector<std::string> child_command;
    int own_argc = argc;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--") {
            own_argc = i;
            for (int j = i + 1; j < argc; ++j)
                child_command.push_back(argv[j]);
            break;
        }
    }

    FlagSet flags("mercury_supervisord",
                  "supervise a mercury_solverd: restart on crash or "
                  "stall (usage: mercury_supervisord [flags] -- "
                  "<solverd command>)");
    flags.defineString("solver-host", "127.0.0.1",
                       "host the supervised solver answers on");
    flags.defineInt("solver-port", 8367,
                    "UDP port the supervised solver answers on");
    flags.defineDouble("probe-seconds", 2.0,
                       "seconds between fiddle-stats liveness probes "
                       "(0 disables stall detection)");
    flags.defineDouble("stall-seconds", 20.0,
                       "kill the child when its iteration counter has "
                       "not advanced for this long");
    flags.defineDouble("initial-backoff", 0.5,
                       "seconds before the first restart");
    flags.defineDouble("max-backoff", 30.0, "restart backoff ceiling");
    flags.defineDouble("healthy-uptime", 30.0,
                       "uptime that resets the backoff ladder");
    flags.defineInt("crash-loop-threshold", 5,
                    "give up after this many exits inside the window");
    flags.defineDouble("crash-loop-window", 60.0,
                       "crash-loop detection window [s]");
    flags.defineInt("max-restarts", 0,
                    "stop after this many restarts (0 = unlimited)");
    flags.defineString("metrics-path", "",
                       "write a Prometheus-style metrics text file here "
                       "on every child event (empty disables)");
    flags.defineBool("verbose", false, "enable info logging");
    if (!flags.parse(own_argc, argv))
        return 0;
    if (flags.getBool("verbose"))
        setLogLevel(LogLevel::Info);

    if (child_command.empty())
        fatal("nothing to supervise: put the solverd command after --");

    state::SupervisorPolicy policy;
    policy.initialBackoffSeconds = flags.getDouble("initial-backoff");
    policy.maxBackoffSeconds = flags.getDouble("max-backoff");
    policy.healthyUptimeSeconds = flags.getDouble("healthy-uptime");
    policy.crashLoopThreshold =
        static_cast<int>(flags.getInt("crash-loop-threshold"));
    policy.crashLoopWindowSeconds = flags.getDouble("crash-loop-window");
    state::RestartTracker tracker(policy);

    metrics::Registry &registry = metrics::Registry::global();
    tracker.setRestartCounter(registry.counter(
        "supervisor_restarts_total", "child exits seen (each leads to "
                                     "a restart unless we give up)"));
    metrics::Counter *stall_kills = registry.counter(
        "supervisor_stall_kills_total",
        "children killed because their iteration counter froze");
    metrics::CallbackGuard backoff_guard;
    backoff_guard.add(registry, "supervisor_backoff_seconds",
                      "the delay the next restart would wait",
                      [&tracker] {
                          return tracker.currentBackoffSeconds();
                      });
    std::string metrics_path = flags.getString("metrics-path");
    auto write_metrics = [&] {
        if (!metrics_path.empty())
            metrics::writeTextFile(registry, metrics_path);
    };

    double probe_seconds = flags.getDouble("probe-seconds");
    double stall_seconds = flags.getDouble("stall-seconds");
    state::StallDetector stall(stall_seconds);
    std::unique_ptr<sensor::SensorClient> probe;
    if (probe_seconds > 0.0) {
        probe = std::make_unique<sensor::SensorClient>(
            std::make_unique<sensor::UdpTransport>(
                flags.getString("solver-host"),
                static_cast<uint16_t>(flags.getInt("solver-port"))),
            "supervisor");
    }
    long long max_restarts = flags.getInt("max-restarts");

    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);

    while (!stopRequested) {
        double spawned_at = nowSeconds();
        pid_t pid = spawnChild(child_command);
        inform("mercury_supervisord: spawned '", child_command[0],
               "' as pid ", pid);
        write_metrics();
        stall.reset();
        double last_responsive = spawned_at;
        double next_probe = spawned_at + probe_seconds;
        int status = 0;
        bool reaped = false;
        bool killed_for_stall = false;

        while (!stopRequested) {
            pid_t got = ::waitpid(pid, &status, WNOHANG);
            if (got < 0)
                fatal("waitpid(", pid, "): ", std::strerror(errno));
            if (got == pid) {
                reaped = true;
                break;
            }
            double now = nowSeconds();
            if (probe && now >= next_probe) {
                auto [ok, reply] = probe->fiddle("stats");
                if (ok) {
                    last_responsive = now;
                    if (auto iterations = parseIterations(reply))
                        stall.noteProgress(*iterations, now);
                }
                next_probe = now + probe_seconds;
            }
            if (probe && stall_seconds > 0.0 &&
                (stall.stalled(now) ||
                 now - last_responsive > stall_seconds)) {
                warn("mercury_supervisord: pid ", pid,
                     " is stuck (no progress for ", stall_seconds,
                     " s), killing it");
                ::kill(pid, SIGKILL);
                while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
                }
                reaped = true;
                killed_for_stall = true;
                stall_kills->inc();
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }

        if (stopRequested) {
            if (!reaped) {
                // Forward the shutdown so the child writes its final
                // checkpoint, then wait for it.
                ::kill(pid, SIGTERM);
                while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
                }
            }
            inform("mercury_supervisord: shutting down after ",
                   tracker.restarts(), " restart(s)");
            write_metrics();
            return 0;
        }

        double now = nowSeconds();
        double uptime = now - spawned_at;
        if (!killed_for_stall && WIFEXITED(status) &&
            WEXITSTATUS(status) == 0) {
            inform("mercury_supervisord: child exited cleanly, done");
            return 0;
        }
        if (WIFEXITED(status) && WEXITSTATUS(status) == 127)
            fatal("mercury_supervisord: cannot exec '", child_command[0],
                  "'");

        double delay = tracker.onExit(now, uptime);
        if (tracker.crashLooping(now)) {
            fatal("mercury_supervisord: crash loop (",
                  policy.crashLoopThreshold, " exits within ",
                  policy.crashLoopWindowSeconds, " s), giving up");
        }
        if (max_restarts > 0 &&
            tracker.restarts() >= static_cast<uint64_t>(max_restarts)) {
            fatal("mercury_supervisord: --max-restarts ", max_restarts,
                  " reached, giving up");
        }
        warn("mercury_supervisord: pid ", pid, " died (",
             describeExit(status), ") after ", uptime,
             " s; restarting in ", delay, " s");
        write_metrics();
        interruptibleSleep(delay);
    }
    return 0;
}
