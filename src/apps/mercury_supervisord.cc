/**
 * @file
 * mercury_supervisord: keeps one mercury_solverd alive. Spawns the
 * command after `--`, reaps it when it dies and restarts it with
 * exponential backoff, gives up on a crash loop, and probes `fiddle
 * stats` over UDP so a daemon that is alive-but-stuck (iteration
 * counter frozen) is killed and restarted like a dead one. Point the
 * child at a --checkpoint-path and every restart resumes from the
 * last consistent snapshot.
 *
 *   mercury_supervisord --solver-port 8367 -- \
 *       ./mercury_solverd --config configs/table1_cluster.dot \
 *       --port 8367 --checkpoint-path /var/lib/mercury/solver.ck
 *
 * HA pair mode: give it a primary command after `--` and a standby
 * command after `---` (plus --standby-solver-port and usually
 * --port-file). The supervisor watches the primary; when it dies or
 * stalls, it flips the port file to the standby — which promotes
 * itself via the replication lease — and NEVER restarts the old
 * primary (restarting it as a primary again would split the brain;
 * see docs/operations.md). If the promoted child later dies it is
 * restarted with the standby command, whose --standby-grace-seconds
 * lets it promote again with no primary around.
 */

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.hh"
#include "sensor/client.hh"
#include "state/supervisor.hh"
#include "util/fileio.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace {

using namespace mercury;

volatile std::sig_atomic_t stopRequested = 0;

void
handleSignal(int)
{
    stopRequested = 1;
}

double
nowSeconds()
{
    static const auto start = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/** Sleep in slices so SIGINT/SIGTERM turns around quickly. */
void
interruptibleSleep(double seconds)
{
    double deadline = nowSeconds() + seconds;
    while (!stopRequested && nowSeconds() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
}

pid_t
spawnChild(const std::vector<std::string> &command)
{
    pid_t pid = ::fork();
    if (pid < 0)
        fatal("fork(): ", std::strerror(errno));
    if (pid == 0) {
        std::vector<char *> argv;
        argv.reserve(command.size() + 1);
        for (const std::string &arg : command)
            argv.push_back(const_cast<char *>(arg.c_str()));
        argv.push_back(nullptr);
        ::execvp(argv[0], argv.data());
        // Only reached when exec fails; the shell's "command not
        // found" status tells the supervisor this is hopeless.
        ::_exit(127);
    }
    return pid;
}

/** Pull the iteration counter out of a stats line ("it=<n> ..."). */
std::optional<uint64_t>
parseIterations(const std::string &stats)
{
    for (const std::string &field : splitWhitespace(stats)) {
        if (!startsWith(field, "it="))
            continue;
        auto value = parseInt(field.substr(3));
        if (value && *value >= 0)
            return static_cast<uint64_t>(*value);
        return std::nullopt;
    }
    return std::nullopt;
}

std::string
describeExit(int status)
{
    if (WIFEXITED(status))
        return "exit status " + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return "signal " + std::to_string(WTERMSIG(status));
    return "unknown status";
}

std::unique_ptr<sensor::SensorClient>
makeProbe(const std::string &host, uint16_t port)
{
    return std::make_unique<sensor::SensorClient>(
        std::make_unique<sensor::UdpTransport>(host, port), "supervisor");
}

/**
 * Supervise a primary/standby solverd pair. Returns like main().
 */
int
runHaPair(FlagSet &flags, const std::vector<std::string> &primary_command,
          const std::vector<std::string> &standby_command)
{
    double probe_seconds = flags.getDouble("probe-seconds");
    double stall_seconds = flags.getDouble("stall-seconds");
    std::string host = flags.getString("solver-host");
    uint16_t primary_port =
        static_cast<uint16_t>(flags.getInt("solver-port"));
    long long standby_port_value = flags.getInt("standby-solver-port");
    if (standby_port_value <= 0 || standby_port_value > 65535)
        fatal("HA pair mode needs --standby-solver-port (the standby's "
              "UDP service port)");
    uint16_t standby_port = static_cast<uint16_t>(standby_port_value);
    std::string port_file = flags.getString("port-file");

    auto write_port_file = [&](uint16_t port) {
        if (port_file.empty())
            return;
        std::string error;
        if (!atomicWriteFile(port_file, std::to_string(port) + "\n",
                             &error))
            warn("mercury_supervisord: port file ", port_file,
                 " not updated: ", error);
        else
            inform("mercury_supervisord: port file ", port_file,
                   " -> port ", port);
    };

    state::SupervisorPolicy policy;
    policy.initialBackoffSeconds = flags.getDouble("initial-backoff");
    policy.maxBackoffSeconds = flags.getDouble("max-backoff");
    policy.healthyUptimeSeconds = flags.getDouble("healthy-uptime");
    policy.crashLoopThreshold =
        static_cast<int>(flags.getInt("crash-loop-threshold"));
    policy.crashLoopWindowSeconds = flags.getDouble("crash-loop-window");
    state::RestartTracker tracker(policy);

    metrics::Registry &registry = metrics::Registry::global();
    tracker.setRestartCounter(registry.counter(
        "supervisor_restarts_total", "child exits seen (each leads to "
                                     "a restart unless we give up)"));
    metrics::Counter *failovers = registry.counter(
        "supervisor_failovers_total",
        "primary deaths that flipped traffic to the standby");

    pid_t primary_pid = spawnChild(primary_command);
    inform("mercury_supervisord: spawned primary '", primary_command[0],
           "' as pid ", primary_pid);
    pid_t standby_pid = spawnChild(standby_command);
    inform("mercury_supervisord: spawned standby '", standby_command[0],
           "' as pid ", standby_pid);
    write_port_file(primary_port);

    std::unique_ptr<sensor::SensorClient> probe;
    if (probe_seconds > 0.0)
        probe = makeProbe(host, primary_port);
    state::StallDetector stall(stall_seconds);
    double spawned_at = nowSeconds();
    double last_responsive = spawned_at;
    double next_probe = spawned_at + probe_seconds;
    bool failed_over = false;

    while (!stopRequested) {
        int status = 0;

        // Pre-failover, the standby is restarted freely: losing it
        // costs redundancy, not service.
        if (!failed_over && standby_pid > 0 &&
            ::waitpid(standby_pid, &status, WNOHANG) == standby_pid) {
            double delay = tracker.onExit(nowSeconds(), 0.0);
            warn("mercury_supervisord: standby pid ", standby_pid,
                 " died (", describeExit(status), "); restarting in ",
                 delay, " s");
            standby_pid = -1;
            interruptibleSleep(delay);
            if (stopRequested)
                break;
            standby_pid = spawnChild(standby_command);
            inform("mercury_supervisord: respawned standby as pid ",
                   standby_pid);
        }

        pid_t watched = failed_over ? standby_pid : primary_pid;
        bool watched_dead =
            ::waitpid(watched, &status, WNOHANG) == watched;
        double now = nowSeconds();
        if (!watched_dead && probe && now >= next_probe) {
            auto [ok, reply] = probe->fiddle("stats");
            if (ok) {
                last_responsive = now;
                if (auto iterations = parseIterations(reply))
                    stall.noteProgress(*iterations, now);
            }
            next_probe = now + probe_seconds;
        }
        if (!watched_dead && probe && stall_seconds > 0.0 &&
            (stall.stalled(now) ||
             now - last_responsive > stall_seconds)) {
            warn("mercury_supervisord: pid ", watched,
                 " is stuck (no progress for ", stall_seconds,
                 " s), killing it");
            ::kill(watched, SIGKILL);
            while (::waitpid(watched, &status, 0) < 0 && errno == EINTR) {
            }
            watched_dead = true;
        }

        if (watched_dead) {
            if (!failed_over) {
                warn("mercury_supervisord: primary pid ", primary_pid,
                     " is gone (", describeExit(status),
                     "); failing over to the standby on port ",
                     standby_port);
                failovers->inc();
                failed_over = true;
                primary_pid = -1;
                // The old primary is never restarted: its lineage is
                // dead the moment the standby's lease expires, and
                // bringing it back as a primary would split the brain.
                write_port_file(standby_port);
                if (probe_seconds > 0.0)
                    probe = makeProbe(host, standby_port);
            } else {
                double uptime = now - spawned_at;
                double delay = tracker.onExit(now, uptime);
                if (tracker.crashLooping(now))
                    fatal("mercury_supervisord: crash loop (",
                          policy.crashLoopThreshold, " exits within ",
                          policy.crashLoopWindowSeconds,
                          " s), giving up");
                warn("mercury_supervisord: promoted pid ", watched,
                     " died (", describeExit(status), ") after ", uptime,
                     " s; restarting in ", delay, " s");
                interruptibleSleep(delay);
                if (stopRequested)
                    break;
                // Restart with the *standby* command: with no primary
                // answering, --standby-grace-seconds promotes it from
                // its own checkpoint.
                spawned_at = nowSeconds();
                standby_pid = spawnChild(standby_command);
                inform("mercury_supervisord: respawned as pid ",
                       standby_pid);
            }
            stall.reset();
            last_responsive = nowSeconds();
            next_probe = last_responsive + probe_seconds;
            continue;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    for (pid_t pid : {primary_pid, standby_pid}) {
        if (pid <= 0)
            continue;
        ::kill(pid, SIGTERM);
        int status = 0;
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
        }
    }
    inform("mercury_supervisord: shutting down (",
           failovers->value(), " failover(s))");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // FlagSet treats unknown flags as fatal, so split the child's
    // command line off at `--` before parsing our own. A second
    // separator `---` splits off a standby command (HA pair mode).
    std::vector<std::string> child_command;
    std::vector<std::string> standby_command;
    int own_argc = argc;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--") {
            own_argc = i;
            std::vector<std::string> *sink = &child_command;
            for (int j = i + 1; j < argc; ++j) {
                if (std::string(argv[j]) == "---") {
                    sink = &standby_command;
                    continue;
                }
                sink->push_back(argv[j]);
            }
            break;
        }
    }

    FlagSet flags("mercury_supervisord",
                  "supervise a mercury_solverd: restart on crash or "
                  "stall (usage: mercury_supervisord [flags] -- "
                  "<solverd command>)");
    flags.defineString("solver-host", "127.0.0.1",
                       "host the supervised solver answers on");
    flags.defineInt("solver-port", 8367,
                    "UDP port the supervised solver answers on");
    flags.defineInt("standby-solver-port", 0,
                    "UDP service port of the standby in HA pair mode "
                    "(command after ---)");
    flags.defineString("port-file", "",
                       "HA pair mode: file naming the live daemon's "
                       "port; rewritten atomically on failover");
    flags.defineDouble("probe-seconds", 2.0,
                       "seconds between fiddle-stats liveness probes "
                       "(0 disables stall detection)");
    flags.defineDouble("stall-seconds", 20.0,
                       "kill the child when its iteration counter has "
                       "not advanced for this long");
    flags.defineDouble("initial-backoff", 0.5,
                       "seconds before the first restart");
    flags.defineDouble("max-backoff", 30.0, "restart backoff ceiling");
    flags.defineDouble("healthy-uptime", 30.0,
                       "uptime that resets the backoff ladder");
    flags.defineInt("crash-loop-threshold", 5,
                    "give up after this many exits inside the window");
    flags.defineDouble("crash-loop-window", 60.0,
                       "crash-loop detection window [s]");
    flags.defineInt("max-restarts", 0,
                    "stop after this many restarts (0 = unlimited)");
    flags.defineString("metrics-path", "",
                       "write a Prometheus-style metrics text file here "
                       "on every child event (empty disables)");
    flags.defineBool("verbose", false, "enable info logging");
    if (!flags.parse(own_argc, argv))
        return 0;
    if (flags.getBool("verbose"))
        setLogLevel(LogLevel::Info);

    if (child_command.empty())
        fatal("nothing to supervise: put the solverd command after --");

    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);

    if (!standby_command.empty())
        return runHaPair(flags, child_command, standby_command);

    state::SupervisorPolicy policy;
    policy.initialBackoffSeconds = flags.getDouble("initial-backoff");
    policy.maxBackoffSeconds = flags.getDouble("max-backoff");
    policy.healthyUptimeSeconds = flags.getDouble("healthy-uptime");
    policy.crashLoopThreshold =
        static_cast<int>(flags.getInt("crash-loop-threshold"));
    policy.crashLoopWindowSeconds = flags.getDouble("crash-loop-window");
    state::RestartTracker tracker(policy);

    metrics::Registry &registry = metrics::Registry::global();
    tracker.setRestartCounter(registry.counter(
        "supervisor_restarts_total", "child exits seen (each leads to "
                                     "a restart unless we give up)"));
    metrics::Counter *stall_kills = registry.counter(
        "supervisor_stall_kills_total",
        "children killed because their iteration counter froze");
    metrics::CallbackGuard backoff_guard;
    backoff_guard.add(registry, "supervisor_backoff_seconds",
                      "the delay the next restart would wait",
                      [&tracker] {
                          return tracker.currentBackoffSeconds();
                      });
    std::string metrics_path = flags.getString("metrics-path");
    auto write_metrics = [&] {
        if (!metrics_path.empty())
            metrics::writeTextFile(registry, metrics_path);
    };

    double probe_seconds = flags.getDouble("probe-seconds");
    double stall_seconds = flags.getDouble("stall-seconds");
    state::StallDetector stall(stall_seconds);
    std::unique_ptr<sensor::SensorClient> probe;
    if (probe_seconds > 0.0) {
        probe = std::make_unique<sensor::SensorClient>(
            std::make_unique<sensor::UdpTransport>(
                flags.getString("solver-host"),
                static_cast<uint16_t>(flags.getInt("solver-port"))),
            "supervisor");
    }
    long long max_restarts = flags.getInt("max-restarts");

    while (!stopRequested) {
        double spawned_at = nowSeconds();
        pid_t pid = spawnChild(child_command);
        inform("mercury_supervisord: spawned '", child_command[0],
               "' as pid ", pid);
        write_metrics();
        stall.reset();
        double last_responsive = spawned_at;
        double next_probe = spawned_at + probe_seconds;
        int status = 0;
        bool reaped = false;
        bool killed_for_stall = false;

        while (!stopRequested) {
            pid_t got = ::waitpid(pid, &status, WNOHANG);
            if (got < 0)
                fatal("waitpid(", pid, "): ", std::strerror(errno));
            if (got == pid) {
                reaped = true;
                break;
            }
            double now = nowSeconds();
            if (probe && now >= next_probe) {
                auto [ok, reply] = probe->fiddle("stats");
                if (ok) {
                    last_responsive = now;
                    if (auto iterations = parseIterations(reply))
                        stall.noteProgress(*iterations, now);
                }
                next_probe = now + probe_seconds;
            }
            if (probe && stall_seconds > 0.0 &&
                (stall.stalled(now) ||
                 now - last_responsive > stall_seconds)) {
                warn("mercury_supervisord: pid ", pid,
                     " is stuck (no progress for ", stall_seconds,
                     " s), killing it");
                ::kill(pid, SIGKILL);
                while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
                }
                reaped = true;
                killed_for_stall = true;
                stall_kills->inc();
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }

        if (stopRequested) {
            if (!reaped) {
                // Forward the shutdown so the child writes its final
                // checkpoint, then wait for it.
                ::kill(pid, SIGTERM);
                while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
                }
            }
            inform("mercury_supervisord: shutting down after ",
                   tracker.restarts(), " restart(s)");
            write_metrics();
            return 0;
        }

        double now = nowSeconds();
        double uptime = now - spawned_at;
        if (!killed_for_stall && WIFEXITED(status) &&
            WEXITSTATUS(status) == 0) {
            inform("mercury_supervisord: child exited cleanly, done");
            return 0;
        }
        if (WIFEXITED(status) && WEXITSTATUS(status) == 127)
            fatal("mercury_supervisord: cannot exec '", child_command[0],
                  "'");

        double delay = tracker.onExit(now, uptime);
        if (tracker.crashLooping(now)) {
            fatal("mercury_supervisord: crash loop (",
                  policy.crashLoopThreshold, " exits within ",
                  policy.crashLoopWindowSeconds, " s), giving up");
        }
        if (max_restarts > 0 &&
            tracker.restarts() >= static_cast<uint64_t>(max_restarts)) {
            fatal("mercury_supervisord: --max-restarts ", max_restarts,
                  " reached, giving up");
        }
        warn("mercury_supervisord: pid ", pid, " died (",
             describeExit(status), ") after ", uptime,
             " s; restarting in ", delay, " s");
        write_metrics();
        interruptibleSleep(delay);
    }
    return 0;
}
