/**
 * @file
 * fiddle: the thermal-emergency tool (paper Section 2.3, Figure 4).
 * Sends one command to the solver, or replays a whole script with real
 * `sleep` pacing.
 *
 *   fiddle machine1 temperature inlet 30
 *   fiddle --script emergencies.fiddle
 *
 * The solver address comes from --solver (host:port) or the
 * MERCURY_SOLVER environment variable; default 127.0.0.1:8367.
 */

#include <cstdlib>
#include <chrono>
#include <iostream>
#include <thread>

#include "fiddle/script.hh"
#include "sensor/client.hh"
#include "sensor/sensor_api.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace {

using namespace mercury;

/** Parse "host:port" with a default port of 8367. */
std::pair<std::string, uint16_t>
parseSolverAddress(const std::string &spec)
{
    size_t colon = spec.rfind(':');
    if (colon == std::string::npos)
        return {spec, 8367};
    auto port = parseInt(spec.substr(colon + 1));
    if (!port || *port <= 0 || *port > 65535)
        fatal("bad solver address '", spec, "'");
    return {spec.substr(0, colon), static_cast<uint16_t>(*port)};
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("fiddle",
                  "inject thermal emergencies into a running solver");
    flags.defineString("solver", "",
                       "solver address host[:port] (default: "
                       "$MERCURY_SOLVER or 127.0.0.1:8367)");
    flags.defineString("script", "",
                       "replay a fiddle script (sleep lines pace in "
                       "real time)");
    flags.defineString("read", "",
                       "read one sensor (machine:component) through the "
                       "sensor library and print which path answered");
    if (!flags.parse(argc, argv))
        return 0;

    std::string address = flags.getString("solver");
    if (address.empty()) {
        const char *env = std::getenv("MERCURY_SOLVER");
        address = env ? env : "127.0.0.1:8367";
    }
    auto [host, port] = parseSolverAddress(address);

    if (!flags.getString("read").empty()) {
        std::string spec = flags.getString("read");
        size_t colon = spec.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= spec.size())
            fatal("--read wants machine:component");
        std::string machine = spec.substr(0, colon);
        std::string component = spec.substr(colon + 1);
        int sd = opensensor_for(host.c_str(), port, machine.c_str(),
                                component.c_str());
        if (sd < 0)
            fatal("opensensor_for failed for ", spec);
        float value = readsensor(sd);
        int path = sensorpath(sd);
        closesensor(sd);
        if (value != value) {
            std::cout << "error: read failed\n";
            return 1;
        }
        std::cout << machine << ':' << component << " = " << value
                  << " C (via "
                  << (path == MERCURY_SENSOR_PATH_SHM ? "shm" : "udp")
                  << ")\n";
        return 0;
    }

    sensor::SensorClient client(
        std::make_unique<sensor::UdpTransport>(host, port), "fiddle");

    if (!flags.getString("script").empty()) {
        fiddle::FiddleScript script =
            fiddle::FiddleScript::loadFile(flags.getString("script"));
        double clock = 0.0;
        for (const fiddle::TimedCommand &timed : script.commands()) {
            if (timed.time > clock) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(timed.time - clock));
                clock = timed.time;
            }
            auto [ok, message] = client.fiddle(timed.command.line);
            if (!ok)
                warn("'", timed.command.line, "': ", message);
        }
        return 0;
    }

    // `fiddle metrics`: pull the daemon's full metrics snapshot over
    // the paginated RPC (a plain FiddleReply truncates at one packet).
    if (flags.positional().size() == 1 &&
        flags.positional()[0] == "metrics") {
        auto text = client.metricsText();
        if (!text) {
            // Old daemons drop the unknown message type; the fiddle
            // command path at least returns their stats line.
            auto [ok, message] = client.fiddle("metrics");
            if (!ok)
                fatal("no metrics reply from the solver: ", message);
            std::cout << message << '\n';
            return 0;
        }
        std::cout << *text;
        return 0;
    }

    // `fiddle guard`: page out the sensor trust layer's full
    // per-stream health report (one FiddleReply carries ~96 bytes, so
    // the daemon serves it in "<nextOffset>|<chunk>" fragments).
    // `fiddle guard <stream>` falls through to the one-shot path and
    // prints that stream's single health line.
    if (flags.positional().size() == 1 &&
        flags.positional()[0] == "guard") {
        std::string text;
        size_t offset = 0;
        // 512 fragments bound the report at ~48 KB against a server
        // that never sends nextOffset 0.
        for (int page = 0; page < 512; ++page) {
            auto [ok, message] =
                client.fiddle(format("guard page %zu", offset));
            if (!ok)
                fatal("guard report failed: ", message);
            size_t bar = message.find('|');
            std::optional<long long> next;
            if (bar != std::string::npos)
                next = parseInt(message.substr(0, bar));
            if (!next || *next < 0)
                fatal("malformed guard page reply: ", message);
            text += message.substr(bar + 1);
            if (*next == 0)
                break;
            if (static_cast<size_t>(*next) <= offset)
                fatal("non-advancing guard page reply");
            offset = static_cast<size_t>(*next);
        }
        std::cout << text;
        return 0;
    }

    // One-shot: the positional arguments are the command itself.
    if (flags.positional().empty())
        fatal("usage: fiddle [--solver host:port] <machine> <property> "
              "...  (or --script <file>)");
    std::string line;
    for (const std::string &token : flags.positional()) {
        if (!line.empty())
            line += ' ';
        line += token;
    }
    auto [ok, message] = client.fiddle(line);
    std::cout << (ok ? "ok" : "error") << ": " << message << '\n';
    return ok ? 0 : 1;
}
