#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace mercury {
namespace sim {

EventId
EventQueue::schedule(SimTime when, Callback fn)
{
    if (!fn)
        MERCURY_PANIC("EventQueue::schedule: empty callback");
    EventId id = nextId_++;
    heap_.push(Entry{when, nextSeq_++, id, std::move(fn)});
    live_.insert(id);
    ++pending_;
    return id;
}

void
EventQueue::cancel(EventId id)
{
    // Only events that are still queued can be cancelled; ids of fired
    // events are no longer in the live set, so this is a no-op for them.
    if (live_.erase(id) == 0)
        return;
    cancelled_.insert(id);
    --pending_;
}

void
EventQueue::prune() const
{
    while (!heap_.empty() && cancelled_.count(heap_.top().id)) {
        cancelled_.erase(heap_.top().id);
        heap_.pop();
    }
}

bool
EventQueue::empty() const
{
    prune();
    return heap_.empty();
}

SimTime
EventQueue::nextTime() const
{
    prune();
    return heap_.empty() ? kTimeNever : heap_.top().when;
}

std::pair<SimTime, EventQueue::Callback>
EventQueue::pop()
{
    prune();
    if (heap_.empty())
        MERCURY_PANIC("EventQueue::pop on empty queue");
    Entry top = heap_.top();
    heap_.pop();
    live_.erase(top.id);
    --pending_;
    return {top.when, std::move(top.fn)};
}

} // namespace sim
} // namespace mercury
