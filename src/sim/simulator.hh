/**
 * @file
 * The discrete-event simulator driving all repeatable experiments.
 *
 * The paper runs Mercury against a *live* software stack in wall-clock
 * time; this reproduction additionally drives the identical solver and
 * policy code from a simulated clock, which preserves Mercury's
 * headline property (repeatability) while letting a 14 000-second
 * calibration run finish in milliseconds. Code that needs "now" takes
 * it from the Simulator, never from the OS.
 */

#ifndef MERCURY_SIM_SIMULATOR_HH
#define MERCURY_SIM_SIMULATOR_HH

#include <functional>
#include <string>
#include <unordered_map>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace mercury {
namespace sim {

/**
 * Event loop with a simulated clock and periodic-task support.
 */
class Simulator
{
  public:
    using Callback = std::function<void()>;
    /** Periodic body; return false to stop repeating. */
    using PeriodicFn = std::function<bool()>;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Current simulated time in fractional seconds. */
    double nowSeconds() const { return toSeconds(now_); }

    /** Schedule at an absolute time (must not be in the past). */
    EventId at(SimTime when, Callback fn);

    /** Schedule after a relative delay (>= 0). */
    EventId after(SimTime delay, Callback fn);

    /**
     * Schedule @p fn every @p period. The first firing is at
     * now + @p phase (default: one full period, matching how the
     * suite's daemons wake up *after* their first interval). The
     * returned id cancels the *chain* (valid across re-arms).
     */
    EventId every(SimTime period, PeriodicFn fn, SimTime phase = -1);

    /** Cancel an event or a periodic chain. */
    void cancel(EventId id);

    /** Run until the queue drains or the given time is passed. */
    void runUntil(SimTime deadline);

    /** Run until the queue drains completely. */
    void runToCompletion();

    /**
     * Ask the current runUntil()/runToCompletion() to return after the
     * event in flight. Safe from a signal handler's deferred path (an
     * event or periodic that polls a sig_atomic_t); the flag clears
     * when the next run starts.
     */
    void requestStop() { stopRequested_ = true; }
    bool stopRequested() const { return stopRequested_; }

    /** Process exactly one event if any is pending; returns false if idle. */
    bool step();

    /** Number of events executed so far. */
    uint64_t eventsRun() const { return eventsRun_; }

    /** Pending event count (cheap, approximate only under cancels). */
    size_t pendingEvents() const { return queue_.size(); }

  private:
    struct PeriodicState;

    EventQueue queue_;
    SimTime now_ = 0;
    uint64_t eventsRun_ = 0;
    bool stopRequested_ = false;

    // Periodic chains: map the stable chain id to the currently armed
    // underlying event so cancel() works between firings.
    std::unordered_map<EventId, EventId> chainArm_;
    EventId nextChainId_ = (1ULL << 62); // disjoint from EventQueue ids

    void armPeriodic(EventId chain, SimTime when, SimTime period,
                     PeriodicFn fn);
};

} // namespace sim
} // namespace mercury

#endif // MERCURY_SIM_SIMULATOR_HH
