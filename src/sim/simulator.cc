#include "sim/simulator.hh"

#include <unordered_map>

#include "util/logging.hh"

namespace mercury {
namespace sim {

EventId
Simulator::at(SimTime when, Callback fn)
{
    if (when < now_)
        MERCURY_PANIC("Simulator::at: time ", when, " is before now ", now_);
    return queue_.schedule(when, std::move(fn));
}

EventId
Simulator::after(SimTime delay, Callback fn)
{
    if (delay < 0)
        MERCURY_PANIC("Simulator::after: negative delay ", delay);
    return queue_.schedule(now_ + delay, std::move(fn));
}

EventId
Simulator::every(SimTime period, PeriodicFn fn, SimTime phase)
{
    if (period <= 0)
        MERCURY_PANIC("Simulator::every: non-positive period ", period);
    if (phase < 0)
        phase = period;
    EventId chain = nextChainId_++;
    armPeriodic(chain, now_ + phase, period, std::move(fn));
    return chain;
}

void
Simulator::armPeriodic(EventId chain, SimTime when, SimTime period,
                       PeriodicFn fn)
{
    EventId armed = queue_.schedule(when, [this, chain, when, period,
                                           fn = std::move(fn)]() mutable {
        // If the chain was cancelled after this event was popped but
        // before it ran, the map entry is gone; bail out.
        auto it = chainArm_.find(chain);
        if (it == chainArm_.end())
            return;
        bool keep = fn();
        if (keep) {
            armPeriodic(chain, when + period, period, std::move(fn));
        } else {
            chainArm_.erase(chain);
        }
    });
    chainArm_[chain] = armed;
}

void
Simulator::cancel(EventId id)
{
    auto it = chainArm_.find(id);
    if (it != chainArm_.end()) {
        queue_.cancel(it->second);
        chainArm_.erase(it);
        return;
    }
    queue_.cancel(id);
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    auto [when, fn] = queue_.pop();
    now_ = when;
    ++eventsRun_;
    fn();
    return true;
}

void
Simulator::runUntil(SimTime deadline)
{
    stopRequested_ = false;
    while (!stopRequested_ && !queue_.empty() &&
           queue_.nextTime() <= deadline) {
        step();
    }
    if (!stopRequested_ && now_ < deadline)
        now_ = deadline;
}

void
Simulator::runToCompletion()
{
    stopRequested_ = false;
    while (!stopRequested_ && step()) {
    }
}

} // namespace sim
} // namespace mercury
