/**
 * @file
 * The event queue at the heart of the discrete-event engine.
 *
 * Events at equal timestamps fire in insertion order (a monotonically
 * increasing sequence number breaks ties), which keeps multi-component
 * experiments deterministic.
 */

#ifndef MERCURY_SIM_EVENT_QUEUE_HH
#define MERCURY_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hh"

namespace mercury {
namespace sim {

/** Opaque handle used to cancel a scheduled event. */
using EventId = uint64_t;

/**
 * Time-ordered queue of callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p fn at absolute time @p when. Returns a cancel handle. */
    EventId schedule(SimTime when, Callback fn);

    /** Cancel a pending event; cancelling a fired event is a no-op. */
    void cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const;

    /** Number of live (non-cancelled) pending events. */
    size_t size() const { return pending_; }

    /** Timestamp of the earliest live event; kTimeNever when empty. */
    SimTime nextTime() const;

    /**
     * Pop and return the earliest live event. Must not be called when
     * empty(). The caller invokes the callback (the queue does not, so
     * that the simulator can update its clock first).
     */
    std::pair<SimTime, Callback> pop();

  private:
    struct Entry
    {
        SimTime when;
        uint64_t seq;
        EventId id;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled entries from the top of the heap. */
    void prune() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    mutable std::unordered_set<EventId> cancelled_;
    std::unordered_set<EventId> live_;
    uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    size_t pending_ = 0;
};

} // namespace sim
} // namespace mercury

#endif // MERCURY_SIM_EVENT_QUEUE_HH
