/**
 * @file
 * Simulated-time representation.
 *
 * Simulated time is an integer count of microseconds so that event
 * ordering is exact and runs are bit-for-bit repeatable (floating-point
 * accumulation of timestamps would eventually reorder ties).
 */

#ifndef MERCURY_SIM_TIME_HH
#define MERCURY_SIM_TIME_HH

#include <cstdint>

namespace mercury {
namespace sim {

/** Microseconds since the start of the simulation. */
using SimTime = int64_t;

/** Sentinel for "no deadline". */
inline constexpr SimTime kTimeNever = INT64_MAX;

inline constexpr SimTime
microseconds(int64_t us)
{
    return us;
}

inline constexpr SimTime
milliseconds(double ms)
{
    return static_cast<SimTime>(ms * 1e3);
}

inline constexpr SimTime
seconds(double s)
{
    return static_cast<SimTime>(s * 1e6);
}

inline constexpr SimTime
minutes(double m)
{
    return seconds(m * 60.0);
}

/** SimTime -> fractional seconds (for physics and reporting). */
inline constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) * 1e-6;
}

} // namespace sim
} // namespace mercury

#endif // MERCURY_SIM_TIME_HH
