#include "workload/generator.hh"

#include <cmath>

#include "util/logging.hh"

namespace mercury {
namespace workload {

double
peakRateForUtilization(double utilization, int servers,
                       const WorkloadConfig &config)
{
    double mean_cpu = config.cgiFraction * config.cgiCpuSeconds +
                      (1.0 - config.cgiFraction) * config.staticCpuSeconds;
    if (mean_cpu <= 0.0)
        MERCURY_PANIC("peakRateForUtilization: zero mean CPU demand");
    return utilization * static_cast<double>(servers) / mean_cpu;
}

WorkloadGenerator::WorkloadGenerator(sim::Simulator &simulator,
                                     lb::LoadBalancer &balancer,
                                     WorkloadConfig config)
    : simulator_(simulator), balancer_(balancer), config_(config),
      rng_(config.seed)
{
    if (config_.peakRate <= 0.0 || config_.duration <= 0.0)
        MERCURY_PANIC("WorkloadGenerator: bad config");
    // Thinning generates candidate arrivals at peakRate, so the rate
    // curve must never exceed it.
    if (config_.valleyRate > config_.peakRate)
        MERCURY_PANIC("WorkloadGenerator: valley rate ",
                      config_.valleyRate, " exceeds peak rate ",
                      config_.peakRate);
}

double
WorkloadGenerator::rateAt(double t) const
{
    // Flat-topped diurnal bump: full rate across the plateau, Gaussian
    // shoulders on both sides; repeats every cycle when configured.
    if (config_.cycleSeconds > 0.0)
        t = std::fmod(t, config_.cycleSeconds);
    double distance = std::abs(t - config_.peakTime) -
                      0.5 * config_.peakPlateauSeconds;
    if (distance < 0.0)
        distance = 0.0;
    double z = distance / config_.bumpWidth;
    return config_.valleyRate +
           (config_.peakRate - config_.valleyRate) *
               std::exp(-0.5 * z * z);
}

cluster::Request
WorkloadGenerator::makeRequest(double arrival_time)
{
    cluster::Request request;
    request.id = nextId_++;
    request.arrivalTime = arrival_time;
    if (rng_.chance(config_.cgiFraction)) {
        request.dynamic = true;
        request.cpuSeconds = config_.cgiCpuSeconds;
        request.diskSeconds = config_.cgiDiskSeconds;
    } else {
        request.dynamic = false;
        request.cpuSeconds = config_.staticCpuSeconds;
        request.diskSeconds = rng_.chance(config_.staticDiskProbability)
                                  ? config_.staticDiskSeconds
                                  : 0.0;
    }
    return request;
}

void
WorkloadGenerator::start()
{
    if (started_)
        MERCURY_PANIC("WorkloadGenerator: start() called twice");
    started_ = true;
    scheduleNext();
}

void
WorkloadGenerator::scheduleNext()
{
    // Inhomogeneous Poisson arrivals by thinning against the peak.
    double t = simulator_.nowSeconds();
    while (true) {
        t += rng_.exponential(config_.peakRate);
        if (t > config_.duration)
            return; // workload over
        if (rng_.uniform() <= rateAt(t) / config_.peakRate)
            break;
    }
    simulator_.at(sim::seconds(t), [this] {
        double now = simulator_.nowSeconds();
        ++generated_;
        balancer_.submit(makeRequest(now));
        scheduleNext();
    });
}

} // namespace workload
} // namespace mercury
