#include "freon/config.hh"

namespace mercury {
namespace freon {

FreonConfig
FreonConfig::paperDefaults()
{
    FreonConfig config;
    config.components["cpu"] = Thresholds{67.0, 64.0, 69.0};
    config.components["disk"] = Thresholds{65.0, 62.0, 67.0};
    return config;
}

FreonConfig
FreonConfig::table1Defaults()
{
    FreonConfig config;
    config.components["cpu"] = Thresholds{74.0, 71.0, 76.0};
    config.components["disk"] = Thresholds{65.0, 62.0, 67.0};
    return config;
}

} // namespace freon
} // namespace mercury
