#include "freon/tempd.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mercury {
namespace freon {

Tempd::Tempd(sim::Simulator &simulator, std::string machine,
             FreonConfig config, ReadFn read, SendFn send,
             UtilFn utilization)
    : simulator_(simulator), machine_(std::move(machine)),
      config_(std::move(config)), read_(std::move(read)),
      send_(std::move(send)), utilization_(std::move(utilization))
{
    if (!read_ || !send_)
        MERCURY_PANIC("Tempd: read and send callbacks are required");
    if (config_.components.empty())
        MERCURY_PANIC("Tempd: no components configured");
}

void
Tempd::setBatchedRead(ReadManyFn read_many)
{
    readMany_ = std::move(read_many);
}

void
Tempd::setGuard(guard::SensorGuard *guard)
{
    guard_ = guard;
}

void
Tempd::start()
{
    if (started_)
        MERCURY_PANIC("Tempd: start() called twice");
    started_ = true;
    simulator_.every(sim::seconds(config_.tempdPeriodSeconds), [this] {
        tick();
        return true;
    });
}

void
Tempd::tick()
{
    TempdReport report;
    report.machine = machine_;

    // Poll every sensor up front: one batched request when wired,
    // otherwise a round trip per component.
    std::vector<std::string> names;
    names.reserve(config_.components.size());
    for (const auto &[component, thresholds] : config_.components)
        names.push_back(component);

    std::vector<std::optional<double>> readings;
    bool batched = false;
    if (readMany_) {
        readings = readMany_(names);
        batched = readings.size() == names.size();
        if (!batched) {
            warn("tempd(", machine_, "): batched poll returned ",
                 readings.size(), " of ", names.size(),
                 " readings; using per-sensor reads");
        }
    }
    if (!batched) {
        readings.clear();
        readings.reserve(names.size());
        for (const std::string &component : names)
            readings.push_back(read_(component));
    }
    if (!pollPathLogged_) {
        pollPathLogged_ = true;
        inform("tempd(", machine_, "): polling ", names.size(),
               " sensor(s) via ",
               batched ? "batched reads" : "per-sensor reads");
    }

    bool any_hot = false;
    bool all_cool = true;
    bool degraded = false;
    double output = 0.0;

    size_t slot = 0;
    for (const auto &[component, thresholds] : config_.components) {
        std::optional<double> reading = readings[slot++];
        bool trusted = true;
        if (guard_) {
            // The trust layer sees every sample, including misses;
            // quarantined or missing streams come back substituted
            // (or valueless) and untrusted.
            std::optional<double> driver;
            if (utilization_)
                driver = utilization_(component);
            guard::TrustedSample sample =
                guard_->filter(machine_ + "." + component,
                               simulator_.nowSeconds(), reading, driver);
            trusted = sample.trusted;
            if (!sample.trusted)
                degraded = true;
            report.trusted[component] = sample.trusted;
            if (!sample.hasValue) {
                warn("tempd(", machine_, "): no reading and no ",
                     "substitute for ", component);
                all_cool = false; // unknown is not provably cool
                continue;
            }
            reading = sample.value;
        } else if (!reading) {
            warn("tempd(", machine_, "): sensor read failed for ",
                 component);
            all_cool = false; // unknown is not provably cool
            continue;
        }
        double current = *reading;
        report.temperatures[component] = current;

        // Only a trusted reading may cross the red line: powering a
        // server off on a spiking sensor is exactly the overreaction
        // the guard exists to prevent.
        if (current >= thresholds.redline && trusted)
            report.redline = true;
        if (current > thresholds.high) {
            any_hot = true;
            // PD controller (Section 4.1): runs only above T_h, and
            // the output is forced non-negative.
            auto last_it = lastTemperature_.find(component);
            double last = last_it != lastTemperature_.end()
                              ? last_it->second
                              : current;
            double value =
                std::max(config_.kp * (current - thresholds.high) +
                             config_.kd * (current - last),
                         0.0);
            output = std::max(output, value);
        }
        if (current >= thresholds.low)
            all_cool = false;
        lastTemperature_[component] = current;
    }

    if (utilization_) {
        for (const auto &[component, thresholds] : config_.components)
            report.utilizations[component] = utilization_(component);
    }

    report.degraded = degraded;
    if (report.redline) {
        report.kind = TempdReport::Kind::Hot;
        report.output = output;
        restricted_ = true;
        send_(report);
        return;
    }
    if (any_hot) {
        report.kind = TempdReport::Kind::Hot;
        report.output = output;
        restricted_ = true;
        send_(report);
        return;
    }
    if (degraded) {
        // Trust lost and no (trusted or substituted) evidence of Hot:
        // tell admd to fall back to the fail-safe. Repeats each period
        // like Hot, so a lost report self-heals; Cool is withheld
        // until every stream is trusted again.
        report.kind = TempdReport::Kind::Degraded;
        restricted_ = true;
        send_(report);
        return;
    }
    if (restricted_ && all_cool) {
        // Transition: the emergency is over, lift the restrictions.
        report.kind = TempdReport::Kind::Cool;
        restricted_ = false;
        send_(report);
        return;
    }
    // Between T_l and T_h: no thermal message, but Freon-EC still
    // wants its periodic utilization info.
    if (utilization_) {
        report.kind = TempdReport::Kind::Status;
        send_(report);
    }
}

} // namespace freon
} // namespace mercury
