#include "freon/two_tier.hh"

#include <memory>

#include "cluster/server_machine.hh"
#include "cluster/thermal_bridge.hh"
#include "core/solver.hh"
#include "fiddle/command.hh"
#include "lb/load_balancer.hh"
#include "sensor/client.hh"
#include "sim/simulator.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace mercury {
namespace freon {

namespace {

/** Everything one tier owns. */
struct Tier
{
    std::vector<std::string> names;
    std::vector<core::MachineSpec> specs;
    std::vector<std::unique_ptr<cluster::ServerMachine>> machines;
    lb::LoadBalancer balancer;
    std::unique_ptr<FreonController> controller;
    std::vector<std::unique_ptr<sensor::SensorClient>> sensors;
    std::vector<std::unique_ptr<Tempd>> tempds;
};

void
startTierManagement(Tier &tier, const TwoTierConfig &config,
                    sim::Simulator &simulator, core::Solver &solver,
                    cluster::ThermalBridge &bridge,
                    guard::SensorGuard *sensor_guard)
{
    FreonController::Options options;
    options.config = config.freon;
    options.policy = config.policy;
    if (options.policy == PolicyKind::FreonEC) {
        for (size_t i = 0; i < tier.names.size(); ++i)
            options.regionOf[tier.names[i]] = static_cast<int>(i % 2);
    }
    tier.controller = std::make_unique<FreonController>(
        simulator, tier.balancer, options);
    tier.controller->start();

    for (const std::string &name : tier.names) {
        tier.sensors.push_back(std::make_unique<sensor::SensorClient>(
            std::make_unique<sensor::LocalTransport>(bridge.service()),
            name));
        sensor::SensorClient *client = tier.sensors.back().get();
        core::ThermalGraph &graph = solver.machine(name);
        FreonController *controller = tier.controller.get();
        tier.tempds.push_back(std::make_unique<Tempd>(
            simulator, name, config.freon,
            [client](const std::string &component) {
                return client->read(component);
            },
            [controller](const TempdReport &report) {
                controller->onReport(report);
            },
            [&graph, &solver, name](const std::string &component) {
                return graph.utilization(
                    solver.resolveNode(name, component));
            }));
        tier.tempds.back()->setBatchedRead(
            [client](const std::vector<std::string> &components) {
                return client->readMany(components);
            });
        if (sensor_guard)
            tier.tempds.back()->setGuard(sensor_guard);
        tier.tempds.back()->start();
    }
}

void
collectTier(const Tier &tier, TierResult *out)
{
    out->submitted = tier.balancer.submitted();
    out->completed = tier.balancer.completed();
    out->dropped = tier.balancer.dropped();
    out->weightAdjustments = tier.controller->weightAdjustments();
    out->serversTurnedOff = tier.controller->serversTurnedOff();
    out->degradedReports = tier.controller->degradedReports();
    out->failSafeApplications = tier.controller->failSafeApplications();
}

} // namespace

TwoTierResult
runTwoTierExperiment(const TwoTierConfig &config)
{
    sim::Simulator simulator;
    core::Solver solver;

    // One room over both tiers. Machines must all exist before the
    // room is installed, so specs/solver machines come first and the
    // bridge attachments second.
    Tier web;
    Tier app;
    for (int i = 0; i < config.webServers; ++i) {
        std::string name = "w" + std::to_string(i + 1);
        web.names.push_back(name);
        web.specs.push_back(core::table1Server(name));
        solver.addMachine(web.specs.back());
    }
    for (int i = 0; i < config.appServers; ++i) {
        std::string name = "a" + std::to_string(i + 1);
        app.names.push_back(name);
        app.specs.push_back(core::table1Server(name));
        solver.addMachine(app.specs.back());
    }
    std::vector<std::string> all_names = web.names;
    all_names.insert(all_names.end(), app.names.begin(), app.names.end());
    solver.setRoom(core::table1Room(all_names, config.acTemperature));

    // Phase 2: simulated machines + balancers + thermal coupling.
    cluster::ThermalBridge bridge(simulator, solver);
    auto attach_tier = [&](Tier &tier) {
        for (size_t i = 0; i < tier.names.size(); ++i) {
            tier.machines.push_back(
                std::make_unique<cluster::ServerMachine>(simulator,
                                                         tier.names[i]));
            tier.balancer.addServer(tier.machines.back().get());
            bridge.attach(*tier.machines.back(), tier.specs[i]);
        }
    };
    attach_tier(web);
    attach_tier(app);
    bridge.start(solver.iterationSeconds());

    // Tier chaining: a completed dynamic front request issues the
    // application-tier sub-request.
    uint64_t next_app_id = 1;
    web.balancer.setCompletionObserver(
        [&](const cluster::ServerMachine &, const cluster::Request &req,
            cluster::RequestOutcome outcome) {
            if (outcome != cluster::RequestOutcome::Completed ||
                !req.dynamic) {
                return;
            }
            cluster::Request sub;
            sub.id = next_app_id++;
            sub.arrivalTime = simulator.nowSeconds();
            sub.dynamic = true;
            sub.cpuSeconds = config.appCpuSeconds;
            sub.diskSeconds = config.appDiskSeconds;
            app.balancer.submit(sub);
        });

    // Workload into the web tier; if no peak rate is given, load the
    // bottleneck tier to 70%.
    workload::WorkloadConfig workload_config = config.workload;
    if (workload_config.peakRate <= 0.0) {
        double web_rate = workload::peakRateForUtilization(
            0.70, config.webServers, workload_config);
        double app_demand_per_request =
            workload_config.cgiFraction * config.appCpuSeconds;
        double app_rate = 0.70 * config.appServers /
                          std::max(1e-9, app_demand_per_request);
        workload_config.peakRate = std::min(web_rate, app_rate);
    }
    workload::WorkloadGenerator generator(simulator, web.balancer,
                                          workload_config);
    generator.start();

    std::unique_ptr<guard::SensorGuard> sensor_guard;
    if (config.sensorGuard)
        sensor_guard =
            std::make_unique<guard::SensorGuard>(config.guardConfig);
    bridge.service().setSensorGuard(sensor_guard.get());

    startTierManagement(web, config, simulator, solver, bridge,
                        sensor_guard.get());
    startTierManagement(app, config, simulator, solver, bridge,
                        sensor_guard.get());

    // Emergencies.
    for (const TwoTierConfig::Emergency &emergency : config.emergencies) {
        simulator.at(sim::seconds(emergency.time), [&solver, emergency] {
            fiddle::FiddleResult result = fiddle::applyLine(
                solver, format("fiddle %s temperature inlet %g",
                               emergency.machine.c_str(),
                               emergency.inletCelsius));
            if (!result.ok)
                warn("two-tier emergency failed: ", result.message);
        });
    }

    // Recording.
    TwoTierResult result;
    auto record_setup = [&](Tier &tier, TierResult *out) {
        for (const std::string &name : tier.names) {
            out->cpuTemperature.emplace(name,
                                        TimeSeries(name + ".cpu_temp"));
            out->cpuUtilization.emplace(name,
                                        TimeSeries(name + ".cpu_util"));
            out->peakCpuTemperature[name] = 0.0;
        }
    };
    record_setup(web, &result.web);
    record_setup(app, &result.app);
    simulator.every(sim::seconds(config.recordPeriod), [&] {
        double now = simulator.nowSeconds();
        auto record = [&](Tier &tier, TierResult *out) {
            for (const std::string &name : tier.names) {
                core::ThermalGraph &graph = solver.machine(name);
                double temp = graph.temperature("cpu");
                out->cpuTemperature.at(name).add(now, temp);
                out->cpuUtilization.at(name).add(
                    now, graph.utilization("cpu"));
                out->peakCpuTemperature[name] =
                    std::max(out->peakCpuTemperature[name], temp);
            }
        };
        record(web, &result.web);
        record(app, &result.app);
        return true;
    });

    simulator.runUntil(sim::seconds(workload_config.duration));

    collectTier(web, &result.web);
    collectTier(app, &result.app);
    for (const std::string &name : all_names)
        result.energyJoules += solver.machine(name).energyConsumed();
    if (sensor_guard) {
        result.guardAnomalies = sensor_guard->anomaliesTotal();
        result.guardQuarantines = sensor_guard->quarantinesTotal();
    }
    bridge.service().setSensorGuard(nullptr); // guard dies first
    return result;
}

} // namespace freon
} // namespace mercury
