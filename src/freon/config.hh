/**
 * @file
 * Freon configuration: per-component thresholds and controller gains
 * (Section 4.1 of the paper, experimental values from Section 5).
 */

#ifndef MERCURY_FREON_CONFIG_HH
#define MERCURY_FREON_CONFIG_HH

#include <map>
#include <string>

namespace mercury {
namespace freon {

/** Per-component temperature thresholds [degC]. */
struct Thresholds
{
    /** T_h: trigger load-shifting above this. */
    double high = 0.0;

    /** T_l: below this the component is cool; restrictions lift when
     *  every component is below its T_l. */
    double low = 0.0;

    /** T_r: red line — the server is turned off to protect the
     *  hardware. "T_h should be set just below T_r, e.g. 2 degC
     *  lower." */
    double redline = 0.0;
};

/** All Freon tunables. */
struct FreonConfig
{
    /** Thresholds keyed by monitored component ("cpu", "disk"). */
    std::map<std::string, Thresholds> components;

    /** PD controller gains (paper: kp = 0.1, kd = 0.2). */
    double kp = 0.1;
    double kd = 0.2;

    /** tempd wake-up / adjustment repeat period [s] (paper: 1 min). */
    double tempdPeriodSeconds = 60.0;

    /** admd LVS-statistics sampling period [s] (paper: 5 s). */
    double admdSamplePeriodSeconds = 5.0;

    /** Rolling window for the concurrent-connection average [s]. */
    double connectionWindowSeconds = 60.0;

    /** Freon-EC: add capacity above this projected utilization. */
    double utilizationHigh = 0.70;

    /** Freon-EC: remove capacity while the average stays below this. */
    double utilizationLow = 0.60;

    /** Freon-EC: projection horizon in observation intervals. */
    int projectionIntervals = 2;

    /**
     * Degraded-mode fail-safe: the PD-equivalent output admd applies
     * once when a machine's sensor streams go untrusted (quarantined
     * or missing). With the base policy's 1/(output+1) share rule,
     * 1.0 halves the machine's load share — conservative enough to
     * arrest a plausible undetected emergency, cheap enough to hold
     * until the sensors recover or an operator intervenes.
     */
    double failSafeOutput = 1.0;

    /**
     * The Section 5 experimental settings: T_h^CPU = 67, T_l^CPU = 64,
     * T_h^disk = 65, T_l^disk = 62 (degC), red lines 2 degC above T_h.
     */
    static FreonConfig paperDefaults();

    /**
     * Thresholds matched to the Table 1 *emulated* server, "the
     * proper values for our components": its CPU runs ~1.7 degC per
     * watt above its air stream (k = 0.75 W/K), reaching ~74.5 degC
     * at full load under the nominal inlet. T_h^CPU = 74 keeps normal
     * full-load operation safe while the paper's 38.6/35.6 degC inlet
     * emergencies still force threshold crossings — the same margins
     * the authors had on their physical server with 67/64.
     */
    static FreonConfig table1Defaults();
};

} // namespace freon
} // namespace mercury

#endif // MERCURY_FREON_CONFIG_HH
