/**
 * @file
 * admd: Freon's admission-control daemon at the load-balancer node
 * (Sections 4.1-4.2), plus the policy variants evaluated in Section 5:
 *
 *  - FreonBase: on a Hot report, rescale the hot server's LVS weight
 *    so it receives 1/(output+1) of its current load share, and cap
 *    its concurrent connections at the last-minute average; lift both
 *    on Cool; power the server off only at the red line.
 *  - Traditional: power servers off at the red line, nothing else —
 *    the comparison policy that drops 14% of the paper's trace.
 *  - FreonEC: adds energy conservation — servers are powered on/off
 *    with the cluster's (projected) utilization, organised in
 *    physical regions so replacements come from areas unaffected by
 *    the emergency (Figure 10's pseudo-code).
 *  - None: monitoring only (ablation baseline).
 */

#ifndef MERCURY_FREON_CONTROLLER_HH
#define MERCURY_FREON_CONTROLLER_HH

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "freon/config.hh"
#include "freon/tempd.hh"
#include "lb/load_balancer.hh"
#include "metrics/metrics.hh"
#include "sim/simulator.hh"

namespace mercury {
namespace freon {

/** Which thermal-management policy admd runs. */
enum class PolicyKind {
    None,
    FreonBase,
    Traditional,
    FreonEC,

    /** The two-stage policy Section 4.3 proposes but could not build
     *  on stock LVS: stage 1 routes only non-CPU-bound (static)
     *  requests to the hot server; stage 2 falls back to the base
     *  weight/cap actuation if the server stays hot. */
    FreonTwoStage,
};

/**
 * The admission-control daemon.
 */
class FreonController
{
  public:
    struct Options
    {
        FreonConfig config = FreonConfig::paperDefaults();
        PolicyKind policy = PolicyKind::FreonBase;

        /** Freon-EC: machine -> physical region id. */
        std::map<std::string, int> regionOf;

        /** Freon-EC never shrinks below this many active servers. */
        int minActiveServers = 1;
    };

    FreonController(sim::Simulator &simulator, lb::LoadBalancer &balancer,
                    Options options);

    /** Begin periodic sampling (and EC reconfiguration). */
    void start();

    /** Entry point for tempd reports (wire Tempd::SendFn here). */
    void onReport(const TempdReport &report);

    /** @name Introspection for the tests and benches */
    /// @{

    /** Servers currently On or Booting. */
    int activeServers() const;

    /** True while load restrictions are installed on a machine. */
    bool isRestricted(const std::string &machine) const;

    /** Rolling-average concurrent connections for a machine. */
    double averageConnections(const std::string &machine) const;

    uint64_t weightAdjustments() const { return weightAdjustments_; }
    uint64_t capAdjustments() const { return capAdjustments_; }

    /** Degraded reports received (sensor trust lost upstream). */
    uint64_t degradedReports() const { return degradedReports_; }

    /** Fail-safe actuations (once per degraded episode). */
    uint64_t failSafeApplications() const { return failSafeApplied_; }

    /** Machines currently in a degraded episode. */
    int degradedServers() const;

    /** Restriction install/lift edges across all servers; a bounded
     *  count under an oscillating load is the no-flapping invariant. */
    uint64_t restrictionTransitions() const
    {
        return restrictionTransitions_;
    }

    /** Hot-before-first-sample cap fallbacks (no average yet, so the
     *  instantaneous connection count was used instead). */
    uint64_t capFallbacks() const { return capFallbacks_; }

    uint64_t serversTurnedOff() const { return turnedOff_; }
    uint64_t serversTurnedOn() const { return turnedOn_; }

    /** Current emergency count of a region (EC). */
    int regionEmergencies(int region) const;

    /// @}

  private:
    struct ServerState
    {
        bool restricted = false;
        bool hot = false; //!< counted as an emergency (EC regions)
        bool degraded = false; //!< in a fail-safe episode
        bool avoidingDynamic = false; //!< two-stage policy, stage 1
        std::deque<std::pair<double, double>> connSamples;
        std::map<std::string, double> utilization;
    };

    ServerState &state(const std::string &machine);
    const ServerState *findState(const std::string &machine) const;

    void sampleConnections();
    void handleHot(const TempdReport &report);
    void handleCool(const TempdReport &report);

    /** Fail-safe for a machine whose sensors went untrusted. */
    void handleDegraded(const TempdReport &report);

    /** Flip a server's restricted flag, counting the edge. */
    void setRestricted(ServerState &server, bool restricted);

    /** The base policy's weight/cap actuation for one Hot report. */
    void applyBaseAdjustment(const std::string &machine, double output);

    /** Restore the default weight and remove the connection cap. */
    void liftRestrictions(const std::string &machine);

    void turnOff(const std::string &machine);
    void turnOn(const std::string &machine);

    /** @name Freon-EC (Figure 10) */
    /// @{
    void ecTick();
    void ecHandleHot(const TempdReport &report);

    /** Average utilization per component over On servers. */
    std::map<std::string, double> averageUtilization() const;

    /** True when the cluster cannot afford to lose one On server. */
    bool cannotRemoveServer() const;

    /** Round-robin region pick, preferring emergency-free regions. */
    std::optional<std::string> pickServerToTurnOn();
    /// @}

    sim::Simulator &simulator_;
    lb::LoadBalancer &balancer_;
    Options options_;

    std::map<std::string, ServerState> states_;
    std::map<std::string, double> prevAvgUtilization_;
    bool havePrevAvg_ = false;

    std::vector<int> regionIds_; //!< distinct regions, sorted
    size_t nextRegion_ = 0;
    std::map<int, int> regionEmergencies_;

    uint64_t weightAdjustments_ = 0;
    uint64_t capAdjustments_ = 0;
    uint64_t capFallbacks_ = 0;
    uint64_t turnedOff_ = 0;
    uint64_t turnedOn_ = 0;
    uint64_t degradedReports_ = 0;
    uint64_t failSafeApplied_ = 0;
    uint64_t restrictionTransitions_ = 0;
    bool started_ = false;

    /** admd health in the process-global registry. The guards are
     *  token-matched so destroying one controller (tests build many in
     *  a process) never unhooks a newer live one. */
    metrics::CallbackGuard weightChangesGuard_;
    metrics::CallbackGuard capChangesGuard_;
    metrics::CallbackGuard capFallbackGuard_;
    metrics::CallbackGuard turnedOffGuard_;
    metrics::CallbackGuard turnedOnGuard_;
    metrics::CallbackGuard degradedGuard_;
    metrics::CallbackGuard failSafeGuard_;
    metrics::CallbackGuard transitionsGuard_;
    metrics::Gauge *pdOutputGauge_ = nullptr;
};

} // namespace freon
} // namespace mercury

#endif // MERCURY_FREON_CONTROLLER_HH
