#include "freon/controller.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.hh"

namespace mercury {
namespace freon {

FreonController::FreonController(sim::Simulator &simulator,
                                 lb::LoadBalancer &balancer,
                                 Options options)
    : simulator_(simulator), balancer_(balancer),
      options_(std::move(options))
{
    if (options_.policy == PolicyKind::FreonEC) {
        std::set<int> regions;
        for (const std::string &name : balancer_.serverNames()) {
            auto it = options_.regionOf.find(name);
            if (it == options_.regionOf.end()) {
                MERCURY_PANIC("FreonController: machine '", name,
                              "' has no region (Freon-EC needs one)");
            }
            regions.insert(it->second);
        }
        regionIds_.assign(regions.begin(), regions.end());
        for (int region : regionIds_)
            regionEmergencies_[region] = 0;
    }
    for (const std::string &name : balancer_.serverNames())
        states_[name] = ServerState{};

    metrics::Registry &registry = metrics::Registry::global();
    weightChangesGuard_.add(
        registry, "freon_weight_changes_total",
        "LVS weight rescalings applied to hot servers",
        [this] { return static_cast<double>(weightAdjustments_); });
    capChangesGuard_.add(
        registry, "freon_cap_changes_total",
        "connection-cap actuations on hot servers",
        [this] { return static_cast<double>(capAdjustments_); });
    capFallbackGuard_.add(
        registry, "freon_cap_fallback_total",
        "cap actuations that fell back to the instantaneous "
        "connection count (server went hot before the first sample)",
        [this] { return static_cast<double>(capFallbacks_); });
    turnedOffGuard_.add(
        registry, "freon_servers_turned_off_total",
        "servers powered off (red line or EC shrink)",
        [this] { return static_cast<double>(turnedOff_); });
    turnedOnGuard_.add(
        registry, "freon_servers_turned_on_total",
        "servers powered on (EC replacement or growth)",
        [this] { return static_cast<double>(turnedOn_); });
    degradedGuard_.add(
        registry, "freon_degraded_reports_total",
        "tempd reports flagging lost sensor trust",
        [this] { return static_cast<double>(degradedReports_); });
    failSafeGuard_.add(
        registry, "freon_failsafe_applied_total",
        "conservative fail-safe actuations on untrusted sensors",
        [this] { return static_cast<double>(failSafeApplied_); });
    transitionsGuard_.add(
        registry, "freon_restriction_transitions_total",
        "restriction install/lift edges across all servers",
        [this] { return static_cast<double>(restrictionTransitions_); });
    pdOutputGauge_ = registry.gauge(
        "freon_pd_output",
        "most recent tempd PD-controller output seen by admd");
}

void
FreonController::start()
{
    if (started_)
        MERCURY_PANIC("FreonController: start() called twice");
    started_ = true;
    // admd samples the LVS connection statistics every 5 seconds.
    simulator_.every(
        sim::seconds(options_.config.admdSamplePeriodSeconds), [this] {
            sampleConnections();
            return true;
        });
    if (options_.policy == PolicyKind::FreonEC) {
        // Reconfiguration decisions run on the reporting period,
        // offset half a period so fresh reports have arrived.
        simulator_.every(
            sim::seconds(options_.config.tempdPeriodSeconds), [this] {
                ecTick();
                return true;
            },
            sim::seconds(options_.config.tempdPeriodSeconds * 1.5));
    }
}

FreonController::ServerState &
FreonController::state(const std::string &machine)
{
    auto it = states_.find(machine);
    if (it == states_.end())
        MERCURY_PANIC("FreonController: unknown machine '", machine, "'");
    return it->second;
}

const FreonController::ServerState *
FreonController::findState(const std::string &machine) const
{
    auto it = states_.find(machine);
    return it == states_.end() ? nullptr : &it->second;
}

void
FreonController::sampleConnections()
{
    double now = simulator_.nowSeconds();
    double horizon = now - options_.config.connectionWindowSeconds;
    for (const std::string &name : balancer_.serverNames()) {
        ServerState &server = state(name);
        server.connSamples.emplace_back(
            now, static_cast<double>(balancer_.activeConnections(name)));
        while (!server.connSamples.empty() &&
               server.connSamples.front().first < horizon) {
            server.connSamples.pop_front();
        }
    }
}

double
FreonController::averageConnections(const std::string &machine) const
{
    const ServerState *server = findState(machine);
    if (!server || server->connSamples.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &[time, conns] : server->connSamples)
        sum += conns;
    return sum / static_cast<double>(server->connSamples.size());
}

void
FreonController::onReport(const TempdReport &report)
{
    ServerState &server = state(report.machine);
    if (!report.utilizations.empty())
        server.utilization = report.utilizations;
    if (pdOutputGauge_)
        pdOutputGauge_->set(report.output);

    if (report.degraded) {
        ++degradedReports_;
        server.degraded = true;
    }

    switch (report.kind) {
      case TempdReport::Kind::Status:
        return;
      case TempdReport::Kind::Hot:
        handleHot(report);
        return;
      case TempdReport::Kind::Cool:
        handleCool(report);
        return;
      case TempdReport::Kind::Degraded:
        handleDegraded(report);
        return;
    }
}

void
FreonController::handleDegraded(const TempdReport &report)
{
    ServerState &server = state(report.machine);
    // No trusted thermal evidence from this machine: assume the worst
    // it could plausibly be hiding and shed load toward the safe cap.
    // Applied once per episode — the report repeats every period, and
    // compounding the weight rescaling each time would starve a
    // machine whose only crime is a broken thermistor. Nothing is
    // ever *lifted* here; that takes a trusted Cool.
    if (options_.policy == PolicyKind::None ||
        options_.policy == PolicyKind::Traditional) {
        return;
    }
    if (server.degraded && server.restricted)
        return;
    server.degraded = true;
    applyBaseAdjustment(report.machine,
                        options_.config.failSafeOutput);
    ++failSafeApplied_;
    inform("freon: fail-safe on ", report.machine,
           " (sensor trust lost) at t=", simulator_.nowSeconds());
}

void
FreonController::handleHot(const TempdReport &report)
{
    ServerState &server = state(report.machine);
    bool newly_hot = !server.hot;
    server.hot = true;
    if (options_.policy == PolicyKind::FreonEC && newly_hot) {
        auto region = options_.regionOf.find(report.machine);
        if (region != options_.regionOf.end())
            ++regionEmergencies_[region->second];
    }

    switch (options_.policy) {
      case PolicyKind::None:
        return;
      case PolicyKind::Traditional:
        // The traditional approach reacts only at the red line.
        if (report.redline)
            turnOff(report.machine);
        return;
      case PolicyKind::FreonBase:
        if (report.redline) {
            turnOff(report.machine);
            return;
        }
        applyBaseAdjustment(report.machine, report.output);
        return;
      case PolicyKind::FreonTwoStage:
        if (report.redline) {
            turnOff(report.machine);
            return;
        }
        // Stage 1: keep the hot server serving, but only cheap static
        // content. Stage 2 (still hot a period later): the base
        // weight/cap actuation on top.
        if (!server.avoidingDynamic) {
            balancer_.setDynamicContentAllowed(report.machine, false);
            server.avoidingDynamic = true;
            setRestricted(server, true);
            return;
        }
        applyBaseAdjustment(report.machine, report.output);
        return;
      case PolicyKind::FreonEC:
        ecHandleHot(report);
        return;
    }
}

void
FreonController::handleCool(const TempdReport &report)
{
    ServerState &server = state(report.machine);
    bool was_hot = server.hot;
    server.hot = false;
    // tempd withholds Cool while any stream is untrusted, so a Cool
    // report doubles as "sensor trust restored".
    server.degraded = false;
    if (options_.policy == PolicyKind::FreonEC && was_hot) {
        auto region = options_.regionOf.find(report.machine);
        if (region != options_.regionOf.end()) {
            regionEmergencies_[region->second] =
                std::max(0, regionEmergencies_[region->second] - 1);
        }
    }
    if (options_.policy == PolicyKind::None ||
        options_.policy == PolicyKind::Traditional) {
        return;
    }
    liftRestrictions(report.machine);
}

void
FreonController::applyBaseAdjustment(const std::string &machine,
                                     double output)
{
    ServerState &server = state(machine);

    // New weight such that the server receives 1/(output+1) of the
    // load share it currently receives; "this requires accounting for
    // the weights of all servers". With share s = w / (w + W_rest)
    // and target share s' = s / (output + 1), the new weight is
    // w' = s' W_rest / (1 - s').
    long long rest = 0;
    for (const std::string &name : balancer_.serverNames()) {
        if (name != machine && balancer_.enabled(name) &&
            balancer_.server(name).isOn()) {
            rest += balancer_.weight(name);
        }
    }
    int current = balancer_.weight(machine);
    if (rest > 0 && current > 0 && output > 0.0) {
        double share = static_cast<double>(current) /
                       static_cast<double>(current + rest);
        double target = share / (output + 1.0);
        if (target < 0.999) {
            double next = target * static_cast<double>(rest) /
                          (1.0 - target);
            int weight =
                std::max(1, static_cast<int>(std::lround(next)));
            balancer_.setWeight(machine, weight);
            ++weightAdjustments_;
        }
    }

    // "Freon also orders LVS to limit the maximum allowed number of
    // concurrent requests to the hot server at the average number of
    // concurrent requests over the last time interval."
    //
    // A server that goes Hot before admd's first 5 s sample has no
    // average yet; clamping the missing average to 1 would starve it
    // down to a single concurrent request. Fall back to the
    // instantaneous connection count, and leave the server uncapped
    // (cap 0) when even that is zero — the weight rescaling above
    // still sheds load.
    int cap;
    if (server.connSamples.empty()) {
        ++capFallbacks_;
        cap = static_cast<int>(balancer_.activeConnections(machine));
    } else {
        cap = std::max(1, static_cast<int>(
                              std::lround(averageConnections(machine))));
    }
    // Never *raise* an installed cap while the machine's sensors are
    // untrusted — relaxing on data we cannot verify is how a wedged
    // sensor melts a server.
    int existing = balancer_.connectionCap(machine);
    if (server.degraded && existing > 0)
        cap = cap > 0 ? std::min(cap, existing) : existing;
    balancer_.setConnectionCap(machine, cap);
    ++capAdjustments_;
    setRestricted(server, true);
}

void
FreonController::setRestricted(ServerState &server, bool restricted)
{
    if (server.restricted != restricted)
        ++restrictionTransitions_;
    server.restricted = restricted;
}

void
FreonController::liftRestrictions(const std::string &machine)
{
    ServerState &server = state(machine);
    if (!server.restricted)
        return;
    balancer_.setWeight(machine, lb::LoadBalancer::kDefaultWeight);
    balancer_.setConnectionCap(machine, 0);
    if (server.avoidingDynamic) {
        balancer_.setDynamicContentAllowed(machine, true);
        server.avoidingDynamic = false;
    }
    setRestricted(server, false);
}

void
FreonController::turnOff(const std::string &machine)
{
    cluster::ServerMachine &target = balancer_.server(machine);
    if (target.isOff() || target.powerState() ==
                              cluster::PowerState::Draining) {
        return;
    }
    balancer_.setEnabled(machine, false);
    target.beginShutdown();
    ++turnedOff_;
    inform("freon: turning off ", machine, " at t=",
           simulator_.nowSeconds());
}

void
FreonController::turnOn(const std::string &machine)
{
    cluster::ServerMachine &target = balancer_.server(machine);
    if (!target.isOff())
        return;
    liftRestrictions(machine);
    balancer_.setEnabled(machine, true);
    balancer_.setWeight(machine, lb::LoadBalancer::kDefaultWeight);
    balancer_.setConnectionCap(machine, 0);
    target.powerOn();
    ++turnedOn_;
    inform("freon: turning on ", machine, " at t=",
           simulator_.nowSeconds());
}

int
FreonController::activeServers() const
{
    int active = 0;
    for (const std::string &name : balancer_.serverNames()) {
        auto power = balancer_.server(name).powerState();
        if (power == cluster::PowerState::On ||
            power == cluster::PowerState::Booting) {
            ++active;
        }
    }
    return active;
}

bool
FreonController::isRestricted(const std::string &machine) const
{
    const ServerState *server = findState(machine);
    return server && server->restricted;
}

int
FreonController::degradedServers() const
{
    int count = 0;
    for (const auto &[name, server] : states_) {
        if (server.degraded)
            ++count;
    }
    return count;
}

int
FreonController::regionEmergencies(int region) const
{
    auto it = regionEmergencies_.find(region);
    return it == regionEmergencies_.end() ? 0 : it->second;
}

std::map<std::string, double>
FreonController::averageUtilization() const
{
    std::map<std::string, double> sums;
    int active = 0;
    for (const std::string &name : balancer_.serverNames()) {
        if (!balancer_.server(name).isOn())
            continue;
        const ServerState *server = findState(name);
        if (!server)
            continue;
        ++active;
        for (const auto &[component, value] : server->utilization)
            sums[component] += value;
    }
    if (active > 0) {
        for (auto &[component, value] : sums)
            value /= static_cast<double>(active);
    }
    return sums;
}

bool
FreonController::cannotRemoveServer() const
{
    int active = 0;
    for (const std::string &name : balancer_.serverNames()) {
        if (balancer_.server(name).isOn())
            ++active;
    }
    if (active <= options_.minActiveServers)
        return true;
    std::map<std::string, double> avg = averageUtilization();
    for (const auto &[component, value] : avg) {
        double scaled = value * static_cast<double>(active) /
                        static_cast<double>(active - 1);
        if (scaled >= options_.config.utilizationLow)
            return true;
    }
    return false;
}

std::optional<std::string>
FreonController::pickServerToTurnOn()
{
    if (regionIds_.empty())
        return std::nullopt;
    // Two passes over the regions in round-robin order: first insist
    // on emergency-free regions, then accept any region with an off
    // server (Figure 10: "preferably is not under an emergency").
    for (int pass = 0; pass < 2; ++pass) {
        for (size_t step = 0; step < regionIds_.size(); ++step) {
            int region = regionIds_[(nextRegion_ + step) %
                                    regionIds_.size()];
            if (pass == 0 && regionEmergencies(region) > 0)
                continue;
            for (const std::string &name : balancer_.serverNames()) {
                auto it = options_.regionOf.find(name);
                if (it == options_.regionOf.end() ||
                    it->second != region) {
                    continue;
                }
                if (balancer_.server(name).isOff()) {
                    nextRegion_ = (nextRegion_ + step + 1) %
                                  regionIds_.size();
                    return name;
                }
            }
        }
    }
    return std::nullopt;
}

void
FreonController::ecHandleHot(const TempdReport &report)
{
    bool has_off_server = false;
    for (const std::string &name : balancer_.serverNames()) {
        if (balancer_.server(name).isOff())
            has_off_server = true;
    }

    bool cannot_remove = cannotRemoveServer();
    if (cannot_remove && !has_off_server) {
        // "if (all servers in the cluster need to be active) apply
        // Freon's base thermal policy".
        if (report.redline) {
            turnOff(report.machine);
            return;
        }
        applyBaseAdjustment(report.machine, report.output);
        return;
    }
    // Otherwise the hot server is replaced: bring up a substitute
    // first if losing one outright would hurt, then power it off.
    if (cannot_remove) {
        if (auto replacement = pickServerToTurnOn())
            turnOn(*replacement);
    }
    turnOff(report.machine);
}

void
FreonController::ecTick()
{
    // --- Add capacity on projected utilization (Figure 10 top). ---
    std::map<std::string, double> avg = averageUtilization();
    bool need_add = false;
    if (havePrevAvg_) {
        for (const auto &[component, value] : avg) {
            double prev = prevAvgUtilization_.count(component)
                              ? prevAvgUtilization_.at(component)
                              : value;
            double projected =
                value +
                options_.config.projectionIntervals * (value - prev);
            if (projected > options_.config.utilizationHigh)
                need_add = true;
        }
    }
    prevAvgUtilization_ = avg;
    havePrevAvg_ = true;

    if (need_add) {
        if (auto name = pickServerToTurnOn())
            turnOn(*name);
    }

    // --- Remove capacity while it is safe (Figure 10 bottom). ---
    // "turn off as many servers as possible in increasing order of
    // current processing capacity" — with homogeneous machines the
    // current LVS weight is the capacity proxy (restricted servers
    // carry less load). The total utilization *mass* is fixed at tick
    // entry: removing servers concentrates it onto the survivors, so
    // each removal is checked against total / (remaining - 1).
    if (need_add)
        return;
    std::map<std::string, double> total;
    std::vector<std::string> on_servers;
    for (const std::string &name : balancer_.serverNames()) {
        if (!balancer_.server(name).isOn())
            continue;
        on_servers.push_back(name);
        const ServerState *server = findState(name);
        if (!server)
            continue;
        for (const auto &[component, value] : server->utilization)
            total[component] += value;
    }
    std::sort(on_servers.begin(), on_servers.end(),
              [&](const std::string &a, const std::string &b) {
                  int wa = balancer_.weight(a);
                  int wb = balancer_.weight(b);
                  if (wa != wb)
                      return wa < wb;
                  return a < b;
              });
    int remaining = static_cast<int>(on_servers.size());
    for (const std::string &victim : on_servers) {
        if (remaining <= options_.minActiveServers)
            break;
        bool safe = true;
        for (const auto &[component, mass] : total) {
            if (mass / static_cast<double>(remaining - 1) >=
                options_.config.utilizationLow) {
                safe = false;
            }
        }
        if (!safe)
            break;
        turnOff(victim);
        --remaining;
    }
}

} // namespace freon
} // namespace mercury
