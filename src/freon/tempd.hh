/**
 * @file
 * tempd: Freon's per-server temperature daemon (Section 4.1).
 *
 * Wakes once per minute, reads the CPU and disk temperatures (through
 * Mercury's sensor interface in the experiments), and talks to admd:
 *
 *  - while any component is above its T_h, it sends the output of a
 *    PD controller, output = max_c max(kp (T_curr - T_h) +
 *    kd (T_curr - T_last), 0), once per period;
 *  - when every component has dropped below its T_l, it orders admd
 *    to lift all restrictions (sent on the transition);
 *  - between T_l and T_h nothing is sent ("there is no communication
 *    between the daemons");
 *  - a component above its red line T_r is reported immediately so
 *    the server can be powered off;
 *  - (Freon-EC) utilization info rides along every period.
 */

#ifndef MERCURY_FREON_TEMPD_HH
#define MERCURY_FREON_TEMPD_HH

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "freon/config.hh"
#include "guard/sensor_guard.hh"
#include "sim/simulator.hh"

namespace mercury {
namespace freon {

/** What tempd tells admd. */
struct TempdReport
{
    enum class Kind {
        Hot,    //!< some component above T_h; `output` is valid
        Cool,   //!< every component below T_l; lift restrictions
        Status, //!< periodic utilization report (Freon-EC)

        /** Sensor trust lost (quarantined/missing streams) with no
         *  trusted evidence of Hot or Cool: admd should fall back to
         *  the conservative fail-safe. Only emitted with a guard. */
        Degraded,
    };

    std::string machine;
    Kind kind = Kind::Status;

    /** PD controller output (Kind::Hot). */
    double output = 0.0;

    /** True when some component exceeded its red line T_r. With a
     *  guard installed, only a *trusted* reading can set this — a
     *  lone spiking sensor must not power a server off. */
    bool redline = false;

    /** True when any of this machine's streams is untrusted; the
     *  temperatures below may then be substitutes, and admd must not
     *  relax anything on their account. */
    bool degraded = false;

    /** Component temperatures at this wake-up [degC] (substituted
     *  values when the guard quarantined the stream). */
    std::map<std::string, double> temperatures;

    /** Per-component trust tags (true = raw reading from a healthy
     *  stream). Populated only when a guard is installed. */
    std::map<std::string, bool> trusted;

    /** Component utilizations in [0, 1] (for Freon-EC). */
    std::map<std::string, double> utilizations;
};

/**
 * The per-server daemon.
 */
class Tempd
{
  public:
    /** Reads one component's temperature; nullopt on sensor failure. */
    using ReadFn =
        std::function<std::optional<double>(const std::string &)>;

    /**
     * Reads several components at once (positional results). Wired to
     * SensorClient::readMany() in the experiments so one wake-up costs
     * one datagram instead of one per component.
     */
    using ReadManyFn = std::function<std::vector<std::optional<double>>(
        const std::vector<std::string> &)>;

    /** Reads one component's utilization (Freon-EC); may be null. */
    using UtilFn = std::function<double(const std::string &)>;

    /** Delivers a report to admd. */
    using SendFn = std::function<void(const TempdReport &)>;

    Tempd(sim::Simulator &simulator, std::string machine,
          FreonConfig config, ReadFn read, SendFn send,
          UtilFn utilization = nullptr);

    /**
     * Install a batched poll path, used in preference to the
     * per-component ReadFn (which stays as the fallback when the
     * batched read returns the wrong shape). Call before start().
     */
    void setBatchedRead(ReadManyFn read_many);

    /**
     * Route every reading through a sensor trust layer (borrowed, may
     * be shared across tempds; all filtering happens on the simulator
     * thread). Streams are named "machine.component" and the
     * component's utilization (when a UtilFn is wired) feeds the
     * guard's model as the driver. With a guard installed the daemon
     * gains a degraded mode: untrusted redline readings never power a
     * server off, Cool is withheld while any stream is untrusted, and
     * trust loss without trusted Hot evidence emits Kind::Degraded.
     */
    void setGuard(guard::SensorGuard *guard);

    /** Begin the periodic wake-ups. */
    void start();

    /** One wake-up (exposed for tests). */
    void tick();

    const std::string &machine() const { return machine_; }

    /** True while load restrictions are believed to be installed. */
    bool restricted() const { return restricted_; }

  private:
    sim::Simulator &simulator_;
    std::string machine_;
    FreonConfig config_;
    ReadFn read_;
    ReadManyFn readMany_;
    SendFn send_;
    UtilFn utilization_;
    guard::SensorGuard *guard_ = nullptr;

    std::map<std::string, double> lastTemperature_;
    bool restricted_ = false;
    bool started_ = false;
    bool pollPathLogged_ = false;
};

} // namespace freon
} // namespace mercury

#endif // MERCURY_FREON_TEMPD_HH
