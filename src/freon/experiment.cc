#include "freon/experiment.hh"

#include <memory>

#include "cluster/server_machine.hh"
#include "cluster/thermal_bridge.hh"
#include "core/solver.hh"
#include "fiddle/command.hh"
#include "lb/load_balancer.hh"
#include "metrics/metrics.hh"
#include "proto/solver_service.hh"
#include "sensor/client.hh"
#include "sim/simulator.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace mercury {
namespace freon {

void
ExperimentConfig::addPaperEmergencies()
{
    // "At 480 seconds, fiddle raised the inlet temperature of machine
    // 1 to 38.6 C and machine 3 to 35.6 C. (The emergencies are set to
    // last the entire experiment.)" Paired with the Table 1-scaled
    // thresholds (FreonConfig::table1Defaults) these exact values
    // reproduce the published behaviour: m1 crosses T_h first as the
    // load approaches its peak, m3 follows once it absorbs m1's
    // shifted load, and the traditional policy red-lines both.
    emergencies.push_back({480.0, "m1", 38.6});
    emergencies.push_back({480.0, "m3", 35.6});
}

ExperimentResult
runExperiment(const ExperimentConfig &config)
{
    if (config.servers < 1)
        fatal("experiment needs at least one server");

    sim::Simulator simulator;

    // --- Mercury: Table 1 machines under one AC (Figure 1(c)). ---
    core::Solver solver;
    std::vector<std::string> names;
    std::vector<core::MachineSpec> specs;
    for (int i = 0; i < config.servers; ++i) {
        std::string name = "m" + std::to_string(i + 1);
        names.push_back(name);
        specs.push_back(core::table1Server(name));
        solver.addMachine(specs.back());
    }
    solver.setRoom(core::table1Room(names, config.acTemperature));

    // --- The cluster: servers, LVS, workload. ---
    cluster::ThermalBridge bridge(simulator, solver);
    std::vector<std::unique_ptr<cluster::ServerMachine>> machines;
    lb::LoadBalancer balancer;
    balancer.registerMetrics(metrics::Registry::global());
    for (int i = 0; i < config.servers; ++i) {
        machines.push_back(std::make_unique<cluster::ServerMachine>(
            simulator, names[i]));
        balancer.addServer(machines.back().get());
        bridge.attach(*machines.back(), specs[i]);
    }
    bridge.start(solver.iterationSeconds());

    workload::WorkloadConfig workload_config = config.workload;
    if (workload_config.peakRate <= 0.0) {
        workload_config.peakRate = workload::peakRateForUtilization(
            0.70, config.servers, workload_config);
    }
    workload::WorkloadGenerator generator(simulator, balancer,
                                          workload_config);
    generator.start();

    // --- Freon: admd at the balancer, tempd on every server. ---
    FreonController::Options options;
    options.config = config.freon;
    options.policy = config.policy;
    options.minActiveServers = config.minActiveServers;
    options.regionOf = config.regionOf;
    if (options.policy == PolicyKind::FreonEC && options.regionOf.empty()) {
        // The paper groups machines 1 and 3 in region 0, 2 and 4 in
        // region 1.
        for (int i = 0; i < config.servers; ++i)
            options.regionOf[names[i]] = (i % 2 == 0) ? 0 : 1;
    }
    FreonController controller(simulator, balancer, options);
    controller.start();

    // Sensor-level fault injectors, keyed by stream; they corrupt the
    // reading after the sensor plane answers, so the solver's ground
    // truth stays honest while tempd sees the lie.
    std::map<std::string, std::unique_ptr<net::SensorFaultInjector>>
        injectors;
    for (const auto &[stream, spec] : config.sensorFaults)
        injectors[stream] = std::make_unique<net::SensorFaultInjector>(spec);

    // The cluster-wide trust layer (one guard, streams keyed
    // "machine.component"); null when disabled, and every wrapper
    // below collapses to the pre-guard behavior.
    std::unique_ptr<guard::SensorGuard> guard;
    if (config.sensorGuard)
        guard = std::make_unique<guard::SensorGuard>(config.guardConfig);
    bridge.service().setSensorGuard(guard.get());

    // tempd reads temperatures through the same message-level sensor
    // interface a real deployment would use.
    std::vector<std::unique_ptr<sensor::SensorClient>> sensors;
    std::vector<std::unique_ptr<Tempd>> tempds;
    for (const std::string &name : names) {
        sensors.push_back(std::make_unique<sensor::SensorClient>(
            std::make_unique<sensor::LocalTransport>(bridge.service()),
            name));
        sensor::SensorClient *client = sensors.back().get();
        core::ThermalGraph &graph = solver.machine(name);
        auto fault = [&injectors, &simulator,
                      name](const std::string &component,
                            std::optional<double> value) {
            auto it = injectors.find(name + "." + component);
            if (it == injectors.end())
                return value;
            return it->second->apply(simulator.nowSeconds(), value);
        };
        auto read = [client,
                     fault](const std::string &component) {
            return fault(component, client->read(component));
        };
        auto util = [&graph, &solver, name](const std::string &component) {
            return graph.utilization(solver.resolveNode(name, component));
        };
        tempds.push_back(std::make_unique<Tempd>(
            simulator, name, config.freon, read,
            [&controller](const TempdReport &report) {
                controller.onReport(report);
            },
            util));
        if (config.batchedReads) {
            tempds.back()->setBatchedRead(
                [client,
                 fault](const std::vector<std::string> &components) {
                    std::vector<std::optional<double>> values =
                        client->readMany(components);
                    for (size_t i = 0;
                         i < components.size() && i < values.size(); ++i)
                        values[i] = fault(components[i], values[i]);
                    return values;
                });
        }
        if (guard)
            tempds.back()->setGuard(guard.get());
        tempds.back()->start();
    }

    // --- Optional hardware-side mechanisms. ---
    std::vector<std::unique_ptr<cluster::DvfsGovernor>> governors;
    if (config.enableDvfs) {
        for (int i = 0; i < config.servers; ++i) {
            const std::string &name = names[i];
            core::ThermalGraph &graph = solver.machine(name);
            const core::NodeSpec *cpu_spec = specs[i].findNode("cpu");
            double p_min = cpu_spec->minPower;
            double p_max = cpu_spec->maxPower;
            cluster::ServerMachine &machine = *machines[i];
            auto read = [&graph] { return graph.temperature("cpu"); };
            // Dynamic power scales ~f^3 with voltage tracking
            // frequency; skip while the bridge holds the machine dark.
            auto apply = [&graph, &machine, p_min, p_max](double f) {
                if (!machine.isOff()) {
                    graph.setPowerRange(
                        "cpu", p_min,
                        p_min + (p_max - p_min) * f * f * f);
                }
            };
            governors.push_back(std::make_unique<cluster::DvfsGovernor>(
                simulator, machine, read, apply, config.dvfs));
            governors.back()->start();
        }
    }

    std::vector<std::unique_ptr<core::FanController>> fans;
    if (config.enableVariableFans) {
        for (const std::string &name : names) {
            fans.push_back(std::make_unique<core::FanController>(
                solver.machine(name), "cpu", config.fanCurve));
        }
        simulator.every(sim::seconds(1.0), [&fans] {
            for (auto &fan : fans)
                fan->update();
            return true;
        });
    }

    // --- Emergencies, injected exactly like a fiddle script. ---
    for (const ExperimentConfig::Emergency &emergency :
         config.emergencies) {
        simulator.at(sim::seconds(emergency.time), [&solver, emergency] {
            fiddle::FiddleResult result = fiddle::applyLine(
                solver, format("fiddle %s temperature inlet %g",
                               emergency.machine.c_str(),
                               emergency.inletCelsius));
            if (!result.ok)
                warn("experiment emergency failed: ", result.message);
        });
    }

    // --- Recording. ---
    ExperimentResult result;
    for (const std::string &name : names) {
        result.cpuTemperature.emplace(name,
                                      TimeSeries(name + ".cpu_temp"));
        result.cpuUtilization.emplace(name,
                                      TimeSeries(name + ".cpu_util"));
        result.diskTemperature.emplace(name,
                                       TimeSeries(name + ".disk_temp"));
        result.peakCpuTemperature[name] = 0.0;
        if (config.enableDvfs)
            result.cpuFrequency.emplace(name, TimeSeries(name + ".freq"));
        if (config.enableVariableFans)
            result.fanCfm.emplace(name, TimeSeries(name + ".fan_cfm"));
    }
    simulator.every(sim::seconds(config.recordPeriod), [&] {
        double now = simulator.nowSeconds();
        int active = controller.activeServers();
        result.activeServers.add(now, active);
        double power = 0.0;
        for (const std::string &name : names) {
            core::ThermalGraph &graph = solver.machine(name);
            double cpu_temp = graph.temperature("cpu");
            result.cpuTemperature.at(name).add(now, cpu_temp);
            result.cpuUtilization.at(name).add(now,
                                               graph.utilization("cpu"));
            result.diskTemperature.at(name).add(
                now, graph.temperature("disk_platters"));
            result.peakCpuTemperature[name] =
                std::max(result.peakCpuTemperature[name], cpu_temp);
            power += graph.totalPower();
        }
        for (size_t i = 0; i < governors.size(); ++i) {
            result.cpuFrequency.at(names[i]).add(
                now, governors[i]->frequency());
        }
        for (size_t i = 0; i < fans.size(); ++i)
            result.fanCfm.at(names[i]).add(now, fans[i]->currentCfm());
        result.clusterPower.add(now, power);
        return true;
    });

    // --- Run. ---
    if (config.shouldStop) {
        simulator.every(sim::seconds(1.0), [&] {
            if (config.shouldStop())
                simulator.requestStop();
            return true;
        });
    }
    double horizon = workload_config.duration + config.tailSeconds;
    simulator.runUntil(sim::seconds(horizon));
    result.stoppedEarly = simulator.stopRequested();

    // --- Collect. ---
    result.submitted = balancer.submitted();
    result.completed = balancer.completed();
    result.dropped = balancer.dropped();
    result.dropRate = balancer.dropRate();
    result.meanLatency = balancer.latencyStats().mean();
    Histogram latency = balancer.latencyHistogram();
    result.p95Latency = latency.quantile(0.95);
    result.p99Latency = latency.quantile(0.99);
    result.serversTurnedOff = controller.serversTurnedOff();
    result.serversTurnedOn = controller.serversTurnedOn();
    result.weightAdjustments = controller.weightAdjustments();
    result.degradedReports = controller.degradedReports();
    result.failSafeApplications = controller.failSafeApplications();
    result.restrictionTransitions = controller.restrictionTransitions();
    if (guard) {
        result.guardAnomalies = guard->anomaliesTotal();
        result.guardSubstitutions = guard->substitutionsTotal();
        result.guardQuarantines = guard->quarantinesTotal();
        result.guardRecoveries = guard->recoveriesTotal();
        result.guardStreams = guard->streamStatuses();
        for (const auto &status : result.guardStreams) {
            if (status.quarantinedAt >= 0.0) {
                result.quarantinedAtSeconds[status.stream] =
                    status.quarantinedAt;
            }
        }
    }
    for (const auto &governor : governors)
        result.throttleEvents += governor->throttleEvents();
    for (const std::string &name : names) {
        result.energyJoules += solver.machine(name).energyConsumed();
        double threshold = config.freon.components.count("cpu")
                               ? config.freon.components.at("cpu").high
                               : 67.0;
        result.firstTimeOverHigh[name] =
            result.cpuTemperature.at(name).firstTimeAbove(threshold);
    }
    if (!config.metricsPath.empty()) {
        metrics::writeTextFile(metrics::Registry::global(),
                               config.metricsPath);
    }
    bridge.service().setSensorGuard(nullptr); // guard dies before bridge
    return result;
}

} // namespace freon
} // namespace mercury
