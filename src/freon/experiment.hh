/**
 * @file
 * The Section 5 experimental setup, packaged: 4 Apache servers behind
 * an LVS load balancer, Mercury deployed on the server nodes (Table 1
 * inputs), tempd on every server, admd at the balancer, a diurnal
 * trace with 30% CGI requests peaking at 70% utilization, and fiddle-
 * injected cooling emergencies. One call runs the whole experiment
 * deterministically and returns every series the paper plots.
 */

#ifndef MERCURY_FREON_EXPERIMENT_HH
#define MERCURY_FREON_EXPERIMENT_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/dvfs.hh"
#include "core/fan.hh"
#include "freon/controller.hh"
#include "guard/sensor_guard.hh"
#include "net/faults.hh"
#include "util/stats.hh"
#include "workload/generator.hh"

namespace mercury {
namespace freon {

/** Everything configurable about one cluster experiment. */
struct ExperimentConfig
{
    /** Server count (the paper evaluates 4). */
    int servers = 4;

    /** Which policy admd runs. */
    PolicyKind policy = PolicyKind::FreonBase;

    /** Freon thresholds/gains, matched to the Table 1 emulated
     *  server's sensitivity (see FreonConfig::table1Defaults). */
    FreonConfig freon = FreonConfig::table1Defaults();

    /** Workload; peakRate <= 0 derives the 70%-of-4-servers rate. */
    workload::WorkloadConfig workload;

    /** AC supply temperature [degC] (Table 1's nominal inlet). */
    double acTemperature = 21.6;

    /** A fiddle-injected cooling emergency. */
    struct Emergency
    {
        double time = 0.0;        //!< seconds into the run
        std::string machine;
        double inletCelsius = 0.0;
    };

    /** Figure 11's two cooling emergencies at 480 s, lasting the whole
     *  run (inlet steps scaled to this model's thermal sensitivity —
     *  see addPaperEmergencies()). */
    std::vector<Emergency> emergencies;

    /** Freon-EC regions (defaulted to {m1,m3} / {m2,m4} when empty). */
    std::map<std::string, int> regionOf;

    /** Freon-EC floor on active servers. */
    int minActiveServers = 1;

    /** Poll each tempd's sensors with one batched request per wake-up
     *  (false = one round trip per component, the pre-batching
     *  behavior). */
    bool batchedReads = true;

    /** Recording period for the output series [s]. */
    double recordPeriod = 10.0;

    /** Extra simulated tail after the workload ends [s]. */
    double tailSeconds = 0.0;

    /** CPU-local DVFS governors on every machine (Section 4.3's
     *  hardware alternative; combinable with any policy). */
    bool enableDvfs = false;
    cluster::DvfsConfig dvfs;

    /** Variable-speed fans steered by the CPU temperature (Section 7
     *  extension). */
    bool enableVariableFans = false;
    core::FanCurve fanCurve;

    /**
     * Sensor trust layer: route every tempd reading through one
     * cluster-wide SensorGuard (streams keyed "machine.component")
     * and let admd run its degraded-mode fail-safe. Default off —
     * the guard-off path is bit-for-bit the pre-guard experiment.
     */
    bool sensorGuard = false;
    guard::GuardConfig guardConfig;

    /**
     * Sensor-level fault injection, keyed by stream name ("m1.cpu").
     * Applied to readings *between* the sensor client and tempd —
     * the solver's ground truth stays clean, which is exactly what
     * lets a test compare emulated reality against what a lying
     * sensor told Freon. Active with or without the guard.
     */
    std::map<std::string, net::SensorFaultSpec> sensorFaults;

    /**
     * Polled once per simulated second; return true to end the run
     * early with whatever has been recorded so far (freon_clusterd's
     * SIGINT/SIGTERM path). Empty = run the full horizon.
     */
    std::function<bool()> shouldStop;

    /**
     * Write the final metrics snapshot (Prometheus text format) here
     * before the experiment objects are torn down — the balancer's and
     * admd's registry hooks die with them, so a caller writing after
     * runExperiment() returns would miss every lb_ and freon_ series.
     */
    std::string metricsPath;

    /** Install the paper's two Figure 11 emergencies at 480 s. */
    void addPaperEmergencies();
};

/** Everything the paper's figures need. */
struct ExperimentResult
{
    /** True when shouldStop ended the run before the horizon. */
    bool stoppedEarly = false;

    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t dropped = 0;
    double dropRate = 0.0;

    /** Completion-latency summary over the whole run [s]. */
    double meanLatency = 0.0;
    double p95Latency = 0.0;
    double p99Latency = 0.0;

    /** Per machine: CPU temperature [degC] over time. */
    std::map<std::string, TimeSeries> cpuTemperature;

    /** Per machine: CPU utilization over time. */
    std::map<std::string, TimeSeries> cpuUtilization;

    /** Per machine: disk temperature [degC] over time. */
    std::map<std::string, TimeSeries> diskTemperature;

    /** Active (on/booting) server count over time. */
    TimeSeries activeServers{"active_servers"};

    /** Whole-cluster electrical power [W] over time. */
    TimeSeries clusterPower{"cluster_power_w"};

    /** Total electrical energy over the run [J]. */
    double energyJoules = 0.0;

    uint64_t serversTurnedOff = 0;
    uint64_t serversTurnedOn = 0;
    uint64_t weightAdjustments = 0;

    /** DVFS: per-machine relative frequency over time (when enabled). */
    std::map<std::string, TimeSeries> cpuFrequency;

    /** DVFS: total downward frequency transitions. */
    uint64_t throttleEvents = 0;

    /** Variable fans: per-machine CFM over time (when enabled). */
    std::map<std::string, TimeSeries> fanCfm;

    /** First time each machine's CPU crossed T_h; -1 if never. */
    std::map<std::string, double> firstTimeOverHigh;

    /** Highest CPU temperature seen per machine. */
    std::map<std::string, double> peakCpuTemperature;

    /** @name Sensor trust layer (populated when sensorGuard is on) */
    /// @{
    uint64_t guardAnomalies = 0;
    uint64_t guardSubstitutions = 0;
    uint64_t guardQuarantines = 0;
    uint64_t guardRecoveries = 0;
    uint64_t degradedReports = 0;
    uint64_t failSafeApplications = 0;

    /** Per-stream guard snapshot at end of run. */
    std::vector<guard::SensorGuard::StreamStatus> guardStreams;

    /** Stream -> first time it entered QUARANTINED (absent if never). */
    std::map<std::string, double> quarantinedAtSeconds;
    /// @}

    /** Restriction install/lift edges admd performed (flap metric). */
    uint64_t restrictionTransitions = 0;
};

/** Run one experiment to completion (deterministic). */
ExperimentResult runExperiment(const ExperimentConfig &config);

} // namespace freon
} // namespace mercury

#endif // MERCURY_FREON_EXPERIMENT_HH
