/**
 * @file
 * Multi-tier services — the paper's Section 7 extension ("Freon needs
 * to be extended to deal with multi-tier services").
 *
 * The setup mirrors a classic two-tier Web service: a front (web)
 * tier terminates every request cheaply, and each dynamic request
 * then issues a sub-request to an application tier that runs the
 * expensive logic. Every machine of both tiers is emulated by the
 * same Mercury solver under one room; each tier has its own LVS-style
 * balancer and its own admd, so a thermal emergency in either tier is
 * handled where it occurs — the web tier keeps serving while the app
 * tier shifts its own load, and vice versa.
 */

#ifndef MERCURY_FREON_TWO_TIER_HH
#define MERCURY_FREON_TWO_TIER_HH

#include <map>
#include <string>
#include <vector>

#include "freon/controller.hh"
#include "guard/sensor_guard.hh"
#include "util/stats.hh"
#include "workload/generator.hh"

namespace mercury {
namespace freon {

/** Configuration of a two-tier experiment. */
struct TwoTierConfig
{
    int webServers = 4;
    int appServers = 3;

    /** Policy for both tiers' admds. */
    PolicyKind policy = PolicyKind::FreonBase;

    FreonConfig freon = FreonConfig::table1Defaults();

    /** Front-tier workload; web CPU cost comes from this config's
     *  static/CGI parameters. */
    workload::WorkloadConfig workload;

    /** App-tier CPU seconds consumed per dynamic request. */
    double appCpuSeconds = 0.020;

    /** App-tier disk seconds per dynamic request. */
    double appDiskSeconds = 0.004;

    double acTemperature = 21.6;

    /** Inlet emergencies (machine names: w1.., a1..). */
    struct Emergency
    {
        double time = 0.0;
        std::string machine;
        double inletCelsius = 0.0;
    };
    std::vector<Emergency> emergencies;

    double recordPeriod = 10.0;

    /** Sensor trust layer for both tiers' tempds (one shared guard,
     *  streams keyed "machine.component"); default off. */
    bool sensorGuard = false;
    guard::GuardConfig guardConfig;
};

/** Per-tier results. */
struct TierResult
{
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t dropped = 0;
    uint64_t weightAdjustments = 0;
    uint64_t serversTurnedOff = 0;
    uint64_t degradedReports = 0;
    uint64_t failSafeApplications = 0;
    std::map<std::string, double> peakCpuTemperature;
    std::map<std::string, TimeSeries> cpuTemperature;
    std::map<std::string, TimeSeries> cpuUtilization;
};

/** Whole-experiment results. */
struct TwoTierResult
{
    TierResult web;
    TierResult app;
    double energyJoules = 0.0;

    /** Sensor trust layer totals (when sensorGuard is on). */
    uint64_t guardAnomalies = 0;
    uint64_t guardQuarantines = 0;
};

/** Run the two-tier experiment to completion (deterministic). */
TwoTierResult runTwoTierExperiment(const TwoTierConfig &config);

} // namespace freon
} // namespace mercury

#endif // MERCURY_FREON_TWO_TIER_HH
