/**
 * @file
 * C++ sensor client: typed reads of emulated sensors, plus a fiddle
 * round-trip helper (the fiddle CLI is a thin wrapper over this).
 */

#ifndef MERCURY_SENSOR_CLIENT_HH
#define MERCURY_SENSOR_CLIENT_HH

#include <memory>
#include <optional>
#include <string>

#include "sensor/transport.hh"

namespace mercury {
namespace sensor {

/**
 * Reads emulated temperatures for one machine through a Transport.
 * "The programmer can treat Mercury as a regular, local sensor
 * device" — this is the typed face of that interface.
 */
class SensorClient
{
  public:
    /**
     * @param transport how to reach the solver (owned)
     * @param machine which machine's sensors to read
     */
    SensorClient(std::unique_ptr<Transport> transport, std::string machine);

    /** Read one component's temperature [degC]; nullopt on failure. */
    std::optional<double> read(const std::string &component);

    /** Send a fiddle command line; returns (ok, diagnostic). */
    std::pair<bool, std::string> fiddle(const std::string &command_line);

    const std::string &machine() const { return machine_; }

  private:
    std::unique_ptr<Transport> transport_;
    std::string machine_;
    uint32_t nextRequestId_ = 1;
};

} // namespace sensor
} // namespace mercury

#endif // MERCURY_SENSOR_CLIENT_HH
