/**
 * @file
 * C++ sensor client: typed reads of emulated sensors, plus a fiddle
 * round-trip helper (the fiddle CLI is a thin wrapper over this).
 */

#ifndef MERCURY_SENSOR_CLIENT_HH
#define MERCURY_SENSOR_CLIENT_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sensor/transport.hh"

namespace mercury {
namespace sensor {

/**
 * Reads emulated temperatures for one machine through a Transport.
 * "The programmer can treat Mercury as a regular, local sensor
 * device" — this is the typed face of that interface.
 */
class SensorClient
{
  public:
    /**
     * @param transport how to reach the solver (owned)
     * @param machine which machine's sensors to read
     */
    SensorClient(std::unique_ptr<Transport> transport, std::string machine);

    /** Read one component's temperature [degC]; nullopt on failure. */
    std::optional<double> read(const std::string &component);

    /**
     * One component's answer, with the failure cause preserved.
     * Exactly one of three shapes: a value (status Ok), a daemon
     * verdict (status != Ok, noReply false), or silence (noReply
     * true — timeout or mismatched reply; status is meaningless).
     * The distinction matters to fault handling: UnknownComponent is
     * a configuration bug, a timeout is a dropout.
     */
    struct ReadOutcome
    {
        std::optional<double> value; //!< set iff status == Ok
        proto::Status status = proto::Status::InternalError;
        bool noReply = false; //!< no usable reply from the daemon
    };

    /** Read one component with the failure cause preserved. */
    ReadOutcome readDetailed(const std::string &component);

    /**
     * Read several components, preferably in one MultiReadRequest
     * datagram per chunk of kMaxMultiReadComponents. An old daemon
     * that predates the batched RPC drops the unknown message type,
     * which surfaces here as a timed-out first batch: the client then
     * latches onto per-sensor reads for its lifetime (logged once).
     * Results are positional; nullopt marks the components that
     * failed.
     */
    std::vector<std::optional<double>>
    readMany(const std::vector<std::string> &components);

    /**
     * readMany with per-component failure causes. A batched reply
     * propagates each entry's own status distinctly — one unknown
     * component never taints its chunk-mates, and a machine-level
     * rejection stamps every component with that verdict rather than
     * an anonymous failure.
     */
    std::vector<ReadOutcome>
    readManyDetailed(const std::vector<std::string> &components);

    /**
     * False once this client has fallen back to per-sensor reads
     * (old daemon). Starts true; readMany() may flip it.
     */
    bool usingBatchedReads() const { return !multiReadUnsupported_; }

    /** Send a fiddle command line; returns (ok, diagnostic). */
    std::pair<bool, std::string> fiddle(const std::string &command_line);

    /**
     * Fetch the daemon's full metrics snapshot via the paginated
     * MetricsRequest RPC (`fiddle metrics` uses this). nullopt when
     * the daemon does not answer (timeout, or a pre-metrics daemon
     * that drops the unknown message type).
     */
    std::optional<std::string> metricsText();

    const std::string &machine() const { return machine_; }

  private:
    std::unique_ptr<Transport> transport_;
    std::string machine_;
    uint32_t nextRequestId_ = 1;
    bool multiReadUnsupported_ = false;
};

} // namespace sensor
} // namespace mercury

#endif // MERCURY_SENSOR_CLIENT_HH
