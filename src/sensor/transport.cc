#include "sensor/transport.hh"

#include "proto/solver_service.hh"
#include "util/logging.hh"

namespace mercury {
namespace sensor {

UdpTransport::UdpTransport(const std::string &host, uint16_t port,
                           double timeout_seconds, int retries)
    : timeoutSeconds_(timeout_seconds), retries_(retries)
{
    auto address = net::resolveHost(host);
    if (!address) {
        warn("sensor: cannot resolve solver host '", host, "'");
        return;
    }
    server_.address = *address;
    server_.port = port;
    socket_.bind(0);
    valid_ = true;
}

std::optional<proto::Message>
UdpTransport::roundTrip(const proto::Packet &request)
{
    if (!valid_)
        return std::nullopt;
    for (int attempt = 0; attempt <= retries_; ++attempt) {
        if (!socket_.sendTo(server_, request.data(), request.size()))
            continue;
        uint8_t buffer[proto::kMessageSize];
        auto got = socket_.recvFrom(buffer, sizeof(buffer), nullptr,
                                    timeoutSeconds_);
        if (!got)
            continue;
        auto reply = proto::decode(buffer, *got);
        if (reply)
            return reply;
    }
    return std::nullopt;
}

LocalTransport::LocalTransport(proto::SolverService &service)
    : service_(service)
{
}

std::optional<proto::Message>
LocalTransport::roundTrip(const proto::Packet &request)
{
    auto reply = service_.handlePacket(request.data(), request.size());
    if (!reply)
        return std::nullopt;
    return proto::decode(*reply);
}

} // namespace sensor
} // namespace mercury
