#include "sensor/transport.hh"

#include <algorithm>

#include "proto/solver_service.hh"
#include "util/logging.hh"

namespace mercury {
namespace sensor {

ChannelTransport::ChannelTransport(std::unique_ptr<net::ClientChannel> channel)
    : ChannelTransport(std::move(channel), Options())
{
}

ChannelTransport::ChannelTransport(std::unique_ptr<net::ClientChannel> channel,
                                   Options options)
    : channel_(std::move(channel)), options_(options)
{
    initMetrics();
}

ChannelTransport::ChannelTransport(Options options)
    : options_(options)
{
    initMetrics();
}

void
ChannelTransport::initMetrics()
{
    metrics::Registry &registry = metrics::Registry::global();
    latencyHist_ = registry.histogram(
        "net_client_roundtrip_seconds",
        metrics::Histogram::latencyBounds(),
        "request/reply latency on the channel clock, all transports");
    retriesCounter_ = registry.counter(
        "net_client_retries_total", "request retransmissions");
    timeoutsCounter_ = registry.counter(
        "net_client_timeouts_total", "attempts with no usable reply");
    failuresCounter_ = registry.counter(
        "net_client_failures_total",
        "round trips that exhausted their deadline budget");
}

void
ChannelTransport::setChannel(std::unique_ptr<net::ClientChannel> channel)
{
    channel_ = std::move(channel);
}

std::optional<proto::Message>
ChannelTransport::roundTrip(const proto::Packet &request)
{
    if (!ensureChannel())
        return std::nullopt;
    ++stats_.roundTrips;

    // One-way messages carry no id; replies are then matched by
    // decodability alone (nothing round-trips them today).
    std::optional<uint32_t> expected = proto::peekRequestId(request);

    const double started = channel_->now();
    const double deadline = started + options_.deadlineSeconds;
    for (int attempt = 0; attempt < options_.maxAttempts; ++attempt) {
        if (channel_->now() >= deadline)
            break;
        if (attempt > 0) {
            ++stats_.retries;
            retriesCounter_->inc();
        }
        if (!channel_->send(request.data(), request.size())) {
            ++stats_.sendFailures;
            continue;
        }
        ++stats_.attempts;

        // Wait for a matching reply, draining stale and undecodable
        // datagrams, until this attempt's slice of the budget is gone.
        double attempt_deadline =
            std::min(deadline,
                     channel_->now() + options_.attemptTimeoutSeconds);
        for (;;) {
            double wait = attempt_deadline - channel_->now();
            if (wait <= 0.0) {
                ++stats_.timeouts;
                timeoutsCounter_->inc();
                break;
            }
            uint8_t buffer[proto::kMessageSize];
            auto got = channel_->recv(buffer, sizeof(buffer), wait);
            if (!got) {
                ++stats_.timeouts;
                timeoutsCounter_->inc();
                break;
            }
            auto reply = proto::decode(buffer, *got);
            if (!reply) {
                ++stats_.decodeFailures;
                continue;
            }
            if (expected) {
                auto reply_id = proto::requestId(*reply);
                if (!reply_id || *reply_id != *expected) {
                    ++stats_.staleReplies;
                    continue;
                }
            }
            latencyHist_->observe(channel_->now() - started);
            return reply;
        }
    }
    ++stats_.failures;
    failuresCounter_->inc();
    return std::nullopt;
}

UdpTransport::UdpTransport(const std::string &host, uint16_t port,
                           double timeout_seconds, int retries)
    : ChannelTransport(Options{timeout_seconds * (retries + 1),
                               timeout_seconds, retries + 1}),
      host_(host), port_(port)
{
    if (!ensureChannel()) {
        resolveWarned_ = true;
        warn("sensor: cannot resolve solver host '", host_,
             "' (will retry on use)");
    }
}

bool
UdpTransport::ensureChannel()
{
    if (hasChannel())
        return true;
    auto address = net::resolveHost(host_);
    if (!address)
        return false;
    net::Endpoint server;
    server.address = *address;
    server.port = port_;
    setChannel(std::make_unique<net::UdpClientChannel>(server));
    if (resolveWarned_)
        inform("sensor: solver host '", host_, "' resolved on retry");
    return true;
}

namespace {

std::unique_ptr<net::FaultyChannel>
makeServiceChannel(proto::SolverService &service,
                   const net::FaultSpec &request_faults,
                   const net::FaultSpec &reply_faults)
{
    return std::make_unique<net::FaultyChannel>(
        [&service](const uint8_t *data, size_t length)
            -> std::optional<net::FaultyChannel::Datagram> {
            auto reply = service.handlePacket(data, length);
            if (!reply)
                return std::nullopt;
            return net::FaultyChannel::Datagram(reply->begin(),
                                                reply->end());
        },
        request_faults, reply_faults);
}

} // namespace

FaultyTransport::FaultyTransport(proto::SolverService &service,
                                 const net::FaultSpec &request_faults,
                                 const net::FaultSpec &reply_faults)
    : FaultyTransport(service, request_faults, reply_faults, Options())
{
}

FaultyTransport::FaultyTransport(proto::SolverService &service,
                                 const net::FaultSpec &request_faults,
                                 const net::FaultSpec &reply_faults,
                                 Options options)
    : ChannelTransport(options)
{
    auto channel =
        makeServiceChannel(service, request_faults, reply_faults);
    channel_ = channel.get();
    setChannel(std::move(channel));
}

LocalTransport::LocalTransport(proto::SolverService &service)
    : service_(service)
{
}

std::optional<proto::Message>
LocalTransport::roundTrip(const proto::Packet &request)
{
    auto reply = service_.handlePacket(request.data(), request.size());
    if (!reply)
        return std::nullopt;
    return proto::decode(*reply);
}

} // namespace sensor
} // namespace mercury
