/**
 * @file
 * The paper's C-style sensor API (Figure 3):
 *
 *   int sd;
 *   float temp;
 *   sd = opensensor("solvermachine", 8367, "disk");
 *   temp = readsensor(sd);
 *   closesensor(sd);
 *
 * opensensor() defaults the machine name to the local hostname, just
 * like probing a local hardware sensor; opensensor_for() names the
 * machine explicitly (useful when one process watches a whole
 * cluster, as Freon's admd does in tests).
 *
 * For in-process experiments, installLocalSolver() short-circuits the
 * UDP path: subsequent opensensor() calls with the host "local" talk
 * directly to the given service.
 *
 * When the solver host is this host, readsensor() first tries the
 * solver's shared-memory telemetry segment (seqlock-protected loads,
 * tens of nanoseconds) and only falls back to the UDP round trip when
 * the segment is absent, mismatched, or stale. The segment name
 * defaults to the per-port name the daemon publishes; the environment
 * overrides it (MERCURY_SHM_NAME) or disables the fast path entirely
 * (MERCURY_NO_SHM=1).
 */

#ifndef MERCURY_SENSOR_SENSOR_API_HH
#define MERCURY_SENSOR_SENSOR_API_HH

namespace mercury {
namespace proto {
class SolverService;
} // namespace proto
} // namespace mercury

/**
 * Open an emulated sensor on the solver at @p host : @p port for
 * @p component of the local machine. Returns a descriptor >= 0, or -1
 * on failure.
 */
int opensensor(const char *host, int port, const char *component);

/** Like opensensor() but for an explicit machine. */
int opensensor_for(const char *host, int port, const char *machine,
                   const char *component);

/**
 * Read the sensor. Returns the temperature in degrees Celsius, or a
 * quiet NaN when the read fails (bad descriptor, timeout, unknown
 * component).
 */
float readsensor(int sd);

/**
 * Read @p count sensors at once: temperatures[i] answers
 * descriptors[i] (quiet NaN on failure, like readsensor()). Shm-backed
 * descriptors are answered from the telemetry segment; the rest are
 * grouped so each solver machine is asked with at most one batched
 * request datagram per 12 components. Returns the number of
 * successful reads, or -1 when the arguments are invalid.
 */
int readsensors(const int *descriptors, float *temperatures, int count);

/** Close the sensor; invalid descriptors are ignored. */
void closesensor(int sd);

/** @name Which path answered (introspection for tests and tools) */
/// @{
#define MERCURY_SENSOR_PATH_NONE 0 //!< never read, or bad descriptor
#define MERCURY_SENSOR_PATH_SHM 1  //!< shared-memory telemetry segment
#define MERCURY_SENSOR_PATH_UDP 2  //!< request/reply round trip

/** The path the most recent read of @p sd used. */
int sensorpath(int sd);
/// @}

/**
 * Route subsequent opensensor("local", ...) calls straight into an
 * in-process solver service (pass nullptr to uninstall).
 */
void installLocalSolver(mercury::proto::SolverService *service);

#endif // MERCURY_SENSOR_SENSOR_API_HH
