/**
 * @file
 * The paper's C-style sensor API (Figure 3):
 *
 *   int sd;
 *   float temp;
 *   sd = opensensor("solvermachine", 8367, "disk");
 *   temp = readsensor(sd);
 *   closesensor(sd);
 *
 * opensensor() defaults the machine name to the local hostname, just
 * like probing a local hardware sensor; opensensor_for() names the
 * machine explicitly (useful when one process watches a whole
 * cluster, as Freon's admd does in tests).
 *
 * For in-process experiments, installLocalSolver() short-circuits the
 * UDP path: subsequent opensensor() calls with the host "local" talk
 * directly to the given service.
 */

#ifndef MERCURY_SENSOR_SENSOR_API_HH
#define MERCURY_SENSOR_SENSOR_API_HH

namespace mercury {
namespace proto {
class SolverService;
} // namespace proto
} // namespace mercury

/**
 * Open an emulated sensor on the solver at @p host : @p port for
 * @p component of the local machine. Returns a descriptor >= 0, or -1
 * on failure.
 */
int opensensor(const char *host, int port, const char *component);

/** Like opensensor() but for an explicit machine. */
int opensensor_for(const char *host, int port, const char *machine,
                   const char *component);

/**
 * Read the sensor. Returns the temperature in degrees Celsius, or a
 * quiet NaN when the read fails (bad descriptor, timeout, unknown
 * component).
 */
float readsensor(int sd);

/** Close the sensor; invalid descriptors are ignored. */
void closesensor(int sd);

/**
 * Route subsequent opensensor("local", ...) calls straight into an
 * in-process solver service (pass nullptr to uninstall).
 */
void installLocalSolver(mercury::proto::SolverService *service);

#endif // MERCURY_SENSOR_SENSOR_API_HH
