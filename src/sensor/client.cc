#include "sensor/client.hh"

#include "util/logging.hh"

namespace mercury {
namespace sensor {

SensorClient::SensorClient(std::unique_ptr<Transport> transport,
                           std::string machine)
    : transport_(std::move(transport)), machine_(std::move(machine))
{
    if (!transport_)
        MERCURY_PANIC("SensorClient: null transport");
}

std::optional<double>
SensorClient::read(const std::string &component)
{
    proto::SensorRequest request;
    request.requestId = nextRequestId_++;
    request.machine = machine_;
    request.component = component;

    auto reply = transport_->roundTrip(proto::encode(request));
    if (!reply)
        return std::nullopt;
    const auto *sensor_reply = std::get_if<proto::SensorReply>(&*reply);
    if (!sensor_reply || sensor_reply->requestId != request.requestId ||
        sensor_reply->status != proto::Status::Ok) {
        return std::nullopt;
    }
    return sensor_reply->temperature;
}

std::pair<bool, std::string>
SensorClient::fiddle(const std::string &command_line)
{
    proto::FiddleRequest request;
    request.requestId = nextRequestId_++;
    request.commandLine = command_line;

    auto reply = transport_->roundTrip(proto::encode(request));
    if (!reply)
        return {false, "no reply from solver"};
    const auto *fiddle_reply = std::get_if<proto::FiddleReply>(&*reply);
    if (!fiddle_reply || fiddle_reply->requestId != request.requestId)
        return {false, "mismatched reply from solver"};
    return {fiddle_reply->status == proto::Status::Ok,
            fiddle_reply->message};
}

} // namespace sensor
} // namespace mercury
