#include "sensor/client.hh"

#include "util/logging.hh"

namespace mercury {
namespace sensor {

SensorClient::SensorClient(std::unique_ptr<Transport> transport,
                           std::string machine)
    : transport_(std::move(transport)), machine_(std::move(machine))
{
    if (!transport_)
        MERCURY_PANIC("SensorClient: null transport");
}

std::optional<double>
SensorClient::read(const std::string &component)
{
    return readDetailed(component).value;
}

SensorClient::ReadOutcome
SensorClient::readDetailed(const std::string &component)
{
    proto::SensorRequest request;
    request.requestId = nextRequestId_++;
    request.machine = machine_;
    request.component = component;

    ReadOutcome out;
    auto reply = transport_->roundTrip(proto::encode(request));
    const proto::SensorReply *sensor_reply =
        reply ? std::get_if<proto::SensorReply>(&*reply) : nullptr;
    if (!sensor_reply || sensor_reply->requestId != request.requestId) {
        out.noReply = true;
        return out;
    }
    out.status = sensor_reply->status;
    if (out.status == proto::Status::Ok)
        out.value = sensor_reply->temperature;
    return out;
}

std::vector<std::optional<double>>
SensorClient::readMany(const std::vector<std::string> &components)
{
    std::vector<ReadOutcome> detailed = readManyDetailed(components);
    std::vector<std::optional<double>> out(detailed.size());
    for (size_t i = 0; i < detailed.size(); ++i)
        out[i] = detailed[i].value;
    return out;
}

std::vector<SensorClient::ReadOutcome>
SensorClient::readManyDetailed(const std::vector<std::string> &components)
{
    std::vector<ReadOutcome> out(components.size());
    size_t begin = 0;
    while (begin < components.size()) {
        // Grow the chunk greedily while the packed request still fits.
        std::vector<std::string> chunk;
        size_t end = begin;
        while (end < components.size()) {
            chunk.push_back(components[end]);
            if (!proto::multiReadFits(chunk)) {
                chunk.pop_back();
                break;
            }
            ++end;
        }
        if (chunk.empty()) {
            // This one name alone does not fit a request (too long for
            // the wire); the per-sensor path shares the same limit and
            // will report the failure.
            out[begin] = readDetailed(components[begin]);
            ++begin;
            continue;
        }
        if (multiReadUnsupported_) {
            for (size_t i = begin; i < end; ++i)
                out[i] = readDetailed(components[i]);
            begin = end;
            continue;
        }

        proto::MultiReadRequest request;
        request.requestId = nextRequestId_++;
        request.machine = machine_;
        request.components = chunk;
        auto reply = transport_->roundTrip(proto::encode(request));
        const proto::MultiReadReply *multi =
            reply ? std::get_if<proto::MultiReadReply>(&*reply) : nullptr;
        if (!multi || multi->requestId != request.requestId) {
            // An old daemon drops the unknown message type on the
            // floor, so the round trip times out. Latch the fallback:
            // paying the deadline budget once per poll forever would
            // be worse than the lost batching.
            if (!multiReadUnsupported_) {
                multiReadUnsupported_ = true;
                warn("sensor: no batched-read reply from the solver for "
                     "'", machine_, "'; using per-sensor reads from now "
                     "on (old daemon?)");
            }
            for (size_t i = begin; i < end; ++i)
                out[i] = readDetailed(components[i]);
            begin = end;
            continue;
        }
        if (multi->status != proto::Status::Ok) {
            // Machine-level rejection: every component carries the
            // daemon's verdict, not an anonymous failure.
            for (size_t i = begin; i < end; ++i)
                out[i].status = multi->status;
        } else if (multi->entries.size() != chunk.size()) {
            // Malformed reply (entry count disagrees): InternalError,
            // distinct from both a timeout and a daemon verdict.
            for (size_t i = begin; i < end; ++i)
                out[i].status = proto::Status::InternalError;
        } else {
            for (size_t i = 0; i < chunk.size(); ++i) {
                out[begin + i].status = multi->entries[i].status;
                if (multi->entries[i].status == proto::Status::Ok)
                    out[begin + i].value = multi->entries[i].temperature;
            }
        }
        begin = end;
    }
    return out;
}

std::optional<std::string>
SensorClient::metricsText()
{
    std::string text;
    uint32_t offset = 0;
    // 512 fragments bound the loop (and the snapshot) at ~56 KB even
    // against a hostile/buggy server that never sends nextOffset 0.
    for (int page = 0; page < 512; ++page) {
        proto::MetricsRequest request;
        request.requestId = nextRequestId_++;
        request.offset = offset;
        auto reply = transport_->roundTrip(proto::encode(request));
        if (!reply)
            return std::nullopt;
        const auto *metrics = std::get_if<proto::MetricsReply>(&*reply);
        if (!metrics || metrics->requestId != request.requestId ||
            metrics->status != proto::Status::Ok) {
            return std::nullopt;
        }
        text += metrics->fragment;
        if (metrics->nextOffset == 0)
            return text;
        if (metrics->nextOffset <= offset)
            return std::nullopt; // non-advancing server: bail out
        offset = metrics->nextOffset;
    }
    return std::nullopt;
}

std::pair<bool, std::string>
SensorClient::fiddle(const std::string &command_line)
{
    proto::FiddleRequest request;
    request.requestId = nextRequestId_++;
    request.commandLine = command_line;

    auto reply = transport_->roundTrip(proto::encode(request));
    if (!reply)
        return {false, "no reply from solver"};
    const auto *fiddle_reply = std::get_if<proto::FiddleReply>(&*reply);
    if (!fiddle_reply || fiddle_reply->requestId != request.requestId)
        return {false, "mismatched reply from solver"};
    return {fiddle_reply->status == proto::Status::Ok,
            fiddle_reply->message};
}

} // namespace sensor
} // namespace mercury
