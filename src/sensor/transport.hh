/**
 * @file
 * Request/reply transports for the sensor library and fiddle client.
 *
 * Two implementations: real UDP against a mercury_solverd process
 * (what the paper measures at ~300 us per readsensor()), and an
 * in-process shortcut straight into a SolverService (what the
 * discrete-event cluster experiments and the tests use — same message
 * bytes, no sockets).
 */

#ifndef MERCURY_SENSOR_TRANSPORT_HH
#define MERCURY_SENSOR_TRANSPORT_HH

#include <memory>
#include <optional>
#include <string>

#include "net/udp.hh"
#include "proto/messages.hh"

namespace mercury {

namespace proto {
class SolverService;
} // namespace proto

namespace sensor {

/**
 * Sends one encoded request packet and waits for the reply packet.
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Perform one round trip. Returns nullopt on timeout or when the
     * reply cannot be decoded.
     */
    virtual std::optional<proto::Message>
    roundTrip(const proto::Packet &request) = 0;
};

/**
 * UDP transport with per-request timeout and bounded retries.
 */
class UdpTransport : public Transport
{
  public:
    /**
     * @param host solver host name or address
     * @param port solver UDP port
     * @param timeout_seconds per-attempt reply timeout
     * @param retries additional attempts after the first
     */
    UdpTransport(const std::string &host, uint16_t port,
                 double timeout_seconds = 0.25, int retries = 2);

    /** True when the host resolved and the socket is usable. */
    bool valid() const { return valid_; }

    std::optional<proto::Message>
    roundTrip(const proto::Packet &request) override;

  private:
    net::UdpSocket socket_;
    net::Endpoint server_;
    double timeoutSeconds_;
    int retries_;
    bool valid_ = false;
};

/**
 * Direct in-process dispatch into a SolverService.
 */
class LocalTransport : public Transport
{
  public:
    explicit LocalTransport(proto::SolverService &service);

    std::optional<proto::Message>
    roundTrip(const proto::Packet &request) override;

  private:
    proto::SolverService &service_;
};

} // namespace sensor
} // namespace mercury

#endif // MERCURY_SENSOR_TRANSPORT_HH
