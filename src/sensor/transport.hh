/**
 * @file
 * Request/reply transports for the sensor library and fiddle client.
 *
 * Three implementations: real UDP against a mercury_solverd process
 * (what the paper measures at ~300 us per readsensor()), any
 * net::ClientChannel via ChannelTransport (the fault-injection tests
 * drive the identical retry loop over a virtual-time channel), and an
 * in-process shortcut straight into a SolverService (what the
 * discrete-event cluster experiments use — same message bytes, no
 * sockets).
 *
 * The round-trip loop is hardened against a lossy network: one
 * deadline budget covers all attempts of a call (a retry only gets
 * what remains, never a fresh full timeout), and replies are matched
 * by requestId inside the loop, so stale replies left over from
 * previous timed-out calls are drained and discarded instead of being
 * returned as the answer.
 */

#ifndef MERCURY_SENSOR_TRANSPORT_HH
#define MERCURY_SENSOR_TRANSPORT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "metrics/metrics.hh"
#include "net/channel.hh"
#include "net/faults.hh"
#include "net/udp.hh"
#include "proto/messages.hh"

namespace mercury {

namespace proto {
class SolverService;
} // namespace proto

namespace sensor {

/** Observable health of a transport's round trips. */
struct TransportStats
{
    uint64_t roundTrips = 0;     //!< roundTrip() calls
    uint64_t attempts = 0;       //!< request datagrams sent
    uint64_t retries = 0;        //!< attempts beyond each call's first
    uint64_t timeouts = 0;       //!< attempts that saw no usable reply
    uint64_t staleReplies = 0;   //!< drained requestId mismatches
    uint64_t decodeFailures = 0; //!< undecodable datagrams received
    uint64_t sendFailures = 0;   //!< sends the OS refused
    uint64_t failures = 0;       //!< round trips that exhausted budget
};

/**
 * Sends one encoded request packet and waits for the reply packet.
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Perform one round trip. Returns nullopt on timeout or when the
     * reply cannot be decoded.
     */
    virtual std::optional<proto::Message>
    roundTrip(const proto::Packet &request) = 0;
};

/**
 * The hardened retry/deadline round-trip loop over any ClientChannel.
 */
class ChannelTransport : public Transport
{
  public:
    struct Options
    {
        /** Total budget for one roundTrip() call, all attempts
         *  included. */
        double deadlineSeconds = 0.75;

        /** How long one attempt waits before retransmitting (clamped
         *  to the remaining deadline). */
        double attemptTimeoutSeconds = 0.25;

        /** Attempts per call (first send + retransmits). */
        int maxAttempts = 3;
    };

    explicit ChannelTransport(std::unique_ptr<net::ClientChannel> channel);
    ChannelTransport(std::unique_ptr<net::ClientChannel> channel,
                     Options options);

    std::optional<proto::Message>
    roundTrip(const proto::Packet &request) override;

    const TransportStats &stats() const { return stats_; }

  protected:
    /** For subclasses that install the channel lazily. */
    explicit ChannelTransport(Options options);

    void setChannel(std::unique_ptr<net::ClientChannel> channel);
    bool hasChannel() const { return channel_ != nullptr; }

  private:
    /** Hook for lazy channel construction; default: already set? */
    virtual bool ensureChannel() { return hasChannel(); }

    void initMetrics();

    std::unique_ptr<net::ClientChannel> channel_;
    Options options_;
    TransportStats stats_;

    /** Process-global request/reply health (all transports pooled);
     *  latency is measured on the channel's clock, so virtual-time
     *  channels report virtual latency. */
    metrics::Histogram *latencyHist_ = nullptr;
    metrics::Counter *retriesCounter_ = nullptr;
    metrics::Counter *timeoutsCounter_ = nullptr;
    metrics::Counter *failuresCounter_ = nullptr;
};

/**
 * UDP transport with a per-call deadline budget and bounded retries.
 */
class UdpTransport final : public ChannelTransport
{
  public:
    /**
     * @param host solver host name or address
     * @param port solver UDP port
     * @param timeout_seconds per-attempt reply timeout
     * @param retries additional attempts after the first
     *
     * The per-call deadline budget is timeout_seconds * (retries + 1),
     * the worst case of the old fresh-timeout-per-retry scheme.
     */
    UdpTransport(const std::string &host, uint16_t port,
                 double timeout_seconds = 0.25, int retries = 2);

    /**
     * True when the host has resolved and the socket is usable. A
     * transport that failed to resolve at construction is not dead:
     * roundTrip() re-attempts resolution on each use until it
     * succeeds.
     */
    bool valid() const { return hasChannel(); }

  private:
    bool ensureChannel() override;

    std::string host_;
    uint16_t port_;
    bool resolveWarned_ = false;
};

/**
 * In-process transport through a fault-injecting channel: the same
 * hardened retry loop as UdpTransport, but every datagram crosses a
 * seeded lossy "network" (net::FaultyChannel) into a SolverService,
 * on a virtual clock. This is how emulation runs and tests exercise
 * drop/duplicate/reorder/delay without sockets or wall-clock time.
 */
class FaultyTransport final : public ChannelTransport
{
  public:
    FaultyTransport(proto::SolverService &service,
                    const net::FaultSpec &request_faults,
                    const net::FaultSpec &reply_faults);
    FaultyTransport(proto::SolverService &service,
                    const net::FaultSpec &request_faults,
                    const net::FaultSpec &reply_faults, Options options);

    /** The underlying channel (fault counters, virtual clock). */
    net::FaultyChannel &channel() { return *channel_; }

  private:
    net::FaultyChannel *channel_; //!< owned by the base class
};

/**
 * Direct in-process dispatch into a SolverService.
 */
class LocalTransport : public Transport
{
  public:
    explicit LocalTransport(proto::SolverService &service);

    std::optional<proto::Message>
    roundTrip(const proto::Packet &request) override;

  private:
    proto::SolverService &service_;
};

} // namespace sensor
} // namespace mercury

#endif // MERCURY_SENSOR_TRANSPORT_HH
