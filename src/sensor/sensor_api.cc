#include "sensor/sensor_api.hh"

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <chrono>

#include "metrics/metrics.hh"
#include "sensor/client.hh"
#include "telemetry/layout.hh"
#include "telemetry/reader.hh"
#include "util/logging.hh"

namespace {

using mercury::proto::SolverService;
using mercury::sensor::LocalTransport;
using mercury::sensor::SensorClient;
using mercury::sensor::Transport;
using mercury::sensor::UdpTransport;
using mercury::telemetry::Reader;

struct OpenSensor
{
    /** Shared per (host, port, machine): descriptors for the same
     *  solver machine batch onto one client in readsensors(). */
    std::shared_ptr<SensorClient> client;
    std::string component;

    /** Telemetry fast path; null when the solver is remote or shm is
     *  disabled. The resolved slot is cached; Reader::read() rejects
     *  it automatically when the mapping generation moves on. */
    std::shared_ptr<Reader> shm;
    std::optional<Reader::Slot> slot;

    int lastPath = MERCURY_SENSOR_PATH_NONE;
};

std::mutex registryMutex;
std::map<int, OpenSensor> registry;
int nextDescriptor = 1;
SolverService *localService = nullptr;

/** Read-latency split by path, plus the fallback counter (global
 *  registry; the C API has no other configuration surface). */
struct PathMetrics
{
    mercury::metrics::Histogram *shmLatency;
    mercury::metrics::Histogram *udpLatency;
    mercury::metrics::Counter *shmFallbacks;
};

PathMetrics &
pathMetrics()
{
    static PathMetrics instance = [] {
        auto &reg = mercury::metrics::Registry::global();
        PathMetrics m;
        m.shmLatency = reg.histogram(
            "sensor_shm_read_seconds",
            mercury::metrics::Histogram::latencyBounds(),
            "readsensor() latency over the shm fast path");
        m.udpLatency = reg.histogram(
            "sensor_udp_read_seconds",
            mercury::metrics::Histogram::latencyBounds(),
            "readsensor() latency over the network path");
        m.shmFallbacks = reg.counter(
            "sensor_shm_fallback_total",
            "reads that had a shm segment but fell back to the network");
        return m;
    }();
    return instance;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** (host '\n' port '\n' machine) -> live client, for batching. */
std::map<std::string, std::weak_ptr<SensorClient>> clientCache;

/** shm name -> live reader, so one process maps a segment once. */
std::map<std::string, std::weak_ptr<Reader>> readerCache;

std::string
localHostname()
{
    char buf[256] = {};
    if (::gethostname(buf, sizeof(buf) - 1) != 0)
        return "localhost";
    return buf;
}

/** Is the solver host this host, making its shm segment reachable? */
bool
hostIsLocal(const std::string &host)
{
    return host == "local" || host == "localhost" ||
           host == "127.0.0.1" || host == "::1" ||
           host == localHostname();
}

bool
shmDisabled()
{
    const char *value = std::getenv("MERCURY_NO_SHM");
    return value && *value && std::string(value) != "0";
}

std::string
shmNameFor(int port)
{
    const char *override_name = std::getenv("MERCURY_SHM_NAME");
    if (override_name && *override_name)
        return mercury::telemetry::normalizeShmName(override_name);
    return mercury::telemetry::defaultShmName(
        static_cast<uint16_t>(port));
}

std::shared_ptr<Reader>
readerFor(const std::string &shm_name)
{
    auto &weak = readerCache[shm_name];
    std::shared_ptr<Reader> reader = weak.lock();
    if (!reader) {
        reader = std::make_shared<Reader>(shm_name);
        weak = reader;
    }
    return reader;
}

/**
 * Try the telemetry segment. Caches the resolved slot; a read refused
 * because the writer restarted with a new topology drops the cache and
 * resolves once more before giving up (registryMutex held).
 */
std::optional<double>
readShmLocked(OpenSensor &sensor)
{
    if (!sensor.shm)
        return std::nullopt;
    for (int attempt = 0; attempt < 2; ++attempt) {
        if (!sensor.slot) {
            sensor.slot = sensor.shm->resolve(sensor.client->machine(),
                                              sensor.component);
            if (!sensor.slot)
                return std::nullopt;
        }
        auto sample = sensor.shm->read(*sensor.slot);
        if (sample)
            return sample->temperature;
        sensor.slot.reset();
    }
    return std::nullopt;
}

} // namespace

int
opensensor_for(const char *host, int port, const char *machine,
               const char *component)
{
    if (!host || !machine || !component || port <= 0 || port > 65535)
        return -1;

    std::string host_name = host;
    std::string cache_key =
        host_name + "\n" + std::to_string(port) + "\n" + machine;

    std::unique_ptr<Transport> transport;
    {
        std::lock_guard<std::mutex> guard(registryMutex);
        if (host_name == "local" && localService) {
            transport = std::make_unique<LocalTransport>(*localService);
        }
    }
    if (!transport) {
        auto udp = std::make_unique<UdpTransport>(
            host_name, static_cast<uint16_t>(port));
        if (!udp->valid())
            return -1;
        transport = std::move(udp);
    }

    std::lock_guard<std::mutex> guard(registryMutex);
    OpenSensor sensor;
    auto &weak = clientCache[cache_key];
    sensor.client = weak.lock();
    if (!sensor.client) {
        sensor.client = std::make_shared<SensorClient>(
            std::move(transport), machine);
        weak = sensor.client;
    }
    sensor.component = component;
    if (hostIsLocal(host_name) && !shmDisabled())
        sensor.shm = readerFor(shmNameFor(port));

    int sd = nextDescriptor++;
    registry[sd] = std::move(sensor);
    return sd;
}

int
opensensor(const char *host, int port, const char *component)
{
    return opensensor_for(host, port, localHostname().c_str(), component);
}

float
readsensor(int sd)
{
    // The registry lock is held across the round trip so a concurrent
    // closesensor() cannot free the client mid-read. Descriptors are a
    // convenience API; heavy multi-threaded use should hold its own
    // SensorClient instances instead.
    std::lock_guard<std::mutex> guard(registryMutex);
    auto it = registry.find(sd);
    if (it == registry.end())
        return std::numeric_limits<float>::quiet_NaN();
    OpenSensor &sensor = it->second;

    auto start = std::chrono::steady_clock::now();
    auto fast = readShmLocked(sensor);
    if (fast) {
        sensor.lastPath = MERCURY_SENSOR_PATH_SHM;
        pathMetrics().shmLatency->observe(secondsSince(start));
        return static_cast<float>(*fast);
    }
    if (sensor.shm)
        pathMetrics().shmFallbacks->inc();

    auto value = sensor.client->read(sensor.component);
    pathMetrics().udpLatency->observe(secondsSince(start));
    if (!value)
        return std::numeric_limits<float>::quiet_NaN();
    sensor.lastPath = MERCURY_SENSOR_PATH_UDP;
    return static_cast<float>(*value);
}

int
readsensors(const int *descriptors, float *temperatures, int count)
{
    if (!descriptors || !temperatures || count < 0)
        return -1;

    std::lock_guard<std::mutex> guard(registryMutex);
    int successes = 0;

    // Descriptors still needing the network after the shm pass,
    // grouped by client so every machine costs one batched request
    // per 12 components.
    std::map<SensorClient *, std::vector<int>> pending;

    for (int i = 0; i < count; ++i) {
        temperatures[i] = std::numeric_limits<float>::quiet_NaN();
        auto it = registry.find(descriptors[i]);
        if (it == registry.end())
            continue;
        OpenSensor &sensor = it->second;
        auto start = std::chrono::steady_clock::now();
        auto fast = readShmLocked(sensor);
        if (fast) {
            sensor.lastPath = MERCURY_SENSOR_PATH_SHM;
            pathMetrics().shmLatency->observe(secondsSince(start));
            temperatures[i] = static_cast<float>(*fast);
            ++successes;
            continue;
        }
        if (sensor.shm)
            pathMetrics().shmFallbacks->inc();
        pending[sensor.client.get()].push_back(i);
    }

    for (auto &[client, indices] : pending) {
        std::vector<std::string> components;
        components.reserve(indices.size());
        for (int i : indices)
            components.push_back(registry[descriptors[i]].component);
        auto start = std::chrono::steady_clock::now();
        std::vector<std::optional<double>> values =
            client->readMany(components);
        pathMetrics().udpLatency->observe(secondsSince(start));
        for (size_t k = 0; k < indices.size(); ++k) {
            if (!values[k])
                continue;
            int i = indices[k];
            registry[descriptors[i]].lastPath = MERCURY_SENSOR_PATH_UDP;
            temperatures[i] = static_cast<float>(*values[k]);
            ++successes;
        }
    }
    return successes;
}

void
closesensor(int sd)
{
    std::lock_guard<std::mutex> guard(registryMutex);
    registry.erase(sd);
}

int
sensorpath(int sd)
{
    std::lock_guard<std::mutex> guard(registryMutex);
    auto it = registry.find(sd);
    if (it == registry.end())
        return MERCURY_SENSOR_PATH_NONE;
    return it->second.lastPath;
}

void
installLocalSolver(SolverService *service)
{
    std::lock_guard<std::mutex> guard(registryMutex);
    localService = service;
}
