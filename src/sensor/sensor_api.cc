#include "sensor/sensor_api.hh"

#include <unistd.h>

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "sensor/client.hh"
#include "util/logging.hh"

namespace {

using mercury::proto::SolverService;
using mercury::sensor::LocalTransport;
using mercury::sensor::SensorClient;
using mercury::sensor::Transport;
using mercury::sensor::UdpTransport;

struct OpenSensor
{
    std::unique_ptr<SensorClient> client;
    std::string component;
};

std::mutex registryMutex;
std::map<int, OpenSensor> registry;
int nextDescriptor = 1;
SolverService *localService = nullptr;

std::string
localHostname()
{
    char buf[256] = {};
    if (::gethostname(buf, sizeof(buf) - 1) != 0)
        return "localhost";
    return buf;
}

} // namespace

int
opensensor_for(const char *host, int port, const char *machine,
               const char *component)
{
    if (!host || !machine || !component || port <= 0 || port > 65535)
        return -1;

    std::unique_ptr<Transport> transport;
    {
        std::lock_guard<std::mutex> guard(registryMutex);
        if (std::string(host) == "local" && localService) {
            transport = std::make_unique<LocalTransport>(*localService);
        }
    }
    if (!transport) {
        auto udp = std::make_unique<UdpTransport>(
            host, static_cast<uint16_t>(port));
        if (!udp->valid())
            return -1;
        transport = std::move(udp);
    }

    std::lock_guard<std::mutex> guard(registryMutex);
    int sd = nextDescriptor++;
    registry[sd] = OpenSensor{
        std::make_unique<SensorClient>(std::move(transport), machine),
        component};
    return sd;
}

int
opensensor(const char *host, int port, const char *component)
{
    return opensensor_for(host, port, localHostname().c_str(), component);
}

float
readsensor(int sd)
{
    // The registry lock is held across the round trip so a concurrent
    // closesensor() cannot free the client mid-read. Descriptors are a
    // convenience API; heavy multi-threaded use should hold its own
    // SensorClient instances instead.
    std::lock_guard<std::mutex> guard(registryMutex);
    auto it = registry.find(sd);
    if (it == registry.end())
        return std::numeric_limits<float>::quiet_NaN();
    auto value = it->second.client->read(it->second.component);
    if (!value)
        return std::numeric_limits<float>::quiet_NaN();
    return static_cast<float>(*value);
}

void
closesensor(int sd)
{
    std::lock_guard<std::mutex> guard(registryMutex);
    registry.erase(sd);
}

void
installLocalSolver(SolverService *service)
{
    std::lock_guard<std::mutex> guard(registryMutex);
    localService = service;
}
