/**
 * @file
 * monitord: periodically samples a machine's component utilizations
 * and ships them to the solver as 128-byte UtilizationUpdate messages
 * (paper Section 2.3). The update frequency is a tunable set to one
 * second by default, like the paper's.
 *
 * The sink is pluggable: a UDP sink for the real daemon, an in-process
 * sink straight into a SolverService for simulated clusters and tests.
 */

#ifndef MERCURY_MONITOR_MONITORD_HH
#define MERCURY_MONITOR_MONITORD_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "guard/sensor_guard.hh"
#include "monitor/source.hh"
#include "net/faults.hh"
#include "net/udp.hh"
#include "proto/messages.hh"

namespace mercury {

namespace proto {
class SolverService;
} // namespace proto

namespace monitor {

/**
 * The monitoring daemon for one machine.
 */
class Monitord
{
  public:
    /** Delivers one encoded update to the solver. */
    using Sink = std::function<void(const proto::UtilizationUpdate &)>;

    /**
     * @param machine name reported in every update
     * @param source utilization source (owned)
     * @param sink update delivery (UDP or in-process)
     */
    Monitord(std::string machine, std::unique_ptr<UtilizationSource> source,
             Sink sink);

    /** Sample once and ship every reading. Call once per interval. */
    void tick(double now_seconds);

    /**
     * Route every sampled reading through a sensor trust layer
     * (borrowed; use GuardConfig::utilizationProfile() for the
     * bounds). Implausible samples ship their substitute with the
     * update's `substituted` trust tag set, so the solver never
     * integrates a wedged utilization counter as real heat — and can
     * still see that it happened.
     */
    void setGuard(guard::SensorGuard *guard) { guard_ = guard; }

    uint64_t updatesSent() const { return updatesSent_; }

    /** Updates shipped with a guard-substituted value. */
    uint64_t updatesSubstituted() const { return updatesSubstituted_; }

    const std::string &machine() const { return machine_; }

    /** @name Outage backlog
     * While the solver is unreachable, thermal integration would
     * silently lose its heat input: the solver keeps stepping with the
     * last utilization it saw. With a backlog enabled, samples taken
     * while offline are queued (bounded, oldest dropped) and shipped
     * on reconnect. Sequences are assigned at sampling time either
     * way, so the solver's loss accounting stays truthful: an
     * overflowed or hold-last-skipped sample reads as a lost packet,
     * never as a phantom delivery.
     */
    /// @{

    /** What to ship from the backlog when the solver comes back. */
    enum class GapFillPolicy {
        /** Ship every queued sample in order — the solver applies the
         *  whole utilization history (best thermal fidelity). */
        Replay,
        /** Ship only the newest sample per component; skipped
         *  sequences surface as losses (cheapest catch-up). */
        HoldLast,
    };

    struct BacklogConfig
    {
        size_t capacity = 600; //!< queued samples kept (per daemon)
        GapFillPolicy policy = GapFillPolicy::Replay;
    };

    /** Enable queue-while-offline with the given bound and policy. */
    void enableBacklog(BacklogConfig config);

    /**
     * Tell the daemon whether the solver is reachable (the app's
     * probe loop decides). Going online flushes the backlog through
     * the sink, per policy. Daemons start online.
     */
    void setOnline(bool online);
    bool online() const { return online_; }

    /** Samples currently queued. */
    uint64_t backlogDepth() const { return backlog_.size(); }

    /** Samples never shipped: capacity overflow + hold-last skips. */
    uint64_t backlogDropped() const { return backlogDropped_; }

    /** Samples shipped from the backlog on reconnects. */
    uint64_t backlogReplayed() const { return backlogReplayed_; }

    /// @}

    /** Sink that sends 128-byte datagrams to a solver endpoint. */
    static Sink udpSink(std::shared_ptr<net::UdpSocket> socket,
                        net::Endpoint solver);

    /** Sink that feeds a SolverService directly (same packet bytes). */
    static Sink serviceSink(proto::SolverService &service);

    /**
     * Wrap any sink in seeded fault injection: updates are dropped,
     * duplicated, or reordered (held back one delivery) per the
     * injector's plans. The injector is shared so tests can compare
     * its exact counters against the solver's detected loss.
     */
    static Sink faultySink(Sink inner,
                           std::shared_ptr<net::FaultInjector> injector);

  private:
    /** One sample queued during an outage. */
    struct QueuedSample
    {
        proto::UtilizationUpdate update;
        double sampledAtSeconds = 0.0;
    };

    void flushBacklog();

    std::string machine_;
    std::unique_ptr<UtilizationSource> source_;
    Sink sink_;
    guard::SensorGuard *guard_ = nullptr;
    uint64_t updatesSent_ = 0;
    uint64_t updatesSubstituted_ = 0;
    uint64_t sequence_ = 0;

    bool backlogEnabled_ = false;
    BacklogConfig backlogConfig_;
    bool online_ = true;
    std::deque<QueuedSample> backlog_;
    uint64_t backlogDropped_ = 0;
    uint64_t backlogReplayed_ = 0;
};

/**
 * Coalesces udpSink-style per-update datagrams into sendMany batches.
 *
 * A /proc machine reports a handful of components per tick and an
 * outage replay ships hundreds of queued samples back-to-back; sending
 * each as its own sendto() pays one syscall per update. Feeding a
 * Monitord through sink() instead queues the encoded packets here, and
 * flush() ships the whole tick in kMaxBatch-sized sendmmsg calls.
 *
 * The batcher must outlive any sink() it handed out. flush() must be
 * called after every tick()/setOnline() (a full queue also flushes
 * itself, so nothing is ever dropped between flushes).
 */
class UpdateBatcher
{
  public:
    UpdateBatcher(std::shared_ptr<net::UdpSocket> socket,
                  net::Endpoint solver);

    /** A Monitord sink that queues updates on this batcher. */
    Monitord::Sink sink();

    /** Ship everything queued (no-op when empty). */
    void flush();

    uint64_t queued() const { return queued_.size(); }
    uint64_t datagramsSent() const { return datagramsSent_; }
    uint64_t sendErrors() const { return sendErrors_; }

  private:
    void push(const proto::UtilizationUpdate &update);

    std::shared_ptr<net::UdpSocket> socket_;
    net::Endpoint solver_;
    std::vector<proto::Packet> queued_;
    uint64_t datagramsSent_ = 0;
    uint64_t sendErrors_ = 0;
    bool warnedSendFailure_ = false;
};

} // namespace monitor
} // namespace mercury

#endif // MERCURY_MONITOR_MONITORD_HH
