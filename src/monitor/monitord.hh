/**
 * @file
 * monitord: periodically samples a machine's component utilizations
 * and ships them to the solver as 128-byte UtilizationUpdate messages
 * (paper Section 2.3). The update frequency is a tunable set to one
 * second by default, like the paper's.
 *
 * The sink is pluggable: a UDP sink for the real daemon, an in-process
 * sink straight into a SolverService for simulated clusters and tests.
 */

#ifndef MERCURY_MONITOR_MONITORD_HH
#define MERCURY_MONITOR_MONITORD_HH

#include <functional>
#include <memory>
#include <string>

#include "monitor/source.hh"
#include "net/faults.hh"
#include "net/udp.hh"
#include "proto/messages.hh"

namespace mercury {

namespace proto {
class SolverService;
} // namespace proto

namespace monitor {

/**
 * The monitoring daemon for one machine.
 */
class Monitord
{
  public:
    /** Delivers one encoded update to the solver. */
    using Sink = std::function<void(const proto::UtilizationUpdate &)>;

    /**
     * @param machine name reported in every update
     * @param source utilization source (owned)
     * @param sink update delivery (UDP or in-process)
     */
    Monitord(std::string machine, std::unique_ptr<UtilizationSource> source,
             Sink sink);

    /** Sample once and ship every reading. Call once per interval. */
    void tick(double now_seconds);

    uint64_t updatesSent() const { return updatesSent_; }
    const std::string &machine() const { return machine_; }

    /** Sink that sends 128-byte datagrams to a solver endpoint. */
    static Sink udpSink(std::shared_ptr<net::UdpSocket> socket,
                        net::Endpoint solver);

    /** Sink that feeds a SolverService directly (same packet bytes). */
    static Sink serviceSink(proto::SolverService &service);

    /**
     * Wrap any sink in seeded fault injection: updates are dropped,
     * duplicated, or reordered (held back one delivery) per the
     * injector's plans. The injector is shared so tests can compare
     * its exact counters against the solver's detected loss.
     */
    static Sink faultySink(Sink inner,
                           std::shared_ptr<net::FaultInjector> injector);

  private:
    std::string machine_;
    std::unique_ptr<UtilizationSource> source_;
    Sink sink_;
    uint64_t updatesSent_ = 0;
    uint64_t sequence_ = 0;
};

} // namespace monitor
} // namespace mercury

#endif // MERCURY_MONITOR_MONITORD_HH
