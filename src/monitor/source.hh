/**
 * @file
 * Utilization sources for monitord.
 *
 * The paper's monitord samples CPU/disk/NIC utilization from /proc
 * once per second. This reproduction keeps that source (it works on
 * any Linux host) and adds three more that feed the same daemon:
 * trace playback (offline mode), synthetic waveforms (calibration
 * microbenchmarks), and a synthetic performance-counter source that
 * exercises the Pentium 4 event-energy path of Section 2.3.
 */

#ifndef MERCURY_MONITOR_SOURCE_HH
#define MERCURY_MONITOR_SOURCE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/power.hh"
#include "core/trace.hh"
#include "util/random.hh"

namespace mercury {
namespace monitor {

/** One sampled component utilization. */
struct Reading
{
    std::string component;
    double utilization = 0.0; //!< [0, 1]
};

/**
 * Produces utilization readings for one machine.
 */
class UtilizationSource
{
  public:
    virtual ~UtilizationSource() = default;

    /**
     * Sample the utilizations for the interval ending now.
     * @param now_seconds monotonically increasing timestamp.
     */
    virtual std::vector<Reading> sample(double now_seconds) = 0;
};

/**
 * Real /proc sampling (Linux). CPU from /proc/stat, disk from
 * /proc/diskstats (milliseconds doing I/O), network from /proc/net/dev
 * byte counters against a nominal link capacity. Utilizations are
 * deltas, so the first sample reports zeros.
 */
class ProcSource : public UtilizationSource
{
  public:
    /**
     * @param nic_bytes_per_second nominal full-duplex link capacity
     * @param proc_root where the procfs lives; tests point this at a
     * fixture directory containing stat/diskstats/net_dev files
     */
    explicit ProcSource(double nic_bytes_per_second = 125e6,
                        std::string proc_root = "/proc");

    std::vector<Reading> sample(double now_seconds) override;

    /** True when /proc was readable at construction. */
    bool available() const { return available_; }

  private:
    struct CpuTimes
    {
        uint64_t busy = 0;
        uint64_t total = 0;
    };

    CpuTimes readCpu();
    uint64_t readDiskIoMs();
    uint64_t readNetBytes();

    /** Path of one procfs file under the configured root. */
    std::string procPath(const char *name) const;

    std::string procRoot_;
    double nicBytesPerSecond_;
    bool available_ = false;
    bool first_ = true;
    double lastTime_ = 0.0;
    CpuTimes lastCpu_;
    uint64_t lastDiskMs_ = 0;
    uint64_t lastNetBytes_ = 0;
};

/**
 * Replays one machine's utilizations from a trace.
 */
class TraceSource : public UtilizationSource
{
  public:
    /** @param trace borrowed; must outlive the source. */
    TraceSource(const core::UtilizationTrace &trace, std::string machine);

    std::vector<Reading> sample(double now_seconds) override;

  private:
    const core::UtilizationTrace &trace_;
    std::string machine_;
    size_t next_ = 0;
    std::map<std::string, double> current_;
};

/**
 * Function-of-time utilizations — the calibration microbenchmarks
 * (Figures 5-8) are built from these.
 */
class SyntheticSource : public UtilizationSource
{
  public:
    /** Utilization in [0, 1] as a function of time [s]. */
    using Waveform = std::function<double(double)>;

    /** Register one component's waveform. */
    void addComponent(const std::string &component, Waveform waveform);

    std::vector<Reading> sample(double now_seconds) override;

  private:
    std::vector<std::pair<std::string, Waveform>> components_;
};

/**
 * Synthetic hardware performance counters for one CPU: a load level in
 * [0, 1] is turned into plausible per-interval event counts (with
 * multiplicative noise), which are then pushed through the
 * event-energy model and normalised back to a "low-level utilization"
 * — exactly the monitord pipeline the paper describes for the P4.
 */
class CounterSource : public UtilizationSource
{
  public:
    using Waveform = std::function<double(double)>;

    /**
     * @param model event-energy model (defines the event classes)
     * @param load CPU load level over time
     * @param peak_rates per-event-class counts per second at load 1.0
     * @param seed RNG seed for the count noise
     * @param component reported component name
     */
    CounterSource(core::PerfCounterPowerModel model, Waveform load,
                  std::vector<double> peak_rates, uint64_t seed = 1,
                  std::string component = "cpu");

    std::vector<Reading> sample(double now_seconds) override;

    /** The raw counts of the last sample (for tests/diagnostics). */
    const std::vector<uint64_t> &lastCounts() const { return lastCounts_; }

  private:
    core::PerfCounterPowerModel model_;
    Waveform load_;
    std::vector<double> peakRates_;
    Rng rng_;
    std::string component_;
    double lastTime_ = 0.0;
    bool first_ = true;
    std::vector<uint64_t> lastCounts_;
};

} // namespace monitor
} // namespace mercury

#endif // MERCURY_MONITOR_SOURCE_HH
