#include "monitor/source.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/strings.hh"

namespace mercury {
namespace monitor {

ProcSource::ProcSource(double nic_bytes_per_second, std::string proc_root)
    : procRoot_(std::move(proc_root)),
      nicBytesPerSecond_(nic_bytes_per_second)
{
    std::ifstream stat(procPath("stat"));
    available_ = stat.good();
}

std::string
ProcSource::procPath(const char *name) const
{
    return procRoot_ + "/" + name;
}

ProcSource::CpuTimes
ProcSource::readCpu()
{
    CpuTimes out;
    std::ifstream stat(procPath("stat"));
    std::string line;
    while (std::getline(stat, line)) {
        if (!startsWith(line, "cpu "))
            continue;
        auto fields = splitWhitespace(line);
        // cpu user nice system idle iowait irq softirq steal ...
        uint64_t total = 0;
        uint64_t idle = 0;
        for (size_t i = 1; i < fields.size() && i <= 10; ++i) {
            auto value = parseInt(fields[i]);
            if (!value)
                continue;
            total += static_cast<uint64_t>(*value);
            if (i == 4 || i == 5) // idle + iowait
                idle += static_cast<uint64_t>(*value);
        }
        out.total = total;
        out.busy = total - idle;
        break;
    }
    return out;
}

uint64_t
ProcSource::readDiskIoMs()
{
    std::ifstream diskstats(procPath("diskstats"));
    std::string line;
    uint64_t io_ms = 0;
    while (std::getline(diskstats, line)) {
        auto fields = splitWhitespace(line);
        // major minor name reads ... field 12 (0-based in fields: 12)
        // is "time spent doing I/Os (ms)".
        if (fields.size() < 13)
            continue;
        const std::string &name = fields[2];
        // Skip partitions, loop and ram devices; keep whole disks.
        if (startsWith(name, "loop") || startsWith(name, "ram"))
            continue;
        bool partition = !name.empty() &&
                         std::isdigit(static_cast<unsigned char>(
                             name.back())) &&
                         (startsWith(name, "sd") || startsWith(name, "hd") ||
                          startsWith(name, "vd"));
        if (partition)
            continue;
        auto value = parseInt(fields[12]);
        if (value)
            io_ms += static_cast<uint64_t>(*value);
    }
    return io_ms;
}

uint64_t
ProcSource::readNetBytes()
{
    std::ifstream netdev(procPath("net/dev"));
    std::string line;
    uint64_t bytes = 0;
    while (std::getline(netdev, line)) {
        size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string name = trim(line.substr(0, colon));
        if (name == "lo")
            continue;
        auto fields = splitWhitespace(line.substr(colon + 1));
        if (fields.size() < 9)
            continue;
        auto rx = parseInt(fields[0]);
        auto tx = parseInt(fields[8]);
        if (rx)
            bytes += static_cast<uint64_t>(*rx);
        if (tx)
            bytes += static_cast<uint64_t>(*tx);
    }
    return bytes;
}

std::vector<Reading>
ProcSource::sample(double now_seconds)
{
    if (!available_)
        return {};
    CpuTimes cpu = readCpu();
    uint64_t disk_ms = readDiskIoMs();
    uint64_t net_bytes = readNetBytes();

    std::vector<Reading> out;
    if (first_) {
        first_ = false;
        out.push_back({"cpu", 0.0});
        out.push_back({"disk", 0.0});
        out.push_back({"net", 0.0});
    } else {
        double dt = std::max(1e-6, now_seconds - lastTime_);
        double cpu_util = 0.0;
        if (cpu.total > lastCpu_.total) {
            cpu_util = static_cast<double>(cpu.busy - lastCpu_.busy) /
                       static_cast<double>(cpu.total - lastCpu_.total);
        }
        double disk_util =
            static_cast<double>(disk_ms - lastDiskMs_) / (dt * 1000.0);
        double net_util = static_cast<double>(net_bytes - lastNetBytes_) /
                          (dt * nicBytesPerSecond_);
        out.push_back({"cpu", std::clamp(cpu_util, 0.0, 1.0)});
        out.push_back({"disk", std::clamp(disk_util, 0.0, 1.0)});
        out.push_back({"net", std::clamp(net_util, 0.0, 1.0)});
    }
    lastTime_ = now_seconds;
    lastCpu_ = cpu;
    lastDiskMs_ = disk_ms;
    lastNetBytes_ = net_bytes;
    return out;
}

TraceSource::TraceSource(const core::UtilizationTrace &trace,
                         std::string machine)
    : trace_(trace), machine_(std::move(machine))
{
}

std::vector<Reading>
TraceSource::sample(double now_seconds)
{
    const auto &samples = trace_.samples();
    while (next_ < samples.size() && samples[next_].time <= now_seconds) {
        if (samples[next_].machine == machine_)
            current_[samples[next_].component] = samples[next_].utilization;
        ++next_;
    }
    std::vector<Reading> out;
    out.reserve(current_.size());
    for (const auto &[component, utilization] : current_)
        out.push_back({component, utilization});
    return out;
}

void
SyntheticSource::addComponent(const std::string &component,
                              Waveform waveform)
{
    if (!waveform)
        MERCURY_PANIC("SyntheticSource: empty waveform for ", component);
    components_.emplace_back(component, std::move(waveform));
}

std::vector<Reading>
SyntheticSource::sample(double now_seconds)
{
    std::vector<Reading> out;
    out.reserve(components_.size());
    for (const auto &[component, waveform] : components_) {
        out.push_back(
            {component, std::clamp(waveform(now_seconds), 0.0, 1.0)});
    }
    return out;
}

CounterSource::CounterSource(core::PerfCounterPowerModel model,
                             Waveform load, std::vector<double> peak_rates,
                             uint64_t seed, std::string component)
    : model_(std::move(model)), load_(std::move(load)),
      peakRates_(std::move(peak_rates)), rng_(seed),
      component_(std::move(component))
{
    if (peakRates_.size() != model_.eventCount()) {
        MERCURY_PANIC("CounterSource: ", peakRates_.size(),
                      " peak rates for ", model_.eventCount(),
                      " event classes");
    }
}

std::vector<Reading>
CounterSource::sample(double now_seconds)
{
    double dt = first_ ? 1.0 : std::max(1e-6, now_seconds - lastTime_);
    first_ = false;
    lastTime_ = now_seconds;

    double load = std::clamp(load_(now_seconds), 0.0, 1.0);
    lastCounts_.assign(model_.eventCount(), 0);
    for (size_t i = 0; i < peakRates_.size(); ++i) {
        double expected = load * peakRates_[i] * dt;
        // +-5% multiplicative noise, floored at zero.
        double noisy = expected * (1.0 + 0.05 * rng_.gaussian());
        lastCounts_[i] =
            static_cast<uint64_t>(std::llround(std::max(0.0, noisy)));
    }
    double power = model_.intervalPower(lastCounts_, dt);
    return {{component_, model_.lowLevelUtilization(power)}};
}

} // namespace monitor
} // namespace mercury
