#include "monitor/monitord.hh"

#include "proto/solver_service.hh"
#include "util/logging.hh"

namespace mercury {
namespace monitor {

Monitord::Monitord(std::string machine,
                   std::unique_ptr<UtilizationSource> source, Sink sink)
    : machine_(std::move(machine)), source_(std::move(source)),
      sink_(std::move(sink))
{
    if (!source_)
        MERCURY_PANIC("Monitord: null source");
    if (!sink_)
        MERCURY_PANIC("Monitord: null sink");
}

void
Monitord::tick(double now_seconds)
{
    for (const Reading &reading : source_->sample(now_seconds)) {
        proto::UtilizationUpdate update;
        update.machine = machine_;
        update.component = reading.component;
        update.utilization = reading.utilization;
        if (guard_) {
            guard::TrustedSample sample =
                guard_->filter(machine_ + "." + reading.component,
                               now_seconds, reading.utilization);
            if (sample.hasValue) {
                update.utilization = sample.value;
                update.substituted = sample.substituted ? 1 : 0;
                if (sample.substituted)
                    ++updatesSubstituted_;
            }
        }
        update.sequence = sequence_++;
        if (backlogEnabled_ && !online_) {
            if (backlog_.size() >= backlogConfig_.capacity) {
                backlog_.pop_front();
                ++backlogDropped_;
            }
            backlog_.push_back({std::move(update), now_seconds});
            continue;
        }
        sink_(update);
        ++updatesSent_;
    }
}

void
Monitord::enableBacklog(BacklogConfig config)
{
    if (config.capacity == 0)
        MERCURY_PANIC("Monitord::enableBacklog: zero capacity");
    backlogEnabled_ = true;
    backlogConfig_ = config;
}

void
Monitord::setOnline(bool online)
{
    if (online == online_)
        return;
    online_ = online;
    if (online_)
        flushBacklog();
}

void
Monitord::flushBacklog()
{
    if (backlog_.empty())
        return;
    if (backlogConfig_.policy == GapFillPolicy::HoldLast) {
        // Keep only the newest sample per component; earlier ones were
        // superseded during the outage. Their sequences go unsent on
        // purpose — the solver counts them as losses, which they are.
        for (size_t i = 0; i < backlog_.size(); ++i) {
            bool superseded = false;
            for (size_t j = i + 1; j < backlog_.size(); ++j) {
                if (backlog_[j].update.component ==
                    backlog_[i].update.component) {
                    superseded = true;
                    break;
                }
            }
            if (superseded) {
                backlog_[i].update.machine.clear(); // mark skipped
                ++backlogDropped_;
            }
        }
    }
    while (!backlog_.empty()) {
        QueuedSample sample = std::move(backlog_.front());
        backlog_.pop_front();
        if (sample.update.machine.empty())
            continue; // hold-last skip
        sample.update.backlog =
            static_cast<uint32_t>(backlog_.size());
        sink_(sample.update);
        ++updatesSent_;
        ++backlogReplayed_;
    }
}

Monitord::Sink
Monitord::udpSink(std::shared_ptr<net::UdpSocket> socket,
                  net::Endpoint solver)
{
    if (!socket)
        MERCURY_PANIC("Monitord::udpSink: null socket");
    return [socket, solver](const proto::UtilizationUpdate &update) {
        proto::Packet packet = proto::encode(update);
        socket->sendTo(solver, packet.data(), packet.size());
    };
}

Monitord::Sink
Monitord::serviceSink(proto::SolverService &service)
{
    return [&service](const proto::UtilizationUpdate &update) {
        proto::Packet packet = proto::encode(update);
        service.handlePacket(packet.data(), packet.size());
    };
}

Monitord::Sink
Monitord::faultySink(Sink inner,
                     std::shared_ptr<net::FaultInjector> injector)
{
    if (!inner)
        MERCURY_PANIC("Monitord::faultySink: null inner sink");
    if (!injector)
        MERCURY_PANIC("Monitord::faultySink: null injector");
    // A reordered update is held back (with its duplicate count) and
    // released once a later update has overtaken it.
    struct Held
    {
        proto::UtilizationUpdate update;
        int copies = 1;
    };
    auto held = std::make_shared<std::optional<Held>>();
    auto release = [inner, held] {
        if (!*held)
            return;
        for (int copy = 0; copy < (*held)->copies; ++copy)
            inner((*held)->update);
        held->reset();
    };
    return [inner, injector, held,
            release](const proto::UtilizationUpdate &u) {
        net::FaultPlan plan = injector->plan();
        if (plan.drop)
            return;
        if (plan.reordered) {
            release(); // the previous hold has now been overtaken
            *held = Held{u, plan.copies};
            return;
        }
        for (int copy = 0; copy < plan.copies; ++copy)
            inner(u);
        release();
    };
}

UpdateBatcher::UpdateBatcher(std::shared_ptr<net::UdpSocket> socket,
                             net::Endpoint solver)
    : socket_(std::move(socket)), solver_(solver)
{
    if (!socket_)
        MERCURY_PANIC("UpdateBatcher: null socket");
    queued_.reserve(net::UdpSocket::kMaxBatch);
}

Monitord::Sink
UpdateBatcher::sink()
{
    return [this](const proto::UtilizationUpdate &update) {
        push(update);
    };
}

void
UpdateBatcher::push(const proto::UtilizationUpdate &update)
{
    queued_.push_back(proto::encode(update));
    if (queued_.size() >= net::UdpSocket::kMaxBatch)
        flush();
}

void
UpdateBatcher::flush()
{
    if (queued_.empty())
        return;
    std::vector<net::UdpSocket::SendDatagram> items;
    items.reserve(queued_.size());
    for (const proto::Packet &packet : queued_) {
        net::UdpSocket::SendDatagram item;
        item.to = solver_;
        item.data = packet.data();
        item.length = packet.size();
        items.push_back(item);
    }
    size_t sent = socket_->sendMany(items.data(), items.size());
    datagramsSent_ += sent;
    if (sent < items.size()) {
        sendErrors_ += items.size() - sent;
        // Updates are fire-and-forget; the solver's sequence tracking
        // surfaces the loss. Warn once so a dead route is visible.
        if (!warnedSendFailure_) {
            warnedSendFailure_ = true;
            warn("monitord: failed to send ", items.size() - sent,
                 " update(s) to ", solver_.toString(),
                 " (counted, not re-logged)");
        }
    }
    queued_.clear();
}

} // namespace monitor
} // namespace mercury
