#include "monitor/monitord.hh"

#include "proto/solver_service.hh"
#include "util/logging.hh"

namespace mercury {
namespace monitor {

Monitord::Monitord(std::string machine,
                   std::unique_ptr<UtilizationSource> source, Sink sink)
    : machine_(std::move(machine)), source_(std::move(source)),
      sink_(std::move(sink))
{
    if (!source_)
        MERCURY_PANIC("Monitord: null source");
    if (!sink_)
        MERCURY_PANIC("Monitord: null sink");
}

void
Monitord::tick(double now_seconds)
{
    for (const Reading &reading : source_->sample(now_seconds)) {
        proto::UtilizationUpdate update;
        update.machine = machine_;
        update.component = reading.component;
        update.utilization = reading.utilization;
        update.sequence = sequence_++;
        sink_(update);
        ++updatesSent_;
    }
}

Monitord::Sink
Monitord::udpSink(std::shared_ptr<net::UdpSocket> socket,
                  net::Endpoint solver)
{
    if (!socket)
        MERCURY_PANIC("Monitord::udpSink: null socket");
    return [socket, solver](const proto::UtilizationUpdate &update) {
        proto::Packet packet = proto::encode(update);
        socket->sendTo(solver, packet.data(), packet.size());
    };
}

Monitord::Sink
Monitord::serviceSink(proto::SolverService &service)
{
    return [&service](const proto::UtilizationUpdate &update) {
        proto::Packet packet = proto::encode(update);
        service.handlePacket(packet.data(), packet.size());
    };
}

} // namespace monitor
} // namespace mercury
