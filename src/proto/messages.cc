#include "proto/messages.hh"

#include <bit>
#include <cstring>

#include "util/logging.hh"

namespace mercury {
namespace proto {

namespace {

constexpr size_t kNameWidth = 32;
constexpr size_t kFiddleRequestWidth = kMessageSize - 8 - 4;  // 116
constexpr size_t kFiddleReplyWidth = kMessageSize - 8 - 4 - 1; // 115
constexpr size_t kMetricsFragmentWidth =
    kMessageSize - 8 - 4 - 1 - 4; // 111 (110 content bytes + NUL pad)
static_assert(kMetricsFragmentMax == kMetricsFragmentWidth - 1);

/** Little-endian primitive writers/readers over a Packet. */
class Writer
{
  public:
    explicit Writer(Packet &packet) : packet_(packet)
    {
        packet_.fill(0);
    }

    void
    u8(uint8_t value)
    {
        check(1);
        packet_[pos_++] = value;
    }

    void
    u16(uint16_t value)
    {
        check(2);
        packet_[pos_++] = static_cast<uint8_t>(value);
        packet_[pos_++] = static_cast<uint8_t>(value >> 8);
    }

    void
    u32(uint32_t value)
    {
        u16(static_cast<uint16_t>(value));
        u16(static_cast<uint16_t>(value >> 16));
    }

    void
    u64(uint64_t value)
    {
        u32(static_cast<uint32_t>(value));
        u32(static_cast<uint32_t>(value >> 32));
    }

    void
    f64(double value)
    {
        u64(std::bit_cast<uint64_t>(value));
    }

    /** NUL-padded fixed-width string field; fatal when too long. */
    void
    fixedString(const std::string &value, size_t width,
                const char *field)
    {
        if (value.size() >= width) {
            fatal("proto: field '", field, "' too long (",
                  value.size(), " >= ", width, " bytes): ", value);
        }
        check(width);
        std::memcpy(packet_.data() + pos_, value.data(), value.size());
        pos_ += width;
    }

    /** Length-prefixed string (u8 length + bytes); fatal when too
     *  long for a wire name or the remaining packet. */
    void
    packedString(const std::string &value, const char *field)
    {
        if (value.empty() || value.size() >= kNameWidth) {
            fatal("proto: packed field '", field, "' bad length ",
                  value.size(), ": ", value);
        }
        u8(static_cast<uint8_t>(value.size()));
        check(value.size());
        std::memcpy(packet_.data() + pos_, value.data(), value.size());
        pos_ += value.size();
    }

  private:
    void
    check(size_t need)
    {
        if (pos_ + need > kMessageSize)
            MERCURY_PANIC("proto: packet overflow at offset ", pos_);
    }

    Packet &packet_;
    size_t pos_ = 0;
};

class Reader
{
  public:
    explicit Reader(const Packet &packet) : packet_(packet) {}

    uint8_t
    u8()
    {
        return packet_[pos_++];
    }

    uint16_t
    u16()
    {
        uint16_t lo = u8();
        uint16_t hi = u8();
        return static_cast<uint16_t>(lo | (hi << 8));
    }

    uint32_t
    u32()
    {
        uint32_t lo = u16();
        uint32_t hi = u16();
        return lo | (hi << 16);
    }

    uint64_t
    u64()
    {
        uint64_t lo = u32();
        uint64_t hi = u32();
        return lo | (hi << 32);
    }

    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }

    std::string
    fixedString(size_t width)
    {
        size_t len = 0;
        while (len < width && packet_[pos_ + len] != 0)
            ++len;
        std::string out(reinterpret_cast<const char *>(packet_.data() +
                                                       pos_),
                        len);
        pos_ += width;
        return out;
    }

    /** Length-prefixed string; nullopt on a hostile length byte. */
    std::optional<std::string>
    packedString()
    {
        if (pos_ + 1 > kMessageSize)
            return std::nullopt;
        size_t len = u8();
        if (len == 0 || len >= kNameWidth || pos_ + len > kMessageSize)
            return std::nullopt;
        std::string out(reinterpret_cast<const char *>(packet_.data() +
                                                       pos_),
                        len);
        pos_ += len;
        return out;
    }

  private:
    const Packet &packet_;
    size_t pos_ = 0;
};

void
writeHeader(Writer &writer, MessageType type)
{
    writer.u32(kMagic);
    writer.u8(kVersion);
    writer.u8(static_cast<uint8_t>(type));
    writer.u16(0); // reserved
}

} // namespace

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Ok:               return "ok";
      case Status::UnknownMachine:   return "unknown machine";
      case Status::UnknownComponent: return "unknown component";
      case Status::BadCommand:       return "bad command";
      case Status::InternalError:    return "internal error";
    }
    return "?";
}

Packet
encode(const UtilizationUpdate &msg)
{
    Packet packet;
    Writer writer(packet);
    writeHeader(writer, MessageType::UtilizationUpdate);
    writer.fixedString(msg.machine, kNameWidth, "machine");
    writer.fixedString(msg.component, kNameWidth, "component");
    writer.f64(msg.utilization);
    writer.u64(msg.sequence);
    writer.u32(msg.backlog);
    writer.u8(msg.substituted);
    return packet;
}

Packet
encode(const SensorRequest &msg)
{
    Packet packet;
    Writer writer(packet);
    writeHeader(writer, MessageType::SensorRequest);
    writer.u32(msg.requestId);
    writer.fixedString(msg.machine, kNameWidth, "machine");
    writer.fixedString(msg.component, kNameWidth, "component");
    return packet;
}

Packet
encode(const SensorReply &msg)
{
    Packet packet;
    Writer writer(packet);
    writeHeader(writer, MessageType::SensorReply);
    writer.u32(msg.requestId);
    writer.u8(static_cast<uint8_t>(msg.status));
    writer.u8(0);
    writer.u16(0);
    writer.f64(msg.temperature);
    return packet;
}

Packet
encode(const FiddleRequest &msg)
{
    Packet packet;
    Writer writer(packet);
    writeHeader(writer, MessageType::FiddleRequest);
    writer.u32(msg.requestId);
    writer.fixedString(msg.commandLine, kFiddleRequestWidth, "command");
    return packet;
}

Packet
encode(const FiddleReply &msg)
{
    Packet packet;
    Writer writer(packet);
    writeHeader(writer, MessageType::FiddleReply);
    writer.u32(msg.requestId);
    writer.u8(static_cast<uint8_t>(msg.status));
    writer.fixedString(msg.message, kFiddleReplyWidth, "message");
    return packet;
}

bool
multiReadFits(const std::vector<std::string> &components)
{
    if (components.empty() ||
        components.size() > kMaxMultiReadComponents)
        return false;
    size_t packed = 0;
    for (const std::string &component : components) {
        if (component.empty() || component.size() >= kNameWidth)
            return false;
        packed += 1 + component.size();
    }
    return packed <= kMultiReadNameBudget;
}

Packet
encode(const MultiReadRequest &msg)
{
    if (!multiReadFits(msg.components)) {
        fatal("proto: MultiReadRequest with ", msg.components.size(),
              " components does not fit one datagram");
    }
    Packet packet;
    Writer writer(packet);
    writeHeader(writer, MessageType::MultiReadRequest);
    writer.u32(msg.requestId);
    writer.fixedString(msg.machine, kNameWidth, "machine");
    writer.u8(static_cast<uint8_t>(msg.components.size()));
    for (const std::string &component : msg.components)
        writer.packedString(component, "component");
    return packet;
}

Packet
encode(const MultiReadReply &msg)
{
    if (msg.entries.size() > kMaxMultiReadComponents) {
        fatal("proto: MultiReadReply with ", msg.entries.size(),
              " entries does not fit one datagram");
    }
    Packet packet;
    Writer writer(packet);
    writeHeader(writer, MessageType::MultiReadReply);
    writer.u32(msg.requestId);
    writer.u8(static_cast<uint8_t>(msg.status));
    writer.u8(static_cast<uint8_t>(msg.entries.size()));
    for (const MultiReadEntry &entry : msg.entries) {
        writer.u8(static_cast<uint8_t>(entry.status));
        writer.f64(entry.temperature);
    }
    return packet;
}

Packet
encode(const MetricsRequest &msg)
{
    Packet packet;
    Writer writer(packet);
    writeHeader(writer, MessageType::MetricsRequest);
    writer.u32(msg.requestId);
    writer.u32(msg.offset);
    return packet;
}

Packet
encode(const MetricsReply &msg)
{
    Packet packet;
    Writer writer(packet);
    writeHeader(writer, MessageType::MetricsReply);
    writer.u32(msg.requestId);
    writer.u8(static_cast<uint8_t>(msg.status));
    writer.u32(msg.nextOffset);
    writer.fixedString(msg.fragment, kMetricsFragmentWidth, "fragment");
    return packet;
}

std::optional<Message>
decode(const Packet &packet)
{
    Reader reader(packet);
    if (reader.u32() != kMagic)
        return std::nullopt;
    if (reader.u8() != kVersion)
        return std::nullopt;
    uint8_t type = reader.u8();
    reader.u16(); // reserved

    switch (static_cast<MessageType>(type)) {
      case MessageType::UtilizationUpdate: {
        UtilizationUpdate msg;
        msg.machine = reader.fixedString(kNameWidth);
        msg.component = reader.fixedString(kNameWidth);
        msg.utilization = reader.f64();
        msg.sequence = reader.u64();
        msg.backlog = reader.u32();
        msg.substituted = reader.u8();
        if (msg.machine.empty() || msg.component.empty())
            return std::nullopt;
        return msg;
      }
      case MessageType::SensorRequest: {
        SensorRequest msg;
        msg.requestId = reader.u32();
        msg.machine = reader.fixedString(kNameWidth);
        msg.component = reader.fixedString(kNameWidth);
        if (msg.machine.empty() || msg.component.empty())
            return std::nullopt;
        return msg;
      }
      case MessageType::SensorReply: {
        SensorReply msg;
        msg.requestId = reader.u32();
        uint8_t status = reader.u8();
        if (status > static_cast<uint8_t>(Status::InternalError))
            return std::nullopt;
        msg.status = static_cast<Status>(status);
        reader.u8();
        reader.u16();
        msg.temperature = reader.f64();
        return msg;
      }
      case MessageType::FiddleRequest: {
        FiddleRequest msg;
        msg.requestId = reader.u32();
        msg.commandLine = reader.fixedString(kFiddleRequestWidth);
        if (msg.commandLine.empty())
            return std::nullopt;
        return msg;
      }
      case MessageType::FiddleReply: {
        FiddleReply msg;
        msg.requestId = reader.u32();
        uint8_t status = reader.u8();
        if (status > static_cast<uint8_t>(Status::InternalError))
            return std::nullopt;
        msg.status = static_cast<Status>(status);
        msg.message = reader.fixedString(kFiddleReplyWidth);
        return msg;
      }
      case MessageType::MultiReadRequest: {
        MultiReadRequest msg;
        msg.requestId = reader.u32();
        msg.machine = reader.fixedString(kNameWidth);
        if (msg.machine.empty())
            return std::nullopt;
        uint8_t count = reader.u8();
        if (count == 0 || count > kMaxMultiReadComponents)
            return std::nullopt;
        msg.components.reserve(count);
        for (uint8_t i = 0; i < count; ++i) {
            auto component = reader.packedString();
            if (!component)
                return std::nullopt;
            msg.components.push_back(std::move(*component));
        }
        return msg;
      }
      case MessageType::MultiReadReply: {
        MultiReadReply msg;
        msg.requestId = reader.u32();
        uint8_t status = reader.u8();
        if (status > static_cast<uint8_t>(Status::InternalError))
            return std::nullopt;
        msg.status = static_cast<Status>(status);
        uint8_t count = reader.u8();
        if (count > kMaxMultiReadComponents)
            return std::nullopt;
        msg.entries.reserve(count);
        for (uint8_t i = 0; i < count; ++i) {
            uint8_t entry_status = reader.u8();
            if (entry_status > static_cast<uint8_t>(Status::InternalError))
                return std::nullopt;
            MultiReadEntry entry;
            entry.status = static_cast<Status>(entry_status);
            entry.temperature = reader.f64();
            msg.entries.push_back(entry);
        }
        return msg;
      }
      case MessageType::MetricsRequest: {
        MetricsRequest msg;
        msg.requestId = reader.u32();
        msg.offset = reader.u32();
        return msg;
      }
      case MessageType::MetricsReply: {
        MetricsReply msg;
        msg.requestId = reader.u32();
        uint8_t status = reader.u8();
        if (status > static_cast<uint8_t>(Status::InternalError))
            return std::nullopt;
        msg.status = static_cast<Status>(status);
        msg.nextOffset = reader.u32();
        msg.fragment = reader.fixedString(kMetricsFragmentWidth);
        return msg;
      }
      default:
        return std::nullopt;
    }
}

std::optional<uint32_t>
requestId(const Message &message)
{
    if (const auto *msg = std::get_if<SensorRequest>(&message))
        return msg->requestId;
    if (const auto *msg = std::get_if<SensorReply>(&message))
        return msg->requestId;
    if (const auto *msg = std::get_if<FiddleRequest>(&message))
        return msg->requestId;
    if (const auto *msg = std::get_if<FiddleReply>(&message))
        return msg->requestId;
    if (const auto *msg = std::get_if<MultiReadRequest>(&message))
        return msg->requestId;
    if (const auto *msg = std::get_if<MultiReadReply>(&message))
        return msg->requestId;
    if (const auto *msg = std::get_if<MetricsRequest>(&message))
        return msg->requestId;
    if (const auto *msg = std::get_if<MetricsReply>(&message))
        return msg->requestId;
    return std::nullopt;
}

std::optional<uint32_t>
peekRequestId(const Packet &packet)
{
    Reader reader(packet);
    if (reader.u32() != kMagic)
        return std::nullopt;
    if (reader.u8() != kVersion)
        return std::nullopt;
    uint8_t type = reader.u8();
    reader.u16(); // reserved
    switch (static_cast<MessageType>(type)) {
      case MessageType::SensorRequest:
      case MessageType::SensorReply:
      case MessageType::FiddleRequest:
      case MessageType::FiddleReply:
      case MessageType::MultiReadRequest:
      case MessageType::MultiReadReply:
      case MessageType::MetricsRequest:
      case MessageType::MetricsReply:
        return reader.u32();
      default:
        return std::nullopt;
    }
}

std::optional<Message>
decode(const uint8_t *data, size_t length)
{
    if (length != kMessageSize)
        return std::nullopt;
    Packet packet;
    std::memcpy(packet.data(), data, kMessageSize);
    return decode(packet);
}

} // namespace proto
} // namespace mercury
