/**
 * @file
 * Server-side message handler: the logic of the solver daemon,
 * independent of the transport. mercury_solverd pumps UDP packets
 * through it; the in-process transport (used by the cluster simulation
 * and the tests) calls it directly.
 *
 * Concurrency contract (the sharded request plane relies on it):
 *
 *  - handle()/handlePacket() remain the single-threaded synchronous
 *    path. One thread at a time may use them; that thread owns the
 *    solver. The daemon's solver-stepping thread is that thread, and
 *    it is also the only caller of handleQueued().
 *  - Serve workers running on other threads may concurrently call
 *    noteSequence(), countReceived(), statsLine(), lossStats(),
 *    backlogDepth(), metricsReply() and the counter accessors: the
 *    counters are relaxed atomics and the per-sender sequence windows
 *    live behind striped locks, so loss accounting stays exact under
 *    sharding.
 */

#ifndef MERCURY_PROTO_SOLVER_SERVICE_HH
#define MERCURY_PROTO_SOLVER_SERVICE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "core/solver.hh"
#include "metrics/metrics.hh"
#include "proto/messages.hh"
#include "state/checkpoint.hh"

namespace mercury {

namespace guard {
class SensorGuard;
} // namespace guard

namespace proto {

/**
 * Dispatches decoded Mercury messages onto a live Solver.
 */
class SolverService
{
  public:
    /** @param solver the configured solver (borrowed, not owned). */
    explicit SolverService(core::Solver &solver);

    /**
     * Handle one raw packet; returns the reply packet when the message
     * type warrants one (sensor and fiddle requests), nullopt for
     * one-way messages (utilization updates) and undecodable input.
     */
    std::optional<Packet> handlePacket(const uint8_t *data, size_t length);

    /** Handle a decoded message. */
    std::optional<Packet> handle(const Message &message);

    /**
     * Handle a message a serve worker already accounted for (type
     * counted via countReceived(), sequence noted via noteSequence())
     * and then queued for the solver thread. Identical dispatch to
     * handle() minus that double counting. Solver-thread only.
     */
    std::optional<Packet> handleQueued(const Message &message);

    /**
     * Apply a mutation that arrived through the replication stream (a
     * decoded WAL record). Bypasses read-only mode — the primary's
     * stream is the one mutation source a standby accepts — and notes
     * the sender sequence, so the standby's loss statistics mirror the
     * primary's and survive a promotion. Solver-thread only.
     */
    void handleReplicated(const Message &message);

    /**
     * Read-only mode (standby role): fiddle mutations are refused
     * with @p reason and stray utilization updates are dropped (and
     * counted) instead of applied — the replication stream is the only
     * way state changes. Solver-thread only, like the dispatch paths
     * it gates.
     */
    void setReadOnly(bool read_only, std::string reason = "");
    bool readOnly() const { return readOnly_; }

    /** Updates refused because the daemon is a read-only standby. */
    uint64_t updatesRefusedReadOnly() const
    {
        return load(updatesRefusedReadOnly_);
    }

    /**
     * Provider for the `fiddle replica` command line (role, sequence
     * positions, lag, hash verdict). Installed by the daemon; called
     * on the solver thread. Null = "replication disabled".
     */
    void setReplicaInfoProvider(std::function<std::string()> provider)
    {
        replicaInfoProvider_ = std::move(provider);
    }

    /** @name Counters (observability for the daemon and the tests) */
    /// @{
    uint64_t updatesApplied() const { return load(updatesApplied_); }
    uint64_t updatesRejected() const { return load(updatesRejected_); }

    /** Updates whose sender flagged the value as guard-substituted. */
    uint64_t updatesSubstituted() const
    {
        return load(updatesSubstituted_);
    }
    uint64_t sensorReads() const { return load(sensorReads_); }
    uint64_t multiReads() const { return load(multiReads_); }
    uint64_t fiddlesApplied() const { return load(fiddlesApplied_); }
    uint64_t undecodable() const { return load(undecodable_); }

    /** Decoded messages received of one type. */
    uint64_t received(MessageType type) const;

    /** Count one decoded message of @p type (serve workers call this
     *  at decode time; the queued dispatch then skips it). */
    void countReceived(MessageType type);

    /** Count one undecodable/misdirected packet (thread-safe). */
    void countUndecodable() { bump(undecodable_); }

    /** Count one snapshot-served sensor read / MultiRead datagram
     *  (the serve workers answer these without entering handle()). */
    void countSensorRead(uint64_t n = 1) { bump(sensorReads_, n); }
    void countMultiRead() { bump(multiReads_); }
    /// @}

    /**
     * Aggregate packet-loss health, summed over all senders. Updates
     * carry a per-sender sequence number; gaps are detected loss, late
     * gap-fillers are reorders, window re-hits are duplicates.
     */
    struct LossStats
    {
        uint64_t received = 0;   //!< UtilizationUpdates seen
        uint64_t lost = 0;       //!< sequence gaps still unfilled
        uint64_t duplicates = 0; //!< same sequence seen twice
        uint64_t reordered = 0;  //!< arrived late (or before tracking)
        uint64_t senders = 0;    //!< distinct machines tracked
    };

    LossStats lossStats() const;

    /**
     * Note one sender's sequence number (and reported backlog depth)
     * for loss accounting. Thread-safe: the sender table is striped by
     * machine-name hash, so workers on different shards never contend
     * unless they track the same sender. The serve workers call this
     * at receive time — before the update waits in the mutation queue
     * — so detection latency does not distort the statistics.
     */
    void noteSequence(const std::string &machine, uint64_t sequence,
                      uint32_t backlog);

    /**
     * One-line counter summary, compact enough for a FiddleReply
     * (the `fiddle stats` command) and the daemon's periodic log.
     * Leads with it=<iteration> — the supervisor's liveness probe
     * parses that field, so it must survive the reply-width clamp.
     * Thread-safe (serve workers answer `fiddle stats` inline).
     */
    std::string statsLine() const;

    /**
     * Wire the checkpoint subsystem in (borrowed, may be null): the
     * `fiddle checkpoint` command saves through it and statsLine()
     * reports checkpoint age / last-restore iteration from it.
     */
    void setCheckpointManager(state::CheckpointManager *manager)
    {
        checkpointManager_ = manager;
    }

    /** Sum of the backlog depths last reported by each sender. */
    uint64_t backlogDepth() const;

    /**
     * Wire the sensor trust layer in (borrowed, may be null). Enables
     * the `fiddle guard` command family: `guard` (fleet summary),
     * `guard page <offset>` (paged per-stream report, replies are
     * "<nextOffset>|<chunk>", nextOffset 0 = done), and `guard
     * <stream>` (one stream's health line). Solver-thread only, like
     * the guard itself — the request plane already queues non-stats
     * fiddle lines onto that thread.
     */
    void setSensorGuard(guard::SensorGuard *guard)
    {
        sensorGuard_ = guard;
    }

    guard::SensorGuard *sensorGuard() const { return sensorGuard_; }

    /**
     * Wire the metrics subsystem in (borrowed, may be null). The
     * service exports its receive/loss counters into @p registry as
     * callbacks (unregistered automatically on destruction) and
     * answers MetricsRequest pages from the registry's rendered
     * summary.
     */
    void setMetricsRegistry(metrics::Registry *registry);

    metrics::Registry *metricsRegistry() const { return metricsRegistry_; }

    /**
     * Build a MetricsReply page using @p page_cache as the client's
     * consistent-snapshot buffer. The synchronous path passes the
     * service's own cache; each serve worker passes its own (with
     * SO_REUSEPORT one client's pages all land on one worker, so a
     * per-worker cache still gives each client one snapshot).
     */
    Packet metricsReply(const MetricsRequest &msg,
                        std::string &page_cache) const;

    /** @name Sender-table checkpointing
     * The sequence trackers are part of a checkpoint: without them a
     * restored daemon would misread the monitord's next sequence
     * number as a giant loss gap (or a restart), corrupting the loss
     * statistics the operators alarm on.
     */
    /// @{
    std::vector<state::SenderRecord> exportSenders() const;
    void importSenders(const std::vector<state::SenderRecord> &records);
    /// @}

  private:
    std::optional<Packet> dispatch(const Message &message,
                                   bool preaccounted,
                                   bool replicated = false);

    Packet onUtilization(const UtilizationUpdate &msg,
                         bool note_sequence);
    Packet onSensorRequest(const SensorRequest &msg);
    Packet onMultiReadRequest(const MultiReadRequest &msg);
    Packet onFiddleRequest(const FiddleRequest &msg, bool replicated);
    Packet onGuardCommand(const std::string &args, FiddleReply reply);

    static uint64_t
    load(const std::atomic<uint64_t> &counter)
    {
        return counter.load(std::memory_order_relaxed);
    }

    static void
    bump(std::atomic<uint64_t> &counter, uint64_t n = 1)
    {
        counter.fetch_add(n, std::memory_order_relaxed);
    }

    /**
     * Per-sender sequence-gap tracker: highest sequence seen plus a
     * 64-wide seen-bitmap below it (bit 0 = head). A forward jump
     * counts the skipped slots as lost; a late arrival inside the
     * window fills its slot, counts as a reorder and un-counts one
     * loss; a re-hit inside the window is a duplicate.
     */
    struct SenderState
    {
        bool started = false;
        uint64_t head = 0;
        uint64_t window = 0;
        uint64_t received = 0;
        uint64_t lost = 0;
        uint64_t duplicates = 0;
        uint64_t reordered = 0;
        uint32_t lastBacklog = 0; //!< sender's queued-sample depth

        void note(uint64_t sequence);
    };

    /** Sender-table stripe count (power of two, hash-distributed). */
    static constexpr size_t kSenderStripes = 16;

    /** One lock-striped shard of the sender table. Striping keeps the
     *  receive-time noteSequence() calls of different senders from
     *  serializing against each other while still letting statsLine()
     *  and checkpoint export walk a consistent per-stripe view. */
    struct SenderStripe
    {
        mutable std::mutex mutex;
        std::unordered_map<std::string, SenderState> senders;
    };

    SenderStripe &stripeFor(const std::string &machine);
    const SenderStripe &stripeFor(const std::string &machine) const;

    /**
     * Resolve machine.component to a solver handle, consulting the
     * positive cache first. monitord re-sends the same handful of
     * targets every second; caching skips the string -> alias ->
     * NodeId map chain on all but the first update. Failures are not
     * cached (an alias registered later may make them resolvable).
     * Solver-thread only (like everything touching solver_).
     */
    std::optional<core::Solver::NodeRef>
    resolveCached(const std::string &machine, const std::string &component);

    core::Solver &solver_;

    /** Positive resolution cache, keyed machine + '.' + component. */
    std::unordered_map<std::string, core::Solver::NodeRef> resolved_;

    /** Unmapped update targets already warned about. A machine whose
     *  graph has no NIC node, say, produces a "net" update every
     *  second in /proc mode; warn once, not once per second. */
    std::set<std::string> warnedTargets_;

    /** Sequence accounting per sending machine (one monitord each),
     *  striped by machine-name hash. */
    std::array<SenderStripe, kSenderStripes> senders_;

    /** Decoded receives indexed by raw MessageType (1..9; 0 unused).
     *  Relaxed atomics: workers count at decode time. */
    std::array<std::atomic<uint64_t>, 10> receivedByType_{};

    std::atomic<uint64_t> updatesApplied_{0};
    std::atomic<uint64_t> updatesRejected_{0};
    std::atomic<uint64_t> updatesRefusedReadOnly_{0};
    std::atomic<uint64_t> updatesSubstituted_{0};
    std::atomic<uint64_t> sensorReads_{0};
    std::atomic<uint64_t> multiReads_{0};
    std::atomic<uint64_t> fiddlesApplied_{0};
    std::atomic<uint64_t> undecodable_{0};

    /** Checkpoint plumbing (borrowed from the daemon; may be null). */
    state::CheckpointManager *checkpointManager_ = nullptr;

    /** Metrics plumbing (borrowed; may be null). */
    metrics::Registry *metricsRegistry_ = nullptr;
    metrics::CallbackGuard metricsGuard_;

    /** Snapshot text being paged out on the synchronous path: rendered
     *  fresh on an offset-0 MetricsRequest, served verbatim for the
     *  follow-up pages so one client sees one consistent snapshot. */
    std::string metricsPageCache_;

    /** Sensor trust layer (borrowed; may be null). */
    guard::SensorGuard *sensorGuard_ = nullptr;

    /** Guard report being paged out by `guard page <offset>`,
     *  re-rendered on offset 0 (solver-thread only, like the guard). */
    std::string guardPageCache_;

    /** Standby role: refuse external mutations (solver-thread only,
     *  like the paths that read it). */
    bool readOnly_ = false;
    std::string readOnlyReason_;

    /** `fiddle replica` report source (borrowed from the daemon). */
    std::function<std::string()> replicaInfoProvider_;
};

} // namespace proto
} // namespace mercury

#endif // MERCURY_PROTO_SOLVER_SERVICE_HH
