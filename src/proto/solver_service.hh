/**
 * @file
 * Server-side message handler: the logic of the solver daemon,
 * independent of the transport. mercury_solverd pumps UDP packets
 * through it; the in-process transport (used by the cluster simulation
 * and the tests) calls it directly.
 */

#ifndef MERCURY_PROTO_SOLVER_SERVICE_HH
#define MERCURY_PROTO_SOLVER_SERVICE_HH

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "core/solver.hh"
#include "proto/messages.hh"

namespace mercury {

namespace proto {

/**
 * Dispatches decoded Mercury messages onto a live Solver.
 */
class SolverService
{
  public:
    /** @param solver the configured solver (borrowed, not owned). */
    explicit SolverService(core::Solver &solver);

    /**
     * Handle one raw packet; returns the reply packet when the message
     * type warrants one (sensor and fiddle requests), nullopt for
     * one-way messages (utilization updates) and undecodable input.
     */
    std::optional<Packet> handlePacket(const uint8_t *data, size_t length);

    /** Handle a decoded message. */
    std::optional<Packet> handle(const Message &message);

    /** @name Counters (observability for the daemon and the tests) */
    /// @{
    uint64_t updatesApplied() const { return updatesApplied_; }
    uint64_t updatesRejected() const { return updatesRejected_; }
    uint64_t sensorReads() const { return sensorReads_; }
    uint64_t fiddlesApplied() const { return fiddlesApplied_; }
    uint64_t undecodable() const { return undecodable_; }
    /// @}

  private:
    Packet onUtilization(const UtilizationUpdate &msg);
    Packet onSensorRequest(const SensorRequest &msg);
    Packet onFiddleRequest(const FiddleRequest &msg);

    /**
     * Resolve machine.component to a solver handle, consulting the
     * positive cache first. monitord re-sends the same handful of
     * targets every second; caching skips the string -> alias ->
     * NodeId map chain on all but the first update. Failures are not
     * cached (an alias registered later may make them resolvable).
     */
    std::optional<core::Solver::NodeRef>
    resolveCached(const std::string &machine, const std::string &component);

    core::Solver &solver_;

    /** Positive resolution cache, keyed machine + '.' + component. */
    std::unordered_map<std::string, core::Solver::NodeRef> resolved_;

    /** Unmapped update targets already warned about. A machine whose
     *  graph has no NIC node, say, produces a "net" update every
     *  second in /proc mode; warn once, not once per second. */
    std::set<std::string> warnedTargets_;

    uint64_t updatesApplied_ = 0;
    uint64_t updatesRejected_ = 0;
    uint64_t sensorReads_ = 0;
    uint64_t fiddlesApplied_ = 0;
    uint64_t undecodable_ = 0;
};

} // namespace proto
} // namespace mercury

#endif // MERCURY_PROTO_SOLVER_SERVICE_HH
