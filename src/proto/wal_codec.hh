/**
 * @file
 * Compact WAL payload encoding for queued mutations.
 *
 * The WAL records every message the solver thread drains from the
 * request plane's mutation queue. Re-logging the 128-byte wire packet
 * would triple the log's footprint (a utilization update's useful
 * content is ~35 bytes), so mutations get their own length-prefixed
 * little-endian encoding here — the replica library stays
 * payload-agnostic and ships these bytes verbatim.
 *
 * Only messages that mutate solver state are loggable: utilization
 * updates always, fiddle requests unless the command line is one of
 * the read-only service commands (stats/metrics/guard/replica) or a
 * checkpoint save (which mutates the disk, not the solver — the WAL
 * marks saves with its own CheckpointMarker record). Read RPCs never
 * reach the queue's mutation path with effects, and replay answers
 * nothing anyway, so they encode to "not loggable".
 */

#ifndef MERCURY_PROTO_WAL_CODEC_HH
#define MERCURY_PROTO_WAL_CODEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "proto/messages.hh"

namespace mercury {
namespace proto {

/** True when @p line (a FiddleRequest command line) mutates solver
 *  state and therefore belongs in the WAL. */
bool fiddleLineMutates(const std::string &line);

/**
 * Encode @p message as a WAL payload; empty vector when the message
 * is not a loggable mutation.
 */
std::vector<uint8_t> encodeWalMutation(const Message &message);

/** Decode a WAL payload back into a message; nullopt when malformed. */
std::optional<Message> decodeWalMutation(const uint8_t *data, size_t size);

} // namespace proto
} // namespace mercury

#endif // MERCURY_PROTO_WAL_CODEC_HH
