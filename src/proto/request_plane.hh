/**
 * @file
 * Sharded, syscall-batched UDP request plane for the solver daemon.
 *
 * The serial daemon interleaved one socket, the solver and every timer
 * on a single thread; at high monitord fan-in it spent most of its
 * budget in per-datagram syscalls. The request plane splits that into
 * N serve workers, each with its own SO_REUSEPORT socket on the shared
 * port, draining up to UdpSocket::kMaxBatch datagrams per recvmmsg and
 * batch-sending replies with sendmmsg:
 *
 *  - Read RPCs (SensorRequest, MultiRead, MetricsRequest, `fiddle
 *    stats`/`fiddle metrics`) are answered inline on the worker from
 *    the seqlock telemetry snapshot and the relaxed service counters —
 *    the solver is never touched, so reads scale with workers and
 *    never stall an iteration.
 *  - Mutating RPCs (utilization updates, fiddle command lines,
 *    `fiddle checkpoint`) are enqueued on an MPSC queue the solver
 *    thread drains at iteration boundaries, preserving the serial
 *    daemon's arrival-order semantics. Sequence numbers are noted at
 *    receive time, so loss accounting stays exact however long an
 *    update waits in the queue.
 *
 * SO_REUSEPORT hashes on the 4-tuple: one sender's datagrams always
 * land on one shard, so per-sender FIFO survives sharding (replies to
 * different requests may interleave across shards; the protocol is
 * request-id matched, see docs/protocol.md).
 */

#ifndef MERCURY_PROTO_REQUEST_PLANE_HH
#define MERCURY_PROTO_REQUEST_PLANE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "metrics/metrics.hh"
#include "net/udp.hh"
#include "proto/messages.hh"

namespace mercury {

namespace telemetry {
class Reader;
} // namespace telemetry

namespace proto {

class SolverService;

/**
 * N serve workers in front of one SolverService.
 *
 * Sockets are bound at construction (so port() is valid immediately);
 * worker threads run between start() and stopAndJoin(). The thread
 * that steps the solver — and only that thread — calls waitForWork()
 * and drainPending().
 */
class RequestPlane
{
  public:
    struct Config
    {
        /** UDP port to share across shards; 0 picks an ephemeral port
         *  (the remaining shards then join the chosen one). */
        uint16_t port = 0;

        /** Serve workers / SO_REUSEPORT shards; clamped to >= 1. */
        unsigned serveThreads = 1;

        /** Telemetry segment each worker opens a read-only snapshot
         *  Reader on; empty = no snapshot, reads fall through to the
         *  solver thread via the queue. */
        std::string shmName;

        /** Registry for the plane's instruments (required). */
        metrics::Registry *registry = nullptr;
    };

    RequestPlane(SolverService &service, Config config);
    ~RequestPlane();

    RequestPlane(const RequestPlane &) = delete;
    RequestPlane &operator=(const RequestPlane &) = delete;

    /** The shared bound port (valid after construction). */
    uint16_t port() const;

    /** Number of shards actually running. */
    unsigned workers() const { return unsigned(shards_.size()); }

    /** Spawn the serve workers (idempotent). */
    void start();

    /** Stop and join the workers (idempotent; ~RequestPlane calls it).
     *  Messages already queued stay queued — the caller drains them. */
    void stopAndJoin();

    /** Wake a blocked waitForWork() without enqueueing anything
     *  (daemon stop path). */
    void wake();

    /** @name Solver-thread API */
    /// @{

    /**
     * Block until the mutation queue is non-empty, wake() is called,
     * or @p deadline passes. Returns true when work is pending.
     */
    bool waitForWork(std::chrono::steady_clock::time_point deadline);

    /**
     * Apply every queued message through SolverService::handleQueued
     * (in per-shard arrival order) and send the replies back through
     * the shard socket each request arrived on. Returns the number of
     * messages applied. Solver-thread only.
     */
    size_t drainPending();

    /**
     * Observe every message drainPending() is about to apply, before
     * it reaches the service. This is the WAL's append point: the
     * drain is the solver's single mutation-serialization boundary, so
     * logging here (in drain order, tagged with the current iteration)
     * is what makes replay and replication bitwise-faithful. Set from
     * the solver thread before start(); invoked on the solver thread.
     */
    void
    setMutationObserver(std::function<void(const Message &)> observer)
    {
        mutationObserver_ = std::move(observer);
    }

    /// @}

    /** Mutations currently waiting in the queue (metrics, tests). */
    uint64_t queueDepth() const
    {
        return queueDepth_.load(std::memory_order_relaxed);
    }

    /** Reply datagrams that failed to send (tests). */
    uint64_t replySendErrors() const;

  private:
    /** One shard: a reuseport socket plus its worker thread and the
     *  worker-local state that keeps the hot path allocation-free. */
    struct Shard
    {
        net::UdpSocket socket;
        std::thread thread;
        /** Lazily-connected snapshot reader; null when shmName empty. */
        std::unique_ptr<telemetry::Reader> reader;
        /** Per-worker MetricsRequest page cache (one client's pages
         *  all land on one shard under reuseport). */
        std::string metricsPageCache;
    };

    /** One queued mutation, tagged with where to send the reply. */
    struct Pending
    {
        Message message;
        net::Endpoint from;
        net::UdpSocket *via = nullptr;
    };

    void workerLoop(Shard &shard);

    /** Classify + handle one datagram on a worker; appends an inline
     *  reply to @p replies / @p reply_bufs when one is due. */
    void handleDatagram(Shard &shard, const uint8_t *data, size_t length,
                        const net::Endpoint &from,
                        std::vector<net::UdpSocket::SendDatagram> &replies,
                        std::vector<Packet> &reply_bufs);

    /** Inline read handlers; return false to fall back to the queue. */
    bool answerSensor(Shard &shard, const SensorRequest &msg,
                      Packet *reply);
    bool answerMultiRead(Shard &shard, const MultiReadRequest &msg,
                         Packet *reply);

    void enqueue(Message message, const net::Endpoint &from,
                 net::UdpSocket *via);

    /** Batch-send with once-per-peer failure logging and the
     *  net_reply_send_errors_total counter. */
    void sendReplies(net::UdpSocket &via,
                     const net::UdpSocket::SendDatagram *items,
                     size_t count);

    void noteSendFailure(const net::Endpoint &to);

    SolverService &service_;
    Config config_;

    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<bool> stop_{false};
    bool started_ = false;

    /** MPSC mutation queue: workers push, the solver thread swaps the
     *  whole vector out under the lock and applies it lock-free. */
    mutable std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::vector<Pending> queue_;
    bool wakeRequested_ = false;
    std::atomic<uint64_t> queueDepth_{0};

    /** WAL append hook; called on the solver thread per drained
     *  message, before the service applies it. */
    std::function<void(const Message &)> mutationObserver_;

    /** Peers already warned about failed replies (log once, count
     *  always). Shared across workers; send failures are cold. */
    std::mutex sendWarnMutex_;
    std::unordered_set<std::string> warnedPeers_;

    metrics::Histogram *batchHist_ = nullptr;  //!< net_batch_size
    metrics::Histogram *handleHist_ = nullptr; //!< net_request_handle_seconds
    metrics::Gauge *busyGauge_ = nullptr;      //!< net_worker_busy_seconds
    metrics::Counter *sendErrors_ = nullptr;   //!< net_reply_send_errors_total
    metrics::CallbackGuard metricsGuard_;
};

} // namespace proto
} // namespace mercury

#endif // MERCURY_PROTO_REQUEST_PLANE_HH
