/**
 * @file
 * Wire formats for the Mercury suite.
 *
 * The paper's implementation exchanges fixed-size 128-byte UDP
 * messages: monitord -> solver utilization updates, sensor-library
 * requests/replies, and fiddle commands. We keep that exact framing:
 * every packet is kMessageSize bytes, starts with a 8-byte header
 * (magic, version, type) and is explicitly serialized little-endian so
 * heterogeneous hosts interoperate.
 */

#ifndef MERCURY_PROTO_MESSAGES_HH
#define MERCURY_PROTO_MESSAGES_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace mercury {
namespace proto {

/** Fixed packet size (paper Section 2.3: "128-byte UDP messages"). */
inline constexpr size_t kMessageSize = 128;

/** Packet buffer type. */
using Packet = std::array<uint8_t, kMessageSize>;

/** Protocol magic ('M''R''C''1'). */
inline constexpr uint32_t kMagic = 0x3143524dU;

/** Protocol version. */
inline constexpr uint8_t kVersion = 1;

/** Message discriminator. */
enum class MessageType : uint8_t {
    UtilizationUpdate = 1,
    SensorRequest = 2,
    SensorReply = 3,
    FiddleRequest = 4,
    FiddleReply = 5,
    MultiReadRequest = 6,
    MultiReadReply = 7,
    MetricsRequest = 8,
    MetricsReply = 9,
};

/** Status codes carried in replies. */
enum class Status : uint8_t {
    Ok = 0,
    UnknownMachine = 1,
    UnknownComponent = 2,
    BadCommand = 3,
    InternalError = 4,
};

/** Human-readable status name. */
const char *statusName(Status status);

/** monitord -> solver: one component's utilization this interval. */
struct UtilizationUpdate
{
    std::string machine;   //!< max 31 bytes on the wire
    std::string component; //!< max 31 bytes on the wire
    double utilization = 0.0;
    uint64_t sequence = 0; //!< sender sequence number (loss diagnosis)
    /** Samples still queued in the sender's outage backlog; 0 in live
     *  operation. Occupies previously zero-padded packet bytes, so old
     *  senders decode as backlog 0. */
    uint32_t backlog = 0;

    /** Trust tag: nonzero when the sending monitord's guard replaced
     *  an implausible or missing reading with a substitute. Same
     *  padding-byte trick as backlog — old senders decode as 0, i.e.
     *  trusted, which is what their unguarded readings always were. */
    uint8_t substituted = 0;
};

/** sensor library -> solver: read one emulated sensor. */
struct SensorRequest
{
    uint32_t requestId = 0;
    std::string machine;
    std::string component;
};

/** solver -> sensor library. */
struct SensorReply
{
    uint32_t requestId = 0;
    Status status = Status::Ok;
    double temperature = 0.0; //!< degC, valid when status == Ok
};

/** fiddle -> solver: a textual command line (see fiddle/command.hh). */
struct FiddleRequest
{
    uint32_t requestId = 0;
    std::string commandLine; //!< max 115 bytes on the wire
};

/** solver -> fiddle. */
struct FiddleReply
{
    uint32_t requestId = 0;
    Status status = Status::Ok;
    std::string message; //!< short diagnostic, max 114 bytes
};

/**
 * Most components a MultiReadRequest/-Reply can carry. The reply is
 * the binding constraint: 128 - 8 (header) - 4 (id) - 1 (status) - 1
 * (count) leaves 114 bytes, and each entry costs 1 + 8.
 */
inline constexpr size_t kMaxMultiReadComponents = 12;

/**
 * Byte budget for the request's packed component names (one length
 * byte plus the bytes of each name): 128 - 8 - 4 - 32 (machine) - 1
 * (count).
 */
inline constexpr size_t kMultiReadNameBudget = 83;

/**
 * sensor library -> solver: read several of one machine's sensors in
 * a single datagram (tempd polls a whole server per wake-up; this
 * collapses its N round trips into one).
 */
struct MultiReadRequest
{
    uint32_t requestId = 0;
    std::string machine;
    std::vector<std::string> components; //!< 1..kMaxMultiReadComponents
};

/** One component's answer inside a MultiReadReply. */
struct MultiReadEntry
{
    Status status = Status::Ok;
    double temperature = 0.0; //!< degC, valid when status == Ok
};

/** solver -> sensor library: per-component answers, request order. */
struct MultiReadReply
{
    uint32_t requestId = 0;
    Status status = Status::Ok; //!< machine-level status
    std::vector<MultiReadEntry> entries; //!< empty unless status == Ok
};

/**
 * Most fragment bytes one MetricsReply can carry: 128 - 8 (header) -
 * 4 (id) - 1 (status) - 4 (next offset) leaves a 111-byte NUL-padded
 * field, i.e. 110 content bytes.
 */
inline constexpr size_t kMetricsFragmentMax = 110;

/**
 * fiddle/sensor library -> solver: fetch a byte range of the daemon's
 * rendered metrics snapshot. The snapshot is larger than one
 * datagram, so the client pages through it: offset 0 first, then the
 * nextOffset from each reply until it comes back 0.
 */
struct MetricsRequest
{
    uint32_t requestId = 0;
    uint32_t offset = 0; //!< byte offset into the rendered snapshot
};

/** solver -> client: one fragment of the rendered snapshot. */
struct MetricsReply
{
    uint32_t requestId = 0;
    Status status = Status::Ok;
    uint32_t nextOffset = 0; //!< 0 when this is the final fragment
    std::string fragment;    //!< max kMetricsFragmentMax bytes, no NULs
};

/** Any decoded message. */
using Message = std::variant<UtilizationUpdate, SensorRequest, SensorReply,
                             FiddleRequest, FiddleReply, MultiReadRequest,
                             MultiReadReply, MetricsRequest, MetricsReply>;

/** @name Encoding (fatal on oversized string fields) */
/// @{
Packet encode(const UtilizationUpdate &msg);
Packet encode(const SensorRequest &msg);
Packet encode(const SensorReply &msg);
Packet encode(const FiddleRequest &msg);
Packet encode(const FiddleReply &msg);
Packet encode(const MultiReadRequest &msg);
Packet encode(const MultiReadReply &msg);
Packet encode(const MetricsRequest &msg);
Packet encode(const MetricsReply &msg);
/// @}

/**
 * True when @p components (which must each be shorter than the wire
 * name width) fits one MultiReadRequest: at most
 * kMaxMultiReadComponents names whose packed encoding fits
 * kMultiReadNameBudget. Callers with more components chunk.
 */
bool multiReadFits(const std::vector<std::string> &components);

/**
 * Decode a packet. Returns nullopt on bad magic/version/type or
 * malformed fields (never crashes on hostile input).
 */
std::optional<Message> decode(const Packet &packet);

/** Decode from a raw buffer of @p length bytes. */
std::optional<Message> decode(const uint8_t *data, size_t length);

/**
 * The requestId carried by a decoded message; nullopt for one-way
 * messages (UtilizationUpdate), which have none.
 */
std::optional<uint32_t> requestId(const Message &message);

/**
 * Read the requestId straight off an encoded packet without a full
 * decode: validates the header and returns the id for the four
 * request/reply types. The hardened transport uses this to know which
 * id a round trip is waiting for.
 */
std::optional<uint32_t> peekRequestId(const Packet &packet);

} // namespace proto
} // namespace mercury

#endif // MERCURY_PROTO_MESSAGES_HH
