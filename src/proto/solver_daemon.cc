#include "proto/solver_daemon.hh"

#include <algorithm>
#include <chrono>

#include "core/solver.hh"
#include "proto/wal_codec.hh"
#include "telemetry/writer.hh"
#include "util/fileio.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace mercury {
namespace proto {

namespace {

const char *
hashVerdictName(int verdict)
{
    return verdict > 0 ? "ok" : verdict < 0 ? "mismatch" : "n/a";
}

} // namespace

struct SolverDaemon::LoopTimers
{
    bool stepping = false;
    bool statsLogging = false;
    bool metricsFile = false;
    Clock::duration period{};
    Clock::duration statsPeriod{};
    Clock::duration heartbeatPeriod{};
    Clock::duration metricsPeriod{};
    Clock::duration checkpointPoll{};
    Clock::time_point nextIteration;
    Clock::time_point nextStats;
    Clock::time_point nextHeartbeat;
    Clock::time_point nextMetrics;
};

SolverDaemon::SolverDaemon(core::Solver &solver, Config config)
    : solver_(solver), config_(config), service_(solver)
{
    // Metrics first: the telemetry Writer below freezes its shm
    // metric-name table at construction, so every instrument — the
    // daemon's, the service's, the request plane's and the replication
    // plane's — must exist before the segment is built.
    registry_ = config_.registry ? config_.registry
                                 : &metrics::Registry::global();
    iterationHist_ = registry_->histogram(
        "solver_iteration_seconds", metrics::Histogram::latencyBounds(),
        "wall-clock cost of one solver iteration");
    metricsGuard_.add(*registry_, "solver_iterations_total",
                      "solver iterations completed",
                      [this] { return double(solver_.iterations()); });
    metricsGuard_.add(*registry_, "solver_active_machines",
                      "machines stepped last iteration",
                      [this] {
                          return double(solver_.activeMachineCount());
                      });
    metricsGuard_.add(*registry_, "solver_frozen_machines",
                      "machines held quiescent last iteration",
                      [this] {
                          return double(solver_.frozenMachineCount());
                      });
    metricsGuard_.add(*registry_, "solver_emulated_seconds",
                      "emulated time reached by the solver",
                      [this] { return solver_.emulatedSeconds(); });
    service_.setMetricsRegistry(registry_);

    RequestPlane::Config plane_config;
    plane_config.port = config_.port;
    plane_config.serveThreads = config_.serveThreads;
    plane_config.shmName = config_.shmName;
    plane_config.registry = registry_;
    plane_ = std::make_unique<RequestPlane>(service_, plane_config);

    if (!config_.checkpointPath.empty()) {
        state::CheckpointManager::Config manager_config;
        manager_config.path = config_.checkpointPath;
        manager_config.periodSeconds = config_.checkpointSeconds;
        checkpointManager_ = std::make_unique<state::CheckpointManager>(
            solver_, manager_config);
        checkpointManager_->setSenderExporter(
            [this] { return service_.exportSenders(); });
        checkpointManager_->setSenderImporter(
            [this](const std::vector<state::SenderRecord> &records) {
                service_.importSenders(records);
            });
        // Restore before the telemetry segment is (re)built below:
        // the segment's first snapshot then already carries the
        // resumed temperatures, and its bumped boot generation evicts
        // any reader still holding pre-crash slot handles.
        checkpointManager_->restoreAtBoot();
        service_.setCheckpointManager(checkpointManager_.get());
        lastSaveCountSeen_ = checkpointManager_->saveCount();
    }

    // After the restore (the WAL generation and the replication base
    // start at the resumed iteration), before the telemetry Writer
    // (replica_* instruments must make the frozen shm name table).
    setupReplication();

    if (!config_.shmName.empty()) {
        writer_ = std::make_unique<telemetry::Writer>(
            config_.shmName, solver_, config_.iterationSeconds, registry_);
        if (writer_->valid()) {
            // Publish from the iteration itself (whoever steps the
            // solver — this loop or a test thread).
            writer_->installHook();
            inform("solverd: telemetry segment ", config_.shmName);
        } else {
            writer_.reset();
        }
    }
}

SolverDaemon::~SolverDaemon() = default;

uint16_t
SolverDaemon::port() const
{
    return plane_->port();
}

uint16_t
SolverDaemon::replicationPort() const
{
    return replicator_ ? replicator_->port() : 0;
}

void
SolverDaemon::setupReplication()
{
    const bool standby = !config_.replicaOf.empty();
    if (!standby && config_.replicationPort < 0 && config_.walPath.empty())
        return;

    topologyHash_ = state::topologyHash(solver_);
    role_.store(standby ? 1 : 0, std::memory_order_relaxed);

    metricsGuard_.add(*registry_, "replica_role",
                      "replication role: 0 primary, 1 standby",
                      [this] {
                          return double(
                              role_.load(std::memory_order_relaxed));
                      });
    walAppendedTotal_ = registry_->counter(
        "replica_wal_appended_total", "records appended to the WAL");
    walBytesTotal_ = registry_->counter("replica_wal_bytes_total",
                                        "bytes appended to the WAL");
    promotionsTotal_ = registry_->counter(
        "replica_promotions_total",
        "standby-to-primary promotions performed by this daemon");
    replicaLagRecords_ = registry_->gauge(
        "replica_lag_records",
        "records the standby side has not applied yet");
    replicaLagSeconds_ = registry_->gauge(
        "replica_lag_seconds",
        "standby lag behind the primary, in emulated seconds");
    replicaAckedSeq_ = registry_->gauge(
        "replica_acked_seq",
        "highest sequence every live standby has acknowledged");
    replicaAppliedSeq_ = registry_->gauge(
        "replica_applied_seq",
        "highest sequence appended (primary) or applied (standby)");
    replicaStandbys_ = registry_->gauge("replica_standbys_connected",
                                        "live standby sessions");
    replicaAttached_ = registry_->gauge(
        "replica_attached",
        "1 when this standby is attached to its primary");
    replicaHashVerdict_ = registry_->gauge(
        "replica_hash_verdict",
        "last state-hash comparison: 1 ok, 0 unknown, -1 mismatch");
    replicaHashChecks_ = registry_->gauge(
        "replica_hash_checks_total", "state-hash comparisons performed");
    replicaHashMismatches_ = registry_->gauge(
        "replica_hash_mismatches_total",
        "state-hash comparisons that diverged");

    // A primary opens its WAL now; a standby's WAL starts at the first
    // replicated record (walAppend creates it lazily), so its header
    // carries the primary's sequence numbering instead of a local one.
    if (!standby && !config_.walPath.empty()) {
        replica::WalHeader header;
        header.topologyHash = topologyHash_;
        header.startIteration = solver_.iterations();
        header.startSequence = nextSeq_;
        std::string error;
        wal_ = replica::WalWriter::create(config_.walPath, header, &error);
        if (!wal_) {
            warn("solverd: WAL disabled: ", error);
            config_.walPath.clear();
        } else {
            inform("solverd: mutation WAL at ", config_.walPath,
                   " (generation starts at iteration ",
                   header.startIteration, ")");
        }
    }

    if (config_.replicationPort >= 0) {
        replica::Replicator::Config replicator_config;
        replicator_config.port = uint16_t(config_.replicationPort);
        replicator_config.heartbeatSeconds =
            config_.replicaHeartbeatSeconds;
        replicator_config.leaseSeconds = config_.leaseSeconds;
        replicator_config.hashIterations = config_.hashIterations;
        replicator_ = std::make_unique<replica::Replicator>(
            replicator_config, topologyHash_, solver_.iterations(),
            nextSeq_);
        replicator_->setActive(!standby);
        inform("solverd: replication listener on port ",
               replicator_->port(),
               standby ? " (standby: inactive until promotion)" : "");
    }

    if (standby) {
        auto colon = config_.replicaOf.rfind(':');
        std::string host = colon == std::string::npos
                               ? std::string()
                               : config_.replicaOf.substr(0, colon);
        auto port_num =
            colon == std::string::npos
                ? std::nullopt
                : parseInt(config_.replicaOf.substr(colon + 1));
        if (host.empty() || !port_num || *port_num <= 0 ||
            *port_num > 65535)
            fatal("solverd: --replica-of wants host:port, got \"",
                  config_.replicaOf, "\"");

        replica::StandbyClient::Config standby_config;
        standby_config.host = host;
        standby_config.port = uint16_t(*port_num);
        standby_config.topologyHash = topologyHash_;
        standby_config.leaseSeconds = config_.leaseSeconds;
        standby_config.graceSeconds = config_.standbyGraceSeconds;
        standby_config.localIteration = [this] {
            return solver_.iterations();
        };
        standby_ =
            std::make_unique<replica::StandbyClient>(standby_config);
        service_.setReadOnly(true, "replica of " + config_.replicaOf);
        inform("solverd: hot standby of ", config_.replicaOf, " (lease ",
               config_.leaseSeconds, "s)");
    } else if (wal_ || replicator_) {
        installMutationObserver();
    }

    service_.setReplicaInfoProvider([this] { return replicaInfoLine(); });
}

void
SolverDaemon::installMutationObserver()
{
    plane_->setMutationObserver(
        [this](const Message &message) { logMutation(message); });
}

void
SolverDaemon::logMutation(const Message &message)
{
    std::vector<uint8_t> payload = encodeWalMutation(message);
    if (payload.empty())
        return;
    replica::WalRecord record;
    record.sequence = nextSeq_++;
    record.iteration = solver_.iterations();
    record.kind = replica::WalRecordKind::Mutation;
    record.payload = std::move(payload);
    walAppend(record);
}

void
SolverDaemon::walAppend(const replica::WalRecord &record)
{
    if (!wal_ && !config_.walPath.empty()) {
        // Standby lazy path: the generation starts at this (primary
        // numbered) record.
        replica::WalHeader header;
        header.topologyHash = topologyHash_;
        header.startIteration = record.iteration;
        header.startSequence = record.sequence;
        std::string error;
        wal_ = replica::WalWriter::create(config_.walPath, header, &error);
        if (!wal_) {
            warn("solverd: WAL disabled: ", error);
            config_.walPath.clear();
        } else {
            inform("solverd: mutation WAL at ", config_.walPath,
                   " (generation starts at iteration ",
                   header.startIteration, ", sequence ",
                   header.startSequence, ")");
        }
    }
    if (wal_) {
        wal_->append(record);
        if (walAppendedTotal_) {
            walAppendedTotal_->inc();
            walBytesTotal_->inc(replica::kWalRecordOverhead +
                                record.payload.size());
        }
    }
    if (replicator_)
        replicator_->offer(record);
}

void
SolverDaemon::maybeHashState()
{
    if (config_.hashIterations == 0 || (!replicator_ && !standby_))
        return;
    uint64_t iteration = solver_.iterations();
    if (iteration == 0 || iteration % config_.hashIterations != 0 ||
        iteration == lastHashIteration_)
        return;
    lastHash_ = replica::stateHash(solver_);
    lastHashIteration_ = iteration;
    if (replicator_)
        replicator_->noteHash(iteration, lastHash_);
    if (standby_)
        standby_->noteLocalHash(iteration, lastHash_);
}

void
SolverDaemon::stepOnce()
{
    auto start = Clock::now();
    solver_.iterate();
    iterationHist_->observe(
        std::chrono::duration<double>(Clock::now() - start).count());
    maybeHashState();
}

void
SolverDaemon::pollCheckpoint()
{
    if (!checkpointManager_)
        return;
    uint64_t pre = checkpointManager_->saveCount();
    checkpointManager_->maybeSave();
    uint64_t post = checkpointManager_->saveCount();
    // A save seen here (loop top) is a rotation point: no drained-but-
    // unlogged mutation straddles it. A save that happened mid-drain
    // (`fiddle checkpoint`, pre != lastSaveCountSeen_) only gets a
    // marker — replay cannot order same-iteration records against it,
    // so the generation keeps its base and relies on absolute-set
    // idempotence instead (see replica/wal.hh).
    bool timer_saved = post != pre;
    bool fiddle_saved = pre != lastSaveCountSeen_;
    lastSaveCountSeen_ = post;
    if (!timer_saved && !fiddle_saved)
        return;

    if (!isStandby() && (wal_ || replicator_)) {
        replica::WalRecord marker;
        marker.sequence = nextSeq_++;
        marker.iteration = solver_.iterations();
        marker.kind = replica::WalRecordKind::CheckpointMarker;
        marker.payload.resize(8);
        for (int i = 0; i < 8; ++i)
            marker.payload[size_t(i)] = uint8_t(post >> (8 * i));
        walAppend(marker);
    }

    if (timer_saved && wal_) {
        replica::WalHeader header;
        header.topologyHash = topologyHash_;
        header.startIteration = solver_.iterations();
        header.startSequence =
            standby_ ? standby_->lastAppliedSeq() + 1 : nextSeq_;
        std::string error;
        if (!wal_->rotate(header, &error)) {
            warn("solverd: WAL rotation failed, disabling WAL: ", error);
            wal_.reset();
            config_.walPath.clear();
        } else if (!isStandby() && replicator_) {
            replicator_->noteRotation(header.startIteration,
                                      header.startSequence);
        }
    }
}

void
SolverDaemon::updateReplicaMetrics()
{
    if (!replicaLagRecords_)
        return;
    if (standby_) {
        uint64_t iteration = solver_.iterations();
        uint64_t primary_iteration = standby_->primaryIteration();
        uint64_t behind = primary_iteration > iteration
                              ? primary_iteration - iteration
                              : 0;
        replicaAttached_->set(standby_->attached() ? 1.0 : 0.0);
        replicaAppliedSeq_->set(double(standby_->lastAppliedSeq()));
        replicaAckedSeq_->set(double(standby_->lastAppliedSeq()));
        replicaLagRecords_->set(double(standby_->lagRecords()));
        replicaLagSeconds_->set(
            double(behind) *
            (config_.iterationSeconds > 0 ? config_.iterationSeconds
                                          : 1.0));
        replicaStandbys_->set(0.0);
        replicaHashVerdict_->set(double(standby_->lastHashVerdict()));
        replicaHashChecks_->set(double(standby_->hashChecks()));
        replicaHashMismatches_->set(double(standby_->hashMismatches()));
        return;
    }
    uint64_t appended = nextSeq_ - 1;
    replicaAppliedSeq_->set(double(appended));
    if (replicator_) {
        uint64_t acked = replicator_->ackedSeq();
        replicaStandbys_->set(double(replicator_->standbyCount()));
        replicaAckedSeq_->set(double(acked));
        replicaLagRecords_->set(
            replicator_->standbyCount() && appended > acked
                ? double(appended - acked)
                : 0.0);
        uint64_t standby_iteration = replicator_->standbyIteration();
        uint64_t iteration = solver_.iterations();
        uint64_t behind = replicator_->standbyCount() &&
                                  iteration > standby_iteration
                              ? iteration - standby_iteration
                              : 0;
        replicaLagSeconds_->set(
            double(behind) *
            (config_.iterationSeconds > 0 ? config_.iterationSeconds
                                          : 1.0));
        replicaHashVerdict_->set(double(replicator_->lastHashVerdict()));
        replicaHashChecks_->set(double(replicator_->hashChecks()));
        replicaHashMismatches_->set(
            double(replicator_->hashMismatches()));
    }
    replicaAttached_->set(0.0);
}

SolverDaemon::Clock::time_point
SolverDaemon::pollTimers(LoopTimers &timers)
{
    if (writer_ && Clock::now() >= timers.nextHeartbeat) {
        writer_->refreshHeartbeat();
        timers.nextHeartbeat = Clock::now() + timers.heartbeatPeriod;
    }
    if (timers.statsLogging && Clock::now() >= timers.nextStats) {
        inform("solverd: ", service_.statsLine());
        timers.nextStats = Clock::now() + timers.statsPeriod;
    }
    pollCheckpoint();
    if (timers.metricsFile && Clock::now() >= timers.nextMetrics) {
        metrics::writeTextFile(*registry_, config_.metricsPath);
        timers.nextMetrics = Clock::now() + timers.metricsPeriod;
    }

    auto deadline = Clock::now() + timers.checkpointPoll;
    if (writer_)
        deadline = std::min(deadline, timers.nextHeartbeat);
    if (timers.statsLogging)
        deadline = std::min(deadline, timers.nextStats);
    if (timers.metricsFile)
        deadline = std::min(deadline, timers.nextMetrics);
    return deadline;
}

void
SolverDaemon::run()
{
    LoopTimers timers;
    timers.stepping = config_.iterationSeconds > 0.0;
    timers.period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            timers.stepping ? config_.iterationSeconds : 0.1));
    timers.nextIteration = Clock::now() + timers.period;

    timers.statsLogging = config_.statsLogSeconds > 0.0;
    timers.statsPeriod = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            timers.statsLogging ? config_.statsLogSeconds : 1.0));
    timers.nextStats = Clock::now() + timers.statsPeriod;

    // The iteration hook publishes (and timestamps) on every step;
    // refreshing just the heartbeat from this loop covers manual-step
    // mode and long iteration periods, so an alive daemon never looks
    // like a dead writer to shm readers.
    timers.heartbeatPeriod = std::chrono::milliseconds(500);
    timers.nextHeartbeat = Clock::now() + timers.heartbeatPeriod;

    timers.metricsFile =
        !config_.metricsPath.empty() && config_.metricsSeconds > 0.0;
    timers.metricsPeriod = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            timers.metricsFile ? config_.metricsSeconds : 1.0));
    // First write soon after startup so scrapers see the file early.
    timers.nextMetrics = Clock::now();

    // Checkpoint deadlines live inside the manager; polling maybeSave
    // at least this often keeps its timer honest without exposing it.
    timers.checkpointPoll = std::chrono::milliseconds(500);

    plane_->start();

    if (standby_ && runStandby(timers)) {
        // Promoted: fall through into the primary loop. The iteration
        // timer restarts now so the first self-stepped iteration lands
        // one full period after the takeover.
        timers.nextIteration = Clock::now() + timers.period;
    }
    runPrimary(timers);

    // Stop the workers before the final drain so no mutation slips in
    // after it; anything already queued is still applied and answered.
    plane_->stopAndJoin();
    plane_->drainPending();

    // stop() is the graceful path (SIGINT/SIGTERM in solverd): flush
    // one final checkpoint so a clean shutdown never loses state, and
    // make the WAL durable through the final drain's appends.
    if (wal_)
        wal_->sync();
    if (checkpointManager_) {
        if (checkpointManager_->saveNow())
            inform("solverd: final checkpoint saved to ",
                   checkpointManager_->path());
    }
    if (timers.metricsFile)
        metrics::writeTextFile(*registry_, config_.metricsPath);
}

void
SolverDaemon::runPrimary(LoopTimers &timers)
{
    auto replica_poll = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            std::max(0.01, config_.replicaHeartbeatSeconds / 2.0)));

    while (!stop_.load(std::memory_order_relaxed)) {
        auto deadline = pollTimers(timers);

        if (timers.stepping) {
            auto now = Clock::now();
            if (now >= timers.nextIteration) {
                stepOnce();
                timers.nextIteration += timers.period;
                // If we fell behind (heavy queries), skip forward
                // rather than bursting iterations.
                if (timers.nextIteration < now)
                    timers.nextIteration = now + timers.period;
            }
            deadline = std::min(deadline, timers.nextIteration);
        }
        if (replicator_ && replicator_->active())
            deadline = std::min(deadline, Clock::now() + replica_poll);

        // Sleep until the nearest pending deadline (not a fixed 50 ms
        // tick): the serve workers own the sockets, so the only things
        // that can need this thread are timers and queued mutations —
        // and the queue wakes us through the condition variable.
        plane_->waitForWork(deadline);
        plane_->drainPending();

        // One kernel write per drain batch; durability rides the
        // checkpoint cadence (the standby is the low-latency copy).
        if (wal_ && !wal_->flush()) {
            warn("solverd: WAL write to ", wal_->path(),
                 " failed; disabling the WAL");
            wal_.reset();
            config_.walPath.clear();
        }
        if (replicator_) {
            replicator_->poll(solver_.iterations());
            updateReplicaMetrics();
        } else if (wal_) {
            updateReplicaMetrics();
        }
    }
}

bool
SolverDaemon::runStandby(LoopTimers &timers)
{
    while (!stop_.load(std::memory_order_relaxed)) {
        pollTimers(timers);

        // The pump doubles as this loop's sleep: replication traffic
        // wakes it immediately, timers tolerate the 20 ms bound.
        standby_->pump(0.02);

        size_t applied = 0;
        while (const replica::WalRecord *record =
                   standby_->nextApplicable()) {
            // Reach the record's boundary first: the primary drained
            // it after finishing that iteration.
            while (solver_.iterations() < record->iteration &&
                   !stop_.load(std::memory_order_relaxed))
                stepOnce();
            if (record->kind == replica::WalRecordKind::Mutation) {
                auto message = decodeWalMutation(record->payload.data(),
                                                 record->payload.size());
                if (message)
                    service_.handleReplicated(*message);
                else
                    warn("solverd: undecodable replicated mutation, "
                         "sequence ",
                         record->sequence, " (applying nothing)");
            }
            // Keep the primary's numbering in our own WAL so the
            // lineage stays replayable across a promotion.
            walAppend(*record);
            standby_->markApplied();
            ++applied;
        }

        // With no gaps outstanding, keep stepping in lockstep with the
        // primary's announced iteration.
        uint64_t safe = standby_->safeStepIteration();
        while (solver_.iterations() < safe &&
               !stop_.load(std::memory_order_relaxed))
            stepOnce();

        if (applied && wal_ && !wal_->flush()) {
            warn("solverd: WAL write to ", wal_->path(),
                 " failed; disabling the WAL");
            wal_.reset();
            config_.walPath.clear();
        }
        standby_->maybeAck();

        // Read-only traffic (and refusals) still flow through the
        // queue; the observer is not installed until promotion, so
        // nothing here reaches the WAL.
        plane_->drainPending();
        updateReplicaMetrics();

        if (standby_->leaseExpired()) {
            promote();
            return true;
        }
    }
    return false;
}

void
SolverDaemon::promote()
{
    const uint64_t iteration = solver_.iterations();
    warn("solverd: primary lease expired (", standby_->status(),
         ", last contact ", standby_->secondsSinceContact(),
         "s ago); promoting to primary at iteration ", iteration);

    nextSeq_ = standby_->lastAppliedSeq() + 1;
    if (nextSeq_ == 0)
        nextSeq_ = 1;
    role_.store(0, std::memory_order_relaxed);
    promotions_.fetch_add(1, std::memory_order_relaxed);
    if (promotionsTotal_)
        promotionsTotal_->inc();
    service_.setReadOnly(false);

    // Mark the lineage handover in our own WAL, then cut a fresh
    // checkpoint + WAL generation: any future standby seeds from the
    // state this daemon holds right now, not the dead primary's.
    replica::WalRecord record;
    record.sequence = nextSeq_++;
    record.iteration = iteration;
    record.kind = replica::WalRecordKind::Promotion;
    walAppend(record);
    if (wal_)
        wal_->sync();

    if (checkpointManager_) {
        std::string error;
        if (!checkpointManager_->saveNow(&error))
            warn("solverd: promotion checkpoint failed: ", error);
        lastSaveCountSeen_ = checkpointManager_->saveCount();
    }
    if (wal_) {
        replica::WalHeader header;
        header.topologyHash = topologyHash_;
        header.startIteration = iteration;
        header.startSequence = nextSeq_;
        std::string error;
        if (!wal_->rotate(header, &error)) {
            warn("solverd: WAL rotation failed, disabling WAL: ", error);
            wal_.reset();
            config_.walPath.clear();
        }
    }
    if (replicator_) {
        replicator_->setStreamState(nextSeq_, iteration, nextSeq_);
        replicator_->setActive(true);
        inform("solverd: replication listener on port ",
               replicator_->port(), " now active");
    }
    if (!config_.portFile.empty()) {
        std::string error;
        if (!atomicWriteFile(config_.portFile,
                             std::to_string(port()) + "\n", &error))
            warn("solverd: port file ", config_.portFile,
                 " not updated: ", error);
        else
            inform("solverd: port file ", config_.portFile,
                   " now names this daemon (port ", port(), ")");
    }
    installMutationObserver();
    standby_.reset();
    updateReplicaMetrics();
}

std::string
SolverDaemon::replicaInfoLine() const
{
    if (standby_) {
        uint64_t iteration = solver_.iterations();
        uint64_t primary_iteration = standby_->primaryIteration();
        uint64_t behind = primary_iteration > iteration
                              ? primary_iteration - iteration
                              : 0;
        return format(
            "role=standby state=%s applied=%llu lag=%llu lag_s=%.1f "
            "hash=%s",
            standby_->status().c_str(),
            (unsigned long long)standby_->lastAppliedSeq(),
            (unsigned long long)standby_->lagRecords(),
            double(behind) * (config_.iterationSeconds > 0
                                  ? config_.iterationSeconds
                                  : 1.0),
            hashVerdictName(standby_->lastHashVerdict()));
    }
    if (replicator_) {
        return format(
            "role=primary appended=%llu acked=%llu standbys=%zu "
            "hash=%s",
            (unsigned long long)(nextSeq_ - 1),
            (unsigned long long)replicator_->ackedSeq(),
            replicator_->standbyCount(),
            hashVerdictName(replicator_->lastHashVerdict()));
    }
    if (wal_)
        return format("role=primary wal_records=%llu (no standbys "
                      "configured)",
                      (unsigned long long)wal_->recordsAppended());
    return "replication disabled";
}

} // namespace proto
} // namespace mercury
