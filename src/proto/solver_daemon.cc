#include "proto/solver_daemon.hh"

#include <algorithm>
#include <chrono>

#include "core/solver.hh"
#include "telemetry/writer.hh"
#include "util/logging.hh"

namespace mercury {
namespace proto {

SolverDaemon::SolverDaemon(core::Solver &solver, Config config)
    : solver_(solver), config_(config), service_(solver)
{
    socket_.bind(config_.port);

    // Metrics first: the telemetry Writer below freezes its shm
    // metric-name table at construction, so every instrument must
    // exist before the segment is built.
    registry_ = config_.registry ? config_.registry
                                 : &metrics::Registry::global();
    iterationHist_ = registry_->histogram(
        "solver_iteration_seconds", metrics::Histogram::latencyBounds(),
        "wall-clock cost of one solver iteration");
    handleHist_ = registry_->histogram(
        "net_request_handle_seconds", metrics::Histogram::latencyBounds(),
        "decode+dispatch+reply cost of one received packet");
    metricsGuard_.add(*registry_, "solver_iterations_total",
                      "solver iterations completed",
                      [this] { return double(solver_.iterations()); });
    metricsGuard_.add(*registry_, "solver_active_machines",
                      "machines stepped last iteration",
                      [this] {
                          return double(solver_.activeMachineCount());
                      });
    metricsGuard_.add(*registry_, "solver_frozen_machines",
                      "machines held quiescent last iteration",
                      [this] {
                          return double(solver_.frozenMachineCount());
                      });
    metricsGuard_.add(*registry_, "solver_emulated_seconds",
                      "emulated time reached by the solver",
                      [this] { return solver_.emulatedSeconds(); });
    service_.setMetricsRegistry(registry_);
    if (!config_.checkpointPath.empty()) {
        state::CheckpointManager::Config manager_config;
        manager_config.path = config_.checkpointPath;
        manager_config.periodSeconds = config_.checkpointSeconds;
        checkpointManager_ = std::make_unique<state::CheckpointManager>(
            solver_, manager_config);
        checkpointManager_->setSenderExporter(
            [this] { return service_.exportSenders(); });
        checkpointManager_->setSenderImporter(
            [this](const std::vector<state::SenderRecord> &records) {
                service_.importSenders(records);
            });
        // Restore before the telemetry segment is (re)built below:
        // the segment's first snapshot then already carries the
        // resumed temperatures, and its bumped boot generation evicts
        // any reader still holding pre-crash slot handles.
        checkpointManager_->restoreAtBoot();
        service_.setCheckpointManager(checkpointManager_.get());
    }
    if (!config_.shmName.empty()) {
        writer_ = std::make_unique<telemetry::Writer>(
            config_.shmName, solver_, config_.iterationSeconds, registry_);
        if (writer_->valid()) {
            // Publish from the iteration itself (whoever steps the
            // solver — this loop or a test thread).
            writer_->installHook();
            inform("solverd: telemetry segment ", config_.shmName);
        } else {
            writer_.reset();
        }
    }
}

SolverDaemon::~SolverDaemon() = default;

uint16_t
SolverDaemon::port() const
{
    return socket_.localPort();
}

void
SolverDaemon::run()
{
    using Clock = std::chrono::steady_clock;
    const bool stepping = config_.iterationSeconds > 0.0;
    auto period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            stepping ? config_.iterationSeconds : 0.1));
    auto next_iteration = Clock::now() + period;

    const bool stats_logging = config_.statsLogSeconds > 0.0;
    auto stats_period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            stats_logging ? config_.statsLogSeconds : 1.0));
    auto next_stats = Clock::now() + stats_period;

    // The iteration hook publishes (and timestamps) on every step;
    // refreshing just the heartbeat from the serve loop covers
    // manual-step mode and long iteration periods, so an alive daemon
    // never looks like a dead writer to shm readers.
    auto heartbeat_period = std::chrono::milliseconds(500);
    auto next_heartbeat = Clock::now() + heartbeat_period;

    const bool metrics_file = !config_.metricsPath.empty() &&
                              config_.metricsSeconds > 0.0;
    auto metrics_period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            metrics_file ? config_.metricsSeconds : 1.0));
    // First write soon after startup so scrapers see the file early.
    auto next_metrics = Clock::now();

    while (!stop_.load(std::memory_order_relaxed)) {
        if (writer_ && Clock::now() >= next_heartbeat) {
            writer_->refreshHeartbeat();
            next_heartbeat = Clock::now() + heartbeat_period;
        }
        if (stats_logging && Clock::now() >= next_stats) {
            inform("solverd: ", service_.statsLine());
            next_stats = Clock::now() + stats_period;
        }
        if (checkpointManager_)
            checkpointManager_->maybeSave();
        if (metrics_file && Clock::now() >= next_metrics) {
            metrics::writeTextFile(*registry_, config_.metricsPath);
            next_metrics = Clock::now() + metrics_period;
        }

        double timeout = 0.05;
        if (stepping) {
            auto now = Clock::now();
            if (now >= next_iteration) {
                auto iter_start = Clock::now();
                solver_.iterate();
                iterationHist_->observe(
                    std::chrono::duration<double>(Clock::now() - iter_start)
                        .count());
                next_iteration += period;
                // If we fell behind (heavy queries), skip forward
                // rather than bursting iterations.
                if (next_iteration < now)
                    next_iteration = now + period;
            }
            auto until = std::chrono::duration<double>(next_iteration -
                                                       Clock::now())
                             .count();
            timeout = std::clamp(until, 0.0, 0.05);
        }

        uint8_t buffer[kMessageSize];
        net::Endpoint from;
        auto got = socket_.recvFrom(buffer, sizeof(buffer), &from, timeout);
        if (!got)
            continue;
        auto handle_start = Clock::now();
        auto reply = service_.handlePacket(buffer, *got);
        if (reply)
            socket_.sendTo(from, reply->data(), reply->size());
        handleHist_->observe(
            std::chrono::duration<double>(Clock::now() - handle_start)
                .count());
    }

    // stop() is the graceful path (SIGINT/SIGTERM in solverd): flush
    // one final checkpoint so a clean shutdown never loses state.
    if (checkpointManager_) {
        if (checkpointManager_->saveNow())
            inform("solverd: final checkpoint saved to ",
                   checkpointManager_->path());
    }
    if (metrics_file)
        metrics::writeTextFile(*registry_, config_.metricsPath);
}

} // namespace proto
} // namespace mercury
