#include "proto/solver_daemon.hh"

#include <algorithm>
#include <chrono>

#include "core/solver.hh"
#include "telemetry/writer.hh"
#include "util/logging.hh"

namespace mercury {
namespace proto {

SolverDaemon::SolverDaemon(core::Solver &solver, Config config)
    : solver_(solver), config_(config), service_(solver)
{
    socket_.bind(config_.port);
    if (!config_.checkpointPath.empty()) {
        state::CheckpointManager::Config manager_config;
        manager_config.path = config_.checkpointPath;
        manager_config.periodSeconds = config_.checkpointSeconds;
        checkpointManager_ = std::make_unique<state::CheckpointManager>(
            solver_, manager_config);
        checkpointManager_->setSenderExporter(
            [this] { return service_.exportSenders(); });
        checkpointManager_->setSenderImporter(
            [this](const std::vector<state::SenderRecord> &records) {
                service_.importSenders(records);
            });
        // Restore before the telemetry segment is (re)built below:
        // the segment's first snapshot then already carries the
        // resumed temperatures, and its bumped boot generation evicts
        // any reader still holding pre-crash slot handles.
        checkpointManager_->restoreAtBoot();
        service_.setCheckpointManager(checkpointManager_.get());
    }
    if (!config_.shmName.empty()) {
        writer_ = std::make_unique<telemetry::Writer>(
            config_.shmName, solver_, config_.iterationSeconds);
        if (writer_->valid()) {
            // Publish from the iteration itself (whoever steps the
            // solver — this loop or a test thread).
            writer_->installHook();
            inform("solverd: telemetry segment ", config_.shmName);
        } else {
            writer_.reset();
        }
    }
}

SolverDaemon::~SolverDaemon() = default;

uint16_t
SolverDaemon::port() const
{
    return socket_.localPort();
}

void
SolverDaemon::run()
{
    using Clock = std::chrono::steady_clock;
    const bool stepping = config_.iterationSeconds > 0.0;
    auto period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            stepping ? config_.iterationSeconds : 0.1));
    auto next_iteration = Clock::now() + period;

    const bool stats_logging = config_.statsLogSeconds > 0.0;
    auto stats_period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            stats_logging ? config_.statsLogSeconds : 1.0));
    auto next_stats = Clock::now() + stats_period;

    // The iteration hook publishes (and timestamps) on every step;
    // refreshing just the heartbeat from the serve loop covers
    // manual-step mode and long iteration periods, so an alive daemon
    // never looks like a dead writer to shm readers.
    auto heartbeat_period = std::chrono::milliseconds(500);
    auto next_heartbeat = Clock::now() + heartbeat_period;

    while (!stop_.load(std::memory_order_relaxed)) {
        if (writer_ && Clock::now() >= next_heartbeat) {
            writer_->refreshHeartbeat();
            next_heartbeat = Clock::now() + heartbeat_period;
        }
        if (stats_logging && Clock::now() >= next_stats) {
            inform("solverd: ", service_.statsLine());
            next_stats = Clock::now() + stats_period;
        }
        if (checkpointManager_)
            checkpointManager_->maybeSave();

        double timeout = 0.05;
        if (stepping) {
            auto now = Clock::now();
            if (now >= next_iteration) {
                solver_.iterate();
                next_iteration += period;
                // If we fell behind (heavy queries), skip forward
                // rather than bursting iterations.
                if (next_iteration < now)
                    next_iteration = now + period;
            }
            auto until = std::chrono::duration<double>(next_iteration -
                                                       Clock::now())
                             .count();
            timeout = std::clamp(until, 0.0, 0.05);
        }

        uint8_t buffer[kMessageSize];
        net::Endpoint from;
        auto got = socket_.recvFrom(buffer, sizeof(buffer), &from, timeout);
        if (!got)
            continue;
        auto reply = service_.handlePacket(buffer, *got);
        if (reply)
            socket_.sendTo(from, reply->data(), reply->size());
    }

    // stop() is the graceful path (SIGINT/SIGTERM in solverd): flush
    // one final checkpoint so a clean shutdown never loses state.
    if (checkpointManager_) {
        if (checkpointManager_->saveNow())
            inform("solverd: final checkpoint saved to ",
                   checkpointManager_->path());
    }
}

} // namespace proto
} // namespace mercury
