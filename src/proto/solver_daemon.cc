#include "proto/solver_daemon.hh"

#include <algorithm>
#include <chrono>

#include "core/solver.hh"
#include "telemetry/writer.hh"
#include "util/logging.hh"

namespace mercury {
namespace proto {

SolverDaemon::SolverDaemon(core::Solver &solver, Config config)
    : solver_(solver), config_(config), service_(solver)
{
    // Metrics first: the telemetry Writer below freezes its shm
    // metric-name table at construction, so every instrument — the
    // daemon's, the service's and the request plane's — must exist
    // before the segment is built.
    registry_ = config_.registry ? config_.registry
                                 : &metrics::Registry::global();
    iterationHist_ = registry_->histogram(
        "solver_iteration_seconds", metrics::Histogram::latencyBounds(),
        "wall-clock cost of one solver iteration");
    metricsGuard_.add(*registry_, "solver_iterations_total",
                      "solver iterations completed",
                      [this] { return double(solver_.iterations()); });
    metricsGuard_.add(*registry_, "solver_active_machines",
                      "machines stepped last iteration",
                      [this] {
                          return double(solver_.activeMachineCount());
                      });
    metricsGuard_.add(*registry_, "solver_frozen_machines",
                      "machines held quiescent last iteration",
                      [this] {
                          return double(solver_.frozenMachineCount());
                      });
    metricsGuard_.add(*registry_, "solver_emulated_seconds",
                      "emulated time reached by the solver",
                      [this] { return solver_.emulatedSeconds(); });
    service_.setMetricsRegistry(registry_);

    RequestPlane::Config plane_config;
    plane_config.port = config_.port;
    plane_config.serveThreads = config_.serveThreads;
    plane_config.shmName = config_.shmName;
    plane_config.registry = registry_;
    plane_ = std::make_unique<RequestPlane>(service_, plane_config);

    if (!config_.checkpointPath.empty()) {
        state::CheckpointManager::Config manager_config;
        manager_config.path = config_.checkpointPath;
        manager_config.periodSeconds = config_.checkpointSeconds;
        checkpointManager_ = std::make_unique<state::CheckpointManager>(
            solver_, manager_config);
        checkpointManager_->setSenderExporter(
            [this] { return service_.exportSenders(); });
        checkpointManager_->setSenderImporter(
            [this](const std::vector<state::SenderRecord> &records) {
                service_.importSenders(records);
            });
        // Restore before the telemetry segment is (re)built below:
        // the segment's first snapshot then already carries the
        // resumed temperatures, and its bumped boot generation evicts
        // any reader still holding pre-crash slot handles.
        checkpointManager_->restoreAtBoot();
        service_.setCheckpointManager(checkpointManager_.get());
    }
    if (!config_.shmName.empty()) {
        writer_ = std::make_unique<telemetry::Writer>(
            config_.shmName, solver_, config_.iterationSeconds, registry_);
        if (writer_->valid()) {
            // Publish from the iteration itself (whoever steps the
            // solver — this loop or a test thread).
            writer_->installHook();
            inform("solverd: telemetry segment ", config_.shmName);
        } else {
            writer_.reset();
        }
    }
}

SolverDaemon::~SolverDaemon() = default;

uint16_t
SolverDaemon::port() const
{
    return plane_->port();
}

void
SolverDaemon::run()
{
    using Clock = std::chrono::steady_clock;
    const bool stepping = config_.iterationSeconds > 0.0;
    auto period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            stepping ? config_.iterationSeconds : 0.1));
    auto next_iteration = Clock::now() + period;

    const bool stats_logging = config_.statsLogSeconds > 0.0;
    auto stats_period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            stats_logging ? config_.statsLogSeconds : 1.0));
    auto next_stats = Clock::now() + stats_period;

    // The iteration hook publishes (and timestamps) on every step;
    // refreshing just the heartbeat from this loop covers manual-step
    // mode and long iteration periods, so an alive daemon never looks
    // like a dead writer to shm readers.
    auto heartbeat_period = std::chrono::milliseconds(500);
    auto next_heartbeat = Clock::now() + heartbeat_period;

    const bool metrics_file = !config_.metricsPath.empty() &&
                              config_.metricsSeconds > 0.0;
    auto metrics_period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            metrics_file ? config_.metricsSeconds : 1.0));
    // First write soon after startup so scrapers see the file early.
    auto next_metrics = Clock::now();

    // Checkpoint deadlines live inside the manager; polling maybeSave
    // at least this often keeps its timer honest without exposing it.
    auto checkpoint_poll = std::chrono::milliseconds(500);

    plane_->start();

    while (!stop_.load(std::memory_order_relaxed)) {
        if (writer_ && Clock::now() >= next_heartbeat) {
            writer_->refreshHeartbeat();
            next_heartbeat = Clock::now() + heartbeat_period;
        }
        if (stats_logging && Clock::now() >= next_stats) {
            inform("solverd: ", service_.statsLine());
            next_stats = Clock::now() + stats_period;
        }
        if (checkpointManager_)
            checkpointManager_->maybeSave();
        if (metrics_file && Clock::now() >= next_metrics) {
            metrics::writeTextFile(*registry_, config_.metricsPath);
            next_metrics = Clock::now() + metrics_period;
        }

        if (stepping) {
            auto now = Clock::now();
            if (now >= next_iteration) {
                auto iter_start = Clock::now();
                solver_.iterate();
                iterationHist_->observe(
                    std::chrono::duration<double>(Clock::now() - iter_start)
                        .count());
                next_iteration += period;
                // If we fell behind (heavy queries), skip forward
                // rather than bursting iterations.
                if (next_iteration < now)
                    next_iteration = now + period;
            }
        }

        // Sleep until the nearest pending deadline (not a fixed 50 ms
        // tick): the serve workers own the sockets, so the only things
        // that can need this thread are timers and queued mutations —
        // and the queue wakes us through the condition variable.
        auto deadline = Clock::now() + checkpoint_poll;
        if (stepping)
            deadline = std::min(deadline, next_iteration);
        if (writer_)
            deadline = std::min(deadline, next_heartbeat);
        if (stats_logging)
            deadline = std::min(deadline, next_stats);
        if (metrics_file)
            deadline = std::min(deadline, next_metrics);

        plane_->waitForWork(deadline);
        plane_->drainPending();
    }

    // Stop the workers before the final drain so no mutation slips in
    // after it; anything already queued is still applied and answered.
    plane_->stopAndJoin();
    plane_->drainPending();

    // stop() is the graceful path (SIGINT/SIGTERM in solverd): flush
    // one final checkpoint so a clean shutdown never loses state.
    if (checkpointManager_) {
        if (checkpointManager_->saveNow())
            inform("solverd: final checkpoint saved to ",
                   checkpointManager_->path());
    }
    if (metrics_file)
        metrics::writeTextFile(*registry_, config_.metricsPath);
}

} // namespace proto
} // namespace mercury
