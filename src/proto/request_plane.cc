#include "proto/request_plane.hh"

#include <chrono>
#include <variant>

#include "proto/solver_service.hh"
#include "telemetry/reader.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace mercury {
namespace proto {

namespace {

using Clock = std::chrono::steady_clock;

/** Bounded wait per recvMany call; workers re-check stop_ at this
 *  cadence, so it is also the shutdown latency bound. */
constexpr double kWorkerPollSeconds = 0.05;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

RequestPlane::RequestPlane(SolverService &service, Config config)
    : service_(service), config_(config)
{
    if (config_.serveThreads < 1)
        config_.serveThreads = 1;
    if (!config_.registry)
        config_.registry = &metrics::Registry::global();

    // Instruments first: the daemon builds the telemetry Writer (which
    // freezes its shm metric-name table) after constructing the plane,
    // so everything must be registered here, not lazily in start().
    metrics::Registry &reg = *config_.registry;
    batchHist_ = reg.histogram(
        "net_batch_size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0},
        "datagrams drained per recvMany wake-up");
    handleHist_ = reg.histogram(
        "net_request_handle_seconds", metrics::Histogram::latencyBounds(),
        "decode+dispatch+reply cost of one received packet");
    busyGauge_ = reg.gauge(
        "net_worker_busy_seconds",
        "cumulative wall-clock the serve workers spent processing");
    sendErrors_ = reg.counter(
        "net_reply_send_errors_total",
        "reply datagrams that failed to send (or sent short)");
    metricsGuard_.add(reg, "net_request_queue_depth",
                      "mutations waiting for the solver thread",
                      [this] { return double(queueDepth()); });
    metricsGuard_.add(reg, "net_serve_workers",
                      "serve worker shards on the request plane",
                      [this] { return double(workers()); });

    // Shard 0 claims the configured port (possibly ephemeral); the
    // rest join it. Every socket sets SO_REUSEPORT *before* bind when
    // sharding — the kernel only groups sockets that all asked for it.
    const bool sharded = config_.serveThreads > 1;
    for (unsigned i = 0; i < config_.serveThreads; ++i) {
        auto shard = std::make_unique<Shard>();
        uint16_t bind_port =
            i == 0 ? config_.port : shards_[0]->socket.localPort();
        shard->socket.bind(bind_port, sharded);
        if (!config_.shmName.empty())
            shard->reader =
                std::make_unique<telemetry::Reader>(config_.shmName);
        shards_.push_back(std::move(shard));
    }
}

RequestPlane::~RequestPlane()
{
    stopAndJoin();
}

uint16_t
RequestPlane::port() const
{
    return shards_.empty() ? 0 : shards_[0]->socket.localPort();
}

void
RequestPlane::start()
{
    if (started_)
        return;
    started_ = true;
    stop_.store(false, std::memory_order_relaxed);
    for (auto &shard : shards_)
        shard->thread = std::thread([this, s = shard.get()] {
            workerLoop(*s);
        });
}

void
RequestPlane::stopAndJoin()
{
    stop_.store(true, std::memory_order_relaxed);
    for (auto &shard : shards_) {
        if (shard->thread.joinable())
            shard->thread.join();
    }
    started_ = false;
}

void
RequestPlane::wake()
{
    {
        std::lock_guard<std::mutex> guard(queueMutex_);
        wakeRequested_ = true;
    }
    queueCv_.notify_all();
}

bool
RequestPlane::waitForWork(Clock::time_point deadline)
{
    std::unique_lock<std::mutex> lock(queueMutex_);
    queueCv_.wait_until(lock, deadline, [this] {
        return !queue_.empty() || wakeRequested_;
    });
    wakeRequested_ = false;
    return !queue_.empty();
}

size_t
RequestPlane::drainPending()
{
    std::vector<Pending> batch;
    {
        std::lock_guard<std::mutex> guard(queueMutex_);
        batch.swap(queue_);
    }
    if (batch.empty())
        return 0;
    queueDepth_.fetch_sub(batch.size(), std::memory_order_relaxed);

    for (Pending &pending : batch) {
        auto start = Clock::now();
        if (mutationObserver_)
            mutationObserver_(pending.message);
        auto reply = service_.handleQueued(pending.message);
        if (reply && pending.via) {
            net::UdpSocket::SendDatagram item;
            item.to = pending.from;
            item.data = reply->data();
            item.length = reply->size();
            // Reply through the shard socket the request arrived on:
            // the source port then matches what the client targeted.
            sendReplies(*pending.via, &item, 1);
        }
        handleHist_->observe(secondsSince(start));
    }
    return batch.size();
}

uint64_t
RequestPlane::replySendErrors() const
{
    return sendErrors_->value();
}

void
RequestPlane::workerLoop(Shard &shard)
{
    constexpr size_t kBatch = net::UdpSocket::kMaxBatch;
    std::vector<uint8_t> buffers(kBatch * kMessageSize);
    net::UdpSocket::RecvDatagram metas[kBatch];
    std::vector<net::UdpSocket::SendDatagram> replies;
    std::vector<Packet> reply_bufs;
    replies.reserve(kBatch);
    // SendDatagram::data points into reply_bufs; reserving the worst
    // case up front keeps those pointers stable across push_backs.
    reply_bufs.reserve(kBatch);

    while (!stop_.load(std::memory_order_relaxed)) {
        size_t got = shard.socket.recvMany(buffers.data(), kMessageSize,
                                           metas, kBatch,
                                           kWorkerPollSeconds);
        if (got == 0)
            continue;
        auto busy_start = Clock::now();
        batchHist_->observe(double(got));
        replies.clear();
        reply_bufs.clear();
        for (size_t i = 0; i < got; ++i) {
            auto start = Clock::now();
            handleDatagram(shard, buffers.data() + i * kMessageSize,
                           metas[i].length, metas[i].from, replies,
                           reply_bufs);
            handleHist_->observe(secondsSince(start));
        }
        if (!replies.empty())
            sendReplies(shard.socket, replies.data(), replies.size());
        busyGauge_->add(secondsSince(busy_start));
    }
}

void
RequestPlane::handleDatagram(
    Shard &shard, const uint8_t *data, size_t length,
    const net::Endpoint &from,
    std::vector<net::UdpSocket::SendDatagram> &replies,
    std::vector<Packet> &reply_bufs)
{
    auto push_reply = [&](const Packet &packet) {
        reply_bufs.push_back(packet);
        net::UdpSocket::SendDatagram item;
        item.to = from;
        item.data = reply_bufs.back().data();
        item.length = reply_bufs.back().size();
        replies.push_back(item);
    };

    std::optional<Message> message = decode(data, length);
    if (!message) {
        service_.countUndecodable();
        return;
    }
    // variant index 0 is UtilizationUpdate == MessageType 1, etc.
    service_.countReceived(static_cast<MessageType>(message->index() + 1));

    if (const auto *update = std::get_if<UtilizationUpdate>(&*message)) {
        // Sequence accounting happens now, not when the solver thread
        // gets around to the queue — loss numbers measure the network,
        // not our scheduling.
        service_.noteSequence(update->machine, update->sequence,
                              update->backlog);
        enqueue(std::move(*message), from, &shard.socket);
        return;
    }
    if (const auto *request = std::get_if<SensorRequest>(&*message)) {
        Packet reply;
        if (answerSensor(shard, *request, &reply))
            push_reply(reply);
        else
            enqueue(std::move(*message), from, &shard.socket);
        return;
    }
    if (const auto *request = std::get_if<MultiReadRequest>(&*message)) {
        Packet reply;
        if (answerMultiRead(shard, *request, &reply))
            push_reply(reply);
        else
            enqueue(std::move(*message), from, &shard.socket);
        return;
    }
    if (const auto *request = std::get_if<FiddleRequest>(&*message)) {
        // Only the two read-only commands are answered inline; every
        // other line mutates the solver (or saves a checkpoint) and
        // belongs to the solver thread.
        std::string line = trim(request->commandLine);
        if (line == "stats" || line == "fiddle stats") {
            FiddleReply reply;
            reply.requestId = request->requestId;
            reply.status = Status::Ok;
            reply.message = service_.statsLine().substr(0, 110);
            push_reply(encode(reply));
            return;
        }
        if (line == "metrics" || line == "fiddle metrics") {
            FiddleReply reply;
            reply.requestId = request->requestId;
            reply.status = Status::Ok;
            metrics::Registry *registry = service_.metricsRegistry();
            reply.message =
                (registry ? registry->renderSummary()
                          : service_.statsLine())
                    .substr(0, 110);
            push_reply(encode(reply));
            return;
        }
        enqueue(std::move(*message), from, &shard.socket);
        return;
    }
    if (const auto *request = std::get_if<MetricsRequest>(&*message)) {
        push_reply(service_.metricsReply(*request,
                                         shard.metricsPageCache));
        return;
    }
    // Reply types arriving at the server are peer bugs; drop them
    // (counted the same way the synchronous dispatch does).
    service_.countUndecodable();
}

bool
RequestPlane::answerSensor(Shard &shard, const SensorRequest &msg,
                           Packet *reply_out)
{
    if (!shard.reader)
        return false;
    auto resolution =
        shard.reader->resolveDetailed(msg.machine, msg.component);
    SensorReply reply;
    reply.requestId = msg.requestId;
    switch (resolution.status) {
    case telemetry::Reader::ResolveStatus::Unavailable:
        return false; // no snapshot; the solver thread answers
    case telemetry::Reader::ResolveStatus::UnknownMachine:
        reply.status = Status::UnknownMachine;
        break;
    case telemetry::Reader::ResolveStatus::UnknownComponent:
        reply.status = Status::UnknownComponent;
        break;
    case telemetry::Reader::ResolveStatus::Ok: {
        auto sample = shard.reader->read(resolution.slot);
        if (!sample)
            return false; // raced a writer remap; fall back
        reply.status = Status::Ok;
        reply.temperature = sample->temperature;
        service_.countSensorRead();
        break;
    }
    }
    *reply_out = encode(reply);
    return true;
}

bool
RequestPlane::answerMultiRead(Shard &shard, const MultiReadRequest &msg,
                              Packet *reply_out)
{
    if (!shard.reader)
        return false;

    MultiReadReply reply;
    reply.requestId = msg.requestId;

    // Probe the machine first (an empty component resolves to
    // UnknownComponent on a known machine) so the machine-level status
    // matches the solver path even for an empty component list.
    auto probe = shard.reader->resolveDetailed(
        msg.machine,
        msg.components.empty() ? std::string() : msg.components.front());
    if (probe.status == telemetry::Reader::ResolveStatus::Unavailable)
        return false;
    if (probe.status == telemetry::Reader::ResolveStatus::UnknownMachine) {
        reply.status = Status::UnknownMachine;
        *reply_out = encode(reply);
        return true;
    }

    reply.status = Status::Ok;
    reply.entries.reserve(msg.components.size());
    uint64_t reads = 0;
    for (const std::string &component : msg.components) {
        auto resolution =
            shard.reader->resolveDetailed(msg.machine, component);
        MultiReadEntry entry;
        if (resolution.status == telemetry::Reader::ResolveStatus::Ok) {
            auto sample = shard.reader->read(resolution.slot);
            if (!sample)
                return false; // raced a remap mid-reply; fall back
            entry.status = Status::Ok;
            entry.temperature = sample->temperature;
            ++reads;
        } else if (resolution.status ==
                   telemetry::Reader::ResolveStatus::Unavailable) {
            return false;
        } else {
            entry.status = Status::UnknownComponent;
        }
        reply.entries.push_back(entry);
    }
    service_.countSensorRead(reads);
    service_.countMultiRead();
    *reply_out = encode(reply);
    return true;
}

void
RequestPlane::enqueue(Message message, const net::Endpoint &from,
                      net::UdpSocket *via)
{
    {
        std::lock_guard<std::mutex> guard(queueMutex_);
        queue_.push_back(Pending{std::move(message), from, via});
    }
    queueDepth_.fetch_add(1, std::memory_order_relaxed);
    queueCv_.notify_one();
}

void
RequestPlane::sendReplies(net::UdpSocket &via,
                          const net::UdpSocket::SendDatagram *items,
                          size_t count)
{
    size_t first_error = count;
    size_t sent = via.sendMany(items, count, &first_error);
    if (sent == count)
        return;
    sendErrors_->inc(count - sent);
    if (first_error < count)
        noteSendFailure(items[first_error].to);
}

void
RequestPlane::noteSendFailure(const net::Endpoint &to)
{
    std::string peer = to.toString();
    std::lock_guard<std::mutex> guard(sendWarnMutex_);
    if (warnedPeers_.insert(peer).second) {
        warn("request plane: failed to send reply to ", peer,
             " (further failures to this peer counted in "
             "net_reply_send_errors_total, not logged)");
    }
}

} // namespace proto
} // namespace mercury
