#include "proto/wal_codec.hh"

#include <cstring>

#include "util/strings.hh"

namespace mercury {
namespace proto {

namespace {

/** Payload type tags; match MessageType values for log readability. */
constexpr uint8_t kTagUtilization = 1;
constexpr uint8_t kTagFiddle = 4;

constexpr size_t kMaxNameBytes = 31;
constexpr size_t kMaxLineBytes = 115;

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putShortString(std::vector<uint8_t> &out, const std::string &s)
{
    out.push_back(static_cast<uint8_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

struct Cursor
{
    const uint8_t *data;
    size_t size;
    size_t pos = 0;
    bool ok = true;

    bool
    need(size_t bytes)
    {
        if (!ok || size - pos < bytes)
            ok = false;
        return ok;
    }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data[pos++];
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    std::string
    shortString(size_t max_bytes)
    {
        uint8_t length = u8();
        if (length > max_bytes || !need(length))
            ok = false;
        if (!ok)
            return {};
        std::string s(reinterpret_cast<const char *>(data + pos), length);
        pos += length;
        return s;
    }
};

} // namespace

bool
fiddleLineMutates(const std::string &line)
{
    std::string trimmed = trim(line);
    // Tolerate the "fiddle "-prefixed variants the service accepts.
    if (startsWith(trimmed, "fiddle "))
        trimmed = trim(trimmed.substr(7));
    if (trimmed.empty())
        return false;
    if (trimmed == "stats" || trimmed == "metrics" ||
        trimmed == "replica" || trimmed == "checkpoint")
        return false;
    if (trimmed == "guard" || startsWith(trimmed, "guard "))
        return false;
    return true;
}

std::vector<uint8_t>
encodeWalMutation(const Message &message)
{
    std::vector<uint8_t> out;
    if (const auto *update = std::get_if<UtilizationUpdate>(&message)) {
        out.reserve(2 + update->machine.size() + update->component.size() +
                    8 + 8 + 4 + 2);
        out.push_back(kTagUtilization);
        putShortString(out, update->machine);
        putShortString(out, update->component);
        uint64_t bits;
        std::memcpy(&bits, &update->utilization, sizeof(bits));
        putU64(out, bits);
        putU64(out, update->sequence);
        putU32(out, update->backlog);
        out.push_back(update->substituted);
        return out;
    }
    if (const auto *request = std::get_if<FiddleRequest>(&message)) {
        if (!fiddleLineMutates(request->commandLine))
            return {};
        out.reserve(6 + request->commandLine.size());
        out.push_back(kTagFiddle);
        putU32(out, request->requestId);
        putShortString(out, request->commandLine);
        return out;
    }
    // Read RPCs and reply types: nothing to log.
    return {};
}

std::optional<Message>
decodeWalMutation(const uint8_t *data, size_t size)
{
    Cursor in{data, size};
    uint8_t tag = in.u8();
    if (!in.ok)
        return std::nullopt;
    if (tag == kTagUtilization) {
        UtilizationUpdate update;
        update.machine = in.shortString(kMaxNameBytes);
        update.component = in.shortString(kMaxNameBytes);
        uint64_t bits = in.u64();
        std::memcpy(&update.utilization, &bits,
                    sizeof(update.utilization));
        update.sequence = in.u64();
        update.backlog = in.u32();
        update.substituted = in.u8();
        if (!in.ok || in.pos != size || update.machine.empty())
            return std::nullopt;
        return Message{std::move(update)};
    }
    if (tag == kTagFiddle) {
        FiddleRequest request;
        request.requestId = in.u32();
        request.commandLine = in.shortString(kMaxLineBytes);
        if (!in.ok || in.pos != size)
            return std::nullopt;
        return Message{std::move(request)};
    }
    return std::nullopt;
}

} // namespace proto
} // namespace mercury
