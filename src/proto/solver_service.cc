#include "proto/solver_service.hh"

#include "core/solver.hh"
#include "fiddle/command.hh"
#include "util/logging.hh"

namespace mercury {
namespace proto {

SolverService::SolverService(core::Solver &solver)
    : solver_(solver)
{
}

std::optional<Packet>
SolverService::handlePacket(const uint8_t *data, size_t length)
{
    std::optional<Message> message = decode(data, length);
    if (!message) {
        ++undecodable_;
        return std::nullopt;
    }
    return handle(*message);
}

std::optional<Packet>
SolverService::handle(const Message &message)
{
    if (const auto *update = std::get_if<UtilizationUpdate>(&message)) {
        onUtilization(*update);
        return std::nullopt; // one-way, like the paper's monitord
    }
    if (const auto *request = std::get_if<SensorRequest>(&message))
        return onSensorRequest(*request);
    if (const auto *request = std::get_if<FiddleRequest>(&message))
        return onFiddleRequest(*request);
    // Reply types arriving at the server are peer bugs; drop them.
    ++undecodable_;
    return std::nullopt;
}

std::optional<core::Solver::NodeRef>
SolverService::resolveCached(const std::string &machine,
                             const std::string &component)
{
    std::string key = machine + "." + component;
    auto hit = resolved_.find(key);
    if (hit != resolved_.end())
        return hit->second;
    auto ref = solver_.tryResolveRef(machine, component);
    if (ref)
        resolved_.emplace(std::move(key), *ref);
    return ref;
}

Packet
SolverService::onUtilization(const UtilizationUpdate &msg)
{
    auto ref = resolveCached(msg.machine, msg.component);
    if (!ref || !solver_.isPowered(*ref)) {
        ++updatesRejected_;
        std::string key = msg.machine + "." + msg.component;
        if (warnedTargets_.insert(key).second) {
            warn("solver: dropping utilization updates for ", key,
                 " (no powered node; further drops are silent)");
        }
        return Packet{};
    }
    solver_.setUtilization(*ref, msg.utilization);
    ++updatesApplied_;
    return Packet{};
}

Packet
SolverService::onSensorRequest(const SensorRequest &msg)
{
    SensorReply reply;
    reply.requestId = msg.requestId;
    if (!solver_.hasMachine(msg.machine)) {
        reply.status = Status::UnknownMachine;
        return encode(reply);
    }
    auto ref = resolveCached(msg.machine, msg.component);
    if (!ref) {
        reply.status = Status::UnknownComponent;
        return encode(reply);
    }
    reply.status = Status::Ok;
    reply.temperature = solver_.temperature(*ref);
    ++sensorReads_;
    return encode(reply);
}

Packet
SolverService::onFiddleRequest(const FiddleRequest &msg)
{
    FiddleReply reply;
    reply.requestId = msg.requestId;
    fiddle::FiddleResult result =
        fiddle::applyLine(solver_, msg.commandLine);
    reply.status = result.ok ? Status::Ok : Status::BadCommand;
    // Clamp the diagnostic to the wire field.
    reply.message = result.message.substr(0, 110);
    if (result.ok)
        ++fiddlesApplied_;
    return encode(reply);
}

} // namespace proto
} // namespace mercury
