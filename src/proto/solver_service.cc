#include "proto/solver_service.hh"

#include <algorithm>

#include "core/solver.hh"
#include "fiddle/command.hh"
#include "guard/sensor_guard.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace mercury {
namespace proto {

SolverService::SolverService(core::Solver &solver)
    : solver_(solver)
{
}

std::optional<Packet>
SolverService::handlePacket(const uint8_t *data, size_t length)
{
    std::optional<Message> message = decode(data, length);
    if (!message) {
        bump(undecodable_);
        return std::nullopt;
    }
    return handle(*message);
}

std::optional<Packet>
SolverService::handle(const Message &message)
{
    return dispatch(message, /*preaccounted=*/false);
}

std::optional<Packet>
SolverService::handleQueued(const Message &message)
{
    return dispatch(message, /*preaccounted=*/true);
}

void
SolverService::handleReplicated(const Message &message)
{
    // Not preaccounted: a standby's receive counters should mirror
    // the primary's, and nothing upstream counted this message.
    dispatch(message, /*preaccounted=*/false, /*replicated=*/true);
}

void
SolverService::setReadOnly(bool read_only, std::string reason)
{
    readOnly_ = read_only;
    readOnlyReason_ = std::move(reason);
}

std::optional<Packet>
SolverService::dispatch(const Message &message, bool preaccounted,
                        bool replicated)
{
    if (!preaccounted) {
        // variant index 0 is UtilizationUpdate == MessageType 1, etc.
        size_t type = message.index() + 1;
        if (type < receivedByType_.size())
            bump(receivedByType_[type]);
    }

    if (const auto *update = std::get_if<UtilizationUpdate>(&message)) {
        // A read-only standby takes state only from the replication
        // stream; a monitord aimed at it directly is a configuration
        // error, not an input source.
        if (readOnly_ && !replicated) {
            bump(updatesRefusedReadOnly_);
            return std::nullopt;
        }
        onUtilization(*update, /*note_sequence=*/!preaccounted);
        return std::nullopt; // one-way, like the paper's monitord
    }
    if (const auto *request = std::get_if<SensorRequest>(&message))
        return onSensorRequest(*request);
    if (const auto *request = std::get_if<MultiReadRequest>(&message))
        return onMultiReadRequest(*request);
    if (const auto *request = std::get_if<FiddleRequest>(&message))
        return onFiddleRequest(*request, replicated);
    if (const auto *request = std::get_if<MetricsRequest>(&message))
        return metricsReply(*request, metricsPageCache_);
    // Reply types arriving at the server are peer bugs; drop them.
    bump(undecodable_);
    return std::nullopt;
}

void
SolverService::setMetricsRegistry(metrics::Registry *registry)
{
    metricsGuard_.release();
    metricsRegistry_ = registry;
    if (!registry)
        return;
    metrics::Registry &reg = *registry;
    metricsGuard_.add(reg, "net_updates_applied_total",
                      "utilization updates applied to the solver",
                      [this] { return double(updatesApplied()); });
    metricsGuard_.add(reg, "net_updates_rejected_total",
                      "utilization updates with no powered target node",
                      [this] { return double(updatesRejected()); });
    metricsGuard_.add(reg, "net_updates_refused_readonly_total",
                      "updates refused because this daemon is a "
                      "read-only standby",
                      [this] { return double(updatesRefusedReadOnly()); });
    metricsGuard_.add(reg, "net_updates_substituted_total",
                      "updates whose sender flagged a guard-substituted "
                      "value",
                      [this] { return double(updatesSubstituted()); });
    metricsGuard_.add(reg, "net_sensor_reads_total",
                      "sensor temperatures served (single + batched)",
                      [this] { return double(sensorReads()); });
    metricsGuard_.add(reg, "net_multi_reads_total",
                      "MultiRead datagrams served",
                      [this] { return double(multiReads()); });
    metricsGuard_.add(reg, "net_fiddles_applied_total",
                      "fiddle commands applied",
                      [this] { return double(fiddlesApplied()); });
    metricsGuard_.add(reg, "net_undecodable_total",
                      "packets dropped as undecodable or misdirected",
                      [this] { return double(undecodable()); });
    metricsGuard_.add(reg, "net_updates_lost_total",
                      "sequence gaps still unfilled, all senders",
                      [this] { return double(lossStats().lost); });
    metricsGuard_.add(reg, "net_updates_duplicate_total",
                      "duplicate sequence numbers, all senders",
                      [this] { return double(lossStats().duplicates); });
    metricsGuard_.add(reg, "net_updates_reordered_total",
                      "late-arriving updates, all senders",
                      [this] { return double(lossStats().reordered); });
    metricsGuard_.add(reg, "net_update_senders",
                      "distinct machines with sequence tracking",
                      [this] { return double(lossStats().senders); });
    metricsGuard_.add(reg, "net_backlog_depth",
                      "samples queued in sender outage backlogs",
                      [this] { return double(backlogDepth()); });
}

std::optional<core::Solver::NodeRef>
SolverService::resolveCached(const std::string &machine,
                             const std::string &component)
{
    std::string key = machine + "." + component;
    auto hit = resolved_.find(key);
    if (hit != resolved_.end())
        return hit->second;
    auto ref = solver_.tryResolveRef(machine, component);
    if (ref)
        resolved_.emplace(std::move(key), *ref);
    return ref;
}

void
SolverService::SenderState::note(uint64_t sequence)
{
    ++received;
    if (!started) {
        started = true;
        head = sequence;
        window = 1;
        return;
    }
    if (sequence > head) {
        uint64_t advance = sequence - head;
        lost += advance - 1; // provisional: late arrivals un-count
        window = advance >= 64 ? 0 : window << advance;
        window |= 1;
        head = sequence;
        return;
    }
    uint64_t back = head - sequence;
    if (back >= 64) {
        // Too old to say whether it was counted lost; call it a
        // reorder and leave the loss count alone.
        ++reordered;
        return;
    }
    uint64_t bit = uint64_t{1} << back;
    if (window & bit) {
        ++duplicates;
    } else {
        window |= bit;
        ++reordered;
        if (lost > 0)
            --lost;
    }
}

SolverService::SenderStripe &
SolverService::stripeFor(const std::string &machine)
{
    return senders_[std::hash<std::string>{}(machine) % kSenderStripes];
}

const SolverService::SenderStripe &
SolverService::stripeFor(const std::string &machine) const
{
    return senders_[std::hash<std::string>{}(machine) % kSenderStripes];
}

void
SolverService::noteSequence(const std::string &machine, uint64_t sequence,
                            uint32_t backlog)
{
    SenderStripe &stripe = stripeFor(machine);
    std::lock_guard<std::mutex> guard(stripe.mutex);
    SenderState &sender = stripe.senders[machine];
    sender.note(sequence);
    sender.lastBacklog = backlog;
}

uint64_t
SolverService::backlogDepth() const
{
    uint64_t depth = 0;
    for (const SenderStripe &stripe : senders_) {
        std::lock_guard<std::mutex> guard(stripe.mutex);
        for (const auto &[machine, state] : stripe.senders) {
            (void)machine;
            depth += state.lastBacklog;
        }
    }
    return depth;
}

std::vector<state::SenderRecord>
SolverService::exportSenders() const
{
    std::vector<state::SenderRecord> records;
    for (const SenderStripe &stripe : senders_) {
        std::lock_guard<std::mutex> guard(stripe.mutex);
        records.reserve(records.size() + stripe.senders.size());
        for (const auto &[machine, sender] : stripe.senders) {
            state::SenderRecord record;
            record.machine = machine;
            record.started = sender.started;
            record.head = sender.head;
            record.window = sender.window;
            record.received = sender.received;
            record.lost = sender.lost;
            record.duplicates = sender.duplicates;
            record.reordered = sender.reordered;
            record.lastBacklog = sender.lastBacklog;
            records.push_back(std::move(record));
        }
    }
    // Stripe order is hash order; sort so checkpoints are byte-stable
    // across runs (and across stripe-count changes).
    std::sort(records.begin(), records.end(),
              [](const state::SenderRecord &a, const state::SenderRecord &b) {
                  return a.machine < b.machine;
              });
    return records;
}

void
SolverService::importSenders(const std::vector<state::SenderRecord> &records)
{
    for (const state::SenderRecord &record : records) {
        if (record.machine.empty())
            continue;
        SenderStripe &stripe = stripeFor(record.machine);
        std::lock_guard<std::mutex> guard(stripe.mutex);
        SenderState &sender = stripe.senders[record.machine];
        sender.started = record.started;
        sender.head = record.head;
        sender.window = record.window;
        sender.received = record.received;
        sender.lost = record.lost;
        sender.duplicates = record.duplicates;
        sender.reordered = record.reordered;
        sender.lastBacklog = record.lastBacklog;
    }
}

SolverService::LossStats
SolverService::lossStats() const
{
    LossStats stats;
    for (const SenderStripe &stripe : senders_) {
        std::lock_guard<std::mutex> guard(stripe.mutex);
        stats.senders += stripe.senders.size();
        for (const auto &[machine, state] : stripe.senders) {
            (void)machine;
            stats.received += state.received;
            stats.lost += state.lost;
            stats.duplicates += state.duplicates;
            stats.reordered += state.reordered;
        }
    }
    return stats;
}

uint64_t
SolverService::received(MessageType type) const
{
    size_t index = static_cast<size_t>(type);
    return index < receivedByType_.size() ? load(receivedByType_[index])
                                          : 0;
}

void
SolverService::countReceived(MessageType type)
{
    size_t index = static_cast<size_t>(type);
    if (index < receivedByType_.size())
        bump(receivedByType_[index]);
}

std::string
SolverService::statsLine() const
{
    LossStats loss = lossStats();
    // ck = seconds since the last successful checkpoint save (-1 =
    // never), rit = iteration the boot-time restore resumed from.
    long long ck_age = -1;
    unsigned long long restore_iteration = 0;
    if (checkpointManager_) {
        double age = checkpointManager_->lastSaveAgeSeconds();
        if (age >= 0.0)
            ck_age = static_cast<long long>(age);
        restore_iteration = static_cast<unsigned long long>(
            checkpointManager_->lastRestoreIteration());
    }
    // act/frz: the quiescence engine's active-set breathing — how many
    // machines stepped last iteration vs sat frozen at steady state.
    return format("it=%llu up=%llu rej=%llu lost=%llu dup=%llu ro=%llu "
                  "rd=%llu mrd=%llu fid=%llu bad=%llu blog=%llu "
                  "ck=%lld rit=%llu act=%llu frz=%llu",
                  static_cast<unsigned long long>(solver_.iterations()),
                  static_cast<unsigned long long>(updatesApplied()),
                  static_cast<unsigned long long>(updatesRejected()),
                  static_cast<unsigned long long>(loss.lost),
                  static_cast<unsigned long long>(loss.duplicates),
                  static_cast<unsigned long long>(loss.reordered),
                  static_cast<unsigned long long>(sensorReads()),
                  static_cast<unsigned long long>(multiReads()),
                  static_cast<unsigned long long>(fiddlesApplied()),
                  static_cast<unsigned long long>(undecodable()),
                  static_cast<unsigned long long>(backlogDepth()),
                  ck_age, restore_iteration,
                  static_cast<unsigned long long>(
                      solver_.activeMachineCount()),
                  static_cast<unsigned long long>(
                      solver_.frozenMachineCount()));
}

Packet
SolverService::onUtilization(const UtilizationUpdate &msg,
                             bool note_sequence)
{
    // Sequence accounting is transport health: track it even when the
    // target cannot be resolved, so loss numbers stay truthful. The
    // sharded request plane notes the sequence at receive time instead
    // (before the update waits in the mutation queue) and dispatches
    // through handleQueued, which skips this to avoid double counting.
    if (note_sequence)
        noteSequence(msg.machine, msg.sequence, msg.backlog);
    if (msg.substituted)
        bump(updatesSubstituted_);

    auto ref = resolveCached(msg.machine, msg.component);
    if (!ref || !solver_.isPowered(*ref)) {
        bump(updatesRejected_);
        std::string key = msg.machine + "." + msg.component;
        if (warnedTargets_.insert(key).second) {
            warn("solver: dropping utilization updates for ", key,
                 " (no powered node; further drops are silent)");
        }
        return Packet{};
    }
    solver_.setUtilization(*ref, msg.utilization);
    bump(updatesApplied_);
    return Packet{};
}

Packet
SolverService::onSensorRequest(const SensorRequest &msg)
{
    SensorReply reply;
    reply.requestId = msg.requestId;
    if (!solver_.hasMachine(msg.machine)) {
        reply.status = Status::UnknownMachine;
        return encode(reply);
    }
    auto ref = resolveCached(msg.machine, msg.component);
    if (!ref) {
        reply.status = Status::UnknownComponent;
        return encode(reply);
    }
    reply.status = Status::Ok;
    reply.temperature = solver_.temperature(*ref);
    bump(sensorReads_);
    return encode(reply);
}

Packet
SolverService::onMultiReadRequest(const MultiReadRequest &msg)
{
    MultiReadReply reply;
    reply.requestId = msg.requestId;
    if (!solver_.hasMachine(msg.machine)) {
        reply.status = Status::UnknownMachine;
        return encode(reply);
    }
    reply.status = Status::Ok;
    reply.entries.reserve(msg.components.size());
    for (const std::string &component : msg.components) {
        MultiReadEntry entry;
        auto ref = resolveCached(msg.machine, component);
        if (!ref) {
            entry.status = Status::UnknownComponent;
        } else {
            entry.status = Status::Ok;
            entry.temperature = solver_.temperature(*ref);
            bump(sensorReads_);
        }
        reply.entries.push_back(entry);
    }
    bump(multiReads_);
    return encode(reply);
}

Packet
SolverService::onFiddleRequest(const FiddleRequest &msg, bool replicated)
{
    FiddleReply reply;
    reply.requestId = msg.requestId;

    // `fiddle stats` is answered here, not by the command language:
    // the counters live in the service, not the solver.
    std::string line = trim(msg.commandLine);
    if (line == "stats" || line == "fiddle stats") {
        reply.status = Status::Ok;
        reply.message = statsLine().substr(0, 110);
        return encode(reply);
    }

    // `fiddle checkpoint`: save on demand, synchronously, so an
    // operator can snapshot right before a risky intervention.
    if (line == "checkpoint" || line == "fiddle checkpoint") {
        if (!checkpointManager_) {
            reply.status = Status::BadCommand;
            reply.message = "no checkpoint path configured";
            return encode(reply);
        }
        std::string why;
        if (checkpointManager_->saveNow(&why)) {
            reply.status = Status::Ok;
            reply.message =
                "checkpoint saved (#" +
                std::to_string(checkpointManager_->saveCount()) + ")";
            bump(fiddlesApplied_);
        } else {
            reply.status = Status::InternalError;
            reply.message = why.substr(0, 110);
        }
        return encode(reply);
    }

    // `fiddle metrics` over the plain fiddle protocol: old clients
    // get the first reply-sized chunk of the summary. New clients use
    // the paginated MetricsRequest instead and never hit this.
    if (line == "metrics" || line == "fiddle metrics") {
        reply.status = Status::Ok;
        reply.message = metricsRegistry_
                            ? metricsRegistry_->renderSummary().substr(0, 110)
                            : statsLine().substr(0, 110);
        return encode(reply);
    }

    // `fiddle guard ...`: the sensor trust layer's health. Routed here
    // because the guard belongs to the solver thread, and the request
    // plane already queues every non-stats fiddle line onto it.
    if (line == "guard" || startsWith(line, "guard ")) {
        return onGuardCommand(trim(line.substr(5)), std::move(reply));
    }
    if (line == "fiddle guard" || startsWith(line, "fiddle guard ")) {
        return onGuardCommand(trim(line.substr(12)), std::move(reply));
    }

    // `fiddle replica`: replication health (role, stream positions,
    // lag, last state-hash verdict) from the daemon's provider.
    if (line == "replica" || line == "fiddle replica") {
        if (!replicaInfoProvider_) {
            reply.status = Status::Ok;
            reply.message = "replication disabled";
            return encode(reply);
        }
        reply.status = Status::Ok;
        reply.message = replicaInfoProvider_().substr(0, 110);
        return encode(reply);
    }

    // Everything past this point mutates the solver. A standby takes
    // mutations only from the replication stream; tell the operator
    // where to send the command instead of silently shadow-forking.
    if (readOnly_ && !replicated) {
        reply.status = Status::BadCommand;
        reply.message =
            ("read-only standby" +
             (readOnlyReason_.empty() ? std::string()
                                      : " (" + readOnlyReason_ + ")"))
                .substr(0, 110);
        return encode(reply);
    }

    fiddle::FiddleResult result =
        fiddle::applyLine(solver_, msg.commandLine);
    reply.status = result.ok ? Status::Ok : Status::BadCommand;
    // Clamp the diagnostic to the wire field.
    reply.message = result.message.substr(0, 110);
    if (result.ok)
        bump(fiddlesApplied_);
    return encode(reply);
}

Packet
SolverService::onGuardCommand(const std::string &args, FiddleReply reply)
{
    if (!sensorGuard_) {
        reply.status = Status::BadCommand;
        reply.message = "no sensor guard installed";
        return encode(reply);
    }
    guard::SensorGuard &guard = *sensorGuard_;
    if (args.empty()) {
        reply.status = Status::Ok;
        reply.message = guard.summaryLine().substr(0, 110);
        return encode(reply);
    }
    std::vector<std::string> words = splitWhitespace(args);
    if (words[0] == "page") {
        size_t offset = 0;
        if (words.size() > 1) {
            auto parsed = parseInt(words[1]);
            if (!parsed || *parsed < 0) {
                reply.status = Status::BadCommand;
                reply.message = "usage: guard page <offset>";
                return encode(reply);
            }
            offset = static_cast<size_t>(*parsed);
        }
        // Offset 0 renders a fresh report; later pages read the cache
        // so one client walks one consistent snapshot.
        if (offset == 0 || guardPageCache_.empty())
            guardPageCache_ = guard.report();
        if (offset >= guardPageCache_.size()) {
            reply.status = offset == 0 ? Status::Ok : Status::BadCommand;
            reply.message = "0|";
            return encode(reply);
        }
        // "<nextOffset>|<chunk>" inside the 110-byte reply field; 96
        // bytes of chunk leaves room for any plausible offset.
        size_t take =
            std::min<size_t>(96, guardPageCache_.size() - offset);
        size_t end = offset + take;
        size_t next = end < guardPageCache_.size() ? end : 0;
        reply.status = Status::Ok;
        reply.message = format("%zu|", next) +
                        guardPageCache_.substr(offset, take);
        return encode(reply);
    }
    // `guard <stream>`: one stream's health line.
    for (const auto &status : guard.streamStatuses()) {
        if (status.stream != words[0])
            continue;
        reply.status = Status::Ok;
        reply.message =
            format("%s %s reason=%s t_in_state=%.0fs last=%.2f",
                   status.stream.c_str(),
                   guard::healthStateName(status.state),
                   guard::classificationName(status.lastReason),
                   status.timeInState, status.lastValue)
                .substr(0, 110);
        return encode(reply);
    }
    reply.status = Status::BadCommand;
    reply.message = "unknown stream '" + words[0] + "'";
    reply.message = reply.message.substr(0, 110);
    return encode(reply);
}

Packet
SolverService::metricsReply(const MetricsRequest &msg,
                            std::string &page_cache) const
{
    MetricsReply reply;
    reply.requestId = msg.requestId;

    // Offset 0 starts a fresh snapshot; later pages read the cached
    // render so one client pages through one consistent snapshot even
    // while the counters keep moving.
    if (msg.offset == 0 || page_cache.empty()) {
        page_cache = metricsRegistry_ ? metricsRegistry_->renderSummary()
                                      : statsLine() + "\n";
    }

    if (msg.offset >= page_cache.size()) {
        reply.status = msg.offset == 0 ? Status::Ok : Status::BadCommand;
        reply.nextOffset = 0;
        return encode(reply);
    }

    size_t take =
        std::min(kMetricsFragmentMax, page_cache.size() - msg.offset);
    reply.status = Status::Ok;
    reply.fragment = page_cache.substr(msg.offset, take);
    size_t end = msg.offset + take;
    reply.nextOffset =
        end < page_cache.size() ? static_cast<uint32_t>(end) : 0;
    return encode(reply);
}

} // namespace proto
} // namespace mercury
