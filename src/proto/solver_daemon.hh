/**
 * @file
 * The UDP solver daemon: a sharded request plane (proto/request_plane)
 * answers sensor/fiddle/metrics traffic while this class's run() loop
 * steps the solver and applies queued mutations at iteration
 * boundaries — this is the paper's `solver` process running "on a
 * separate machine".
 *
 * apps/mercury_solverd.cc wraps this in a main(); the network tests
 * run it on a background thread against an ephemeral port.
 */

#ifndef MERCURY_PROTO_SOLVER_DAEMON_HH
#define MERCURY_PROTO_SOLVER_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "proto/request_plane.hh"
#include "proto/solver_service.hh"
#include "state/checkpoint.hh"

namespace mercury {

namespace core {
class Solver;
} // namespace core

namespace telemetry {
class Writer;
} // namespace telemetry

namespace proto {

/**
 * UDP front end for a Solver.
 */
class SolverDaemon
{
  public:
    struct Config
    {
        /** UDP port to bind; 0 picks an ephemeral port. The paper's
         *  example uses 8367. */
        uint16_t port = 8367;

        /** Serve workers on the request plane, each with its own
         *  SO_REUSEPORT socket. 1 (the default) keeps the serial
         *  daemon's single-receiver behavior. */
        unsigned serveThreads = 1;

        /** Wall-clock seconds between solver iterations; <= 0
         *  disables time-stepping (useful in tests that step the
         *  solver themselves). */
        double iterationSeconds = 1.0;

        /** Wall-clock seconds between packet-health log lines
         *  (service().statsLine(), at info level); <= 0 disables. */
        double statsLogSeconds = 60.0;

        /** Shared-memory telemetry segment name ("/name"); empty
         *  disables the telemetry plane. Local sensor libraries read
         *  temperatures straight from the segment instead of asking
         *  over UDP, and the serve workers answer read RPCs from it
         *  without touching the solver. */
        std::string shmName;

        /** Checkpoint file; empty disables checkpointing. Restored at
         *  construction (before the telemetry segment is built, so the
         *  first published snapshot already carries the resumed
         *  state); saved on the timer below, on `fiddle checkpoint`,
         *  and once more when run() returns (clean shutdown). */
        std::string checkpointPath;

        /** Wall-clock seconds between periodic checkpoint saves;
         *  <= 0 disables the timer (explicit saves still work). */
        double checkpointSeconds = 30.0;

        /** Prometheus text file written atomically every
         *  metricsSeconds; empty disables the file writer (the
         *  MetricsSnapshot RPC and the shm metrics region still
         *  work). */
        std::string metricsPath;

        /** Wall-clock seconds between metrics file writes. */
        double metricsSeconds = 10.0;

        /** Metrics registry to instrument into; null uses the
         *  process-global registry. Tests pass their own so
         *  concurrent daemons in one process stay isolated. */
        metrics::Registry *registry = nullptr;
    };

    SolverDaemon(core::Solver &solver, Config config);
    ~SolverDaemon();

    /** Bound UDP port (after construction). */
    uint16_t port() const;

    /**
     * Serve until stop() is called from another thread. The serve
     * workers run on their own threads; this thread owns the solver:
     * it steps iterations, applies queued mutations at iteration
     * boundaries, and sleeps until the nearest pending deadline
     * (iteration, heartbeat, stats log, metrics file) or queued work
     * instead of polling on a fixed tick.
     */
    void run();

    /** Ask a running run() loop to return (thread-safe). */
    void
    stop()
    {
        stop_.store(true, std::memory_order_relaxed);
        plane_->wake();
    }

    const SolverService &service() const { return service_; }

    /** The request plane (serve workers + mutation queue). */
    const RequestPlane &requestPlane() const { return *plane_; }

    /** The registry this daemon instruments into. */
    metrics::Registry &metricsRegistry() { return *registry_; }

    /** The telemetry writer; null when disabled or shm_open failed. */
    const telemetry::Writer *telemetryWriter() const
    {
        return writer_.get();
    }

    /** The checkpoint manager; null when checkpointing is disabled. */
    const state::CheckpointManager *checkpointManager() const
    {
        return checkpointManager_.get();
    }

  private:
    core::Solver &solver_;
    Config config_;
    SolverService service_;
    std::unique_ptr<RequestPlane> plane_;
    std::unique_ptr<state::CheckpointManager> checkpointManager_;
    std::unique_ptr<telemetry::Writer> writer_;
    std::atomic<bool> stop_{false};

    metrics::Registry *registry_ = nullptr;
    metrics::Histogram *iterationHist_ = nullptr;
    metrics::CallbackGuard metricsGuard_;
};

} // namespace proto
} // namespace mercury

#endif // MERCURY_PROTO_SOLVER_DAEMON_HH
