/**
 * @file
 * The UDP solver daemon: a sharded request plane (proto/request_plane)
 * answers sensor/fiddle/metrics traffic while this class's run() loop
 * steps the solver and applies queued mutations at iteration
 * boundaries — this is the paper's `solver` process running "on a
 * separate machine".
 *
 * Replication rides the same loop. As primary, the daemon appends
 * every drained mutation to a deterministic WAL (replica/wal) and
 * streams the records to hot standbys (replica/replicator). As
 * standby (`--replica-of`), it applies the primary's records at the
 * same iteration boundaries to maintain a bitwise-identical shadow,
 * serves read-only traffic from its own shm segment, and promotes
 * itself when the primary's lease expires.
 *
 * apps/mercury_solverd.cc wraps this in a main(); the network tests
 * run it on a background thread against an ephemeral port.
 */

#ifndef MERCURY_PROTO_SOLVER_DAEMON_HH
#define MERCURY_PROTO_SOLVER_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "proto/request_plane.hh"
#include "proto/solver_service.hh"
#include "replica/replicator.hh"
#include "replica/standby.hh"
#include "replica/wal.hh"
#include "state/checkpoint.hh"

namespace mercury {

namespace core {
class Solver;
} // namespace core

namespace telemetry {
class Writer;
} // namespace telemetry

namespace proto {

/**
 * UDP front end for a Solver.
 */
class SolverDaemon
{
  public:
    struct Config
    {
        /** UDP port to bind; 0 picks an ephemeral port. The paper's
         *  example uses 8367. */
        uint16_t port = 8367;

        /** Serve workers on the request plane, each with its own
         *  SO_REUSEPORT socket. 1 (the default) keeps the serial
         *  daemon's single-receiver behavior. */
        unsigned serveThreads = 1;

        /** Wall-clock seconds between solver iterations; <= 0
         *  disables time-stepping (useful in tests that step the
         *  solver themselves). A standby ignores the timer and steps
         *  in lockstep with the primary instead. */
        double iterationSeconds = 1.0;

        /** Wall-clock seconds between packet-health log lines
         *  (service().statsLine(), at info level); <= 0 disables. */
        double statsLogSeconds = 60.0;

        /** Shared-memory telemetry segment name ("/name"); empty
         *  disables the telemetry plane. Local sensor libraries read
         *  temperatures straight from the segment instead of asking
         *  over UDP, and the serve workers answer read RPCs from it
         *  without touching the solver. */
        std::string shmName;

        /** Checkpoint file; empty disables checkpointing. Restored at
         *  construction (before the telemetry segment is built, so the
         *  first published snapshot already carries the resumed
         *  state); saved on the timer below, on `fiddle checkpoint`,
         *  and once more when run() returns (clean shutdown). */
        std::string checkpointPath;

        /** Wall-clock seconds between periodic checkpoint saves;
         *  <= 0 disables the timer (explicit saves still work). */
        double checkpointSeconds = 30.0;

        /** Prometheus text file written atomically every
         *  metricsSeconds; empty disables the file writer (the
         *  MetricsSnapshot RPC and the shm metrics region still
         *  work). */
        std::string metricsPath;

        /** Wall-clock seconds between metrics file writes. */
        double metricsSeconds = 10.0;

        /** Metrics registry to instrument into; null uses the
         *  process-global registry. Tests pass their own so
         *  concurrent daemons in one process stay isolated. */
        metrics::Registry *registry = nullptr;

        /** @name Replication (see docs/operations.md)
         *  The WAL and the replication plane are both optional and
         *  independent: a WAL alone buys post-mortem replay, a
         *  replication port alone buys a hot standby (which keeps its
         *  own WAL when walPath is also set). */
        /// @{

        /** Mutation WAL file; empty disables WAL logging. */
        std::string walPath;

        /** Replication listener port (>= 0 enables; 0 = ephemeral).
         *  Primaries stream records from it; a standby binds it too,
         *  inactive, so its address survives a promotion. */
        int replicationPort = -1;

        /** "host:port" of a primary's replication listener; non-empty
         *  makes this daemon a hot standby of that primary. */
        std::string replicaOf;

        /** Promotion lease: a standby promotes itself after the
         *  primary has been silent this long. */
        double leaseSeconds = 3.0;

        /** Heartbeat period toward standbys; keep well under the
         *  lease. */
        double replicaHeartbeatSeconds = 0.5;

        /** State-hash cadence (iterations between primary/standby
         *  bitwise-identity checks); 0 disables hashing. */
        unsigned hashIterations = 32;

        /** Never-contacted fallback: a standby that could not reach
         *  the primary at all promotes after this long (<= 0: wait
         *  for contact forever). */
        double standbyGraceSeconds = 0.0;

        /** Port file rewritten (atomically) on promotion so clients
         *  following it fail over; empty disables. The app writes the
         *  initial primary-side file. */
        std::string portFile;

        /// @}
    };

    SolverDaemon(core::Solver &solver, Config config);
    ~SolverDaemon();

    /** Bound UDP port (after construction). */
    uint16_t port() const;

    /** Replication listener port; 0 when replication is disabled. */
    uint16_t replicationPort() const;

    /**
     * Serve until stop() is called from another thread. The serve
     * workers run on their own threads; this thread owns the solver:
     * it steps iterations, applies queued mutations at iteration
     * boundaries, and sleeps until the nearest pending deadline
     * (iteration, heartbeat, stats log, metrics file) or queued work
     * instead of polling on a fixed tick. A standby instead follows
     * the primary's record stream until the lease expires, then
     * promotes itself and continues as primary.
     */
    void run();

    /** Ask a running run() loop to return (thread-safe). */
    void
    stop()
    {
        stop_.store(true, std::memory_order_relaxed);
        plane_->wake();
    }

    const SolverService &service() const { return service_; }

    /** The request plane (serve workers + mutation queue). */
    const RequestPlane &requestPlane() const { return *plane_; }

    /** The registry this daemon instruments into. */
    metrics::Registry &metricsRegistry() { return *registry_; }

    /** The telemetry writer; null when disabled or shm_open failed. */
    const telemetry::Writer *telemetryWriter() const
    {
        return writer_.get();
    }

    /** The checkpoint manager; null when checkpointing is disabled. */
    const state::CheckpointManager *checkpointManager() const
    {
        return checkpointManager_.get();
    }

    /** True while this daemon is a (not yet promoted) standby. */
    bool isStandby() const
    {
        return role_.load(std::memory_order_relaxed) == 1;
    }

    /** Times this daemon promoted itself (0 or 1 in practice). */
    uint64_t promotions() const
    {
        return promotions_.load(std::memory_order_relaxed);
    }

  private:
    using Clock = std::chrono::steady_clock;

    /** Shared timer state between the primary and standby loops. */
    struct LoopTimers;

    void setupReplication();
    void installMutationObserver();

    /** Append one drained mutation to the WAL + replication stream. */
    void logMutation(const Message &message);

    /** Append a record to the WAL (creating the standby's WAL lazily)
     *  and offer it to the replicator. */
    void walAppend(const replica::WalRecord &record);

    /** Hash the solver state at the configured cadence. */
    void maybeHashState();

    /** One iterate() wrapped with the histogram + state hashing. */
    void stepOnce();

    /** Checkpoint timer + WAL rotation (loop top, both roles). */
    void pollCheckpoint();

    /** Refresh the replica_* gauges (solver thread). */
    void updateReplicaMetrics();

    /** Shared loop-top timer work; returns the nearest deadline. */
    Clock::time_point pollTimers(LoopTimers &timers);

    void runPrimary(LoopTimers &timers);

    /** Follow the primary until promotion (true) or stop (false). */
    bool runStandby(LoopTimers &timers);

    /** Lease expired: become primary. */
    void promote();

    /** The `fiddle replica` report line. */
    std::string replicaInfoLine() const;

    core::Solver &solver_;
    Config config_;
    SolverService service_;
    std::unique_ptr<RequestPlane> plane_;
    std::unique_ptr<state::CheckpointManager> checkpointManager_;
    std::unique_ptr<telemetry::Writer> writer_;
    std::atomic<bool> stop_{false};

    metrics::Registry *registry_ = nullptr;
    metrics::Histogram *iterationHist_ = nullptr;
    metrics::CallbackGuard metricsGuard_;

    /** @name Replication state (solver thread unless noted) */
    /// @{
    std::unique_ptr<replica::WalWriter> wal_;
    std::unique_ptr<replica::Replicator> replicator_;
    std::unique_ptr<replica::StandbyClient> standby_;

    uint64_t topologyHash_ = 0;
    uint64_t nextSeq_ = 1;          //!< next WAL sequence (primary)
    uint64_t lastSaveCountSeen_ = 0;
    uint64_t lastHash_ = 0;
    uint64_t lastHashIteration_ = 0;

    std::atomic<int> role_{0}; //!< 0 primary, 1 standby (metrics read)
    std::atomic<uint64_t> promotions_{0};

    metrics::Counter *walAppendedTotal_ = nullptr;
    metrics::Counter *walBytesTotal_ = nullptr;
    metrics::Counter *promotionsTotal_ = nullptr;
    metrics::Gauge *replicaLagRecords_ = nullptr;
    metrics::Gauge *replicaLagSeconds_ = nullptr;
    metrics::Gauge *replicaAckedSeq_ = nullptr;
    metrics::Gauge *replicaAppliedSeq_ = nullptr;
    metrics::Gauge *replicaStandbys_ = nullptr;
    metrics::Gauge *replicaAttached_ = nullptr;
    metrics::Gauge *replicaHashVerdict_ = nullptr;
    metrics::Gauge *replicaHashChecks_ = nullptr;
    metrics::Gauge *replicaHashMismatches_ = nullptr;
    /// @}
};

} // namespace proto
} // namespace mercury

#endif // MERCURY_PROTO_SOLVER_DAEMON_HH
