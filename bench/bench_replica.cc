/**
 * @file
 * Steady-state replication overhead bench: the acceptance gate for the
 * WAL + hot-standby subsystem is that logging and streaming mutations
 * costs at most 5% of iteration time at 1024 machines.
 *
 * Three runs over the identical workload (N iterations, M utilization
 * mutations applied per iteration, 1024-machine fleet):
 *
 *   base        solver only — apply mutations, iterate
 *   wal         + encode each mutation and append/flush it to a WAL
 *   replicated  + offer records to a Replicator polled every
 *                 iteration, with a live acking standby on loopback
 *
 * The standby pumps and acks from its own thread, so the primary-side
 * numbers include real socket traffic (sends, ack drains, heartbeats)
 * but not the standby's work — exactly the cost the daemon's solver
 * thread pays in production.
 *
 * Emits machine-readable JSON on stdout (progress goes to stderr):
 *
 *   build/bench/bench_replica > BENCH_replica.json
 *
 * scripts/run_bench_replica.sh wraps this and enforces the overhead
 * ceiling (MERCURY_WAL_OVERHEAD_MAX, default 0.05).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/solver.hh"
#include "core/spec.hh"
#include "proto/messages.hh"
#include "proto/wal_codec.hh"
#include "replica/replicator.hh"
#include "replica/standby.hh"
#include "replica/wal.hh"
#include "state/checkpoint.hh"
#include "util/flags.hh"

using namespace mercury;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

enum class Mode { Base, Wal, Replicated };

const char *
modeName(Mode mode)
{
    switch (mode) {
    case Mode::Base:
        return "replica_base";
    case Mode::Wal:
        return "replica_wal";
    case Mode::Replicated:
        return "replica_replicated";
    }
    return "?";
}

struct RunResult
{
    Mode mode = Mode::Base;
    uint64_t iterations = 0;
    uint64_t records = 0;
    double seconds = 0.0;
    double microsPerIteration = 0.0;
};

void
addFleet(core::Solver &solver, unsigned machines)
{
    for (unsigned i = 0; i < machines; ++i)
        solver.addMachine(core::table1Server("m" + std::to_string(i)));
}

/**
 * One measured run. Every mode applies the same mutations so the
 * solver walks the same trajectory; only the logging/streaming work
 * differs between modes.
 */
RunResult
runOnce(Mode mode, unsigned machines, unsigned iterations,
        unsigned mutations, unsigned warmup)
{
    core::Solver solver;
    addFleet(solver, machines);
    const uint64_t topology = state::topologyHash(solver);

    std::string wal_path = "/tmp/mercury.bench_replica." +
                           std::to_string(::getpid()) + ".wal";
    std::unique_ptr<replica::WalWriter> wal;
    if (mode != Mode::Base) {
        replica::WalHeader header;
        header.topologyHash = topology;
        std::string error;
        wal = replica::WalWriter::create(wal_path, header, &error);
        if (!wal) {
            std::fprintf(stderr, "bench_replica: %s\n", error.c_str());
            std::exit(1);
        }
    }

    std::unique_ptr<replica::Replicator> replicator;
    std::thread standby_thread;
    std::atomic<bool> stop{false};
    if (mode == Mode::Replicated) {
        replica::Replicator::Config config;
        config.port = 0;
        config.heartbeatSeconds = 0.25;
        config.leaseSeconds = 3.0;
        replicator =
            std::make_unique<replica::Replicator>(config, topology, 0, 1);
        uint16_t port = replicator->port();
        standby_thread = std::thread([port, topology, &stop] {
            replica::StandbyClient::Config config;
            config.host = "127.0.0.1";
            config.port = port;
            config.topologyHash = topology;
            config.helloSeconds = 0.05;
            config.ackSeconds = 0.01;
            config.localIteration = [] { return uint64_t(0); };
            replica::StandbyClient standby(config);
            while (!stop.load(std::memory_order_relaxed)) {
                standby.pump(0.001);
                while (standby.nextApplicable())
                    standby.markApplied();
                standby.maybeAck();
            }
        });
        // Let the standby attach before the clock starts, so the run
        // measures steady-state streaming rather than session setup.
        auto wait_start = Clock::now();
        while (replicator->standbyCount() == 0 &&
               secondsSince(wait_start) < 2.0) {
            replicator->poll(0);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }

    uint64_t sequence = 1;
    uint64_t records = 0;
    auto boundary = [&](uint64_t iteration_index) {
        // The drain boundary: apply this pass's mutations, logging and
        // streaming them first when the mode says so.
        for (unsigned m = 0; m < mutations; ++m) {
            proto::UtilizationUpdate update;
            update.machine =
                "m" + std::to_string((iteration_index * mutations + m) %
                                     machines);
            update.component = "cpu";
            update.utilization =
                0.25 + 0.5 * double((iteration_index + m) % 3 == 0);
            update.sequence = sequence;
            if (mode != Mode::Base) {
                replica::WalRecord record;
                record.sequence = sequence;
                record.iteration = solver.iterations();
                record.kind = replica::WalRecordKind::Mutation;
                record.payload = proto::encodeWalMutation(update);
                wal->append(record);
                if (replicator)
                    replicator->offer(record);
                ++records;
            }
            ++sequence;
            solver.setUtilization(update.machine, update.component,
                                  update.utilization);
        }
        if (wal)
            wal->flush();
        if (replicator) {
            if (solver.iterations() % 32 == 0)
                replicator->noteHash(solver.iterations(),
                                     replica::stateHash(solver));
            replicator->poll(solver.iterations());
        }
    };

    for (unsigned i = 0; i < warmup; ++i) {
        boundary(i);
        solver.iterate();
    }

    auto start = Clock::now();
    for (unsigned i = 0; i < iterations; ++i) {
        boundary(warmup + i);
        solver.iterate();
    }
    double elapsed = secondsSince(start);

    stop.store(true, std::memory_order_relaxed);
    if (standby_thread.joinable())
        standby_thread.join();
    if (wal) {
        wal->sync();
        wal.reset();
        std::remove(wal_path.c_str());
        std::remove((wal_path + ".old").c_str());
    }

    RunResult result;
    result.mode = mode;
    result.iterations = iterations;
    result.records = records;
    result.seconds = elapsed;
    result.microsPerIteration = elapsed * 1e6 / double(iterations);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("bench_replica",
                  "steady-state WAL + replication overhead per iteration");
    flags.defineInt("machines", 1024, "fleet size");
    flags.defineInt("iterations", 150, "measured iterations per mode");
    flags.defineInt("mutations", 64, "mutations applied per iteration");
    flags.defineInt("warmup", 20, "unmeasured warmup iterations");
    if (!flags.parse(argc, argv))
        return 0;

    unsigned machines = static_cast<unsigned>(flags.getInt("machines"));
    unsigned iterations =
        static_cast<unsigned>(flags.getInt("iterations"));
    unsigned mutations = static_cast<unsigned>(flags.getInt("mutations"));
    unsigned warmup = static_cast<unsigned>(flags.getInt("warmup"));
    if (machines < 1 || iterations < 1) {
        std::fprintf(stderr, "bench_replica: bad flag values\n");
        return 1;
    }

    std::vector<RunResult> results;
    for (Mode mode : {Mode::Base, Mode::Wal, Mode::Replicated}) {
        std::fprintf(stderr, "bench_replica: %s...\n", modeName(mode));
        results.push_back(
            runOnce(mode, machines, iterations, mutations, warmup));
        std::fprintf(stderr, "bench_replica:   %.1f us/iteration\n",
                     results.back().microsPerIteration);
    }

    std::printf("{\n");
    std::printf("  \"context\": {\"machines\": %u, \"iterations\": %u, "
                "\"mutations_per_iteration\": %u, \"cores\": %ld},\n",
                machines, iterations, mutations,
                ::sysconf(_SC_NPROCESSORS_ONLN));
    std::printf("  \"benchmarks\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        std::printf("    {\"name\": \"%s\", \"iterations\": %llu, "
                    "\"records\": %llu, \"seconds\": %.6f, "
                    "\"us_per_iteration\": %.3f}%s\n",
                    modeName(r.mode),
                    static_cast<unsigned long long>(r.iterations),
                    static_cast<unsigned long long>(r.records),
                    r.seconds, r.microsPerIteration,
                    i + 1 < results.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
