/**
 * @file
 * Ablation: the PD controller gains (paper: kp = 0.1, kd = 0.2).
 * Sweeps both gains over the Figure 11 scenario and reports how hot
 * the worst CPU got, how many adjustments were needed, and whether
 * anything was dropped or red-lined — showing the published gains sit
 * in a robust region.
 */

#include <cstdio>

#include "bench_util.hh"
#include "freon/experiment.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;

    banner("Ablation", "PD gains (kp, kd) on the Figure 11 scenario");

    std::printf("kp,kd,m1_peak_C,adjustments,drops,servers_off\n");
    double paper_peak = 0.0;
    for (double kp : {0.0, 0.05, 0.1, 0.2, 0.4}) {
        for (double kd : {0.0, 0.1, 0.2, 0.4}) {
            if (kp == 0.0 && kd == 0.0)
                continue; // output would always be zero
            freon::ExperimentConfig config;
            config.policy = freon::PolicyKind::FreonBase;
            config.workload.duration = 2000.0;
            config.addPaperEmergencies();
            config.freon.kp = kp;
            config.freon.kd = kd;
            freon::ExperimentResult result =
                freon::runExperiment(config);
            std::printf("%.2f,%.2f,%.2f,%llu,%llu,%llu\n", kp, kd,
                        result.peakCpuTemperature.at("m1"),
                        static_cast<unsigned long long>(
                            result.weightAdjustments),
                        static_cast<unsigned long long>(result.dropped),
                        static_cast<unsigned long long>(
                            result.serversTurnedOff));
            if (kp == 0.1 && kd == 0.2)
                paper_peak = result.peakCpuTemperature.at("m1");
        }
    }
    summary("paper_gains_m1_peak_C", paper_peak);
    paperClaim("gains", "kp=0.1, kd=0.2 manage temperatures smoothly "
                        "with no drops");
    return 0;
}
