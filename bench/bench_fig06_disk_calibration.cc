/**
 * @file
 * Figure 6: "Calibrating Mercury for disk usage and temperature."
 * The disk twin of Figure 5: a 14 000 s staircase of disk utilization
 * levels; the in-disk sensor (platters probe) is the reference.
 */

#include <cstdio>

#include "bench_util.hh"
#include "calib/validation.hh"
#include "core/spec.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::bench;
    using namespace mercury::calib;

    banner("Figure 6",
           "disk calibration microbenchmark, 14000 s, emulated vs real");

    refmodel::ReferenceConfig reference_config;
    ReferenceRun real = runReference(
        reference_config, kCalibrationDuration,
        {{"disk", diskCalibrationWaveform()}}, {"disk_platters"}, true);

    CalibrationResult calibration =
        calibrateTable1AgainstReference(reference_config, true);

    Experiment experiment;
    experiment.duration = kCalibrationDuration;
    experiment.loads.emplace_back("disk_platters",
                                  diskCalibrationWaveform());
    std::vector<TimeSeries> emulated =
        simulateExperiment(calibration.spec, experiment,
                           {"disk_platters"});
    std::vector<TimeSeries> uncalibrated = simulateExperiment(
        core::table1Server(), experiment, {"disk_platters"});

    TimeSeries util("disk_util_percent");
    for (double t = 0.0; t <= kCalibrationDuration; t += 20.0)
        util.add(t, 100.0 * diskCalibrationWaveform()(t));

    TimeSeries real_temp = real.temperatures.at("disk_platters");
    TimeSeries emulated_temp = emulated[0];
    emitSeries({&util, &real_temp, &emulated_temp}, 2);

    summary("calibration_mean_error_before_degC",
            calibration.initialError);
    summary("calibration_mean_error_after_degC", calibration.finalError);
    summary("disk_max_error_degC", emulated_temp.maxAbsError(real_temp));
    summary("disk_max_error_uncalibrated_degC",
            uncalibrated[0].maxAbsError(real_temp));
    paperClaim("behaviour", "emulated disk temperature tracks the "
                            "in-disk sensor staircase");
    return 0;
}
