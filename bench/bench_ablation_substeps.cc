/**
 * @file
 * Ablation: solver iteration period vs accuracy.
 *
 * The paper's solver computes "one iteration per second by default"
 * and notes it "could execute for a large number of iterations at a
 * time, thereby providing greater accuracy" — this bench quantifies
 * that trade-off. The Table 1 machine runs a demanding square-wave
 * load at several iteration periods; errors are measured against a
 * 10 ms ground truth.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "core/thermal_graph.hh"

namespace {

using namespace mercury;

/** Run the machine for 2000 s, sampling cpu/cpu_air every 10 s. */
void
runAt(double dt, TimeSeries *cpu, TimeSeries *cpu_air)
{
    core::ThermalGraph graph(core::table1Server());
    double next_sample = 10.0;
    for (double t = dt; t <= 2000.0 + 1e-9; t += dt) {
        // 200 s square wave between idle and flat out.
        double phase = std::fmod(t, 400.0);
        graph.setUtilization("cpu", phase < 200.0 ? 1.0 : 0.0);
        graph.setUtilization("disk_platters", phase < 200.0 ? 0.0 : 1.0);
        graph.step(dt);
        if (t + 1e-9 >= next_sample) {
            cpu->add(next_sample, graph.temperature("cpu"));
            cpu_air->add(next_sample, graph.temperature("cpu_air"));
            next_sample += 10.0;
        }
    }
}

} // namespace

int
main()
{
    using namespace mercury::bench;

    banner("Ablation", "solver iteration period vs accuracy "
                       "(ground truth: 10 ms steps)");

    TimeSeries truth_cpu("truth_cpu");
    TimeSeries truth_air("truth_air");
    runAt(0.01, &truth_cpu, &truth_air);

    std::printf("iteration_s,cpu_max_err_C,cpu_air_max_err_C\n");
    for (double dt : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0}) {
        TimeSeries cpu("cpu");
        TimeSeries air("air");
        runAt(dt, &cpu, &air);
        std::printf("%g,%.4f,%.4f\n", dt, cpu.maxAbsError(truth_cpu),
                    air.maxAbsError(truth_air));
    }
    paperClaim("default", "1 s per iteration is accurate to within "
                          "1 degC (Section 2.3 / Section 3)");
    return 0;
}
